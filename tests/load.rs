//! Load-harness suite (DESIGN.md §12): arrival-schedule determinism,
//! histogram error bounds under adversarial distributions, and admission
//! conservation with exactly-once shed accounting on both threaded
//! backends.
//!
//! Four families of checks:
//!
//! 1. **Determinism** — identical `(profile, seed, n)` triples render
//!    byte-identical arrival schedules, and the virtual-time admission
//!    replay ([`run_des_load`]) reproduces the same decision log twice
//!    for every overload policy.
//! 2. **Histogram error bounds** — the bucketed p50/p99/p999 sit within
//!    one bucket width of the exact order statistics computed from the
//!    raw sample vector, for adversarial seeded distributions (bimodal
//!    mixtures and Pareto heavy tails), not just well-behaved ones.
//! 3. **Native conservation** — for each overload policy, the open-loop
//!    `Pipeline::run_load` keeps `admitted + shed + deadline_dropped ==
//!    generated`, completes exactly the admitted tasks once each, and
//!    emits exactly one `task_shed` / `task_deadline_dropped` trace event
//!    per lost task (unique buffer ids).
//! 4. **Net conservation** — the same per-policy accounting through the
//!    TCP coordinator (`run_concurrent_load`) with a deliberately slow
//!    loopback worker, including the bounded-intake guarantee.

mod common;

use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;

use common::{count_events, emulated_cpu_workers, load_buffer, loopback_workers, oracle, Forward};

use anthill_repro::bench::load::{run_des_load, ArrivalProfile, LatencyHistogram};
use anthill_repro::core::engine::{AdmissionConfig, OverloadPolicy};
use anthill_repro::core::local::{LoadConfig, LocalTask, Pipeline};
use anthill_repro::core::net::{run_concurrent_load, Behavior, NetConfig};
use anthill_repro::core::obs::{EventKind, Recorder};
use anthill_repro::core::policy::{Policy, PolicyKind};
use anthill_repro::hetsim::DeviceKind;
use anthill_repro::simkit::{SimDuration, SimRng};

fn profiles() -> [ArrivalProfile; 3] {
    [
        ArrivalProfile::Poisson { rate_hz: 40_000.0 },
        ArrivalProfile::Bursty {
            rate_hz: 80_000.0,
            burst_ms: 3,
            idle_ms: 4,
        },
        ArrivalProfile::Diurnal {
            peak_hz: 60_000.0,
            trough_hz: 6_000.0,
            period_ms: 25,
        },
    ]
}

fn overload_policies() -> [OverloadPolicy; 3] {
    [
        OverloadPolicy::Block,
        OverloadPolicy::ShedOldest,
        OverloadPolicy::DeadlineDrop {
            deadline: SimDuration::from_millis(1),
        },
    ]
}

// ---------------------------------------------------------- determinism

/// Identical seed + profile yields *byte*-identical schedules; a
/// different seed diverges; distinct profiles diverge under one seed.
#[test]
fn identical_seed_and_profile_yield_byte_identical_schedules() {
    let bytes = |s: &[u64]| -> Vec<u8> { s.iter().flat_map(|v| v.to_le_bytes()).collect() };
    let mut firsts = Vec::new();
    for profile in profiles() {
        let a = profile.schedule(42, 20_000);
        let b = profile.schedule(42, 20_000);
        assert_eq!(
            bytes(&a),
            bytes(&b),
            "{}: same seed must be byte-identical",
            profile.name()
        );
        assert_ne!(
            a,
            profile.schedule(43, 20_000),
            "{}: a different seed must diverge",
            profile.name()
        );
        firsts.push(a);
    }
    assert_ne!(firsts[0], firsts[1], "profiles must not alias one another");
    assert_ne!(firsts[1], firsts[2], "profiles must not alias one another");
}

/// The virtual-time replay is a pure function: two runs over the same
/// schedule produce identical decision logs and counters for every
/// overload policy, and the counters always conserve.
#[test]
fn des_replay_reproduces_admission_decisions_twice() {
    let arrivals = ArrivalProfile::Poisson { rate_hz: 200_000.0 }.schedule(7, 8_000);
    for policy in overload_policies() {
        let cfg = AdmissionConfig {
            inflight_cap: 8,
            queue_cap: 16,
            policy,
        };
        let a = run_des_load(&arrivals, 50_000, cfg);
        let b = run_des_load(&arrivals, 50_000, cfg);
        assert_eq!(a, b, "{}: replay must be deterministic", policy.name());
        assert!(
            a.counters.conserved(),
            "{}: {:?}",
            policy.name(),
            a.counters
        );
        assert_eq!(a.counters.generated, 8_000, "{}", policy.name());
        assert_eq!(a.completed, a.counters.admitted, "{}", policy.name());
    }
}

// ------------------------------------------------ histogram error bounds

/// Shared check: every reported quantile must sit at or above the exact
/// order statistic, by no more than one bucket width.
fn check_quantiles(h: &LatencyHistogram, exact: &mut [u64]) {
    exact.sort_unstable();
    for q in [0.5, 0.99, 0.999] {
        let rank = ((exact.len() - 1) as f64 * q).ceil() as usize;
        let truth = exact[rank];
        let approx = h.quantile(q);
        assert!(approx >= truth, "q{q}: approx {approx} < exact {truth}");
        assert!(
            approx - truth <= LatencyHistogram::bucket_width(truth),
            "q{q}: approx {approx} exceeds exact {truth} by more than one bucket"
        );
    }
}

proptest! {
    /// Bimodal mixtures with the modes up to four decades apart: the mass
    /// concentration at two distant magnitudes is the adversarial case
    /// for log-bucketed sketches, and the bound must still hold.
    #[test]
    fn histogram_bounds_error_on_bimodal_mixtures(
        seed in 0u64..1 << 32,
        low_mean in 1_000f64..50_000.0,
        separation in 100f64..10_000.0,
        low_frac in 0.05f64..0.95,
    ) {
        let mut rng = SimRng::new(seed);
        let high_mean = low_mean * separation;
        let mut h = LatencyHistogram::new();
        let mut exact = Vec::with_capacity(4_000);
        for _ in 0..4_000 {
            let mean = if rng.chance(low_frac) { low_mean } else { high_mean };
            let v = rng.exponential(mean) as u64;
            h.record(v);
            exact.push(v);
        }
        check_quantiles(&h, &mut exact);
    }

    /// Pareto heavy tails (shape under 2.5 keeps the tail genuinely
    /// heavy; under 1 even the mean diverges): extreme outliers land in
    /// the widest octave buckets, where the one-bucket bound is loosest.
    #[test]
    fn histogram_bounds_error_on_pareto_tails(
        seed in 0u64..1 << 32,
        alpha in 0.8f64..2.5,
        scale in 100f64..100_000.0,
    ) {
        let mut rng = SimRng::new(seed);
        let mut h = LatencyHistogram::new();
        let mut exact = Vec::with_capacity(4_000);
        for _ in 0..4_000 {
            let u = rng.uniform().max(1e-12);
            let v = (scale * u.powf(-1.0 / alpha)).min(1e18) as u64;
            h.record(v);
            exact.push(v);
        }
        check_quantiles(&h, &mut exact);
    }
}

// ----------------------------------------------------- conservation: native

/// Shared checks on a run's recorded admission events: counts must match
/// the counters exactly, and each shed/dropped buffer id must appear
/// exactly once (no double-lost tasks).
fn check_admission_events(
    label: &str,
    recorder: &Recorder,
    counters: anthill_repro::core::engine::AdmissionCounters,
) {
    let events = recorder.events();
    let admitted = count_events(&events, |k| matches!(k, EventKind::TaskAdmitted { .. }));
    assert_eq!(admitted, counters.admitted, "{label}: task_admitted events");
    let mut shed_ids: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::TaskShed { buffer, .. } => Some(buffer),
            _ => None,
        })
        .collect();
    assert_eq!(
        shed_ids.len() as u64,
        counters.shed,
        "{label}: exactly one task_shed event per shed task"
    );
    shed_ids.sort_unstable();
    shed_ids.dedup();
    assert_eq!(
        shed_ids.len() as u64,
        counters.shed,
        "{label}: shed buffer ids must be unique"
    );
    let mut dropped_ids: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::TaskDeadlineDropped { buffer, .. } => Some(buffer),
            _ => None,
        })
        .collect();
    assert_eq!(
        dropped_ids.len() as u64,
        counters.deadline_dropped,
        "{label}: exactly one task_deadline_dropped event per drop"
    );
    dropped_ids.sort_unstable();
    dropped_ids.dedup();
    assert_eq!(
        dropped_ids.len() as u64,
        counters.deadline_dropped,
        "{label}: dropped buffer ids must be unique"
    );
}

/// Native backend, every overload policy: a 2x-saturating schedule (two
/// emulated 200 µs workers against 20k arrivals/s) must conserve
/// `admitted + shed + deadline_dropped == generated`, complete exactly
/// the admitted tasks once each, and trace every loss exactly once.
#[test]
fn native_load_conserves_and_traces_every_policy() {
    let arrivals = ArrivalProfile::Poisson { rate_hz: 20_000.0 }.schedule(11, 1_200);
    for policy in overload_policies() {
        let label = policy.name();
        let recorder = Recorder::enabled();
        let mut p = Pipeline::new(PolicyKind::DdFcfs);
        p.add_stage(Arc::new(Forward), emulated_cpu_workers(2));
        let completed_ids: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let report = p.run_load(
            &arrivals,
            &|i, _| LocalTask::new(load_buffer(i, 200), ()),
            LoadConfig {
                admission: AdmissionConfig {
                    inflight_cap: 8,
                    queue_cap: 16,
                    policy,
                },
                sample_every: Duration::from_millis(1),
            },
            &oracle(),
            &recorder,
            &|t, _, _| completed_ids.lock().unwrap().push(t.buffer.task),
        );
        assert!(
            report.admission.conserved(),
            "{label}: {:?}",
            report.admission
        );
        assert_eq!(report.admission.generated, 1_200, "{label}");
        match policy {
            OverloadPolicy::Block => {
                assert_eq!(report.admission.admitted, 1_200, "{label}");
                assert_eq!(report.admission.shed, 0, "{label}");
                assert_eq!(report.admission.deadline_dropped, 0, "{label}");
            }
            OverloadPolicy::ShedOldest => {
                assert!(report.admission.shed > 0, "{label}: {:?}", report.admission);
                assert!(
                    report.queue_depth.iter().all(|s| s.intake <= 16),
                    "{label}: intake must stay under queue_cap"
                );
            }
            OverloadPolicy::DeadlineDrop { .. } => {
                assert!(
                    report.admission.deadline_dropped > 0,
                    "{label}: {:?}",
                    report.admission
                );
            }
        }
        assert_eq!(report.completed, report.admission.admitted, "{label}");
        let mut ids = completed_ids.into_inner().unwrap();
        assert_eq!(ids.len() as u64, report.completed, "{label}");
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len() as u64,
            report.completed,
            "{label}: each admitted task completes exactly once"
        );
        check_admission_events(label, &recorder, report.admission);
    }
}

// -------------------------------------------------------- conservation: net

/// Net backend, every overload policy: one deliberately slow loopback
/// worker (300 µs busy-wait per task) against 10k arrivals/s. The same
/// conservation, exactly-once, and bounded-intake guarantees must hold
/// through the TCP coordinator path.
#[test]
fn net_load_conserves_and_traces_every_policy() {
    for policy in overload_policies() {
        let label = policy.name();
        let workers = loopback_workers(&[DeviceKind::Cpu], Behavior::Busy { micros: 300 });
        let recorder = Recorder::enabled();
        let mut cfg = NetConfig::new(Policy::ddfcfs(4));
        cfg.recorder = recorder.clone();
        let arrivals = ArrivalProfile::Poisson { rate_hz: 10_000.0 }.schedule(13, 600);
        let mut ids: Vec<u64> = Vec::new();
        let report = run_concurrent_load(
            cfg,
            AdmissionConfig {
                inflight_cap: 4,
                queue_cap: 8,
                policy,
            },
            workers,
            &arrivals,
            &mut |i, _| load_buffer(i, 50),
            Duration::from_millis(1),
            oracle(),
            &mut |t| ids.push(t.buffer),
        )
        .expect("net load run");
        assert!(
            report.admission.conserved(),
            "{label}: {:?}",
            report.admission
        );
        assert_eq!(report.admission.generated, 600, "{label}");
        match policy {
            OverloadPolicy::Block => {
                assert_eq!(report.admission.admitted, 600, "{label}");
                assert_eq!(report.completed, 600, "{label}");
            }
            OverloadPolicy::ShedOldest => {
                assert!(report.admission.shed > 0, "{label}: {:?}", report.admission);
                assert!(
                    report.queue_depth.iter().all(|s| s.intake <= 8),
                    "{label}: intake must stay under queue_cap"
                );
            }
            OverloadPolicy::DeadlineDrop { .. } => {
                assert!(
                    report.admission.deadline_dropped > 0,
                    "{label}: {:?}",
                    report.admission
                );
            }
        }
        assert_eq!(report.completed, report.admission.admitted, "{label}");
        assert_eq!(ids.len() as u64, report.completed, "{label}");
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len() as u64,
            report.completed,
            "{label}: each admitted task completes exactly once"
        );
        check_admission_events(label, &recorder, report.admission);
    }
}
