//! Integration tests for the extensions beyond the paper's figures
//! (DESIGN.md §7): perturbation adaptivity, concurrent kernels, mixed GPU
//! generations, the model zoo, profile persistence, and the Virtual
//! Microscope application.

use anthill_repro::apps::vm::{run_queries, Query, Slide};
use anthill_repro::bench::experiments::{cluster, estimator, transfer};
use anthill_repro::core::local::{ExecMode, WorkerSpec};
use anthill_repro::core::policy::PolicyKind;
use anthill_repro::core::weights::OracleWeights;
use anthill_repro::estimator::persist;
use anthill_repro::hetsim::concurrent::ConcurrentGpu;
use anthill_repro::hetsim::{DeviceKind, GpuParams, NbiaCostModel};

#[test]
fn slow_node_hurts_odds_less_than_ddwrr() {
    let rows = cluster::perturb_slow_node(&[1.0, 0.25], 4_000);
    let odds_loss = rows[0].odds / rows[1].odds;
    let ddwrr_loss = rows[0].ddwrr / rows[1].ddwrr;
    assert!(
        odds_loss < ddwrr_loss,
        "odds loss {odds_loss:.2} !< ddwrr loss {ddwrr_loss:.2}"
    );
    assert!(rows[1].odds > rows[1].ddwrr);
}

#[test]
fn concurrent_kernels_approach_the_copy_bound() {
    // With enough slots the small-tile stream becomes copy/launch bound:
    // gains flatten rather than scale forever.
    let rows = transfer::concurrent_kernels(2_000, &[1, 8, 64]);
    let g8 = rows[0].exec_secs / rows[1].exec_secs;
    let g64 = rows[1].exec_secs / rows[2].exec_secs;
    assert!(g8 > 4.0, "8 slots gain {g8:.1}");
    assert!(g64 < g8, "gains must flatten: {g64:.1} vs {g8:.1}");
}

#[test]
fn concurrent_gpu_is_deterministic() {
    let tasks = vec![NbiaCostModel::paper_calibrated().tile(32); 500];
    let a = ConcurrentGpu::new(GpuParams::geforce_8800gt(), 4).run_stream(&tasks, 16);
    let b = ConcurrentGpu::new(GpuParams::geforce_8800gt(), 4).run_stream(&tasks, 16);
    assert_eq!(a, b);
}

#[test]
fn newer_gpu_generation_is_strictly_faster_on_transfers() {
    let old = GpuParams::geforce_8800gt();
    let new = GpuParams::gtx_280_class();
    let shape = NbiaCostModel::paper_calibrated().tile(512);
    let t_old = old.sync_task_time(shape.bytes_in, shape.gpu_kernel, shape.bytes_out);
    let t_new = new.sync_task_time(shape.bytes_in, shape.gpu_kernel, shape.bytes_out);
    assert!(t_new < t_old);
}

#[test]
fn model_zoo_orders_as_expected() {
    let rows = estimator::sweep_models(42);
    let by = |name: &str| {
        rows.iter()
            .find(|r| r.model.contains(name))
            .unwrap_or_else(|| panic!("missing model {name}"))
    };
    // The robust ordering: kNN variants are the accurate speedup
    // predictors and the data-independent constant assumption is far
    // worse (regression's exact rank varies with the sampled profiles).
    assert!(by("paper").speedup_err < by("regression").speedup_err);
    assert!(by("paper").speedup_err * 3.0 < by("constant").speedup_err);
    assert!(by("weighted").speedup_err <= by("paper").speedup_err * 1.2);
}

#[test]
fn bench_profiles_survive_persistence() {
    use anthill_repro::apps::bench_suite::BenchApp;
    for app in BenchApp::ALL {
        let store = app.generate_profile(3, 12);
        let text = persist::to_text(&store);
        let back = persist::from_text(&text).expect("round trip");
        assert_eq!(back.len(), store.len(), "{}", app.name());
        assert_eq!(back.app, store.app);
    }
}

#[test]
fn virtual_microscope_serves_overlapping_queries() {
    let slide = Slide {
        cols: 10,
        rows: 10,
        tile_side: 32,
        seed: 5,
    };
    // Two overlapping viewports: overlapping tiles are independent tasks
    // (the model replicates work rather than sharing reads).
    let queries = vec![
        Query {
            id: 0,
            col0: 0,
            row0: 0,
            width: 5,
            height: 5,
            zoom: 1,
        },
        Query {
            id: 1,
            col0: 3,
            row0: 3,
            width: 5,
            height: 5,
            zoom: 1,
        },
    ];
    let cpu = WorkerSpec {
        kind: DeviceKind::Cpu,
        mode: ExecMode::Native,
    };
    let (rendered, report) = run_queries(
        &slide,
        &queries,
        PolicyKind::DdWrr,
        vec![vec![cpu; 2], vec![cpu; 2], vec![cpu]],
        &OracleWeights::new(GpuParams::geforce_8800gt(), true),
    );
    assert_eq!(rendered.len(), 2);
    assert_eq!(report.total(), 50 * 3);
    assert!(rendered.iter().all(|r| r.tile_side == 16));
    assert!(rendered
        .iter()
        .all(|r| r.mean_luma > 0.0 && r.mean_luma < 255.0));
}
