//! Property suite for the event-loop connection state machine
//! (`anthill::net::conn`), driven through a scripted transport instead
//! of sockets: the script injects partial reads, short writes, and
//! `EAGAIN` (would-block) at seeded-random points, standing in for the
//! readiness orderings a real poller would produce.
//!
//! The invariant under test is the one the coordinator depends on: **no
//! frame is ever dropped or reordered**, on either direction, no matter
//! where the kernel pauses the byte stream. A fourth property checks the
//! fault-injection contract — a `sever_after` schedule lets exactly the
//! scheduled number of frames reach the wire, counting frames the
//! blocking handshake already sent.
//!
//! Set `NET_CODEC_HEAVY=1` to multiply the frames per case (the CI net
//! job does).

use std::collections::VecDeque;
use std::io::{self, IoSlice};

use proptest::prelude::*;

use anthill_repro::core::buffer::{BufferId, DataBuffer};
use anthill_repro::core::net::{
    encode_frame, BufPool, Conn, Frame, FrameDecoder, RawIo, ReadStatus,
};
use anthill_repro::estimator::{ParamValue, TaskParams};
use anthill_repro::hetsim::{DeviceKind, TaskShape};
use anthill_repro::simkit::SimDuration;

/// Frames per proptest case; heavy mode is what CI runs.
fn frames_per_case() -> u64 {
    if std::env::var_os("NET_CODEC_HEAVY").is_some() {
        48
    } else {
        8
    }
}

fn arb_buffer(rng: &mut TestRng) -> DataBuffer {
    let n = rng.below(4) as usize;
    let values = (0..n)
        .map(|_| {
            if rng.below(2) == 0 {
                ParamValue::Num(rng.next_f64() * 1e6)
            } else {
                ParamValue::Cat("x".repeat(rng.below(20) as usize))
            }
        })
        .collect();
    DataBuffer {
        id: BufferId(rng.next_u64()),
        params: TaskParams::new(values),
        shape: TaskShape {
            cpu: SimDuration(rng.below(1 << 40)),
            gpu_kernel: SimDuration(rng.below(1 << 40)),
            bytes_in: rng.below(1 << 32),
            bytes_out: rng.below(1 << 32),
        },
        level: rng.below(256) as u8,
        task: rng.next_u64(),
    }
}

/// A size-diverse frame mix: tiny control frames next to multi-KiB
/// deliveries, so short writes land mid-header and mid-payload alike.
fn arb_frame(rng: &mut TestRng) -> Frame {
    match rng.below(5) {
        0 => Frame::Heartbeat {
            seq: rng.next_u64(),
        },
        1 => Frame::Request {
            reader: rng.below(1 << 16) as u32,
            req_id: rng.next_u64(),
        },
        2 => Frame::Deliver {
            kind: if rng.below(2) == 0 {
                DeviceKind::Cpu
            } else {
                DeviceKind::Gpu
            },
            buffers: (0..rng.below(4)).map(|_| arb_buffer(rng)).collect(),
        },
        3 => Frame::JoinRejected {
            reason: "r".repeat(rng.below(64) as usize),
        },
        _ => Frame::BatchDone,
    }
}

enum ReadStep {
    Data(Vec<u8>),
    Block,
    Eof,
}

enum WriteStep {
    Accept(usize),
    Block,
}

/// Scripted transport: reads follow a step list; each `writev` call pops
/// a byte cap (or blocks), capturing exactly where the kernel "stopped".
#[derive(Default)]
struct ScriptedIo {
    reads: VecDeque<ReadStep>,
    write_steps: VecDeque<WriteStep>,
    wrote: Vec<u8>,
    shutdowns: u32,
}

impl RawIo for ScriptedIo {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.reads.pop_front() {
            Some(ReadStep::Data(d)) => {
                let n = d.len().min(buf.len());
                buf[..n].copy_from_slice(&d[..n]);
                if n < d.len() {
                    self.reads.push_front(ReadStep::Data(d[n..].to_vec()));
                }
                Ok(n)
            }
            Some(ReadStep::Block) | None => Err(io::Error::from(io::ErrorKind::WouldBlock)),
            Some(ReadStep::Eof) => Ok(0),
        }
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        let cap = match self.write_steps.pop_front() {
            Some(WriteStep::Accept(n)) => n,
            Some(WriteStep::Block) => return Err(io::Error::from(io::ErrorKind::WouldBlock)),
            None => usize::MAX,
        };
        let mut taken = 0;
        for b in bufs {
            if taken == cap {
                break;
            }
            let n = b.len().min(cap - taken);
            self.wrote.extend_from_slice(&b[..n]);
            taken += n;
            if n < b.len() {
                break;
            }
        }
        Ok(taken)
    }

    fn shutdown_both(&mut self) {
        self.shutdowns += 1;
    }
}

/// Chop `wire` into a randomized read script: variable chunk sizes with
/// would-block pauses sprinkled between (and therefore inside frames).
fn scripted_reads(rng: &mut TestRng, wire: &[u8]) -> VecDeque<ReadStep> {
    let mut steps = VecDeque::new();
    let mut rest = wire;
    while !rest.is_empty() {
        if rng.below(4) == 0 {
            steps.push_back(ReadStep::Block);
        }
        let n = (rng.below(53) as usize + 1).min(rest.len());
        let (head, tail) = rest.split_at(n);
        steps.push_back(ReadStep::Data(head.to_vec()));
        rest = tail;
    }
    if rng.below(4) == 0 {
        steps.push_back(ReadStep::Block);
    }
    steps.push_back(ReadStep::Eof);
    steps
}

fn decode_all(bytes: &[u8]) -> Vec<Frame> {
    let mut dec = FrameDecoder::new();
    dec.feed(bytes);
    let mut out = Vec::new();
    while let Some(f) = dec.next_frame().expect("valid wire bytes") {
        out.push(f);
    }
    out
}

proptest! {
    /// Write path: random interleavings of enqueue and flush against a
    /// transport that takes 1..64 bytes per call or blocks outright. The
    /// bytes that reach the wire decode to exactly the enqueued sequence.
    #[test]
    fn short_writes_never_drop_or_reorder(seed in 0u64..1 << 48) {
        let mut rng = TestRng::new(seed);
        let frames: Vec<Frame> = (0..frames_per_case()).map(|_| arb_frame(&mut rng)).collect();

        let mut conn = Conn::new(ScriptedIo::default(), FrameDecoder::new(), None, 0);
        let mut pool = BufPool::new();
        for f in &frames {
            conn.enqueue(f, &mut pool);
            // Sometimes flush immediately, sometimes batch several frames,
            // and each flush may hit a short write or EAGAIN mid-frame.
            if rng.below(3) > 0 {
                if rng.below(3) == 0 {
                    conn.io_mut().write_steps.push_back(WriteStep::Block);
                } else {
                    conn.io_mut()
                        .write_steps
                        .push_back(WriteStep::Accept(rng.below(64) as usize + 1));
                }
                conn.try_flush(&mut pool);
            }
        }
        // Final flushes with no caps left drain everything.
        while conn.wants_write() {
            conn.try_flush(&mut pool);
        }
        prop_assert!(conn.write_open());
        prop_assert_eq!(&decode_all(&conn.io_mut().wrote), &frames);
        prop_assert_eq!(conn.stats.tx_frames, frames.len() as u64);
    }

    /// Read path: the same wire stream arrives in random chunks with
    /// would-block pauses at arbitrary points (including mid-frame). The
    /// sink sees the exact frame sequence, all of it before `Closed`.
    #[test]
    fn partial_reads_never_drop_or_reorder(seed in 0u64..1 << 48) {
        let mut rng = TestRng::new(seed);
        let frames: Vec<Frame> = (0..frames_per_case()).map(|_| arb_frame(&mut rng)).collect();
        let wire: Vec<u8> = frames.iter().flat_map(encode_frame).collect();

        let io = ScriptedIo {
            reads: scripted_reads(&mut rng, &wire),
            ..ScriptedIo::default()
        };
        let mut conn = Conn::new(io, FrameDecoder::new(), None, 0);
        let mut sink = Vec::new();
        // Each drain_read models one readable event; blocks end the event.
        let mut events = 0;
        loop {
            events += 1;
            match conn.drain_read(&mut sink) {
                ReadStatus::Open => prop_assert!(events < 10_000, "reader livelock"),
                ReadStatus::Closed => break,
            }
        }
        prop_assert_eq!(&sink, &frames, "sink diverged from the wire order");
        prop_assert_eq!(conn.stats.rx_frames, frames.len() as u64);
        prop_assert_eq!(conn.stats.rx_bytes, wire.len() as u64);
        // Closed is terminal and idempotent.
        prop_assert_eq!(conn.drain_read(&mut sink), ReadStatus::Closed);
        prop_assert_eq!(sink.len(), frames.len());
    }

    /// Full duplex under random readiness orderings: one connection both
    /// sends and receives, with the scheduler (this loop) interleaving
    /// enqueue/flush/drain in seeded-random order. Neither direction may
    /// drop or reorder, and handshake-buffered frames surface first.
    #[test]
    fn duplex_random_readiness_preserves_both_streams(seed in 0u64..1 << 48) {
        let mut rng = TestRng::new(seed);
        let outbound: Vec<Frame> = (0..frames_per_case()).map(|_| arb_frame(&mut rng)).collect();
        let inbound: Vec<Frame> = (0..frames_per_case()).map(|_| arb_frame(&mut rng)).collect();
        let wire: Vec<u8> = inbound.iter().flat_map(encode_frame).collect();

        // The handshake read past its reply: the decoder starts with a
        // prefix of the inbound stream already buffered.
        let split = rng.below(wire.len() as u64 + 1) as usize;
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..split]);
        let io = ScriptedIo {
            reads: scripted_reads(&mut rng, &wire[split..]),
            ..ScriptedIo::default()
        };

        let mut conn = Conn::new(io, dec, None, 0);
        let mut pool = BufPool::new();
        let mut sink = Vec::new();
        let mut next_out = 0;
        let mut read_closed = false;
        while next_out < outbound.len() || conn.wants_write() || !read_closed {
            match rng.below(3) {
                0 if next_out < outbound.len() => {
                    conn.enqueue(&outbound[next_out], &mut pool);
                    next_out += 1;
                }
                1 => {
                    if rng.below(4) == 0 {
                        conn.io_mut().write_steps.push_back(WriteStep::Block);
                    } else if rng.below(2) == 0 {
                        conn.io_mut()
                            .write_steps
                            .push_back(WriteStep::Accept(rng.below(48) as usize + 1));
                    }
                    conn.try_flush(&mut pool);
                }
                _ => {
                    if conn.drain_read(&mut sink) == ReadStatus::Closed {
                        read_closed = true;
                    }
                }
            }
        }
        prop_assert_eq!(&decode_all(&conn.io_mut().wrote), &outbound, "outbound diverged");
        prop_assert_eq!(&sink, &inbound, "inbound diverged");
    }

    /// Fault injection stays frame-accurate on the non-blocking path: a
    /// `sever_after` schedule lets exactly `limit - handshake_frames`
    /// frames reach the wire (never more, even with enqueue/flush racing),
    /// then tears the transport down once the queue drains.
    #[test]
    fn sever_schedule_is_frame_accurate(seed in 0u64..1 << 48) {
        let mut rng = TestRng::new(seed);
        let total = frames_per_case() + rng.below(8);
        let handshake_frames = rng.below(4);
        let limit = handshake_frames + rng.below(total + 2);
        let frames: Vec<Frame> = (0..total).map(|_| arb_frame(&mut rng)).collect();

        let mut conn = Conn::new(
            ScriptedIo::default(),
            FrameDecoder::new(),
            Some(limit),
            handshake_frames,
        );
        let mut pool = BufPool::new();
        for f in &frames {
            conn.enqueue(f, &mut pool);
            if rng.below(2) == 0 {
                if rng.below(4) == 0 {
                    conn.io_mut().write_steps.push_back(WriteStep::Block);
                }
                conn.try_flush(&mut pool);
            }
        }
        while conn.wants_write() {
            conn.try_flush(&mut pool);
        }
        if conn.write_open() {
            conn.try_flush(&mut pool);
        }

        let expect = total.min(limit - handshake_frames) as usize;
        let wrote = decode_all(&conn.io_mut().wrote);
        prop_assert_eq!(&wrote[..], &frames[..expect], "sever let the wrong frames through");
        if expect < total as usize {
            prop_assert!(!conn.write_open(), "over-limit enqueue must sever");
            prop_assert_eq!(conn.io_mut().shutdowns, 1);
        } else {
            prop_assert!(conn.write_open(), "under-limit schedule must not sever");
        }
    }
}
