//! Cross-backend consistency: the native threaded runtime and the
//! virtual-time simulator implement the same model, so task accounting
//! must agree, and each backend must be internally reproducible.

use std::collections::HashSet;

use anthill_repro::apps::nbia::{run_local, NbiaLocalConfig};
use anthill_repro::core::local::{ExecMode, WorkerSpec};
use anthill_repro::core::policy::{Policy, PolicyKind};
use anthill_repro::core::sim::{run_nbia, SimConfig, WorkloadSpec};
use anthill_repro::core::weights::OracleWeights;
use anthill_repro::hetsim::{ClusterSpec, DeviceKind, GpuParams};

fn local_config(policy: PolicyKind) -> NbiaLocalConfig {
    NbiaLocalConfig {
        tiles: 36,
        low_side: 32,
        high_side: 64,
        confidence_threshold: 0.88,
        seed: 7,
        policy,
        workers: vec![
            WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Native,
            },
            WorkerSpec {
                kind: DeviceKind::Gpu,
                mode: ExecMode::Emulated { scale: 1e-4 },
            },
        ],
    }
}

#[test]
fn local_runtime_classifies_every_tile_once_under_each_policy() {
    for policy in [PolicyKind::DdFcfs, PolicyKind::DdWrr] {
        let (results, _) = run_local(
            &local_config(policy),
            &OracleWeights::new(GpuParams::geforce_8800gt(), true),
        );
        assert_eq!(results.len(), 36, "{policy:?}");
        let tiles: HashSet<u64> = results.iter().map(|r| r.tile).collect();
        assert_eq!(tiles.len(), 36, "{policy:?}: duplicate classifications");
    }
}

#[test]
fn local_results_are_schedule_independent() {
    // The *classification outcome* per tile must not depend on the
    // scheduling policy — only performance may change.
    let w = OracleWeights::new(GpuParams::geforce_8800gt(), true);
    let (a, _) = run_local(&local_config(PolicyKind::DdFcfs), &w);
    let (b, _) = run_local(&local_config(PolicyKind::DdWrr), &w);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.tile, y.tile);
        assert_eq!(x.predicted, y.predicted, "tile {}", x.tile);
        assert_eq!(x.level, y.level, "tile {}", x.tile);
    }
}

#[test]
fn simulator_is_bit_deterministic() {
    let w = WorkloadSpec {
        tiles: 1_500,
        ..WorkloadSpec::paper_base(0.12)
    };
    let cfg = SimConfig::new(ClusterSpec::heterogeneous(1, 1), Policy::odds());
    let a = run_nbia(&cfg, &w);
    let b = run_nbia(&cfg, &w);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.tasks_by, b.tasks_by);
    assert_eq!(a.total_tasks, b.total_tasks);
}

#[test]
fn simulator_task_accounting_is_conserved_across_policies_and_clusters() {
    let w = WorkloadSpec {
        tiles: 1_200,
        ..WorkloadSpec::paper_base(0.10)
    };
    for cluster in [
        ClusterSpec::homogeneous(2),
        ClusterSpec::heterogeneous(2, 1),
    ] {
        for policy in [Policy::ddfcfs(4), Policy::ddwrr(16), Policy::odds()] {
            let r = run_nbia(&SimConfig::new(cluster.clone(), policy), &w);
            assert_eq!(r.total_tasks, w.total_buffers());
            let low: u64 = DeviceKind::ALL.iter().map(|&k| r.tasks(k, 0)).sum();
            let high: u64 = DeviceKind::ALL.iter().map(|&k| r.tasks(k, 1)).sum();
            assert_eq!(low, w.tiles);
            assert_eq!(high, w.recalc_count());
        }
    }
}

#[test]
fn estimator_and_oracle_weights_agree_on_routing() {
    // The kNN estimator has ~8% error; the paper argues that is enough
    // because only the task *ordering* matters. Verify: estimator-weighted
    // runs route tiles like oracle-weighted runs.
    let w = WorkloadSpec {
        tiles: 2_000,
        ..WorkloadSpec::paper_base(0.10)
    };
    let mut est = SimConfig::new(ClusterSpec::homogeneous(1), Policy::ddwrr(30));
    est.use_estimator = true;
    let mut oracle = est.clone();
    oracle.use_estimator = false;
    let re = run_nbia(&est, &w);
    let ro = run_nbia(&oracle, &w);
    let diff = (re.share_pct(DeviceKind::Gpu, 1) - ro.share_pct(DeviceKind::Gpu, 1)).abs();
    assert!(diff < 10.0, "routing diverged by {diff} points");
    let perf = re.speedup() / ro.speedup();
    assert!((0.9..1.1).contains(&perf), "perf ratio {perf}");
}
