//! Property suite for the TCP backend's wire codec (`anthill::net::frame`).
//!
//! Three invariants, each driven by seeded random frame streams:
//!
//! 1. **Round trip** — any sequence of well-formed frames encodes to
//!    bytes that decode back to the identical sequence.
//! 2. **Reassembly** — the decoder is agnostic to how the byte stream is
//!    chopped up: whole-buffer, 1-byte drip, and random-sized chunks all
//!    pop the same frames in the same order.
//! 3. **Corruption** — a corrupt header (bad magic, unknown tag,
//!    oversized length) is rejected as soon as its six bytes arrive,
//!    before any payload is buffered.
//!
//! Set `NET_CODEC_HEAVY=1` to multiply the frames generated per case
//! (the CI net job does); the default keeps the suite fast locally.

use std::sync::Arc;

use proptest::prelude::*;

use anthill_repro::core::buffer::{BufferId, DataBuffer};
use anthill_repro::core::net::{
    encode_deliver_at_into, encode_deliver_into, encode_frame, encode_frame_into, Frame,
    FrameDecoder, FrameError, WireSpan,
};
use anthill_repro::estimator::{ParamValue, TaskParams};
use anthill_repro::hetsim::{DeviceKind, TaskShape};
use anthill_repro::simkit::SimDuration;

/// Frames generated per proptest case; the heavy setting is what CI runs.
fn frames_per_case() -> u64 {
    if std::env::var_os("NET_CODEC_HEAVY").is_some() {
        48
    } else {
        6
    }
}

fn arb_string(rng: &mut TestRng) -> String {
    let len = rng.below(12) as usize;
    let mut s = String::new();
    for _ in 0..len {
        // Mostly ASCII, sometimes multibyte, so UTF-8 length handling is
        // exercised on both sides of the boundary.
        if rng.below(8) == 0 {
            s.push(['µ', 'é', '漢', '∞'][rng.below(4) as usize]);
        } else {
            s.push(char::from(b'a' + rng.below(26) as u8));
        }
    }
    s
}

fn arb_params(rng: &mut TestRng) -> TaskParams {
    let n = rng.below(5) as usize;
    let values = (0..n)
        .map(|_| {
            if rng.below(2) == 0 {
                // Finite by construction: NaN would round-trip bitwise but
                // break the `PartialEq` the assertions rely on.
                ParamValue::Num(rng.next_f64() * 2e6 - 1e6)
            } else {
                ParamValue::Cat(arb_string(rng))
            }
        })
        .collect();
    TaskParams::new(values)
}

fn arb_buffer(rng: &mut TestRng) -> DataBuffer {
    DataBuffer {
        id: BufferId(rng.next_u64()),
        params: arb_params(rng),
        shape: TaskShape {
            cpu: SimDuration(rng.below(1 << 40)),
            gpu_kernel: SimDuration(rng.below(1 << 40)),
            bytes_in: rng.below(1 << 32),
            bytes_out: rng.below(1 << 32),
        },
        level: rng.below(256) as u8,
        task: rng.next_u64(),
    }
}

fn arb_kind(rng: &mut TestRng) -> DeviceKind {
    if rng.below(2) == 0 {
        DeviceKind::Cpu
    } else {
        DeviceKind::Gpu
    }
}

fn arb_buffers(rng: &mut TestRng, max: u64) -> Vec<DataBuffer> {
    (0..rng.below(max + 1)).map(|_| arb_buffer(rng)).collect()
}

fn arb_frame(rng: &mut TestRng) -> Frame {
    match rng.below(11) {
        0 => Frame::Hello {
            node: rng.below(1 << 16) as u32,
            slot: rng.below(1 << 16) as u32,
        },
        1 => Frame::Request {
            reader: rng.below(1 << 16) as u32,
            req_id: rng.next_u64(),
        },
        2 => Frame::Deliver {
            kind: arb_kind(rng),
            buffers: arb_buffers(rng, 3),
        },
        3 => Frame::Complete {
            buffer: arb_buffer(rng),
            proc_ns: rng.next_u64(),
            span: WireSpan {
                start_ns: rng.next_u64(),
                end_ns: rng.next_u64(),
            },
            recirculated: arb_buffers(rng, 2),
        },
        4 => Frame::BatchDone,
        5 => Frame::Heartbeat {
            seq: rng.next_u64(),
        },
        6 => Frame::Shutdown,
        7 => Frame::Bye,
        8 => Frame::Join {
            node: rng.below(1 << 16) as u32,
            kind: arb_kind(rng),
        },
        9 => Frame::JoinAck {
            node: rng.below(1 << 16) as u32,
            slot: rng.below(1 << 16) as u32,
        },
        _ => Frame::JoinRejected {
            reason: arb_string(rng),
        },
    }
}

/// Drain every complete frame the decoder currently holds.
fn drain(dec: &mut FrameDecoder) -> Vec<Frame> {
    let mut out = Vec::new();
    while let Some(frame) = dec.next_frame().expect("well-formed stream") {
        out.push(frame);
    }
    out
}

proptest! {
    /// Any frame sequence round-trips through one contiguous byte feed.
    #[test]
    fn arbitrary_frames_round_trip(seed in 0u64..1 << 48) {
        let mut rng = TestRng::new(seed);
        let frames: Vec<Frame> = (0..frames_per_case()).map(|_| arb_frame(&mut rng)).collect();
        let bytes: Vec<u8> = frames.iter().flat_map(encode_frame).collect();

        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let decoded = drain(&mut dec);
        prop_assert_eq!(&decoded, &frames);
        prop_assert_eq!(dec.pending(), 0, "no bytes left over");
    }

    /// The same stream fed one byte at a time, and again in random-sized
    /// chunks, pops the identical frame sequence — mid-feed pops included,
    /// exactly as a socket read loop would interleave them.
    #[test]
    fn split_and_coalesced_feeds_reassemble(seed in 0u64..1 << 48) {
        let mut rng = TestRng::new(seed);
        let frames: Vec<Frame> = (0..frames_per_case()).map(|_| arb_frame(&mut rng)).collect();
        let bytes: Vec<u8> = frames.iter().flat_map(encode_frame).collect();

        let mut drip = FrameDecoder::new();
        let mut dripped = Vec::new();
        for &b in &bytes {
            drip.feed(&[b]);
            dripped.extend(drain(&mut drip));
        }
        prop_assert_eq!(&dripped, &frames, "1-byte drip diverged");

        let mut chunked = FrameDecoder::new();
        let mut chunks = Vec::new();
        let mut rest = bytes.as_slice();
        while !rest.is_empty() {
            let n = (rng.below(97) as usize + 1).min(rest.len());
            let (head, tail) = rest.split_at(n);
            chunked.feed(head);
            chunks.extend(drain(&mut chunked));
            rest = tail;
        }
        prop_assert_eq!(&chunks, &frames, "random chunking diverged");
        prop_assert_eq!(drip.pending() + chunked.pending(), 0);
    }

    /// A corrupt header is rejected from its six bytes alone — wrong
    /// magic, unknown tag, or an oversized length claim — even when the
    /// corruption hides after a run of valid frames.
    #[test]
    fn corrupt_headers_are_rejected(seed in 0u64..1 << 48) {
        let mut rng = TestRng::new(seed);
        let prefix: Vec<u8> = (0..rng.below(4))
            .map(|_| arb_frame(&mut rng))
            .flat_map(|f| encode_frame(&f))
            .collect();

        let bad_magic = {
            let mut b = rng.next_u64() as u8;
            if b == anthill_repro::core::net::frame::MAGIC {
                b = !b;
            }
            b
        };
        // Tag 0 and anything above MAX_TAG (13, the membership
        // JoinRejected frame) are outside the protocol.
        let bad_tag = [0u8, 14, 0xFF][rng.below(3) as usize];
        let oversize = anthill_repro::core::net::frame::MAX_FRAME + 1 + rng.below(1 << 20) as u32;

        let corrupt_header = |header: [u8; 6], want: FrameError| {
            let mut dec = FrameDecoder::new();
            dec.feed(&prefix);
            dec.feed(&header);
            let mut err = None;
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            prop_assert_eq!(err, Some(want), "header {:?}", header);
        };

        let magic = anthill_repro::core::net::frame::MAGIC;
        corrupt_header([bad_magic, 1, 0, 0, 0, 0], FrameError::BadMagic(bad_magic));
        corrupt_header([magic, bad_tag, 0, 0, 0, 0], FrameError::BadTag(bad_tag));
        let len = oversize.to_le_bytes();
        corrupt_header(
            [magic, 3, len[0], len[1], len[2], len[3]],
            FrameError::Oversize(oversize),
        );
    }

    /// `encode_frame_into` appended to one scratch buffer is byte-identical
    /// to concatenated `encode_frame` calls, and the borrowed-buffer
    /// `Deliver`/`DeliverAt` encoders produce the same bytes from
    /// `Arc<DataBuffer>`s as the owned frame — the event loop's zero-copy
    /// path cannot diverge from the wire format.
    #[test]
    fn encode_into_is_byte_identical(seed in 0u64..1 << 48) {
        let mut rng = TestRng::new(seed);
        let frames: Vec<Frame> = (0..frames_per_case()).map(|_| arb_frame(&mut rng)).collect();
        let reference: Vec<u8> = frames.iter().flat_map(encode_frame).collect();
        let mut scratch = Vec::new();
        for f in &frames {
            encode_frame_into(&mut scratch, f);
        }
        prop_assert_eq!(&scratch, &reference);

        let kind = arb_kind(&mut rng);
        let buffers = arb_buffers(&mut rng, 4);
        let shared: Vec<Arc<DataBuffer>> = buffers.iter().cloned().map(Arc::new).collect();
        let mut borrowed = Vec::new();
        encode_deliver_into(&mut borrowed, kind, &shared);
        prop_assert_eq!(
            &borrowed,
            &encode_frame(&Frame::Deliver { kind, buffers: buffers.clone() })
        );
        let filter = rng.below(1 << 16) as u32;
        let mut borrowed_at = Vec::new();
        encode_deliver_at_into(&mut borrowed_at, filter, kind, &shared);
        prop_assert_eq!(
            &borrowed_at,
            &encode_frame(&Frame::DeliverAt { filter, kind, buffers })
        );
    }

    /// Vectored-write reassembly: frames coalesced into a few queue
    /// buffers (as the event loop's write queue does), then emitted in
    /// iovec order chopped at arbitrary short-write boundaries, decode
    /// back to the identical sequence.
    #[test]
    fn vectored_write_chunks_reassemble(seed in 0u64..1 << 48) {
        let mut rng = TestRng::new(seed);
        let frames: Vec<Frame> = (0..frames_per_case()).map(|_| arb_frame(&mut rng)).collect();

        // Coalesce into iovec buffers: each frame appends to the current
        // buffer, sometimes starting a fresh one (random batch edges).
        let mut iovecs: Vec<Vec<u8>> = vec![Vec::new()];
        for f in &frames {
            if rng.below(3) == 0 && !iovecs.last().unwrap().is_empty() {
                iovecs.push(Vec::new());
            }
            encode_frame_into(iovecs.last_mut().unwrap(), f);
        }

        // A short write can stop anywhere, including mid-header and
        // mid-iovec; the receiver just sees the byte stream.
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        for buf in &iovecs {
            let mut rest = buf.as_slice();
            while !rest.is_empty() {
                let n = (rng.below(61) as usize + 1).min(rest.len());
                let (head, tail) = rest.split_at(n);
                dec.feed(head);
                decoded.extend(drain(&mut dec));
                rest = tail;
            }
        }
        prop_assert_eq!(&decoded, &frames);
        prop_assert_eq!(dec.pending(), 0);
    }
}
