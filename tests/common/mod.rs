//! Scaffolding shared by the integration-test suites
//! (`tests/{chaos,policy_parity,hotpath}.rs`): device-neutral
//! task shapes, conventional policy windows, worker-spec builders, and
//! loopback plumbing for the TCP backend. Each test binary compiles its
//! own copy and uses a subset, hence the blanket `dead_code` allow.
#![allow(dead_code)]

use anthill_repro::core::buffer::{BufferId, DataBuffer};
use anthill_repro::core::graph::DataflowGraph;
use anthill_repro::core::local::{Emitter, ExecMode, LocalFilter, LocalTask, WorkerSpec};
use anthill_repro::core::net::{spawn_worker_thread, tcp_pair, Behavior, NetWorkerConn};
use anthill_repro::core::obs::{EventKind, TraceEvent};
use anthill_repro::core::policy::Policy;
use anthill_repro::core::weights::OracleWeights;
use anthill_repro::estimator::TaskParams;
use anthill_repro::hetsim::{DeviceId, DeviceKind, GpuParams, TaskShape};
use anthill_repro::simkit::{SimDuration, SimTime};

/// A shape costing exactly the same on both device classes, with nothing
/// on the wire — removes all cost asymmetry so assignment counts are
/// purely the engine's doing.
pub fn neutral_shape() -> TaskShape {
    TaskShape {
        cpu: SimDuration::from_micros(400),
        gpu_kernel: SimDuration::from_micros(400),
        bytes_in: 0,
        bytes_out: 0,
    }
}

/// GPU parameters with all fixed per-task overheads zeroed, so a sync GPU
/// task takes exactly `gpu_kernel`.
pub fn neutral_gpu() -> GpuParams {
    GpuParams {
        kernel_launch: SimDuration::ZERO,
        sync_copy_call: SimDuration::ZERO,
        ..GpuParams::geforce_8800gt()
    }
}

/// The paper GPU with synchronous transfers — the weights most tests use.
pub fn oracle() -> OracleWeights {
    OracleWeights::new(GpuParams::geforce_8800gt(), false)
}

/// Weights matching [`neutral_gpu`], for runs built on [`neutral_shape`].
pub fn neutral_oracle() -> OracleWeights {
    OracleWeights::new(neutral_gpu(), false)
}

/// The three policies at the repo's conventional window sizes
/// (`crates/bench/src/experiments/cluster.rs`).
pub fn policies() -> [Policy; 3] {
    [Policy::ddfcfs(8), Policy::ddwrr(30), Policy::odds()]
}

pub fn pick_policy(i: usize) -> Policy {
    policies()[i % 3]
}

/// A tiny task whose payload is its own id — the chaos suite's unit of
/// conservation accounting.
pub fn task(id: u64) -> LocalTask {
    let buffer = DataBuffer {
        id: BufferId(id),
        params: TaskParams::nums(&[id as f64]),
        shape: TaskShape {
            cpu: SimDuration::from_micros(5),
            gpu_kernel: SimDuration::from_micros(5),
            bytes_in: 64,
            bytes_out: 8,
        },
        level: 0,
        task: id,
    };
    LocalTask::new(buffer, id)
}

/// Mixed tile sizes so DDWRR/ODDS weights have real spread.
pub fn mk_task(id: u64) -> LocalTask {
    let side = [16u64, 64, 256, 1024][(id % 4) as usize];
    LocalTask::new(
        DataBuffer {
            id: BufferId(id),
            params: TaskParams::nums(&[id as f64]),
            shape: TaskShape {
                cpu: SimDuration::from_micros(side),
                gpu_kernel: SimDuration::from_micros(side / 8 + 1),
                bytes_in: side * side,
                bytes_out: side,
            },
            level: 0,
            task: id,
        },
        id,
    )
}

/// The degenerate one-filter graph — the shape every pre-graph test ran,
/// named like the implicit graph the native runtime builds.
pub fn single_filter_graph() -> DataflowGraph {
    DataflowGraph::single("stage0")
}

/// A three-filter linear pipeline with round-robin streams, the smallest
/// topology where mid-graph edges exist.
pub fn pipeline3() -> DataflowGraph {
    DataflowGraph::pipeline(&["stage0", "stage1", "stage2"])
}

/// The fan-out/fan-in diamond: split round-robins over two identical
/// branches that merge again.
pub fn diamond() -> DataflowGraph {
    DataflowGraph::diamond("split", "left", "right", "merge")
}

/// A device-neutral buffer ([`neutral_shape`]) whose payload is its own
/// id — the graph parity suites' unit of accounting.
pub fn neutral_buffer(id: u64) -> DataBuffer {
    DataBuffer {
        id: BufferId(id),
        params: TaskParams::nums(&[id as f64]),
        shape: neutral_shape(),
        level: 0,
        task: id,
    }
}

/// One CPU plus one GPU native worker slot — the per-filter replica set
/// of the cross-backend graph parity runs.
pub fn cpu_gpu_workers() -> Vec<WorkerSpec> {
    vec![
        WorkerSpec {
            kind: DeviceKind::Cpu,
            mode: ExecMode::Native,
        },
        WorkerSpec {
            kind: DeviceKind::Gpu,
            mode: ExecMode::Native,
        },
    ]
}

pub fn cpu_workers(n: usize) -> Vec<WorkerSpec> {
    vec![
        WorkerSpec {
            kind: DeviceKind::Cpu,
            mode: ExecMode::Native,
        };
        n
    ]
}

pub fn mixed_workers() -> Vec<WorkerSpec> {
    let mut w = cpu_workers(3);
    w.push(WorkerSpec {
        kind: DeviceKind::Gpu,
        mode: ExecMode::Native,
    });
    w
}

/// One in-process loopback worker thread per requested device kind, all
/// on node 0, returning the coordinator-side connections for
/// `anthill::net`'s drivers.
pub fn loopback_workers(kinds: &[DeviceKind], behavior: Behavior) -> Vec<NetWorkerConn> {
    kinds
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let (coordinator, worker_side) = tcp_pair().expect("loopback socket pair");
            spawn_worker_thread(worker_side, behavior);
            NetWorkerConn {
                device: DeviceId {
                    node: 0,
                    kind,
                    index: i,
                },
                stream: coordinator,
            }
        })
        .collect()
}

/// [`loopback_workers`] generalized to a whole graph: one in-process
/// loopback worker thread per `(filter, device kind)` pair, with
/// `DeviceId::node` carrying the filter id — the worker pool shape
/// `anthill::net::run_graph_deterministic` expects.
pub fn graph_loopback_workers(
    filters: &[&[DeviceKind]],
    behavior: Behavior,
) -> Vec<Vec<NetWorkerConn>> {
    filters
        .iter()
        .enumerate()
        .map(|(f, kinds)| {
            kinds
                .iter()
                .enumerate()
                .map(|(i, &kind)| {
                    let (coordinator, worker_side) = tcp_pair().expect("loopback socket pair");
                    spawn_worker_thread(worker_side, behavior);
                    NetWorkerConn {
                        device: DeviceId {
                            node: f,
                            kind,
                            index: i,
                        },
                        stream: coordinator,
                    }
                })
                .collect()
        })
        .collect()
}

/// Keep `SimTime` in the shared surface so suites that schedule deaths
/// don't each re-import it under a different alias.
pub fn at_millis(ms: u64) -> SimTime {
    SimTime(ms * 1_000_000)
}

/// Forwards every task untouched — the stage body for open-loop load
/// runs, where measured latency should be queueing plus runtime overhead
/// (plus the emulated busy-wait when the workers are
/// [`emulated_cpu_workers`]).
pub struct Forward;
impl LocalFilter for Forward {
    fn handle(&self, _d: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
        out.forward(task);
    }
}

/// `n` CPU slots that busy-wait each task's modeled cost at scale 1 — a
/// calibrated, shape-controlled service time for saturation tests.
pub fn emulated_cpu_workers(n: usize) -> Vec<WorkerSpec> {
    vec![
        WorkerSpec {
            kind: DeviceKind::Cpu,
            mode: ExecMode::Emulated { scale: 1.0 },
        };
        n
    ]
}

/// A constant-cost buffer for load schedules: `micros` of modeled work on
/// either device class, the arrival index recoverable through `task`.
pub fn load_buffer(id: u64, micros: u64) -> DataBuffer {
    DataBuffer {
        id: BufferId(id),
        params: TaskParams::nums(&[1.0]),
        shape: TaskShape {
            cpu: SimDuration::from_micros(micros),
            gpu_kernel: SimDuration::from_micros(micros),
            bytes_in: 0,
            bytes_out: 0,
        },
        level: 0,
        task: id,
    }
}

/// Count trace events matching `pred`.
pub fn count_events(events: &[TraceEvent], pred: fn(&EventKind) -> bool) -> u64 {
    events.iter().filter(|e| pred(&e.kind)).count() as u64
}
