//! Cross-backend policy parity: the scheduling engine is the single owner
//! of every policy decision, so pushing the *same* deterministic workload
//! through three different drivers — the virtual-time DES, the native
//! runtime's deterministic executor, and the TCP backend's lockstep
//! coordinator with real worker sockets — must yield *identical*
//! per-device assignment counts for every policy.
//!
//! Construction: a device-neutral workload (every task costs exactly the
//! same on a CPU as on a sync GPU, zero bytes on the wire) removes all
//! cost asymmetry, so the counts are purely the engine's doing; any
//! divergence means a backend grew its own scheduling logic.

mod common;

use std::collections::HashMap;
use std::sync::Arc;

use common::{loopback_workers, neutral_gpu, neutral_oracle, neutral_shape};

use anthill_repro::core::local::{Emitter, ExecMode, LocalFilter, LocalTask, Pipeline, WorkerSpec};
use anthill_repro::core::net::{run_deterministic, Behavior, NetConfig};
use anthill_repro::core::policy::Policy;
use anthill_repro::core::sim::{run_nbia, SimConfig, WorkloadSpec};
use anthill_repro::core::weights::OracleWeights;
use anthill_repro::hetsim::{ClusterSpec, DeviceKind, NodeSpec};

const TILES: u64 = 120;

fn neutral_workload() -> WorkloadSpec {
    WorkloadSpec {
        tiles: TILES,
        recalc_rate: 0.0,
        shapes: Some((neutral_shape(), neutral_shape())),
        ..WorkloadSpec::paper_base(0.0)
    }
}

/// Per-device assignment counts from the DES backend.
fn des_counts(policy: Policy) -> HashMap<DeviceKind, u64> {
    let w = neutral_workload();
    let mut cfg = SimConfig::new(
        ClusterSpec::new(vec![NodeSpec {
            cpu_cores: 1,
            gpus: 1,
        }]),
        policy,
    );
    cfg.gpu = neutral_gpu();
    cfg.async_transfers = false;
    cfg.use_estimator = false;
    let report = run_nbia(&cfg, &w);
    assert_eq!(report.total_tasks, TILES);
    let mut counts = HashMap::new();
    for (&(kind, _level), &n) in &report.tasks_by {
        *counts.entry(kind).or_insert(0) += n;
    }
    counts
}

/// Forwards tasks unchanged.
struct Identity;
impl LocalFilter for Identity {
    fn handle(&self, _d: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
        out.forward(task);
    }
}

/// Per-device assignment counts from the native runtime's deterministic
/// executor, fed the same buffers the DES seeds its readers with.
fn native_counts(policy: Policy) -> HashMap<DeviceKind, u64> {
    let w = neutral_workload();
    let sources: Vec<LocalTask> = (0..TILES)
        .map(|t| LocalTask::new(w.low_buffer(t), ()))
        .collect();
    let mut p = Pipeline::new(policy.kind).with_request_window(policy.request_size);
    p.add_stage(
        Arc::new(Identity),
        vec![
            WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Native,
            },
            WorkerSpec {
                kind: DeviceKind::Gpu,
                mode: ExecMode::Native,
            },
        ],
    );
    let weights = OracleWeights::new(neutral_gpu(), false);
    let (out, report) = p.run_deterministic(sources, &weights);
    assert_eq!(out.len() as u64, TILES);
    let mut counts = HashMap::new();
    for (&(_stage, kind, _level), &n) in &report.handled {
        *counts.entry(kind).or_insert(0) += n;
    }
    counts
}

/// Per-device assignment counts from the TCP backend's lockstep
/// coordinator, driving one CPU and one GPU worker thread over real
/// loopback sockets — fed the same buffers the DES seeds its readers
/// with.
fn net_counts(policy: Policy) -> HashMap<DeviceKind, u64> {
    let w = neutral_workload();
    let sources = (0..TILES).map(|t| w.low_buffer(t)).collect();
    let workers = loopback_workers(&[DeviceKind::Cpu, DeviceKind::Gpu], Behavior::Identity);
    let out = run_deterministic(NetConfig::new(policy), workers, sources, neutral_oracle())
        .expect("loopback net run");
    assert_eq!(out.total, TILES);
    let mut counts = HashMap::new();
    for (&(kind, _node), &n) in &out.assigned {
        *counts.entry(kind).or_insert(0) += n;
    }
    counts
}

fn assert_parity(policy: Policy, name: &str) {
    let des = des_counts(policy);
    let native = native_counts(policy);
    let net = net_counts(policy);
    assert_eq!(
        des, native,
        "{name}: DES and native drivers assigned devices differently"
    );
    assert_eq!(
        des, net,
        "{name}: DES and TCP drivers assigned devices differently"
    );
    let total: u64 = des.values().sum();
    assert_eq!(total, TILES, "{name}: tasks lost or duplicated");
}

#[test]
fn ddfcfs_assignments_match_across_backends() {
    assert_parity(Policy::ddfcfs(4), "DDFCFS");
}

#[test]
fn ddwrr_assignments_match_across_backends() {
    assert_parity(Policy::ddwrr(4), "DDWRR");
}

#[test]
fn odds_assignments_match_across_backends() {
    assert_parity(Policy::odds(), "ODDS");
}

#[test]
fn parity_counts_are_reproducible() {
    for policy in [Policy::ddfcfs(4), Policy::ddwrr(4), Policy::odds()] {
        assert_eq!(des_counts(policy), des_counts(policy));
        assert_eq!(native_counts(policy), native_counts(policy));
        assert_eq!(net_counts(policy), net_counts(policy));
    }
}
