//! Cross-backend policy parity: the scheduling engine is the single owner
//! of every policy decision, so pushing the *same* deterministic workload
//! through three different drivers — the virtual-time DES, the native
//! runtime's deterministic executor, and the TCP backend's lockstep
//! coordinator with real worker sockets — must yield *identical*
//! per-device assignment counts for every policy.
//!
//! Construction: a device-neutral workload (every task costs exactly the
//! same on a CPU as on a sync GPU, zero bytes on the wire) removes all
//! cost asymmetry, so the counts are purely the engine's doing; any
//! divergence means a backend grew its own scheduling logic.
//!
//! The second half extends the same contract to *dataflow graphs*: a
//! three-filter pipeline and a fan-out/fan-in diamond, each filter
//! replicated over one CPU and one GPU, must produce identical per-filter
//! per-device assignment counts and identical per-edge delivery counts on
//! all four graph backends — the sequential reference executor, the
//! virtual-time DES, the native threaded runtime's deterministic executor,
//! and the TCP lockstep coordinator over real sockets.

mod common;

use std::collections::HashMap;
use std::sync::Arc;

use common::{
    cpu_gpu_workers, diamond, graph_loopback_workers, loopback_workers, neutral_buffer,
    neutral_gpu, neutral_oracle, neutral_shape, pipeline3, single_filter_graph,
};

use anthill_repro::core::engine::sequential::{run_graph, GraphEmission, SequentialConfig};
use anthill_repro::core::graph::DataflowGraph;
use anthill_repro::core::local::{Emitter, LocalFilter, LocalTask, Pipeline};
use anthill_repro::core::membership::{MemberAction, MembershipSchedule, ScheduledAction};
use anthill_repro::core::net::{run_deterministic, run_graph_deterministic, Behavior, NetConfig};
use anthill_repro::core::policy::learned::{LearnedConfig, LearnedWeights};
use anthill_repro::core::policy::Policy;
use anthill_repro::core::sim::{run_graph_sim, run_nbia, GraphSimConfig, SimConfig, WorkloadSpec};
use anthill_repro::core::weights::{OracleWeights, WeightProvider};
use anthill_repro::hetsim::{ClusterSpec, DeviceId, DeviceKind, NodeSpec};

const TILES: u64 = 120;

/// The learner seed every backend must share for stateful-policy parity.
/// [`des_counts`] goes through [`run_nbia`], which wraps the base provider
/// itself using `SimConfig::new`'s default seed — so the explicit
/// providers below must be built with the same one.
const PARITY_SEED: u64 = 0x5EED;

/// The provider a non-DES backend drives the engine with: the neutral
/// oracle, wrapped in a learner for the learned policy kinds — mirroring
/// exactly what [`run_nbia`] builds internally for [`des_counts`].
fn parity_provider(policy: Policy) -> Box<dyn WeightProvider> {
    if policy.kind.learned() {
        Box::new(LearnedWeights::new(
            policy.kind,
            neutral_oracle(),
            LearnedConfig::standard(PARITY_SEED),
        ))
    } else {
        Box::new(neutral_oracle())
    }
}

fn neutral_workload() -> WorkloadSpec {
    WorkloadSpec {
        tiles: TILES,
        recalc_rate: 0.0,
        shapes: Some((neutral_shape(), neutral_shape())),
        ..WorkloadSpec::paper_base(0.0)
    }
}

/// Per-device assignment counts from the DES backend.
fn des_counts(policy: Policy) -> HashMap<DeviceKind, u64> {
    let w = neutral_workload();
    let mut cfg = SimConfig::new(
        ClusterSpec::new(vec![NodeSpec {
            cpu_cores: 1,
            gpus: 1,
        }]),
        policy,
    );
    cfg.gpu = neutral_gpu();
    cfg.async_transfers = false;
    cfg.use_estimator = false;
    let report = run_nbia(&cfg, &w);
    assert_eq!(report.total_tasks, TILES);
    let mut counts = HashMap::new();
    for (&(kind, _level), &n) in &report.tasks_by {
        *counts.entry(kind).or_insert(0) += n;
    }
    counts
}

/// Forwards tasks unchanged.
struct Identity;
impl LocalFilter for Identity {
    fn handle(&self, _d: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
        out.forward(task);
    }
}

/// Per-device assignment counts from the native runtime's deterministic
/// executor, fed the same buffers the DES seeds its readers with.
fn native_counts(policy: Policy) -> HashMap<DeviceKind, u64> {
    let w = neutral_workload();
    let sources: Vec<LocalTask> = (0..TILES)
        .map(|t| LocalTask::new(w.low_buffer(t), ()))
        .collect();
    let mut p = Pipeline::new(policy.kind).with_request_window(policy.request_size);
    p.add_stage(Arc::new(Identity), cpu_gpu_workers());
    let weights = parity_provider(policy);
    let (out, report) = p.run_deterministic(sources, &weights);
    assert_eq!(out.len() as u64, TILES);
    let mut counts = HashMap::new();
    for (&(_stage, kind, _level), &n) in &report.handled {
        *counts.entry(kind).or_insert(0) += n;
    }
    counts
}

/// Per-device assignment counts from the TCP backend's lockstep
/// coordinator, driving one CPU and one GPU worker thread over real
/// loopback sockets — fed the same buffers the DES seeds its readers
/// with.
fn net_counts(policy: Policy) -> HashMap<DeviceKind, u64> {
    let w = neutral_workload();
    let sources = (0..TILES).map(|t| w.low_buffer(t)).collect();
    let workers = loopback_workers(&[DeviceKind::Cpu, DeviceKind::Gpu], Behavior::Identity);
    let out = run_deterministic(
        NetConfig::new(policy),
        workers,
        sources,
        parity_provider(policy),
    )
    .expect("loopback net run");
    assert_eq!(out.total, TILES);
    let mut counts = HashMap::new();
    for (&(kind, _node), &n) in &out.assigned {
        *counts.entry(kind).or_insert(0) += n;
    }
    counts
}

/// Per-device assignment counts from the sequential reference executor.
fn seq_counts(policy: Policy) -> HashMap<DeviceKind, u64> {
    use anthill_repro::core::engine::sequential::{run, Emission};
    let w = neutral_workload();
    let sources = (0..TILES).map(|t| w.low_buffer(t)).collect();
    let devices = [
        DeviceId {
            node: 0,
            kind: DeviceKind::Cpu,
            index: 0,
        },
        DeviceId {
            node: 0,
            kind: DeviceKind::Gpu,
            index: 0,
        },
    ];
    let out = run(
        SequentialConfig::new(policy),
        &devices,
        sources,
        parity_provider(policy),
        |_, _| Emission::default(),
    );
    assert_eq!(out.total, TILES);
    let mut counts = HashMap::new();
    for (&(kind, _level), &n) in &out.assigned {
        *counts.entry(kind).or_insert(0) += n;
    }
    counts
}

fn assert_parity(policy: Policy, name: &str) {
    let seq = seq_counts(policy);
    let des = des_counts(policy);
    let native = native_counts(policy);
    let net = net_counts(policy);
    assert_eq!(
        seq, des,
        "{name}: sequential and DES drivers assigned devices differently"
    );
    assert_eq!(
        des, native,
        "{name}: DES and native drivers assigned devices differently"
    );
    assert_eq!(
        des, net,
        "{name}: DES and TCP drivers assigned devices differently"
    );
    let total: u64 = des.values().sum();
    assert_eq!(total, TILES, "{name}: tasks lost or duplicated");
}

#[test]
fn ddfcfs_assignments_match_across_backends() {
    assert_parity(Policy::ddfcfs(4), "DDFCFS");
}

#[test]
fn ddwrr_assignments_match_across_backends() {
    assert_parity(Policy::ddwrr(4), "DDWRR");
}

#[test]
fn odds_assignments_match_across_backends() {
    assert_parity(Policy::odds(), "ODDS");
}

/// The learned policies carry mutable state (online profile, residency
/// map, bandit arms), so their parity is a stronger claim than the
/// classics': every backend must drive the engine's `decide`/`observe`
/// callbacks in the same order, or the learners diverge and the counts
/// split.
#[test]
fn affinity_assignments_match_across_backends() {
    assert_parity(Policy::affinity(4), "AFFINITY");
}

#[test]
fn bandit_assignments_match_across_backends() {
    assert_parity(Policy::bandit(4), "BANDIT");
}

#[test]
fn parity_counts_are_reproducible() {
    for policy in [
        Policy::ddfcfs(4),
        Policy::ddwrr(4),
        Policy::odds(),
        Policy::affinity(4),
        Policy::bandit(4),
    ] {
        assert_eq!(des_counts(policy), des_counts(policy));
        assert_eq!(native_counts(policy), native_counts(policy));
        assert_eq!(net_counts(policy), net_counts(policy));
    }
}

// ---------------------------------------------------------------------
// Graph parity: per-(filter, device) assignment counts and per-edge
// delivery counts across all four graph backends.
// ---------------------------------------------------------------------

/// Tasks per graph parity run — enough for every round-robin cursor and
/// weight window to turn over several times.
const GRAPH_TILES: u64 = 48;

/// What every graph backend must agree on.
#[derive(Debug, PartialEq, Eq)]
struct GraphCounts {
    /// `(filter, device kind) -> completions`, levels collapsed.
    assigned: HashMap<(usize, DeviceKind), u64>,
    /// `edge id -> buffers delivered`.
    edges: HashMap<u32, u64>,
    /// Completions across all filters.
    total: u64,
}

fn collapse(assigned: &HashMap<(usize, DeviceKind, u8), u64>) -> HashMap<(usize, DeviceKind), u64> {
    let mut out = HashMap::new();
    for (&(filter, kind, _level), &n) in assigned {
        *out.entry((filter, kind)).or_insert(0) += n;
    }
    out
}

fn graph_seeds(filter: usize) -> Vec<(usize, anthill_repro::core::buffer::DataBuffer)> {
    (0..GRAPH_TILES)
        .map(|t| (filter, neutral_buffer(t)))
        .collect()
}

/// Pass-through filter logic for the buffer-level backends: forward every
/// completion unchanged and let the graph's routing rule place it.
fn forward_all(
    _filter: usize,
    _kind: DeviceKind,
    b: &anthill_repro::core::buffer::DataBuffer,
) -> GraphEmission {
    GraphEmission {
        forward: vec![b.clone()],
        feedback: Vec::new(),
    }
}

/// The sequential reference executor.
fn seq_graph_counts(policy: Policy, graph: &DataflowGraph) -> GraphCounts {
    let devices: Vec<Vec<DeviceId>> = (0..graph.n_filters())
        .map(|f| {
            [DeviceKind::Cpu, DeviceKind::Gpu]
                .iter()
                .map(|&kind| DeviceId {
                    node: f,
                    kind,
                    index: 0,
                })
                .collect()
        })
        .collect();
    let out = run_graph(
        SequentialConfig::new(policy),
        graph,
        &devices,
        graph_seeds(0),
        parity_provider(policy),
        forward_all,
    );
    GraphCounts {
        assigned: collapse(&out.assigned),
        edges: out.edge_delivered,
        total: out.total,
    }
}

/// The virtual-time DES graph runner.
fn des_graph_counts(policy: Policy, graph: &DataflowGraph) -> GraphCounts {
    let mut cfg = GraphSimConfig::new(policy);
    cfg.gpu = neutral_gpu();
    let devices: Vec<Vec<DeviceKind>> = (0..graph.n_filters())
        .map(|_| vec![DeviceKind::Cpu, DeviceKind::Gpu])
        .collect();
    let report = run_graph_sim(
        &cfg,
        graph,
        &devices,
        graph_seeds(0),
        parity_provider(policy),
        forward_all,
    );
    GraphCounts {
        assigned: collapse(&report.assigned),
        edges: report.edge_delivered,
        total: report.total,
    }
}

/// The native threaded runtime's deterministic executor.
fn native_graph_counts(policy: Policy, graph: &DataflowGraph) -> GraphCounts {
    let mut p = Pipeline::new(policy.kind)
        .with_graph(graph.clone())
        .with_request_window(policy.request_size);
    for _ in 0..graph.n_filters() {
        p.add_stage(Arc::new(Identity), cpu_gpu_workers());
    }
    let sources: Vec<LocalTask> = (0..GRAPH_TILES)
        .map(|t| LocalTask::new(neutral_buffer(t), ()))
        .collect();
    let weights = parity_provider(policy);
    let (out, report) = p.run_deterministic(sources, &weights);
    assert_eq!(
        out.len() as u64,
        GRAPH_TILES,
        "every task must leave the graph"
    );
    let total = report.total();
    GraphCounts {
        assigned: collapse(&report.handled),
        edges: report.edge_delivered,
        total,
    }
}

/// The TCP backend's graph lockstep coordinator over loopback sockets.
fn net_graph_counts(policy: Policy, graph: &DataflowGraph) -> GraphCounts {
    let kinds = [DeviceKind::Cpu, DeviceKind::Gpu];
    let filters: Vec<&[DeviceKind]> = (0..graph.n_filters()).map(|_| &kinds[..]).collect();
    let workers = graph_loopback_workers(&filters, Behavior::Identity);
    let out = run_graph_deterministic(
        NetConfig::new(policy),
        graph,
        workers,
        graph_seeds(0),
        parity_provider(policy),
    )
    .expect("loopback graph net run");
    GraphCounts {
        assigned: collapse(&out.assigned),
        edges: out.edge_delivered,
        total: out.total,
    }
}

fn assert_graph_parity(policy: Policy, graph: &DataflowGraph, name: &str, crossings: u64) {
    let seq = seq_graph_counts(policy, graph);
    let des = des_graph_counts(policy, graph);
    let native = native_graph_counts(policy, graph);
    let net = net_graph_counts(policy, graph);
    assert_eq!(
        seq, des,
        "{name}: sequential and DES graph runs assigned devices differently"
    );
    assert_eq!(
        seq, native,
        "{name}: sequential and native graph runs assigned devices differently"
    );
    assert_eq!(
        seq, net,
        "{name}: sequential and TCP graph runs assigned devices differently"
    );
    assert_eq!(
        seq.total,
        GRAPH_TILES * crossings,
        "{name}: each task must cross exactly {crossings} filters"
    );
    let delivered: u64 = seq.edges.values().sum();
    assert_eq!(
        delivered,
        GRAPH_TILES * (crossings - 1),
        "{name}: each task must traverse exactly {} edges",
        crossings - 1
    );
}

#[test]
fn pipeline_graph_parity_ddfcfs() {
    assert_graph_parity(Policy::ddfcfs(4), &pipeline3(), "pipeline3/DDFCFS", 3);
}

#[test]
fn pipeline_graph_parity_ddwrr() {
    assert_graph_parity(Policy::ddwrr(4), &pipeline3(), "pipeline3/DDWRR", 3);
}

#[test]
fn pipeline_graph_parity_odds() {
    assert_graph_parity(Policy::odds(), &pipeline3(), "pipeline3/ODDS", 3);
}

#[test]
fn diamond_graph_parity_ddfcfs() {
    assert_graph_parity(Policy::ddfcfs(4), &diamond(), "diamond/DDFCFS", 3);
}

#[test]
fn diamond_graph_parity_ddwrr() {
    assert_graph_parity(Policy::ddwrr(4), &diamond(), "diamond/DDWRR", 3);
}

#[test]
fn diamond_graph_parity_odds() {
    assert_graph_parity(Policy::odds(), &diamond(), "diamond/ODDS", 3);
}

#[test]
fn pipeline_graph_parity_affinity() {
    assert_graph_parity(Policy::affinity(4), &pipeline3(), "pipeline3/AFFINITY", 3);
}

#[test]
fn pipeline_graph_parity_bandit() {
    assert_graph_parity(Policy::bandit(4), &pipeline3(), "pipeline3/BANDIT", 3);
}

#[test]
fn diamond_graph_parity_affinity() {
    assert_graph_parity(Policy::affinity(4), &diamond(), "diamond/AFFINITY", 3);
}

#[test]
fn diamond_graph_parity_bandit() {
    assert_graph_parity(Policy::bandit(4), &diamond(), "diamond/BANDIT", 3);
}

/// The degenerate one-filter graph is invisible: running the native
/// deterministic executor with an explicit [`single_filter_graph`] yields
/// the same outputs (in order) and the same per-device counts as the flat,
/// graph-free pipeline, for every policy.
#[test]
fn single_filter_graph_is_invisible_on_the_native_backend() {
    let weights = OracleWeights::new(neutral_gpu(), false);
    let sources = || -> Vec<LocalTask> {
        (0..GRAPH_TILES)
            .map(|t| LocalTask::new(neutral_buffer(t), ()))
            .collect()
    };
    for policy in [Policy::ddfcfs(4), Policy::ddwrr(4), Policy::odds()] {
        let mut flat = Pipeline::new(policy.kind).with_request_window(policy.request_size);
        flat.add_stage(Arc::new(Identity), cpu_gpu_workers());
        let (flat_out, flat_report) = flat.run_deterministic(sources(), &weights);

        let mut graph = Pipeline::new(policy.kind)
            .with_graph(single_filter_graph())
            .with_request_window(policy.request_size);
        graph.add_stage(Arc::new(Identity), cpu_gpu_workers());
        let (graph_out, graph_report) = graph.run_deterministic(sources(), &weights);

        assert_eq!(flat_report.handled, graph_report.handled, "{policy:?}");
        let ids = |out: &[LocalTask]| out.iter().map(|t| t.buffer.id.0).collect::<Vec<_>>();
        assert_eq!(ids(&flat_out), ids(&graph_out), "{policy:?}: output order");
    }
}

// ---------------------------------------------------------------------
// Elastic membership parity: a scripted join/drain schedule replayed on
// the sequential reference driver, the DES, and the native deterministic
// executor must land identical per-device assignment counts.
// ---------------------------------------------------------------------

/// The scripted membership scenario: a CPU joins a third of the way in,
/// a GPU joins at the halfway mark, and the *original* CPU drains once
/// the joiners are warm. Thresholds are completion counts, so every
/// deterministic backend replays the script at the same causal point.
fn elastic_script() -> MembershipSchedule {
    MembershipSchedule::new(vec![
        ScheduledAction {
            after_completions: 40,
            action: MemberAction::Join {
                node: 0,
                kind: DeviceKind::Cpu,
            },
        },
        ScheduledAction {
            after_completions: 60,
            action: MemberAction::Join {
                node: 0,
                kind: DeviceKind::Gpu,
            },
        },
        ScheduledAction {
            after_completions: 80,
            action: MemberAction::Drain { node: 0, worker: 0 },
        },
    ])
}

/// Sequential reference driver under the elastic script.
fn seq_elastic_counts(policy: Policy) -> HashMap<DeviceKind, u64> {
    use anthill_repro::core::engine::sequential::{run_elastic, Emission};
    let w = neutral_workload();
    let sources = (0..TILES).map(|t| w.low_buffer(t)).collect();
    let devices = [
        DeviceId {
            node: 0,
            kind: DeviceKind::Cpu,
            index: 0,
        },
        DeviceId {
            node: 0,
            kind: DeviceKind::Gpu,
            index: 0,
        },
    ];
    let out = run_elastic(
        SequentialConfig::new(policy),
        &devices,
        sources,
        neutral_oracle(),
        elastic_script(),
        |_, _| Emission::default(),
    );
    assert_eq!(out.total, TILES);
    let mut counts = HashMap::new();
    for (&(kind, _level), &n) in &out.assigned {
        *counts.entry(kind).or_insert(0) += n;
    }
    counts
}

/// DES backend under the elastic script ([`des_counts`] plus membership).
fn des_elastic_counts(policy: Policy) -> HashMap<DeviceKind, u64> {
    let w = neutral_workload();
    let mut cfg = SimConfig::new(
        ClusterSpec::new(vec![NodeSpec {
            cpu_cores: 1,
            gpus: 1,
        }]),
        policy,
    );
    cfg.gpu = neutral_gpu();
    cfg.async_transfers = false;
    cfg.use_estimator = false;
    cfg.membership = elastic_script();
    let report = run_nbia(&cfg, &w);
    assert_eq!(report.total_tasks, TILES);
    let mut counts = HashMap::new();
    for (&(kind, _level), &n) in &report.tasks_by {
        *counts.entry(kind).or_insert(0) += n;
    }
    counts
}

/// Native deterministic executor under the elastic script.
fn native_elastic_counts(policy: Policy) -> HashMap<DeviceKind, u64> {
    let w = neutral_workload();
    let sources: Vec<LocalTask> = (0..TILES)
        .map(|t| LocalTask::new(w.low_buffer(t), ()))
        .collect();
    let mut p = Pipeline::new(policy.kind).with_request_window(policy.request_size);
    p.add_stage(Arc::new(Identity), cpu_gpu_workers());
    let weights = OracleWeights::new(neutral_gpu(), false);
    let (out, report) = p.run_deterministic_elastic(sources, &weights, elastic_script());
    assert_eq!(out.len() as u64, TILES);
    let mut counts = HashMap::new();
    for (&(_stage, kind, _level), &n) in &report.handled {
        *counts.entry(kind).or_insert(0) += n;
    }
    counts
}

/// The membership tentpole's parity acceptance: the scripted join/drain
/// schedule must produce identical per-device assignment counts on the
/// sequential, DES, and native backends, for every policy — elasticity
/// is an engine feature, not a backend feature.
#[test]
fn elastic_script_assignments_match_across_backends() {
    for policy in [Policy::ddfcfs(4), Policy::ddwrr(4), Policy::odds()] {
        let seq = seq_elastic_counts(policy);
        let des = des_elastic_counts(policy);
        let native = native_elastic_counts(policy);
        assert_eq!(
            seq, des,
            "{policy:?}: sequential and DES elastic runs assigned devices differently"
        );
        assert_eq!(
            seq, native,
            "{policy:?}: sequential and native elastic runs assigned devices differently"
        );
        let total: u64 = seq.values().sum();
        assert_eq!(total, TILES, "{policy:?}: tasks lost or duplicated");
    }
}

/// The diamond's round-robin split is an exact function of the cursor, so
/// the per-edge counts are pinned, not merely equal across backends.
#[test]
fn diamond_split_is_exactly_half_on_every_backend() {
    let g = diamond();
    for counts in [
        seq_graph_counts(Policy::ddfcfs(4), &g),
        des_graph_counts(Policy::ddfcfs(4), &g),
        native_graph_counts(Policy::ddfcfs(4), &g),
        net_graph_counts(Policy::ddfcfs(4), &g),
    ] {
        for edge in 0..4u32 {
            assert_eq!(counts.edges[&edge], GRAPH_TILES / 2, "edge {edge}");
        }
    }
}
