//! Hot-path overhaul guarantees, exercised end-to-end on the threaded
//! native runtime (DESIGN.md §10):
//!
//! 1. **Cross-hot-path parity** — `HotPath::Coarse` (the pre-overhaul
//!    global locks, full `SharedQueue` stage lanes, per-task tallies) and
//!    `HotPath::Sharded` (sharded dispatch state, tuned lanes, join-time
//!    tallies) must agree on everything observable: outputs, conservation,
//!    and — where thread scheduling cannot perturb them — the exact
//!    per-(stage, device, level) handled counts, under all three policies.
//! 2. **Batched trace emission** — the striped sink must still hand back
//!    a timestamp-ordered trace that conserves the task lifecycle
//!    (enqueues = dispatches = starts = finishes = handles), matching the
//!    serialized sink's per-kind event counts.

mod common;

use std::sync::Arc;

use common::{cpu_workers, mixed_workers, mk_task};

use anthill_repro::core::local::{Emitter, HotPath, LocalFilter, LocalTask, Pipeline, WorkerSpec};
use anthill_repro::core::obs::{EventKind, Recorder};
use anthill_repro::core::policy::PolicyKind;
use anthill_repro::core::weights::OracleWeights;
use anthill_repro::hetsim::{DeviceKind, GpuParams};

const ROUNDS: u8 = 3;
const TASKS: u64 = 300;
/// Each task is handled once per level per stage.
const HANDLES_PER_STAGE: u64 = TASKS * (ROUNDS as u64 + 1);

/// Recirculates every task [`ROUNDS`] times, then forwards it downstream —
/// the same shape as the `repro perf` workload, so these tests guard the
/// exact path the perf gate measures.
struct Recirc;
impl LocalFilter for Recirc {
    fn handle(&self, _d: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
        if task.buffer.level < ROUNDS {
            let mut task = task;
            task.buffer.level += 1;
            out.recirculate(task);
        } else {
            let mut task = task;
            task.buffer.level = 0;
            out.forward(task);
        }
    }
}

fn run(
    policy: PolicyKind,
    hot_path: HotPath,
    stages: &[Vec<WorkerSpec>],
    recorder: &Recorder,
) -> (Vec<u64>, anthill_repro::core::local::LocalReport) {
    let weights = OracleWeights::new(GpuParams::geforce_8800gt(), true);
    let mut p = Pipeline::new(policy).with_hot_path(hot_path);
    for specs in stages {
        p.add_stage(Arc::new(Recirc), specs.clone());
    }
    let sources: Vec<LocalTask> = (0..TASKS).map(mk_task).collect();
    let (out, report) = p.run_traced(sources, &weights, recorder);
    let mut ids: Vec<u64> = out.iter().map(|t| t.buffer.id.0).collect();
    ids.sort_unstable();
    (ids, report)
}

/// Homogeneous stages: thread scheduling can move tasks between *slots*
/// but never between device kinds or levels, so the full handled map must
/// be identical across hot paths.
#[test]
fn hot_paths_agree_on_homogeneous_counts() {
    for policy in [PolicyKind::DdFcfs, PolicyKind::DdWrr, PolicyKind::Odds] {
        let stages = vec![cpu_workers(4), cpu_workers(2)];
        let (out_c, rep_c) = run(policy, HotPath::Coarse, &stages, &Recorder::disabled());
        let (out_s, rep_s) = run(policy, HotPath::Sharded, &stages, &Recorder::disabled());
        assert_eq!(out_c, out_s, "{policy:?}: outputs diverged");
        assert_eq!(out_c.len() as u64, TASKS);
        assert_eq!(rep_c.total(), 2 * HANDLES_PER_STAGE);
        assert_eq!(
            rep_c.handled, rep_s.handled,
            "{policy:?}: per-(stage, kind, level) counts diverged"
        );
    }
}

/// Heterogeneous stages: per-kind counts are timing-dependent, but both
/// hot paths must conserve every task and deliver identical outputs.
#[test]
fn hot_paths_conserve_mixed_kind_stages() {
    for policy in [PolicyKind::DdFcfs, PolicyKind::DdWrr, PolicyKind::Odds] {
        let stages = vec![mixed_workers()];
        for hot_path in [HotPath::Coarse, HotPath::Sharded] {
            let (out, report) = run(policy, hot_path, &stages, &Recorder::disabled());
            assert_eq!(
                out.len() as u64,
                TASKS,
                "{policy:?}/{hot_path:?} lost tasks"
            );
            assert_eq!(
                report.total(),
                HANDLES_PER_STAGE,
                "{policy:?}/{hot_path:?} miscounted handles"
            );
        }
    }
}

/// The batched (striped) sink must drain a timestamp-ordered trace whose
/// lifecycle counts conserve, and agree with the serialized sink.
#[test]
fn batched_trace_is_ordered_and_conserves_lifecycle() {
    let stages = vec![cpu_workers(4)];
    let mut per_sink = Vec::new();
    for mk in [
        Recorder::enabled as fn() -> Recorder,
        Recorder::enabled_serialized,
    ] {
        let recorder = mk();
        let (_, report) = run(PolicyKind::DdWrr, HotPath::Sharded, &stages, &recorder);
        assert_eq!(report.total(), HANDLES_PER_STAGE);
        assert_eq!(
            recorder.metrics().counter_total("tasks_finished"),
            HANDLES_PER_STAGE
        );
        let events = recorder.take_events();
        assert!(
            events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "drained trace must be in non-decreasing timestamp order"
        );
        let count = |pred: fn(&EventKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count();
        let lifecycle = [
            count(|k| matches!(k, EventKind::Enqueue { .. })) as u64,
            count(|k| matches!(k, EventKind::Dispatch { .. })) as u64,
            count(|k| matches!(k, EventKind::Start { .. })) as u64,
            count(|k| matches!(k, EventKind::Finish { .. })) as u64,
        ];
        assert_eq!(
            lifecycle, [HANDLES_PER_STAGE; 4],
            "lifecycle conservation broken"
        );
        assert!(
            recorder.take_events().is_empty(),
            "drain must empty the sink"
        );
        per_sink.push(lifecycle);
    }
    assert_eq!(per_sink[0], per_sink[1], "batched vs serialized diverged");
}
