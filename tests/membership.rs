//! Elastic-membership suite (DESIGN.md §14): the Joining → Active →
//! Draining → Gone lifecycle proven under randomized schedules.
//!
//! Three layers of checks:
//!
//! 1. **Registry model check** — the [`Membership`] state machine under
//!    random operation sequences never accepts an illegal transition and
//!    never mutates on rejection (proptest against an explicit model).
//! 2. **Interleaving conservation** — random join/drain/death/timeout
//!    interleavings on the DES: every buffer still finishes *exactly
//!    once* (no loss, no double assignment), every fired join/drain is
//!    visible in the trace as `worker_joined`/`worker_draining`/
//!    `worker_left`, and a drained slot receives **zero** dispatches
//!    after its `worker_draining` event.
//! 3. **Warm-up** — a joiner enters with the DQAA cold-start window
//!    (target 1) rather than stampeding the readers, and still ends up
//!    with a measurable share of the remaining work.

mod common;

use std::collections::HashMap;

use proptest::prelude::*;

use common::pick_policy;

use anthill_repro::core::faults::{FaultConfig, FaultProb, RecoveryConfig, WorkerDeathSpec};
use anthill_repro::core::membership::{
    MemberAction, MemberPhase, Membership, MembershipSchedule, ScheduledAction,
};
use anthill_repro::core::obs::{DeviceRef, EventKind, Recorder};
use anthill_repro::core::sim::{run_nbia, SimConfig, WorkloadSpec};
use anthill_repro::hetsim::{ClusterSpec, DeviceKind};
use anthill_repro::simkit::SimTime;

// ---------------------------------------------------------------------
// 1. Registry model check
// ---------------------------------------------------------------------

/// The reference model of one slot's legal lifecycle.
fn legal(from: MemberPhase, to: MemberPhase) -> bool {
    matches!(
        (from, to),
        (MemberPhase::Joining, MemberPhase::Active)
            | (MemberPhase::Active, MemberPhase::Draining)
            | (MemberPhase::Draining, MemberPhase::Gone)
    )
}

proptest! {
    /// Drive the registry with random operations while mirroring a naive
    /// phase vector: every accepted transition must be model-legal, every
    /// rejected one must leave the slot's phase untouched, and `fail` is
    /// always accepted (death is a fact, not a request).
    #[test]
    fn registry_matches_the_lifecycle_model(
        ops in prop::collection::vec((0usize..5, 0usize..8), 1..64),
    ) {
        let mut reg = Membership::new();
        let mut model: Vec<MemberPhase> = Vec::new();
        for (op, raw_id) in ops {
            if op == 0 {
                let id = reg.begin_join(0, model.len(), DeviceKind::Cpu);
                prop_assert_eq!(id, model.len(), "ids are dense registration order");
                model.push(MemberPhase::Joining);
                continue;
            }
            if model.is_empty() {
                continue;
            }
            let id = raw_id % model.len();
            let before = model[id];
            match op {
                1..=3 => {
                    let to = match op {
                        1 => MemberPhase::Active,
                        2 => MemberPhase::Draining,
                        _ => MemberPhase::Gone,
                    };
                    let res = match op {
                        1 => reg.activate(id),
                        2 => reg.begin_drain(id),
                        _ => reg.finish(id),
                    };
                    if legal(before, to) {
                        prop_assert!(res.is_ok(), "legal {before:?} -> {to:?} rejected");
                        model[id] = to;
                    } else {
                        let err = res.expect_err("illegal transition accepted");
                        prop_assert_eq!(err.from, before);
                        prop_assert_eq!(reg.phase(id), before, "rejection must not mutate");
                    }
                }
                _ => {
                    reg.fail(id);
                    model[id] = MemberPhase::Gone;
                }
            }
        }
        for (id, &phase) in model.iter().enumerate() {
            prop_assert_eq!(reg.phase(id), phase);
        }
        prop_assert_eq!(
            reg.active_count(),
            model.iter().filter(|&&p| p == MemberPhase::Active).count()
        );
    }
}

// ---------------------------------------------------------------------
// 2. Interleaving conservation on the DES
// ---------------------------------------------------------------------

/// One randomly generated join, with an optional drain of the joined
/// slot later in the run: `(node, gpu?, join_at, drain?, drain_at)`.
type JoinSpec = (usize, bool, u64, bool, u64);

/// Expand the generated joins into a completion-keyed schedule, computing
/// each joiner's engine slot index the way the DES assigns them: base
/// slots 0 (CPU) and 1 (GPU) per homogeneous node, joiners appended in
/// threshold order.
fn build_schedule(joins: &[JoinSpec]) -> MembershipSchedule {
    let mut actions = Vec::new();
    let mut order: Vec<usize> = (0..joins.len()).collect();
    order.sort_by_key(|&i| joins[i].2); // stable: listed order at ties
    let mut joined_per_node: HashMap<usize, usize> = HashMap::new();
    for i in order {
        let (node, gpu, join_at, drain, drain_at) = joins[i];
        let kind = if gpu {
            DeviceKind::Gpu
        } else {
            DeviceKind::Cpu
        };
        actions.push(ScheduledAction {
            after_completions: join_at,
            action: MemberAction::Join { node, kind },
        });
        let slot = 2 + joined_per_node.entry(node).or_insert(0).to_owned();
        *joined_per_node.get_mut(&node).unwrap() += 1;
        if drain {
            actions.push(ScheduledAction {
                after_completions: drain_at,
                action: MemberAction::Drain { node, worker: slot },
            });
        }
    }
    MembershipSchedule::new(actions)
}

proptest! {
    /// Random join/drain/death/timeout interleavings: the run drains with
    /// every buffer finished exactly once, the trace carries exactly one
    /// `worker_joined` per fired join and one `worker_draining` +
    /// `worker_left` pair per fired drain, and no drained slot is ever
    /// dispatched to after its `worker_draining` event.
    #[test]
    fn random_interleavings_never_lose_or_double_assign(
        seed in 0u64..1 << 48,
        drop in 0.0f64..0.20,
        // Joins fire in the first 20 completions, drains in 21..40 —
        // thresholds every generated run reaches (tiles >= 40). Deaths
        // hit only base slots, drains only joined slots, so at least one
        // base worker per node survives the whole interleaving.
        joins in prop::collection::vec(
            (0usize..2, prop::bool::ANY, 1u64..20, prop::bool::ANY, 21u64..40),
            0..4,
        ),
        kill in prop::bool::ANY,
        dead_node in 0usize..2,
        dead_worker in 0usize..2,
        at_us in 1u64..500_000,
        policy_i in 0usize..3,
        tiles in 40u64..72,
    ) {
        let wl = WorkloadSpec { tiles, ..WorkloadSpec::paper_base(0.2) };
        let deaths = if kill {
            vec![WorkerDeathSpec {
                node: dead_node,
                worker: dead_worker,
                at: SimTime(at_us * 1_000),
            }]
        } else {
            Vec::new()
        };
        let recorder = Recorder::enabled();
        let mut cfg = SimConfig::new(ClusterSpec::homogeneous(2), pick_policy(policy_i));
        cfg.faults = FaultConfig {
            drop: FaultProb::uniform(drop),
            deaths,
            recovery: RecoveryConfig::standard(),
            seed,
            ..FaultConfig::none()
        };
        cfg.membership = build_schedule(&joins);
        cfg.recorder = recorder.clone();

        let report = run_nbia(&cfg, &wl);
        prop_assert_eq!(report.total_tasks, wl.total_buffers(), "conservation");

        let events = recorder.events();
        // Exactly-once completion per buffer id, chaos notwithstanding.
        let mut finishes: HashMap<u64, u32> = HashMap::new();
        for e in &events {
            if let EventKind::Finish { buffer, .. } = e.kind {
                *finishes.entry(buffer).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(finishes.len() as u64, wl.total_buffers());
        prop_assert!(
            finishes.values().all(|&n| n == 1),
            "a buffer finished more than once: {:?}",
            finishes.iter().filter(|(_, &n)| n > 1).collect::<Vec<_>>()
        );

        // Every fired action surfaces in the trace exactly once. All
        // generated thresholds are < 40 <= total completions, so every
        // scheduled action fires.
        let count = |pred: fn(&EventKind) -> bool| {
            events.iter().filter(|e| pred(&e.kind)).count()
        };
        let n_drains = joins.iter().filter(|j| j.3).count();
        prop_assert_eq!(
            count(|k| matches!(k, EventKind::WorkerJoined { .. })),
            joins.len(),
            "one worker_joined per fired join"
        );
        prop_assert_eq!(
            count(|k| matches!(k, EventKind::WorkerDraining { .. })),
            n_drains,
            "one worker_draining per fired drain"
        );
        prop_assert_eq!(
            count(|k| matches!(k, EventKind::WorkerLeft)),
            n_drains,
            "every drained slot must be gracefully released"
        );

        // A drained slot receives zero assignments after worker_draining.
        for (i, e) in events.iter().enumerate() {
            if !matches!(e.kind, EventKind::WorkerDraining { .. }) {
                continue;
            }
            let later_dispatches = events[i + 1..]
                .iter()
                .filter(|l| {
                    l.origin == e.origin && matches!(l.kind, EventKind::Dispatch { .. })
                })
                .count();
            prop_assert_eq!(
                later_dispatches, 0,
                "slot {} was dispatched to after draining", e.origin
            );
        }
    }
}

// ---------------------------------------------------------------------
// 3. Warm-up
// ---------------------------------------------------------------------

/// A CPU joiner arriving a third of the way into a DQAA run enters with
/// the cold-start window (target 1), ramps up instead of stampeding, and
/// still earns a measurable share of the remaining completions.
#[test]
fn joiner_warms_up_and_earns_a_share() {
    let wl = WorkloadSpec {
        tiles: 300,
        ..WorkloadSpec::paper_base(0.1)
    };
    let recorder = Recorder::enabled();
    // ODDS runs DQAA, so the joiner's window must start from the cold
    // target of 1 (static-window policies enter at their fixed size).
    let mut cfg = SimConfig::new(
        ClusterSpec::homogeneous(1),
        anthill_repro::core::policy::Policy::odds(),
    );
    cfg.membership = MembershipSchedule::new(vec![ScheduledAction {
        after_completions: 100,
        action: MemberAction::Join {
            node: 0,
            kind: DeviceKind::Cpu,
        },
    }]);
    cfg.recorder = recorder.clone();
    let report = run_nbia(&cfg, &wl);
    assert_eq!(report.total_tasks, wl.total_buffers());

    let events = recorder.events();
    let joiner = DeviceRef {
        node: 0,
        kind: Some(DeviceKind::Cpu),
        index: 1, // base CPU is index 0
    };
    let join_pos = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::WorkerJoined { .. }))
        .expect("the join must be traced");
    match events[join_pos].kind {
        EventKind::WorkerJoined { window } => {
            assert_eq!(events[join_pos].origin, joiner);
            assert_eq!(window, 1, "DQAA joiners start from the cold window");
        }
        _ => unreachable!(),
    }
    let joiner_done = events[join_pos..]
        .iter()
        .filter(|e| e.origin == joiner && matches!(e.kind, EventKind::Finish { .. }))
        .count() as u64;
    assert!(
        joiner_done >= (wl.total_buffers() - 100) / 10,
        "the joiner must absorb a measurable share of the remaining work, got {joiner_done}"
    );
    assert!(
        events[..join_pos].iter().all(|e| e.origin != joiner),
        "the joiner must be silent before its join event"
    );
}
