//! Acceptance tests for the unified observability layer (`anthill::obs`):
//! trace/report agreement on both backends, conservation (every enqueued
//! tile finishes exactly once), byte-identical DES traces across same-seed
//! runs, and Fig. 12 window-trace reconstruction from events alone.

use std::collections::HashMap;

use anthill_repro::apps::nbia::{run_local_traced, NbiaLocalConfig};
use anthill_repro::core::local::{ExecMode, WorkerSpec};
use anthill_repro::core::obs::{jsonl, DeviceRef, EventKind, Recorder, TraceEvent};
use anthill_repro::core::policy::{Policy, PolicyKind};
use anthill_repro::core::sim::{run_nbia, SimConfig, WorkloadSpec};
use anthill_repro::core::weights::OracleWeights;
use anthill_repro::hetsim::{ClusterSpec, DeviceKind, GpuParams};

fn oracle() -> OracleWeights {
    OracleWeights::new(GpuParams::geforce_8800gt(), true)
}

fn sim_setup(tiles: u64, rate: f64) -> (SimConfig, WorkloadSpec) {
    let workload = WorkloadSpec {
        tiles,
        ..WorkloadSpec::paper_base(rate)
    };
    let cfg = SimConfig::new(ClusterSpec::heterogeneous(1, 1), Policy::odds());
    (cfg, workload)
}

fn local_config(policy: PolicyKind) -> NbiaLocalConfig {
    NbiaLocalConfig {
        tiles: 36,
        low_side: 32,
        high_side: 64,
        confidence_threshold: 0.88,
        seed: 7,
        policy,
        workers: vec![
            WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Native,
            },
            WorkerSpec {
                kind: DeviceKind::Gpu,
                mode: ExecMode::Emulated { scale: 1e-4 },
            },
        ],
    }
}

/// Per-buffer lifecycle tallies extracted from a trace.
#[derive(Default, Debug, Clone, Copy)]
struct Lifecycle {
    enqueue: u64,
    dispatch: u64,
    start: u64,
    finish: u64,
}

fn lifecycles(events: &[TraceEvent]) -> HashMap<u64, Lifecycle> {
    let mut map: HashMap<u64, Lifecycle> = HashMap::new();
    for e in events {
        match e.kind {
            EventKind::Enqueue { buffer, .. } => map.entry(buffer).or_default().enqueue += 1,
            EventKind::Dispatch { buffer, .. } => map.entry(buffer).or_default().dispatch += 1,
            EventKind::Start { buffer, .. } => map.entry(buffer).or_default().start += 1,
            EventKind::Finish { buffer, .. } => map.entry(buffer).or_default().finish += 1,
            _ => {}
        }
    }
    map
}

#[test]
fn sim_trace_conserves_every_tile_and_matches_report() {
    let (mut cfg, workload) = sim_setup(600, 0.12);
    let rec = Recorder::enabled();
    cfg.recorder = rec.clone();
    let report = run_nbia(&cfg, &workload);
    let events = rec.events();
    assert!(!events.is_empty());

    // Conservation: every buffer of the workload — low tiles 0..tiles and
    // high recalcs tiles+i — goes through each lifecycle phase exactly once.
    let cycles = lifecycles(&events);
    assert_eq!(cycles.len() as u64, workload.total_buffers());
    for tile in 0..workload.tiles {
        let c = cycles
            .get(&tile)
            .unwrap_or_else(|| panic!("low buffer {tile} missing from trace"));
        assert_eq!(
            (c.enqueue, c.dispatch, c.start, c.finish),
            (1, 1, 1, 1),
            "low buffer {tile}: {c:?}"
        );
        let high = cycles.get(&(workload.tiles + tile));
        if workload.is_recalc(tile) {
            let c = high.unwrap_or_else(|| panic!("high buffer of {tile} missing"));
            assert_eq!(
                (c.enqueue, c.dispatch, c.start, c.finish),
                (1, 1, 1, 1),
                "high buffer of {tile}: {c:?}"
            );
        } else {
            assert!(high.is_none(), "tile {tile} recalculated but not marked");
        }
    }

    // Trace finishes agree with the report's per-(device, level) accounting.
    let mut by_dev: HashMap<(DeviceKind, u8), u64> = HashMap::new();
    for e in &events {
        if let EventKind::Finish { level, .. } = e.kind {
            let kind = e.origin.kind.expect("finish events carry a device");
            *by_dev.entry((kind, level)).or_default() += 1;
        }
    }
    assert_eq!(by_dev, report.tasks_by);

    // Metrics registry agrees too.
    let metrics = rec.metrics();
    assert_eq!(
        metrics.counter_total("tasks_finished"),
        workload.total_buffers()
    );
}

#[test]
fn sim_trace_is_byte_identical_across_same_seed_runs() {
    let (cfg_a, workload) = sim_setup(500, 0.10);
    let mut cfg_a = cfg_a;
    let rec_a = Recorder::enabled();
    cfg_a.recorder = rec_a.clone();
    let mut cfg_b = cfg_a.clone();
    let rec_b = Recorder::enabled();
    cfg_b.recorder = rec_b.clone();

    run_nbia(&cfg_a, &workload);
    run_nbia(&cfg_b, &workload);

    let a = jsonl::to_jsonl(&rec_a.events());
    let b = jsonl::to_jsonl(&rec_b.events());
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must produce a byte-identical trace");
}

#[test]
fn dqaa_window_events_reconstruct_request_traces() {
    // Fig. 12's per-device request-window series must be recoverable from
    // the event trace alone, exactly equal to SimReport::request_traces.
    let (mut cfg, workload) = sim_setup(800, 0.12);
    cfg.trace_buckets = 20;
    let rec = Recorder::enabled();
    cfg.recorder = rec.clone();
    let report = run_nbia(&cfg, &workload);
    let events = rec.events();

    assert!(!report.request_traces.is_empty());
    for (dev, trace) in &report.request_traces {
        let origin = DeviceRef::device(*dev);
        let reconstructed: Vec<(u64, u32)> = events
            .iter()
            .filter(|e| e.origin == origin)
            .filter_map(|e| match e.kind {
                EventKind::DqaaWindow { target } => Some((e.ts_ns, target)),
                _ => None,
            })
            .collect();
        let expected: Vec<(u64, u32)> = trace
            .iter()
            .map(|&(t, target)| (t.as_nanos(), target as u32))
            .collect();
        assert_eq!(reconstructed, expected, "window trace of {dev:?} diverged");
    }
}

#[test]
fn local_trace_conserves_and_orders_task_lifecycles() {
    let cfg = local_config(PolicyKind::DdWrr);
    let rec = Recorder::enabled();
    let (results, report) = run_local_traced(&cfg, &oracle(), &rec);
    let events = rec.events();
    assert_eq!(results.len() as u64, cfg.tiles);

    // Wall-clock timestamps are taken under the trace lock, so trace order
    // and timestamp order agree globally.
    assert!(
        events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
        "local trace timestamps must be nondecreasing in trace order"
    );

    // Conservation: each buffer (source tile or recirculation) passes
    // through enqueue → dispatch → start → finish exactly once.
    let cycles = lifecycles(&events);
    assert_eq!(cycles.len() as u64, report.total());
    for (buffer, c) in &cycles {
        assert_eq!(
            (c.enqueue, c.dispatch, c.start, c.finish),
            (1, 1, 1, 1),
            "buffer {buffer}: {c:?}"
        );
    }
    // Every source tile appears; recirculated buffers use fresh ids.
    for tile in 0..cfg.tiles {
        assert!(cycles.contains_key(&tile), "source tile {tile} not traced");
    }

    // Per-phase ordering per buffer.
    let mut ts: HashMap<u64, [u64; 4]> = HashMap::new();
    for e in &events {
        let (slot, buffer) = match e.kind {
            EventKind::Enqueue { buffer, .. } => (0, buffer),
            EventKind::Dispatch { buffer, .. } => (1, buffer),
            EventKind::Start { buffer, .. } => (2, buffer),
            EventKind::Finish { buffer, .. } => (3, buffer),
            _ => continue,
        };
        ts.entry(buffer).or_default()[slot] = e.ts_ns;
    }
    for (buffer, t) in &ts {
        assert!(
            t[0] <= t[1] && t[1] <= t[2] && t[2] <= t[3],
            "buffer {buffer} lifecycle out of order: {t:?}"
        );
    }

    // Trace finish counts match the runtime report per device kind.
    let mut by_kind: HashMap<DeviceKind, u64> = HashMap::new();
    for e in &events {
        if let EventKind::Finish { .. } = e.kind {
            *by_kind
                .entry(e.origin.kind.expect("finish carries a device"))
                .or_default() += 1;
        }
    }
    for kind in [DeviceKind::Cpu, DeviceKind::Gpu] {
        let reported: u64 = report
            .handled
            .iter()
            .filter(|((_, k, _), _)| *k == kind)
            .map(|(_, n)| n)
            .sum();
        assert_eq!(
            by_kind.get(&kind).copied().unwrap_or(0),
            reported,
            "{kind:?}"
        );
    }
    assert_eq!(
        rec.metrics().counter_total("tasks_finished"),
        report.total()
    );
}

#[test]
fn backends_agree_on_task_counts_and_device_shares() {
    // Run the same NBIA workload on both backends. The local run decides
    // how many tiles recirculate (classifier-driven); the simulator's
    // recalc rate is set to produce exactly that many high-res tasks, so
    // the per-level task counts must agree exactly. Device shares of the
    // high-res work agree within a generous tolerance (the backends model
    // different overheads — threads + emulated spins vs DES transfers).
    let lcfg = local_config(PolicyKind::DdWrr);
    let rec_l = Recorder::enabled();
    let (_, lreport) = run_local_traced(&lcfg, &oracle(), &rec_l);
    let levents = rec_l.events();
    let count_level = |events: &[TraceEvent], level: u8| -> u64 {
        events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Finish { level: l, .. } if l == level))
            .count() as u64
    };
    let local_low = count_level(&levents, 0);
    let local_high = count_level(&levents, 1);
    assert_eq!(local_low, lcfg.tiles);
    assert_eq!(local_low + local_high, lreport.total());
    assert!(local_high > 0, "workload must recirculate some tiles");

    let workload = WorkloadSpec {
        tiles: lcfg.tiles,
        low_side: lcfg.low_side,
        high_side: lcfg.high_side,
        recalc_rate: (local_high as f64 + 0.5) / lcfg.tiles as f64,
        ..WorkloadSpec::paper_base(0.0)
    };
    assert_eq!(workload.recalc_count(), local_high);
    let mut scfg = SimConfig::new(ClusterSpec::homogeneous(1), Policy::ddwrr(16));
    scfg.use_estimator = false; // oracle weights, like the local run
    let rec_s = Recorder::enabled();
    scfg.recorder = rec_s.clone();
    run_nbia(&scfg, &workload);
    let sevents = rec_s.events();

    // Identical task counts per level, from the traces alone.
    assert_eq!(count_level(&sevents, 0), local_low);
    assert_eq!(count_level(&sevents, 1), local_high);

    // Per-device shares of the high-res (level 1) work within tolerance.
    let gpu_share = |events: &[TraceEvent]| -> f64 {
        let total = count_level(events, 1) as f64;
        let gpu = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Finish { level: 1, .. }))
            .filter(|e| e.origin.kind == Some(DeviceKind::Gpu))
            .count() as f64;
        gpu / total
    };
    let (ls, ss) = (gpu_share(&levents), gpu_share(&sevents));
    assert!(
        (ls - ss).abs() <= 0.5,
        "GPU share of high-res work diverged: local {ls:.2} vs sim {ss:.2}"
    );
    // Directionally identical routing: DDWRR sends the bulk of high-res
    // work to the GPU in both backends (paper Table 6).
    assert!(
        ls > 0.45 && ss > 0.45,
        "GPU should take the bulk of high-res work: local {ls:.2}, sim {ss:.2}"
    );
}
