//! Chaos suite: the fault-injection layer ([`anthill::faults`]) exercised
//! end-to-end against the engine's recovery machinery (DESIGN.md §9).
//!
//! Three families of checks:
//!
//! 1. **Conservation** — under arbitrary drop / transient-failure / death
//!    schedules, every task still finishes exactly once, on both the
//!    virtual-time simulator and the threaded native runtime, for all
//!    three scheduling policies. (`run_nbia` additionally self-checks its
//!    completion accounting with internal assertions.)
//! 2. **Parity** — a fault layer that is *configured but inert* (recovery
//!    armed, all probabilities zero, no deaths) must leave the trace
//!    byte-identical to a run with no fault layer at all.
//! 3. **Recovery pays off** — the headline scenario from the issue: 20%
//!    message drop plus a mid-run GPU worker death completes the whole
//!    workload, emits `WorkerDied`/`TaskReassigned`, and DDWRR's
//!    health-aware weighting beats DDFCFS on the identical fault schedule.
//! 4. **Real process death** — the TCP backend's coordinator loses a
//!    spawned worker *process* to a mid-run kill; the OS-closed socket
//!    maps onto the same engine recovery path, the survivor absorbs the
//!    orphaned in-flight work, and the trace records the death.
//! 5. **Death under open-loop load** — the same process kill lands in the
//!    middle of a shed-policy load run; admission must keep conserving
//!    with no double-counted completions, and the rendered SLO report
//!    must still validate against the `BENCH_load.json` schema.
//! 6. **Rolling restart** — the elastic-membership acceptance scenario
//!    (DESIGN.md §14): every initial worker of a live TCP run is retired
//!    exactly once through a graceful drain while a replacement joins
//!    mid-run via the `Join`/`JoinAck` handshake. Zero task loss, zero
//!    deaths, the `worker_joined`/`worker_draining`/`worker_left` trio in
//!    the trace, and the DDWRR assignment share measurably shifting
//!    toward the joiners within one request window of the join. A
//!    deterministic companion replays a join/drain script on the
//!    three-filter pipeline and checks the per-edge tallies conserve.

mod common;

use std::sync::Arc;

use proptest::prelude::*;

use common::{
    at_millis, cpu_workers, emulated_cpu_workers, loopback_workers, oracle, pick_policy, pipeline3,
    policies, task,
};

use anthill_repro::core::buffer::DataBuffer;
use anthill_repro::core::faults::{FaultConfig, FaultProb, RecoveryConfig, WorkerDeathSpec};
use anthill_repro::core::local::{
    Emitter, ExecMode, LocalDeathSpec, LocalFaults, LocalFilter, LocalTask, Pipeline, WorkerSpec,
};
use anthill_repro::core::membership::{MemberAction, MembershipSchedule, ScheduledAction};
use anthill_repro::core::net::{
    run_concurrent, run_concurrent_elastic, spawn_joining_worker_thread, Behavior, DrainAt,
    NetConfig, NetWorkerConn,
};
use anthill_repro::core::obs::{jsonl, EventKind, Recorder, TraceEvent};
use anthill_repro::core::policy::Policy;
use anthill_repro::core::sim::{run_nbia, SimConfig, SimReport, WorkloadSpec};
use anthill_repro::hetsim::{ClusterSpec, DeviceId, DeviceKind};
use anthill_repro::simkit::SimTime;

/// A small DES workload; `tiles` stays low because every proptest case is
/// a full simulation run.
fn workload(tiles: u64) -> WorkloadSpec {
    WorkloadSpec {
        tiles,
        ..WorkloadSpec::paper_base(0.2)
    }
}

fn faulty_sim(policy: Policy, faults: FaultConfig) -> SimConfig {
    let mut cfg = SimConfig::new(ClusterSpec::homogeneous(2), policy);
    cfg.faults = faults;
    cfg
}

proptest! {
    /// Random message-layer chaos (drops, delays) plus transient task
    /// failures: the run drains, and completion accounting matches the
    /// workload exactly — at-least-once dispatch, exactly-once completion.
    #[test]
    fn des_conserves_tasks_under_random_message_faults(
        seed in 0u64..1 << 48,
        drop in 0.0f64..0.30,
        fail in 0.0f64..0.20,
        delay in 0.0f64..0.30,
        policy_i in 0usize..3,
        tiles in 24u64..64,
    ) {
        let faults = FaultConfig {
            drop: FaultProb::uniform(drop),
            delay: FaultProb::uniform(delay),
            task_fail: FaultProb::uniform(fail),
            recovery: RecoveryConfig::standard(),
            seed,
            ..FaultConfig::none()
        };
        let wl = workload(tiles);
        let report = run_nbia(&faulty_sim(pick_policy(policy_i), faults), &wl);
        prop_assert_eq!(report.total_tasks, wl.total_buffers());
    }

    /// Random worker deaths (any single worker, any time in the first
    /// simulated second) on top of a lossy network: the survivors absorb
    /// the dead worker's in-flight tasks and the run still completes.
    #[test]
    fn des_survives_random_worker_deaths(
        seed in 0u64..1 << 48,
        drop in 0.0f64..0.25,
        dead_node in 0usize..2,
        dead_worker in 0usize..2,
        at_us in 1u64..1_000_000,
        policy_i in 0usize..3,
        tiles in 24u64..64,
    ) {
        let faults = FaultConfig {
            drop: FaultProb::uniform(drop),
            deaths: vec![WorkerDeathSpec {
                node: dead_node,
                worker: dead_worker,
                at: SimTime(at_us * 1_000),
            }],
            recovery: RecoveryConfig::standard(),
            seed,
            ..FaultConfig::none()
        };
        let wl = workload(tiles);
        let report = run_nbia(&faulty_sim(pick_policy(policy_i), faults), &wl);
        prop_assert_eq!(report.total_tasks, wl.total_buffers());
    }

    /// The threaded native backend under random transient failures and a
    /// scheduled worker death: every payload comes out exactly once.
    #[test]
    fn native_conserves_tasks_under_random_faults(
        seed in 0u64..1 << 48,
        fail in 0.0f64..0.40,
        kill in prop::bool::ANY,
        after in 0u64..20,
        policy_i in 0usize..3,
        tasks in 40u64..120,
    ) {
        let deaths = if kill {
            vec![LocalDeathSpec {
                stage: 0,
                kind: DeviceKind::Cpu,
                index: 0,
                after,
            }]
        } else {
            Vec::new()
        };
        let faults = LocalFaults {
            seed,
            task_fail: fail,
            deaths,
        };
        let kind = pick_policy(policy_i).kind;
        let mut p = Pipeline::new(kind).with_faults(faults);
        p.add_stage(
            Arc::new(Tag),
            vec![
                WorkerSpec {
                    kind: DeviceKind::Cpu,
                    mode: ExecMode::Native,
                },
                WorkerSpec {
                    kind: DeviceKind::Cpu,
                    mode: ExecMode::Native,
                },
                WorkerSpec {
                    kind: DeviceKind::Gpu,
                    mode: ExecMode::Emulated { scale: 1e-5 },
                },
            ],
        );
        let sources = (0..tasks).map(task).collect();
        let (out, report) = p.run(sources, &oracle());
        prop_assert_eq!(out.len(), tasks as usize);
        prop_assert_eq!(report.total(), tasks);
        let mut values: Vec<u64> = out
            .into_iter()
            .map(|t| *t.payload.downcast::<u64>().unwrap())
            .collect();
        values.sort_unstable();
        prop_assert_eq!(
            values,
            (0..tasks).map(|i| i + 1_000).collect::<Vec<_>>(),
            "each task ran to completion exactly once"
        );
    }
}

/// Adds 1000 to the payload and forwards it — enough to prove the filter
/// body ran exactly once per task.
struct Tag;
impl LocalFilter for Tag {
    fn handle(&self, _d: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
        let v = *task.payload.downcast::<u64>().expect("u64 payload");
        out.forward(LocalTask::new(task.buffer, v + 1_000));
    }
}

/// An armed-but-inert fault layer is invisible: recovery enabled with
/// all-zero probabilities and no deaths produces a byte-identical JSONL
/// trace to a run with no fault layer at all, for every policy.
#[test]
fn inert_fault_layer_leaves_traces_byte_identical() {
    for policy in policies() {
        let wl = workload(48);
        let trace = |faults: FaultConfig| {
            let recorder = Recorder::enabled();
            let mut cfg = faulty_sim(policy, faults);
            cfg.recorder = recorder.clone();
            let report = run_nbia(&cfg, &wl);
            (jsonl::to_jsonl(&recorder.events()), report.makespan)
        };
        let (plain, plain_makespan) = trace(FaultConfig::none());
        let armed = FaultConfig {
            recovery: RecoveryConfig::standard(),
            ..FaultConfig::none()
        };
        let (inert, inert_makespan) = trace(armed);
        assert_eq!(plain_makespan, inert_makespan, "{policy:?}");
        assert_eq!(plain, inert, "{policy:?}: traces must be byte-identical");
    }
}

/// The issue's acceptance scenario, pinned: 20% uniform message drop and
/// the GPU worker of node 0 dying 100 ms in. Both policies must complete
/// the full workload; the DDWRR run must surface the death and the
/// reassignments in its trace; and DDWRR's health-aware weighting must
/// beat DDFCFS on the *identical* fault schedule.
#[test]
fn ddwrr_beats_ddfcfs_under_drop_plus_gpu_death() {
    let wl = WorkloadSpec {
        tiles: 400,
        ..WorkloadSpec::paper_base(0.2)
    };
    let run = |policy: Policy| -> (SimReport, Vec<(String, u64)>) {
        let recorder = Recorder::enabled();
        let faults = FaultConfig {
            drop: FaultProb::uniform(0.2),
            deaths: vec![WorkerDeathSpec {
                node: 0,
                worker: 1, // homogeneous nodes are (cpu, gpu): worker 1 is the GPU
                at: at_millis(100),
            }],
            recovery: RecoveryConfig::standard(),
            seed: 42,
            ..FaultConfig::none()
        };
        let mut cfg = faulty_sim(policy, faults);
        cfg.recorder = recorder.clone();
        let report = run_nbia(&cfg, &wl);
        let events = recorder.events();
        let mut counts = vec![
            ("worker_died".to_string(), 0),
            ("task_reassigned".to_string(), 0),
        ];
        for e in &events {
            match e.kind {
                EventKind::WorkerDied { .. } => counts[0].1 += 1,
                EventKind::TaskReassigned { .. } => counts[1].1 += 1,
                _ => {}
            }
        }
        (report, counts)
    };

    let (ddfcfs, _) = run(Policy::ddfcfs(8));
    let (ddwrr, counts) = run(Policy::ddwrr(30));

    assert_eq!(ddfcfs.total_tasks, wl.total_buffers());
    assert_eq!(ddwrr.total_tasks, wl.total_buffers());
    assert_eq!(counts[0], ("worker_died".to_string(), 1));
    assert!(
        counts[1].1 > 0,
        "the dead GPU's in-flight batch must be reassigned, got {counts:?}"
    );
    assert!(
        ddwrr.makespan < ddfcfs.makespan,
        "DDWRR must beat DDFCFS under the identical fault schedule \
         (ddwrr {:?} vs ddfcfs {:?})",
        ddwrr.makespan,
        ddfcfs.makespan
    );
}

/// The learned-policy chaos scenario (DESIGN.md §16): the same 20% drop
/// plus mid-run GPU death, under the contextual bandit. The learner must
/// not wedge the run: conservation holds, the online estimator stops
/// crediting the dead worker the moment it dies (its `profile_updated`
/// stream at that device ends at the death), the survivors keep feeding
/// the profile, and the policy keeps rendering decisions on the
/// health-decayed weights all the way to completion.
#[test]
fn bandit_estimator_stops_crediting_a_dead_gpu() {
    let wl = WorkloadSpec {
        tiles: 400,
        ..WorkloadSpec::paper_base(0.2)
    };
    let recorder = Recorder::enabled();
    let faults = FaultConfig {
        drop: FaultProb::uniform(0.2),
        deaths: vec![WorkerDeathSpec {
            node: 0,
            worker: 1, // homogeneous nodes are (cpu, gpu): worker 1 is the GPU
            at: at_millis(100),
        }],
        recovery: RecoveryConfig::standard(),
        seed: 42,
        ..FaultConfig::none()
    };
    let mut cfg = faulty_sim(Policy::bandit(30), faults);
    cfg.recorder = recorder.clone();
    let report = run_nbia(&cfg, &wl);
    assert_eq!(report.total_tasks, wl.total_buffers(), "conservation");

    let events = recorder.events();
    let death = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::WorkerDied { .. }))
        .expect("the scheduled GPU death must surface in the trace");
    let dead_dev = death.origin;
    assert_eq!(dead_dev.kind, Some(DeviceKind::Gpu), "worker 1 is the GPU");

    let updates_after = |dev_matches: &dyn Fn(&TraceEvent) -> bool| {
        events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ProfileUpdated { .. }))
            .filter(|e| e.ts_ns > death.ts_ns)
            .filter(|e| dev_matches(e))
            .count()
    };
    assert_eq!(
        updates_after(&|e| e.origin == dead_dev),
        0,
        "a dead worker must stop feeding the online profile"
    );
    assert!(
        updates_after(&|e| e.origin != dead_dev) > 0,
        "survivors must keep feeding the online profile after the death"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::PolicyDecision { .. }) && e.ts_ns > death.ts_ns),
        "the bandit must keep deciding on health-decayed weights after the death"
    );
}

/// A worker of the *middle* filter of a three-filter graph dies mid-run:
/// the survivor of that filter absorbs the re-enqueued task, every
/// payload still crosses all three filters exactly once, the per-edge
/// delivery counts conserve (a reassignment is a re-queue, not a second
/// edge delivery), and the trace pins both the death and the
/// reassignment to filter 1 — not to whichever filter the buffer came
/// from or was heading to.
#[test]
fn killed_mid_stage_worker_conserves_every_edge() {
    use anthill_repro::core::policy::PolicyKind;

    const TASKS: u64 = 120;
    let faults = LocalFaults {
        seed: 11,
        task_fail: 0.0,
        deaths: vec![LocalDeathSpec {
            stage: 1,
            kind: DeviceKind::Cpu,
            index: 0,
            after: 5,
        }],
    };
    let mut p = Pipeline::new(PolicyKind::DdWrr)
        .with_graph(pipeline3())
        .with_faults(faults);
    p.add_stage(Arc::new(Tag), cpu_workers(1));
    // The victim's filter: two emulated CPU slots busy-wait each task's
    // modeled cost, forcing both to interleave so slot 0 certainly
    // reaches its 5-task death trigger while work remains.
    p.add_stage(Arc::new(Tag), emulated_cpu_workers(2));
    p.add_stage(Arc::new(Tag), cpu_workers(1));

    let recorder = Recorder::enabled();
    let sources = (0..TASKS).map(task).collect();
    let (out, report) = p.run_traced(sources, &oracle(), &recorder);

    assert_eq!(out.len() as u64, TASKS);
    assert_eq!(
        report.total(),
        3 * TASKS,
        "one completion per task per filter"
    );
    let mut values: Vec<u64> = out
        .into_iter()
        .map(|t| *t.payload.downcast::<u64>().unwrap())
        .collect();
    values.sort_unstable();
    assert_eq!(
        values,
        (0..TASKS).map(|i| i + 3_000).collect::<Vec<_>>(),
        "each task crossed all three filters exactly once"
    );
    // Per-edge conservation: the reassignment re-queues the popped buffer
    // inside filter 1, so neither edge sees an extra delivery.
    assert_eq!(report.edge_delivered[&0], TASKS, "stage0 -> stage1 edge");
    assert_eq!(report.edge_delivered[&1], TASKS, "stage1 -> stage2 edge");

    let events = recorder.events();
    let deaths: Vec<_> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::WorkerDied { .. }))
        .collect();
    assert_eq!(deaths.len(), 1, "exactly one worker died");
    assert_eq!(deaths[0].origin.node, 1, "the death happened on filter 1");
    let reassigned: Vec<_> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TaskReassigned { .. }))
        .collect();
    assert_eq!(reassigned.len(), 1, "the dying slot held exactly one task");
    assert_eq!(
        reassigned[0].origin.node, 1,
        "the reassignment must be scoped to the victim's filter"
    );
    assert_eq!(
        reassigned[0].origin.kind, None,
        "reassignment is filter-scoped, not device-scoped"
    );
}

/// The TCP backend against *real* process death: two `net_worker` child
/// processes serve a concurrent run over loopback, and one is killed
/// outright mid-run. The OS closing the victim's socket is the only
/// death signal; the coordinator must fold it into the engine's recovery
/// path — survivor absorbs the orphaned in-flight work, every task still
/// completes exactly once, and the trace records `worker_died` plus at
/// least one `task_reassigned`.
#[test]
fn killed_worker_process_is_absorbed_by_the_survivor() {
    const TASKS: u64 = 200;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("listener addr").to_string();
    let mut children = Vec::new();
    let mut workers = Vec::new();
    // Slot 0 executes instantly; slot 1 — the victim — spins 10 s per
    // task, far past the kill, so it is deterministically mid-task with
    // a delivered buffer in flight when the signal lands. (A timed kill
    // against equal workers races the delivery gap and flakes.)
    for (index, behavior) in [(0, "identity"), (1, "busy:10000000")] {
        let child = std::process::Command::new(env!("CARGO_BIN_EXE_net_worker"))
            .args([addr.as_str(), behavior])
            .stdin(std::process::Stdio::null())
            .spawn()
            .expect("spawn net_worker");
        children.push(child);
        let (stream, _) = listener.accept().expect("worker connect");
        workers.push(NetWorkerConn {
            device: DeviceId {
                node: 0,
                kind: DeviceKind::Cpu,
                index,
            },
            stream,
        });
    }
    let mut victim = children.remove(1);
    let mut survivor = children.remove(0);

    let recorder = Recorder::enabled();
    let mut cfg = NetConfig::new(Policy::ddwrr(8));
    cfg.recovery = RecoveryConfig::standard();
    cfg.recorder = recorder.clone();
    let sources: Vec<DataBuffer> = (0..TASKS).map(|id| task(id).buffer).collect();

    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(30));
        let _ = victim.kill();
        let _ = victim.wait();
    });
    let out = run_concurrent(cfg, workers, sources, oracle()).expect("net run");
    killer.join().expect("killer thread");
    assert!(
        survivor.wait().expect("reap survivor").success(),
        "the surviving worker must exit cleanly on Shutdown"
    );

    assert_eq!(out.total, TASKS, "every task completes despite the kill");
    assert_eq!(out.deaths, 1, "exactly one worker died");
    let events = recorder.events();
    let died = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::WorkerDied { .. }))
        .count();
    let reassigned = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TaskReassigned { .. }))
        .count();
    assert_eq!(died, 1, "the trace must record the process death");
    assert!(
        reassigned >= 1,
        "the victim's in-flight work must be reassigned, got {reassigned}"
    );
    // The merged trace (including the survivors' re-stamped worker spans)
    // still round-trips the JSONL schema after a chaotic run.
    let text = jsonl::to_jsonl(&events);
    let parsed = jsonl::parse_jsonl(&text).expect("schema-valid trace");
    assert_eq!(parsed, events, "trace round-trip mismatch");
}

/// A worker process dies in the middle of an *open-loop* load run under
/// the shed-oldest policy: the intake must stay bounded through the
/// recovery, admission must conserve with every completion counted
/// exactly once (reassigned tasks included), and the SLO report rendered
/// from the run must still validate against the `BENCH_load.json` schema.
#[test]
fn killed_worker_mid_load_run_keeps_the_slo_report_schema_valid() {
    use anthill_repro::bench::load::{
        render_load_report, validate_load_report, ArrivalProfile, DepthPoint, LatencyHistogram,
        LatencyStats, LoadRunRow,
    };
    use anthill_repro::core::engine::{AdmissionConfig, OverloadPolicy};
    use anthill_repro::core::net::run_concurrent_load;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("listener addr").to_string();
    let mut children = Vec::new();
    let mut workers = Vec::new();
    // Slot 0 busy-waits 300 µs per task (slow enough that 10k arrivals/s
    // saturate it and the shed policy engages); slot 1 — the victim —
    // spins 10 s per task so it is deterministically mid-task when the
    // kill lands.
    for (index, behavior) in [(0, "busy:300"), (1, "busy:10000000")] {
        let child = std::process::Command::new(env!("CARGO_BIN_EXE_net_worker"))
            .args([addr.as_str(), behavior])
            .stdin(std::process::Stdio::null())
            .spawn()
            .expect("spawn net_worker");
        children.push(child);
        let (stream, _) = listener.accept().expect("worker connect");
        workers.push(NetWorkerConn {
            device: DeviceId {
                node: 0,
                kind: DeviceKind::Cpu,
                index,
            },
            stream,
        });
    }
    let mut victim = children.remove(1);
    let mut survivor = children.remove(0);

    let recorder = Recorder::enabled();
    let mut cfg = NetConfig::new(Policy::ddfcfs(4));
    cfg.recovery = RecoveryConfig::standard();
    cfg.recorder = recorder.clone();
    let arrivals = ArrivalProfile::Poisson { rate_hz: 10_000.0 }.schedule(21, 1_200);
    let admission = AdmissionConfig {
        inflight_cap: 4,
        queue_cap: 8,
        policy: OverloadPolicy::ShedOldest,
    };

    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(30));
        let _ = victim.kill();
        let _ = victim.wait();
    });
    let mut ids: Vec<u64> = Vec::new();
    let mut hist = LatencyHistogram::new();
    let report = run_concurrent_load(
        cfg,
        admission,
        workers,
        &arrivals,
        &mut |i, _| task(i).buffer,
        std::time::Duration::from_millis(1),
        oracle(),
        &mut |t| {
            ids.push(t.buffer);
            hist.record(t.e2e_ns);
        },
    )
    .expect("net load run survives the kill");
    killer.join().expect("killer thread");
    assert!(
        survivor.wait().expect("reap survivor").success(),
        "the surviving worker must exit cleanly on Shutdown"
    );

    assert_eq!(report.outcome.deaths, 1, "exactly one worker died");
    assert!(
        report.admission.conserved(),
        "admission must conserve through the death: {:?}",
        report.admission
    );
    assert_eq!(report.admission.generated, 1_200);
    assert!(
        report.admission.shed > 0,
        "the saturating schedule must shed: {:?}",
        report.admission
    );
    assert_eq!(
        report.completed, report.admission.admitted,
        "every admitted task (reassigned ones included) completes"
    );
    assert_eq!(ids.len() as u64, report.completed);
    let before = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), before, "no completion may be double-counted");
    assert!(
        report.queue_depth.iter().all(|s| s.intake <= 8),
        "intake must stay bounded through the recovery"
    );

    // The run's SLO report still renders into a schema-valid document.
    let stats = LatencyStats::from_histogram(&hist);
    let row = LoadRunRow {
        profile: "poisson".to_string(),
        backend: "net".to_string(),
        policy: "shed_oldest".to_string(),
        tasks: 1_200,
        admission: report.admission,
        completed: report.completed,
        queue: stats,
        service: stats,
        e2e: stats,
        queue_depth: report.queue_depth.iter().map(DepthPoint::from).collect(),
        wall_ms: 0.0,
    };
    let text = render_load_report(&[row], true, 21);
    validate_load_report(&text).expect("SLO report must stay schema-valid after the death");

    // The merged trace still round-trips, and the death is recorded.
    let events = recorder.events();
    let died = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::WorkerDied { .. }))
        .count();
    assert_eq!(died, 1, "the trace must record the process death");
    let text = jsonl::to_jsonl(&events);
    let parsed = jsonl::parse_jsonl(&text).expect("schema-valid trace");
    assert_eq!(parsed, events, "trace round-trip mismatch");
}

/// The rolling-restart acceptance scenario: a live concurrent TCP run
/// starts with two CPU workers; two replacement workers join mid-run via
/// the dynamic `Join`/`JoinAck` handshake, and the drain schedule then
/// retires each *initial* worker exactly once. No task may be lost, a
/// graceful leave is not a death, the trace must carry one
/// `worker_joined` per joiner and a `worker_draining`/`worker_left` pair
/// per retiree, no drained slot may be dispatched to after its drain
/// begins, and DDWRR must shift assignment share toward a joiner within
/// one request window of its join.
#[test]
fn rolling_restart_drains_and_rejoins_every_worker_with_zero_loss() {
    use anthill_repro::core::obs::DeviceRef;

    const TASKS: u64 = 400;
    /// DDWRR's static per-worker request window for this run.
    const WINDOW: usize = 8;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("listener addr").to_string();
    // The initial pool: two in-process CPU workers on ordinary
    // pre-connected sockets (slots 0 and 1).
    let workers = loopback_workers(&[DeviceKind::Cpu, DeviceKind::Cpu], Behavior::Identity);
    // The replacements connect immediately; the coordinator's acceptor
    // admits them from the listener backlog once the run is live, so both
    // joins land within the first few scheduler iterations.
    let joiners: Vec<_> = (0..2)
        .map(|_| spawn_joining_worker_thread(addr.clone(), 0, DeviceKind::Cpu, Behavior::Identity))
        .collect();
    // Retire each initial worker exactly once, staggered so the pool
    // rolls: [0,1] -> [0,1,2,3] -> [1,2,3] -> [2,3].
    let drains = vec![
        DrainAt {
            after_completions: 120,
            slot: 0,
        },
        DrainAt {
            after_completions: 240,
            slot: 1,
        },
    ];

    let recorder = Recorder::enabled();
    let mut cfg = NetConfig::new(Policy::ddwrr(WINDOW));
    cfg.recovery = RecoveryConfig::standard();
    cfg.recorder = recorder.clone();
    let sources: Vec<DataBuffer> = (0..TASKS).map(|id| task(id).buffer).collect();

    let out = run_concurrent_elastic(cfg, listener, drains, workers, sources, oracle())
        .expect("elastic net run");
    for j in joiners {
        let served = j
            .join()
            .expect("joiner thread")
            .expect("joiner exits cleanly on Shutdown");
        assert!(
            served > 0,
            "every joiner must have served at least one task"
        );
    }

    assert_eq!(
        out.outcome.total, TASKS,
        "zero task loss across the restart"
    );
    assert_eq!(out.outcome.deaths, 0, "graceful leaves are not deaths");
    assert_eq!(out.joins, 2, "both replacements were admitted");
    assert_eq!(out.drains, 2, "both initial workers were released");

    let events = recorder.events();
    let joined: Vec<DeviceRef> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::WorkerJoined { .. }))
        .map(|e| e.origin)
        .collect();
    assert_eq!(joined.len(), 2, "one worker_joined per admitted joiner");
    // Dynamic slots continue the io-slot numbering after the initial pool.
    assert_eq!(joined[0].node, 0);
    assert!(joined.iter().all(|o| o.index >= 2));
    let draining: Vec<DeviceRef> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::WorkerDraining { .. }))
        .map(|e| e.origin)
        .collect();
    let left = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::WorkerLeft))
        .count();
    assert_eq!(
        draining,
        vec![
            DeviceRef {
                node: 0,
                kind: Some(DeviceKind::Cpu),
                index: 0
            },
            DeviceRef {
                node: 0,
                kind: Some(DeviceKind::Cpu),
                index: 1
            },
        ],
        "each initial worker drains exactly once, in schedule order"
    );
    assert_eq!(left, 2, "each drained worker must be gracefully released");

    // A drained slot receives zero dispatches after its drain begins.
    for (i, e) in events.iter().enumerate() {
        if !matches!(e.kind, EventKind::WorkerDraining { .. }) {
            continue;
        }
        let later = events[i + 1..]
            .iter()
            .filter(|l| l.origin == e.origin && matches!(l.kind, EventKind::Dispatch { .. }))
            .count();
        assert_eq!(later, 0, "slot {} dispatched to after draining", e.origin);
    }

    // The join must shift DDWRR's assignment share toward the new worker
    // within one request window: among the first WINDOW * pool dispatches
    // after the first worker_joined event, the joiner appears.
    let join_pos = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::WorkerJoined { .. }))
        .expect("worker_joined in trace");
    let joiner = events[join_pos].origin;
    let horizon = WINDOW * 4; // one full window turn of the grown pool
    let dispatches: Vec<DeviceRef> = events[join_pos..]
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Dispatch { .. }))
        .map(|e| e.origin)
        .take(horizon)
        .collect();
    assert!(
        dispatches.contains(&joiner),
        "the joiner must win dispatches within one request window of \
         joining; first {horizon} post-join dispatches: {dispatches:?}"
    );
    // And the shift is a real share, not a one-off: the joiners together
    // absorb a measurable fraction of all post-join completions.
    let joiner_done = events[join_pos..]
        .iter()
        .filter(|e| e.origin.index >= 2 && matches!(e.kind, EventKind::Finish { .. }))
        .count() as u64;
    assert!(
        joiner_done >= TASKS / 10,
        "joiners must absorb a measurable share of the remaining work, got {joiner_done}"
    );
}

/// Deterministic companion to the rolling restart: the same join/drain
/// choreography replayed as a completion-keyed script on the
/// three-filter pipeline (native deterministic executor). Stage 1 gains
/// a joiner and then drains one original slot; every payload still
/// crosses all three filters exactly once and the per-edge tallies
/// conserve — membership churn may not leak or duplicate a single edge
/// delivery.
#[test]
fn elastic_pipeline3_restart_conserves_every_edge_tally() {
    use anthill_repro::core::policy::PolicyKind;

    const TASKS: u64 = 120;
    let schedule = MembershipSchedule::new(vec![
        ScheduledAction {
            after_completions: 40,
            action: MemberAction::Join {
                node: 1,
                kind: DeviceKind::Cpu,
            },
        },
        ScheduledAction {
            after_completions: 50,
            action: MemberAction::Join {
                node: 2,
                kind: DeviceKind::Cpu,
            },
        },
        ScheduledAction {
            after_completions: 90,
            action: MemberAction::Drain { node: 1, worker: 0 },
        },
        ScheduledAction {
            after_completions: 120,
            action: MemberAction::Drain { node: 2, worker: 0 },
        },
    ]);
    let mut p = Pipeline::new(PolicyKind::DdWrr).with_graph(pipeline3());
    p.add_stage(Arc::new(Tag), cpu_workers(1));
    p.add_stage(Arc::new(Tag), cpu_workers(2));
    p.add_stage(Arc::new(Tag), cpu_workers(2));

    let sources = (0..TASKS).map(task).collect();
    let (out, report) = p.run_deterministic_elastic(sources, &oracle(), schedule);

    assert_eq!(out.len() as u64, TASKS);
    assert_eq!(
        report.total(),
        3 * TASKS,
        "one completion per task per filter"
    );
    let mut values: Vec<u64> = out
        .into_iter()
        .map(|t| *t.payload.downcast::<u64>().unwrap())
        .collect();
    values.sort_unstable();
    assert_eq!(
        values,
        (0..TASKS).map(|i| i + 3_000).collect::<Vec<_>>(),
        "each task crossed all three filters exactly once"
    );
    assert_eq!(report.edge_delivered[&0], TASKS, "stage0 -> stage1 edge");
    assert_eq!(report.edge_delivered[&1], TASKS, "stage1 -> stage2 edge");
}
