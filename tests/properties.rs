//! Property-based tests over the core data structures and protocol state
//! machines (DESIGN.md §6 lists the invariants).

use anthill_repro::core::buffer::{BufferId, DataBuffer};
use anthill_repro::core::dqaa::Dqaa;
use anthill_repro::core::obs::{jsonl, EventKind, Recorder};
use anthill_repro::core::policy::Policy;
use anthill_repro::core::queue::SharedQueue;
use anthill_repro::core::sim::{run_nbia, SimConfig, WorkloadSpec};
use anthill_repro::core::transfer::AdaptiveStreams;
use anthill_repro::estimator::{KnnEstimator, Normalizer, ProfileStore, TaskParams};
use anthill_repro::hetsim::{ClusterSpec, DeviceKind, TaskShape};
use anthill_repro::simkit::{DurationHistogram, Engine, Scheduler, SimDuration, SimTime, World};
use proptest::prelude::*;

fn buffer(id: u64) -> DataBuffer {
    DataBuffer {
        id: BufferId(id),
        params: TaskParams::nums(&[id as f64]),
        shape: TaskShape {
            cpu: SimDuration::from_micros(10),
            gpu_kernel: SimDuration::from_micros(10),
            bytes_in: 100,
            bytes_out: 10,
        },
        level: 0,
        task: id,
    }
}

proptest! {
    /// The engine delivers events in nondecreasing time order, FIFO within
    /// a timestamp, and drains completely.
    #[test]
    fn engine_orders_arbitrary_schedules(times in prop::collection::vec(0u64..1_000, 1..200)) {
        struct Collect {
            seen: Vec<u64>,
        }
        impl World for Collect {
            type Event = u64;
            fn handle(&mut self, now: SimTime, ev: u64, _s: &mut Scheduler<u64>) {
                assert_eq!(now.as_nanos(), ev, "event delivered at its scheduled time");
                self.seen.push(ev);
            }
        }
        let mut eng = Engine::new(Collect { seen: vec![] });
        for &t in &times {
            eng.schedule(SimTime(t), t);
        }
        eng.run();
        let seen = &eng.world().seen;
        prop_assert_eq!(seen.len(), times.len());
        prop_assert!(seen.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Popping best-per-device from the shared queue yields weights in
    /// nonincreasing order and consumes each buffer exactly once across
    /// any interleaving of consumers.
    #[test]
    fn shared_queue_conserves_and_orders(
        weights in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..100),
        picks in prop::collection::vec(prop::bool::ANY, 0..120),
    ) {
        let mut q = SharedQueue::new();
        for (i, &(wc, wg)) in weights.iter().enumerate() {
            q.insert(buffer(i as u64), [wc, wg], None);
        }
        let mut seen = std::collections::HashSet::new();
        let mut count = 0usize;
        for &gpu in &picks {
            let kind = if gpu { DeviceKind::Gpu } else { DeviceKind::Cpu };
            if let Some((b, _)) = q.pop_best(kind) {
                prop_assert!(seen.insert(b.id), "duplicate {:?}", b.id);
                count += 1;
            }
        }
        while let Some((b, _)) = q.pop_fifo() {
            prop_assert!(seen.insert(b.id));
            count += 1;
        }
        prop_assert_eq!(count, weights.len());
    }

    /// A dedicated GPU consumer drains buffers in nonincreasing GPU-weight
    /// order.
    #[test]
    fn pop_best_is_monotone(weights in prop::collection::vec(0.0f64..100.0, 1..100)) {
        let mut q = SharedQueue::new();
        for (i, &w) in weights.iter().enumerate() {
            q.insert(buffer(i as u64), [1.0, w], None);
        }
        let mut last = f64::INFINITY;
        while let Some((b, _)) = q.pop_best(DeviceKind::Gpu) {
            let w = weights[b.id.0 as usize];
            prop_assert!(w <= last + 1e-12, "{w} after {last}");
            last = w;
        }
    }

    /// DQAA's target window stays within [1, max] for arbitrary
    /// measurement sequences, and converges to the latency/processing
    /// ratio under stationary inputs.
    #[test]
    fn dqaa_bounded_and_convergent(
        obs in prop::collection::vec((0u64..10_000, 1u64..10_000), 1..200),
        max_target in 1usize..64,
        ratio in 1u64..20,
    ) {
        let mut d = Dqaa::new(max_target);
        for &(lat, proc_) in &obs {
            d.observe_latency(SimDuration::from_micros(lat));
            d.observe_processing(SimDuration::from_micros(proc_));
            prop_assert!(d.target() >= 1 && d.target() <= max_target);
        }
        // Stationary phase: latency = ratio × processing.
        for _ in 0..200 {
            d.observe_latency(SimDuration::from_micros(ratio * 100));
            d.observe_processing(SimDuration::from_micros(100));
        }
        let expect = (ratio as usize).min(max_target).max(1);
        prop_assert_eq!(d.target(), expect);
    }

    /// Algorithm 1's stream count stays within [1, max_events] under any
    /// throughput feedback.
    #[test]
    fn adaptive_streams_bounded(
        feedback in prop::collection::vec(0.0f64..1e6, 1..200),
        max_events in 1usize..512,
    ) {
        let mut ctl = AdaptiveStreams::new(max_events);
        for &t in &feedback {
            ctl.observe_throughput(t);
            prop_assert!(ctl.concurrent_events() >= 1);
            prop_assert!(ctl.concurrent_events() <= max_events);
        }
    }

    /// The estimator distance is a pseudometric on sampled parameter
    /// vectors: nonnegative, symmetric, zero on self, triangle inequality.
    #[test]
    fn estimator_distance_is_pseudometric(
        rows in prop::collection::vec(prop::collection::vec(-1e3f64..1e3, 3), 3..20),
    ) {
        let mut store = ProfileStore::new("p");
        for r in &rows {
            store.add_cpu_gpu(TaskParams::nums(r), 1.0, 1.0);
        }
        let norm = Normalizer::fit(&store);
        let p: Vec<TaskParams> = rows.iter().map(|r| TaskParams::nums(r)).collect();
        for a in &p {
            prop_assert!(norm.distance(a, a).abs() < 1e-9);
            for b in &p {
                let dab = norm.distance(a, b);
                prop_assert!(dab >= 0.0);
                prop_assert!((dab - norm.distance(b, a)).abs() < 1e-9);
                for c in &p {
                    let dac = norm.distance(a, c);
                    let dcb = norm.distance(c, b);
                    prop_assert!(dab <= dac + dcb + 1e-9);
                }
            }
        }
    }

    /// kNN with k=1 queried exactly on a training point returns that
    /// point's measured time (when parameters are unique).
    #[test]
    fn knn_k1_is_exact_on_training_points(
        raw in prop::collection::vec(-1e4f64..1e4, 2..30),
    ) {
        // Deduplicate: identical parameters would make k=1 ambiguous.
        let mut xs = raw;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
        let mut store = ProfileStore::new("p");
        for (i, &x) in xs.iter().enumerate() {
            store.add_cpu_gpu(TaskParams::nums(&[x]), (i + 1) as f64, 1.0);
        }
        let est = KnnEstimator::fit(store, 1);
        for (i, &x) in xs.iter().enumerate() {
            // Skip points that collide after normalization.
            let t = est
                .predict_time(anthill_repro::estimator::DeviceClass::CPU, &TaskParams::nums(&[x]))
                .unwrap();
            if xs.iter().filter(|&&y| (y - x).abs() < 1e-9).count() == 1 {
                prop_assert!((t - (i + 1) as f64).abs() < 1e-9, "x={x} t={t}");
            }
        }
    }

    /// FIFO servers never start a job before its submission, never overlap
    /// jobs, and accumulate exactly the submitted service time.
    #[test]
    fn fifo_server_is_a_proper_single_server(
        jobs in prop::collection::vec((0u64..10_000, 1u64..1_000), 1..100),
    ) {
        use anthill_repro::simkit::FifoServer;
        let mut server = FifoServer::new();
        let mut last_finish = SimTime::ZERO;
        let mut total = 0u64;
        for &(at, service) in &jobs {
            let (start, finish) = server.submit(SimTime(at), SimDuration(service));
            prop_assert!(start >= SimTime(at), "started before submission");
            prop_assert!(start >= last_finish, "overlapping service");
            prop_assert_eq!(finish, start + SimDuration(service));
            last_finish = finish;
            total += service;
        }
        prop_assert_eq!(server.busy_time(), SimDuration(total));
        prop_assert_eq!(server.jobs(), jobs.len() as u64);
    }

    /// Network deliveries to one destination preserve per-sender order,
    /// and bulk messages are never delivered before their serialization
    /// could possibly complete.
    #[test]
    fn network_respects_order_and_bandwidth(
        sizes in prop::collection::vec(2_000u64..1_000_000, 1..50),
    ) {
        use anthill_repro::hetsim::{NetParams, Network};
        let params = NetParams::gigabit_ethernet();
        let bw = params.bandwidth_bps;
        let mut net = Network::new(2, params);
        let mut last = SimTime::ZERO;
        let mut clock = SimTime::ZERO;
        for &bytes in &sizes {
            let arrival = net.send(clock, 0, 1, bytes);
            prop_assert!(arrival >= last, "reordered delivery");
            let min_wire = SimDuration::from_secs_f64(bytes as f64 / bw);
            prop_assert!(arrival >= clock + min_wire, "faster than the wire");
            last = arrival;
            clock += SimDuration::from_micros(1);
        }
    }

    /// Pyramid downsampling preserves total brightness within rounding.
    #[test]
    fn downsample_conserves_brightness(seed in 0u64..1_000, class_idx in 0usize..3) {
        use anthill_repro::kernels::pyramid::downsample;
        use anthill_repro::kernels::tiles::{TileClass, TileGenerator};
        let class = TileClass::ALL[class_idx];
        let side = 32u32;
        let px = TileGenerator::new(seed).generate(class, side);
        let sum = |p: &[anthill_repro::kernels::color::Rgb8]| {
            p.iter().map(|q| u64::from(q.r) + u64::from(q.g) + u64::from(q.b)).sum::<u64>() as f64
                / p.len() as f64
        };
        let before = sum(&px);
        let after = sum(&downsample(&px, side));
        // Integer floor division loses at most 0.75 per channel per pixel.
        prop_assert!((before - after).abs() <= 2.5, "{before} vs {after}");
    }

    /// Workload recalculation marking is exact and evenly spread for any
    /// rate and tile count.
    #[test]
    fn workload_recalc_exact(tiles in 1u64..5_000, rate in 0.0f64..1.0) {
        let w = WorkloadSpec {
            tiles,
            recalc_rate: rate,
            ..WorkloadSpec::paper_base(rate)
        };
        let marked = (0..tiles).filter(|&t| w.is_recalc(t)).count() as u64;
        prop_assert_eq!(marked, w.recalc_count());
        prop_assert_eq!(w.total_buffers(), tiles + marked);
    }
}

/// A histogram over the given nanosecond samples.
fn hist_of(samples: &[u64]) -> DurationHistogram {
    let mut h = DurationHistogram::new();
    for &ns in samples {
        h.record(SimDuration(ns));
    }
    h
}

/// A small traced simulator run (observability invariants).
fn traced_run(tiles: u64, seed: u64) -> Recorder {
    let workload = WorkloadSpec {
        tiles,
        ..WorkloadSpec::paper_base(0.15)
    };
    let mut cfg = SimConfig::new(ClusterSpec::heterogeneous(1, 1), Policy::odds());
    cfg.seed = seed;
    cfg.use_estimator = false;
    let rec = Recorder::enabled();
    cfg.recorder = rec.clone();
    run_nbia(&cfg, &workload);
    rec
}

proptest! {
    /// Histogram merge is associative and conserves counts, bucket mass,
    /// and the maximum — the invariant that lets per-device histograms be
    /// merged in any order when aggregating metrics.
    #[test]
    fn histogram_merge_is_associative_and_count_preserving(
        a in prop::collection::vec(1u64..1_000_000_000, 0..60),
        b in prop::collection::vec(1u64..1_000_000_000, 0..60),
        c in prop::collection::vec(1u64..1_000_000_000, 0..60),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // left = (a ⊕ b) ⊕ c, right = a ⊕ (b ⊕ c)
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.max(), right.max());
        // Count- and mass-preserving.
        prop_assert_eq!(left.count(), (a.len() + b.len() + c.len()) as u64);
        let mass: u64 = left.bucket_counts().iter().sum();
        prop_assert_eq!(mass, left.count());
        // The sum (and hence the mean) is preserved up to f64 rounding.
        if left.count() > 0 {
            let exact: u64 = a.iter().chain(&b).chain(&c).sum();
            let mean = exact as f64 / left.count() as f64;
            let got = left.mean().0 as f64;
            prop_assert!((got - mean).abs() <= mean * 1e-9 + 1.0, "{got} vs {mean}");
        }
    }

    /// Virtual time never runs backwards in a DES trace: every event is
    /// recorded at the simulation clock, so trace order is timestamp
    /// order — except transfer events, which are stamped with the copy
    /// engine's (possibly future) occupancy start and instead guarantee
    /// `end_ns >= ts_ns`.
    #[test]
    fn sim_trace_time_is_monotone(tiles in 16u64..48, seed in 0u64..1_000) {
        let events = traced_run(tiles, seed).events();
        prop_assert!(!events.is_empty());
        let mut clock = 0u64;
        for e in &events {
            match e.kind {
                EventKind::Transfer { end_ns, .. } => {
                    prop_assert!(end_ns >= e.ts_ns, "transfer ends before it starts");
                }
                _ => {
                    prop_assert!(e.ts_ns >= clock, "time ran backwards: {e:?}");
                    clock = e.ts_ns;
                }
            }
        }
    }

    /// The DES trace is a pure function of (config, seed): two runs with
    /// the same seed serialize to byte-identical JSONL for any seed.
    #[test]
    fn sim_trace_is_deterministic_for_any_seed(tiles in 16u64..40, seed in 0u64..10_000) {
        let a = jsonl::to_jsonl(&traced_run(tiles, seed).events());
        let b = jsonl::to_jsonl(&traced_run(tiles, seed).events());
        prop_assert!(!a.is_empty());
        prop_assert_eq!(a, b);
    }
}

/// Regression pinned from a pre-shim proptest run of
/// `adaptive_streams_bounded`: the lone saved case of the (now deleted)
/// `properties.proptest-regressions` file, promoted to a named test
/// because the deterministic proptest shim never replays regression
/// files. A controller capped at one concurrent event, fed this
/// mixed-magnitude throughput series, must stay clamped to exactly one.
#[test]
fn adaptive_streams_stays_clamped_at_one_event_regression() {
    const FEEDBACK: [f64; 83] = [
        907512.3460583116,
        0.0,
        17072.854527066116,
        27430.489131093338,
        210542.64878182267,
        217615.7583953367,
        281794.7791893057,
        582886.6587053242,
        0.0,
        38476.81364175506,
        246806.62986905623,
        509371.4745141161,
        518045.2698112977,
        0.0,
        33900.564230637676,
        380654.22852458316,
        787843.9884773375,
        0.0,
        376838.0456125827,
        793767.9720265969,
        0.0,
        211991.11679705896,
        592652.772836175,
        0.0,
        114636.7277485009,
        192908.76196598023,
        489428.50665549113,
        0.0,
        236630.52809769055,
        975029.2436498895,
        0.0,
        849188.5491472551,
        0.0,
        92310.95980327492,
        220252.59921680056,
        319153.81989810424,
        582466.7864797111,
        622399.6772572882,
        0.0,
        13296.411339045722,
        455307.1524676907,
        539284.0843752112,
        566183.9077792215,
        0.0,
        353512.5667571986,
        523067.40359648253,
        560793.8581846821,
        0.0,
        318547.28967836854,
        686679.3636392159,
        0.0,
        153735.8739320905,
        452035.0820178216,
        509188.04754325096,
        826210.3777857916,
        0.0,
        52221.696883190285,
        119821.4669208114,
        557616.858603701,
        0.0,
        245084.77054304938,
        417770.75113198376,
        0.0,
        102305.41652601858,
        126427.06792418615,
        128295.3044797881,
        169716.01762514617,
        248552.4897488358,
        924258.3994222303,
        0.0,
        296511.03612671205,
        539580.4391470896,
        0.0,
        447422.1509355782,
        490986.196758328,
        0.0,
        166171.87081887847,
        236257.25673592498,
        665312.71558602,
        0.0,
        465375.3943238023,
        513261.8365782425,
        835993.5214826562,
    ];
    let mut ctl = AdaptiveStreams::new(1);
    for &t in FEEDBACK.iter() {
        ctl.observe_throughput(t);
        assert_eq!(ctl.concurrent_events(), 1);
    }
}
