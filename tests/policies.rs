//! The learned-policy test suite (DESIGN.md §16): properties of the
//! online service-time estimator, determinism of the contextual bandit,
//! and task conservation under the learned policies on the DES and
//! native backends.
//!
//! 1. **Estimator convergence** — for arbitrary warm-up spans, a
//!    stationary tail pulls the per-cell EWMA mean onto the stationary
//!    value, and the learned prediction never leaves the convex hull of
//!    what was observed.
//! 2. **Bandit determinism** — the exploration floor is a pure hash of
//!    `(seed, buffer)`, so two DES runs under the same seed must emit
//!    bit-identical `policy_decision` sequences and identical assignment
//!    counts.
//! 3. **Conservation** — random workloads (tiles, recalculation rate,
//!    seed) under Affinity and Bandit lose or duplicate no tasks on the
//!    DES, and the native deterministic executor returns every source.

mod common;

use std::collections::HashMap;
use std::sync::Arc;

use common::{cpu_gpu_workers, neutral_gpu};

use anthill_repro::core::buffer::DataBuffer;
use anthill_repro::core::local::{Emitter, LocalFilter, LocalTask, Pipeline};
use anthill_repro::core::obs::{EventKind, Recorder};
use anthill_repro::core::policy::learned::{LearnedConfig, LearnedWeights};
use anthill_repro::core::policy::{Policy, PolicyKind};
use anthill_repro::core::sim::{run_nbia, SimConfig, WorkloadSpec};
use anthill_repro::core::weights::{OracleWeights, WeightProvider};
use anthill_repro::estimator::{DeviceClass, OnlineProfile, TaskParams};
use anthill_repro::hetsim::{ClusterSpec, DeviceKind, GpuParams, NbiaCostModel};
use proptest::prelude::*;

fn tile(id: u64, side: u32) -> DataBuffer {
    let m = NbiaCostModel::paper_calibrated();
    DataBuffer {
        id: anthill_repro::core::buffer::BufferId(id),
        params: TaskParams::nums(&[f64::from(side)]),
        shape: m.tile(side),
        level: 0,
        task: id,
    }
}

fn learner(kind: PolicyKind) -> LearnedWeights<OracleWeights> {
    LearnedWeights::new(
        kind,
        OracleWeights::new(GpuParams::geforce_8800gt(), false),
        LearnedConfig::standard(7),
    )
}

// ---------------------------------------------------------------------
// 1. Online-estimator convergence properties
// ---------------------------------------------------------------------

proptest! {
    /// Any warm-up history is forgotten geometrically: a stationary tail
    /// of spans pulls the EWMA mean within a hair of the stationary
    /// value (`0.75^64` of the largest possible initial gap), and the
    /// cell tallies every span it saw.
    #[test]
    fn online_profile_converges_to_stationary_spans(
        warmup in prop::collection::vec(1e-6f64..1.0, 0..40),
        target in 1e-3f64..1.0,
    ) {
        let mut p = OnlineProfile::new(0.25, 64);
        let key = 42u64;
        for &s in &warmup {
            p.observe(DeviceClass::CPU, key, s);
        }
        for _ in 0..64 {
            p.observe(DeviceClass::CPU, key, target);
        }
        let mean = p.mean(DeviceClass::CPU, key).expect("cell exists");
        prop_assert!(
            (mean - target).abs() < 1e-6,
            "mean {mean} did not converge to {target}"
        );
        prop_assert_eq!(
            p.count(DeviceClass::CPU, key),
            warmup.len() as u64 + 64
        );
        // The other device class never saw a span: still cold.
        prop_assert_eq!(p.count(DeviceClass::GPU, key), 0);
    }

    /// Once a cell has `min_obs` spans the learned prediction is the
    /// online mean — an EWMA seeded from the first span — so it can
    /// never leave the convex hull of the observed spans, no matter how
    /// wrong the base oracle is.
    #[test]
    fn learned_prediction_stays_within_the_observed_hull(
        spans in prop::collection::vec(1e-6f64..10.0, 2..80),
    ) {
        let lw = learner(PolicyKind::Affinity);
        let b = tile(1, 128);
        for &s in &spans {
            lw.observe(&b, 0, 0, DeviceKind::Cpu, s).expect("update");
        }
        let lo = spans.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = spans.iter().cloned().fold(0.0f64, f64::max);
        let pred = lw.predict_time(&b, DeviceKind::Cpu);
        prop_assert!(
            pred >= lo - 1e-12 && pred <= hi + 1e-12,
            "prediction {pred} outside observed hull [{lo}, {hi}]"
        );
    }
}

// ---------------------------------------------------------------------
// 2. Bandit determinism on the DES
// ---------------------------------------------------------------------

/// One traced DES run: the `(buffer, arm, explore)` sequence of every
/// `policy_decision`, plus the per-device assignment counts.
#[allow(clippy::type_complexity)]
fn traced_bandit_run(seed: u64) -> (Vec<(u64, DeviceKind, u8)>, HashMap<DeviceKind, u64>) {
    let workload = WorkloadSpec {
        tiles: 250,
        ..WorkloadSpec::paper_base(0.08)
    };
    let mut cfg = SimConfig::new(ClusterSpec::heterogeneous(1, 1), Policy::bandit(8));
    cfg.seed = seed;
    cfg.recorder = Recorder::enabled();
    let report = run_nbia(&cfg, &workload);
    let events = cfg.recorder.take_events();
    let decisions: Vec<(u64, DeviceKind, u8)> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::PolicyDecision {
                buffer,
                arm,
                explore,
                ..
            } => Some((buffer, arm, explore)),
            _ => None,
        })
        .collect();
    let mut counts = HashMap::new();
    for (&(kind, _level), &n) in &report.tasks_by {
        *counts.entry(kind).or_insert(0) += n;
    }
    (decisions, counts)
}

/// Same seed ⇒ bit-identical decision sequence and assignment counts.
/// This is the determinism contract of `policy::learned`: exploration is
/// a pure hash, state mutates only on engine-ordered callbacks, and the
/// DES replays the same callback order for the same seed.
#[test]
fn bandit_runs_identically_under_the_same_seed() {
    let (dec_a, counts_a) = traced_bandit_run(7);
    let (dec_b, counts_b) = traced_bandit_run(7);
    assert!(!dec_a.is_empty(), "the bandit rendered no decisions");
    assert_eq!(dec_a, dec_b, "decision sequences diverged under one seed");
    assert_eq!(counts_a, counts_b, "assignments diverged under one seed");
    // The epsilon floor fires somewhere in 250+ decisions (5% ppm floor,
    // and the hash verdict is part of the replayed sequence).
    assert!(dec_a.len() >= 250, "every task gets at least one decision");
}

// ---------------------------------------------------------------------
// 3. Conservation under the learned policies
// ---------------------------------------------------------------------

proptest! {
    /// Random workloads on the heterogeneous DES cluster: whatever the
    /// learners decide, every generated buffer (tiles and recalculated
    /// high-resolution revisits alike) completes exactly once.
    #[test]
    fn learned_policies_conserve_tasks_on_the_des(
        tiles in 20u64..100,
        rate in 0.0f64..0.3,
        seed in 0u64..1_000_000_000,
        bandit in prop::bool::ANY,
    ) {
        let policy = if bandit {
            Policy::bandit(8)
        } else {
            Policy::affinity(8)
        };
        let workload = WorkloadSpec {
            tiles,
            ..WorkloadSpec::paper_base(rate)
        };
        let mut cfg = SimConfig::new(ClusterSpec::heterogeneous(1, 1), policy);
        cfg.seed = seed;
        let report = run_nbia(&cfg, &workload);
        prop_assert_eq!(
            report.total_tasks,
            workload.total_buffers(),
            "task lost or duplicated under {:?}", policy.kind
        );
    }
}

/// Forwards tasks unchanged.
struct Identity;
impl LocalFilter for Identity {
    fn handle(&self, _d: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
        out.forward(task);
    }
}

/// The native deterministic executor under each learned policy: every
/// source task comes out the other end exactly once, and the per-device
/// tallies account for all of them.
#[test]
fn learned_policies_conserve_tasks_on_the_native_backend() {
    const TILES: u64 = 160;
    let workload = WorkloadSpec {
        tiles: TILES,
        ..WorkloadSpec::paper_base(0.0)
    };
    for policy in [Policy::affinity(8), Policy::bandit(8)] {
        let weights = LearnedWeights::new(
            policy.kind,
            OracleWeights::new(neutral_gpu(), false),
            LearnedConfig::standard(7),
        );
        let sources: Vec<LocalTask> = (0..TILES)
            .map(|t| LocalTask::new(workload.low_buffer(t), ()))
            .collect();
        let mut p = Pipeline::new(policy.kind).with_request_window(policy.request_size);
        p.add_stage(Arc::new(Identity), cpu_gpu_workers());
        let (out, report) = p.run_deterministic(sources, &weights);
        assert_eq!(out.len() as u64, TILES, "{:?}: outputs lost", policy.kind);
        let handled: u64 = report.handled.values().sum();
        assert_eq!(handled, TILES, "{:?}: tallies disagree", policy.kind);
        // The learner really was in the loop: one observation per task.
        assert_eq!(weights.updates(), TILES, "{:?}", policy.kind);
        assert!(weights.decisions() > 0, "{:?}: no decisions", policy.kind);
    }
}
