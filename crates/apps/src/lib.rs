//! # anthill-apps — applications on the anthill runtime
//!
//! * [`nbia`] — the Neuroblastoma Image Analysis System (paper Section 2):
//!   the full multi-resolution classification pipeline, deployable on the
//!   native threaded runtime (real kernels) and on the simulated cluster
//!   (paper-scale experiments).
//! * [`vi`] — the vector-incrementer microbenchmark of Section 6.2.
//! * [`vm`] — the Virtual Microscope (the paper's reference \[8\]): a
//!   three-filter viewport-serving dataflow, exercising multi-stage
//!   pipelines and replicated stateful filters.
//! * [`bench_suite`] — the six estimator benchmark applications of
//!   Table 1, with parameter spaces, device-time models and real CPU
//!   kernels.

#![warn(missing_docs)]

pub mod bench_suite;
pub mod flows;
pub mod nbia;
pub mod vi;
pub mod vm;
