//! Multi-filter dataflow deployments of the estimator benchmark kernels:
//! real applications exercising the DAG runtime beyond NBIA's chain.
//!
//! * [`eclat`] — frequent-itemset mining as a two-stage candidate/mine
//!   pipeline: the candidate filter emits one task per frequent single
//!   item, replicated mine filters search that item's projected
//!   equivalence class, and the merged output equals the monolithic
//!   [`mine`](anthill_kernels::eclat::mine).
//! * [`pricing`] — Black-Scholes option pricing as a fan-out/fan-in
//!   diamond: a splitter round-robins contracts across two functionally
//!   identical pricing branches and a merger collects them, so results
//!   are independent of how the round-robin cursor split the batch.

use std::sync::Arc;

use anthill::buffer::{BufferId, DataBuffer};
use anthill::graph::DataflowGraph;
use anthill::local::{
    Emitter, ExecMode, LocalFilter, LocalReport, LocalTask, Pipeline, WorkerSpec,
};
use anthill::policy::PolicyKind;
use anthill::weights::WeightProvider;
use anthill_estimator::TaskParams;
use anthill_hetsim::{DeviceKind, TaskShape};
use anthill_simkit::SimDuration;

/// A neutral task shape for the flow tasks: equal CPU/GPU service time, no
/// transfer bytes, so scheduling splits stay interleaving-insensitive.
fn flow_shape(micros: u64) -> TaskShape {
    TaskShape {
        cpu: SimDuration::from_micros(micros),
        gpu_kernel: SimDuration::from_micros(micros),
        bytes_in: 0,
        bytes_out: 0,
    }
}

fn flow_buffer(id: u64, task: u64, micros: u64) -> DataBuffer {
    DataBuffer {
        id: BufferId(id),
        params: TaskParams::nums(&[micros as f64]),
        shape: flow_shape(micros),
        level: 0,
        task,
    }
}

fn cpu_native(n: usize) -> Vec<WorkerSpec> {
    vec![
        WorkerSpec {
            kind: DeviceKind::Cpu,
            mode: ExecMode::Native,
        };
        n
    ]
}

/// Eclat frequent-itemset mining as a two-stage replicated pipeline.
pub mod eclat {
    use super::*;
    use anthill_kernels::eclat::{mine, FrequentItemset, Transactions};

    /// The source payload: the whole transaction database and the support
    /// threshold.
    struct MiningJob {
        db: Transactions,
        min_support: u32,
    }

    /// One frequent single item's search subtree: its projected database
    /// (rows containing the item, restricted to larger items).
    struct Subtree {
        item: u32,
        support: u32,
        min_support: u32,
        projected: Transactions,
    }

    /// Stage 0 — candidate generation: count single-item supports and emit
    /// one task per frequent item, carrying its projection.
    struct CandidateFilter;

    impl LocalFilter for CandidateFilter {
        fn handle(&self, _device: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
            let job = task
                .payload
                .downcast::<MiningJob>()
                .expect("eclat mining job payload");
            let mut max_item = 0u32;
            for row in &job.db.rows {
                for &it in row {
                    max_item = max_item.max(it);
                }
            }
            let mut counts = vec![0u32; max_item as usize + 1];
            for row in &job.db.rows {
                for &it in row {
                    counts[it as usize] += 1;
                }
            }
            for item in 0..=max_item {
                let support = counts[item as usize];
                if support < job.min_support {
                    continue;
                }
                // Project: rows containing `item`, restricted to larger
                // items — the item's depth-first equivalence class.
                let projected = Transactions {
                    rows: job
                        .db
                        .rows
                        .iter()
                        .filter(|row| row.contains(&item))
                        .map(|row| row.iter().copied().filter(|&it| it > item).collect())
                        .collect(),
                };
                out.forward(LocalTask::new(
                    flow_buffer(1 + u64::from(item), u64::from(item), 50),
                    Subtree {
                        item,
                        support,
                        min_support: job.min_support,
                        projected,
                    },
                ));
            }
        }
    }

    /// Stage 1 — subtree mining: mine the projection and prefix every
    /// result with the subtree's item.
    struct MineFilter;

    impl LocalFilter for MineFilter {
        fn handle(&self, _device: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
            let sub = task
                .payload
                .downcast::<Subtree>()
                .expect("eclat subtree payload");
            let mut found = vec![FrequentItemset {
                items: vec![sub.item],
                support: sub.support,
            }];
            if !sub.projected.rows.is_empty() {
                for f in mine(&sub.projected, sub.min_support) {
                    let mut items = Vec::with_capacity(f.items.len() + 1);
                    items.push(sub.item);
                    items.extend(f.items);
                    found.push(FrequentItemset {
                        items,
                        support: f.support,
                    });
                }
            }
            out.forward(LocalTask::new(task.buffer, found));
        }
    }

    /// Run the two-stage eclat pipeline on the native threaded runtime
    /// with `replicas` mine workers. The merged result equals
    /// [`mine`]`(db, min_support)` exactly.
    pub fn run_pipeline<W: WeightProvider + Sync>(
        db: &Transactions,
        min_support: u32,
        policy: PolicyKind,
        replicas: usize,
        weights: &W,
    ) -> (Vec<FrequentItemset>, LocalReport) {
        let mut pipeline =
            Pipeline::new(policy).with_graph(DataflowGraph::pipeline(&["candidate", "mine"]));
        pipeline.add_stage(Arc::new(CandidateFilter), cpu_native(1));
        pipeline.add_stage(Arc::new(MineFilter), cpu_native(replicas.max(1)));
        let sources = vec![LocalTask::new(
            flow_buffer(0, 0, 50),
            MiningJob {
                db: db.clone(),
                min_support,
            },
        )];
        let (outputs, report) = pipeline.run(sources, weights);
        let mut merged: Vec<FrequentItemset> = outputs
            .into_iter()
            .flat_map(|t| {
                *t.payload
                    .downcast::<Vec<FrequentItemset>>()
                    .expect("eclat subtree result payload")
            })
            .collect();
        merged.sort_by(|a, b| {
            a.items
                .len()
                .cmp(&b.items.len())
                .then(a.items.cmp(&b.items))
        });
        (merged, report)
    }
}

/// Black-Scholes pricing as a fan-out/fan-in diamond.
pub mod pricing {
    use super::*;
    use anthill_kernels::black_scholes::{price, Option_, Priced};

    /// A contract on its way through the diamond.
    struct Contract {
        index: u64,
        option: Option_,
    }

    /// A priced contract leaving a branch.
    struct PricedContract {
        index: u64,
        priced: Priced,
    }

    /// Source: forward each contract; the graph's round-robin out-edges
    /// split the stream across the two branches.
    struct SplitFilter;

    impl LocalFilter for SplitFilter {
        fn handle(&self, _device: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
            out.forward(task);
        }
    }

    /// Branch: price the contract (both branches run this same filter).
    struct PriceFilter;

    impl LocalFilter for PriceFilter {
        fn handle(&self, _device: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
            let c = task
                .payload
                .downcast::<Contract>()
                .expect("pricing contract payload");
            out.forward(LocalTask::new(
                task.buffer,
                PricedContract {
                    index: c.index,
                    priced: price(c.option),
                },
            ));
        }
    }

    /// Sink: pass priced contracts through to the run output.
    struct MergeFilter;

    impl LocalFilter for MergeFilter {
        fn handle(&self, _device: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
            out.forward(task);
        }
    }

    /// Run a batch of contracts through the split → price×2 → merge
    /// diamond. Returns `(contract index, prices)` sorted by index — equal
    /// to pricing the batch directly, however the round-robin split fell.
    pub fn run_diamond<W: WeightProvider + Sync>(
        options: &[Option_],
        policy: PolicyKind,
        weights: &W,
    ) -> (Vec<(u64, Priced)>, LocalReport) {
        run_diamond_traced(
            options,
            policy,
            weights,
            &anthill::obs::Recorder::disabled(),
        )
    }

    /// [`run_diamond`] with observability: per-edge `edge_enqueued` events
    /// and the task lifecycle land in `recorder`.
    pub fn run_diamond_traced<W: WeightProvider + Sync>(
        options: &[Option_],
        policy: PolicyKind,
        weights: &W,
        recorder: &anthill::obs::Recorder,
    ) -> (Vec<(u64, Priced)>, LocalReport) {
        let mut pipeline = Pipeline::new(policy).with_graph(DataflowGraph::diamond(
            "split", "price_a", "price_b", "merge",
        ));
        pipeline.add_stage(Arc::new(SplitFilter), cpu_native(1));
        pipeline.add_stage(Arc::new(PriceFilter), cpu_native(1));
        pipeline.add_stage(Arc::new(PriceFilter), cpu_native(1));
        pipeline.add_stage(Arc::new(MergeFilter), cpu_native(1));
        let sources: Vec<LocalTask> = options
            .iter()
            .enumerate()
            .map(|(i, &option)| {
                LocalTask::new(
                    flow_buffer(i as u64, i as u64, 50),
                    Contract {
                        index: i as u64,
                        option,
                    },
                )
            })
            .collect();
        let (outputs, report) = pipeline.run_traced(sources, weights, recorder);
        let mut priced: Vec<(u64, Priced)> = outputs
            .into_iter()
            .map(|t| {
                let p = t
                    .payload
                    .downcast::<PricedContract>()
                    .expect("priced contract payload");
                (p.index, p.priced)
            })
            .collect();
        priced.sort_by_key(|&(i, _)| i);
        (priced, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anthill::weights::OracleWeights;
    use anthill_hetsim::GpuParams;
    use anthill_kernels::black_scholes::{price_batch, Option_};
    use anthill_kernels::eclat::{mine, Transactions};

    fn oracle() -> OracleWeights {
        OracleWeights::new(GpuParams::geforce_8800gt(), true)
    }

    fn classic_db() -> Transactions {
        Transactions {
            rows: vec![
                vec![1, 2, 5],
                vec![2, 4],
                vec![2, 3],
                vec![1, 2, 4],
                vec![1, 3],
                vec![2, 3],
                vec![1, 3],
                vec![1, 2, 3, 5],
                vec![1, 2, 3],
            ],
        }
    }

    #[test]
    fn eclat_pipeline_equals_monolithic_mining() {
        let db = classic_db();
        for min_support in [1, 2, 4] {
            let reference = mine(&db, min_support);
            let (merged, report) =
                eclat::run_pipeline(&db, min_support, PolicyKind::DdFcfs, 2, &oracle());
            assert_eq!(merged, reference, "min_support {min_support}");
            // One delivery over the candidate→mine edge per frequent
            // single item.
            let singles = reference.iter().filter(|f| f.items.len() == 1).count() as u64;
            assert_eq!(report.edge_delivered[&0], singles);
            assert_eq!(
                report.total(),
                1 + singles,
                "the job task plus one per subtree"
            );
        }
    }

    #[test]
    fn eclat_pipeline_handles_an_empty_database() {
        let (merged, report) = eclat::run_pipeline(
            &Transactions::default(),
            1,
            PolicyKind::DdFcfs,
            2,
            &oracle(),
        );
        assert!(merged.is_empty());
        assert_eq!(report.edge_delivered[&0], 0);
    }

    #[test]
    fn pricing_diamond_equals_the_direct_batch() {
        let options: Vec<Option_> = (0..40)
            .map(|i| Option_ {
                spot: 80.0 + f64::from(i),
                strike: 100.0,
                expiry: 0.5 + f64::from(i % 4) * 0.25,
                rate: 0.02,
                volatility: 0.3,
            })
            .collect();
        let reference = price_batch(&options);
        let (priced, report) = pricing::run_diamond(&options, PolicyKind::DdFcfs, &oracle());
        assert_eq!(priced.len(), 40);
        for (i, (idx, p)) in priced.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*p, reference[i], "contract {i}");
        }
        // The deterministic round-robin cursor splits the batch exactly
        // in half, and the branch edges conserve into the merge edges.
        assert_eq!(report.edge_delivered[&0], 20);
        assert_eq!(report.edge_delivered[&1], 20);
        assert_eq!(report.edge_delivered[&2], 20);
        assert_eq!(report.edge_delivered[&3], 20);
        assert_eq!(
            report.total(),
            120,
            "split + one branch + merge per contract"
        );
    }
}
