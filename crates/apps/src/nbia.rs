//! NBIA — the Neuroblastoma Image Analysis System (paper Section 2) on the
//! anthill runtime.
//!
//! Two deployments:
//!
//! * [`simulated`] — the paper-scale cluster configuration on the
//!   virtual-time executor (what the evaluation harness runs); thin
//!   conveniences over [`anthill::sim`].
//! * [`NbiaLocal`](run_local) — the real pipeline on the native threaded
//!   runtime: it generates synthetic tissue tiles, builds their
//!   multi-resolution pyramids, converts RGB → La\*b\*, extracts GLCM/LBP
//!   features, classifies stromal development with a hypothesis test, and
//!   recirculates low-confidence tiles at the next pyramid level — the
//!   full control flow of the paper's Figure 1, computing real values.
//!
//! The heavy filters (color conversion + statistical features) are fused
//! with the classifier into one stage, as the paper's optimized GPU
//! configuration fuses them to avoid unnecessary transfers
//! (`repro fusion` quantifies that choice).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use anthill::buffer::{BufferId, DataBuffer};
use anthill::local::{Emitter, ExecMode, LocalFilter, LocalTask, Pipeline, WorkerSpec};
use anthill::policy::PolicyKind;
use anthill::weights::WeightProvider;
use anthill_estimator::TaskParams;
use anthill_hetsim::{DeviceKind, NbiaCostModel};
use anthill_kernels::pyramid::TilePyramid;
use anthill_kernels::tiles::{tile_features, TileClass, TileClassifier, TileGenerator};

/// Re-exports and helpers for the simulated (paper-scale) deployment.
pub mod simulated {
    pub use anthill::sim::{run_nbia, SimConfig, SimReport, WorkloadSpec};
}

/// Configuration of a native-runtime NBIA run.
#[derive(Debug, Clone)]
pub struct NbiaLocalConfig {
    /// Number of tiles to analyze.
    pub tiles: u64,
    /// Low-resolution (starting) tile side in pixels.
    pub low_side: u32,
    /// Full-resolution tile side in pixels (a power-of-two multiple of
    /// `low_side`; the pyramid holds every level in between).
    pub high_side: u32,
    /// Classification confidence threshold of the hypothesis test; tiles
    /// below it climb to the next pyramid level.
    pub confidence_threshold: f64,
    /// RNG seed for tile synthesis.
    pub seed: u64,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Worker slots of the analysis stage.
    pub workers: Vec<WorkerSpec>,
}

impl Default for NbiaLocalConfig {
    fn default() -> Self {
        NbiaLocalConfig {
            tiles: 48,
            low_side: 32,
            high_side: 128,
            confidence_threshold: 0.25,
            seed: 0xB10,
            policy: PolicyKind::DdWrr,
            workers: vec![
                WorkerSpec {
                    kind: DeviceKind::Cpu,
                    mode: ExecMode::Native,
                },
                WorkerSpec {
                    kind: DeviceKind::Gpu,
                    mode: ExecMode::Emulated { scale: 1e-4 },
                },
            ],
        }
    }
}

/// One classified tile in the run output.
#[derive(Debug, Clone, PartialEq)]
pub struct TileResult {
    /// Tile index.
    pub tile: u64,
    /// The true (generated) class.
    pub truth: TileClass,
    /// The predicted class.
    pub predicted: TileClass,
    /// Pyramid level the decision was accepted at (0 = lowest resolution).
    pub level: u8,
    /// Decision confidence.
    pub confidence: f64,
}

/// Payload carried through the pipeline: the tile's whole pyramid (shared,
/// as the decomposition step stores every resolution) and its identity.
struct TilePayload {
    tile: u64,
    truth: TileClass,
    pyramid: Arc<TilePyramid>,
}

/// The fused analysis filter: color conversion + features + classifier +
/// the multi-resolution hypothesis-test loop over the pyramid.
struct AnalysisFilter {
    classifier: TileClassifier,
    cost: NbiaCostModel,
    threshold: f64,
    next_id: AtomicU64,
}

impl LocalFilter for AnalysisFilter {
    fn handle(&self, _device: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
        let payload = task
            .payload
            .downcast::<TilePayload>()
            .expect("NBIA tile payload");
        let level = task.buffer.level as usize;
        let (side, pixels) = payload.pyramid.level(level);
        let features = tile_features(pixels, side);
        let (decision, accepted) = self.classifier.accept(&features, self.threshold);
        let at_top = level + 1 >= payload.pyramid.depth();
        if accepted || at_top {
            let buffer_level = task.buffer.level;
            out.forward(LocalTask::new(
                task.buffer,
                TileResult {
                    tile: payload.tile,
                    truth: payload.truth,
                    predicted: decision.class,
                    level: buffer_level,
                    confidence: decision.confidence,
                },
            ));
        } else {
            // Hypothesis test failed: climb one pyramid level and
            // recirculate (Figure 1's feedback edge).
            let next_level = (level + 1) as u8;
            let next_side = payload.pyramid.side(next_level as usize);
            let buffer = DataBuffer {
                id: BufferId(self.next_id.fetch_add(1, Ordering::Relaxed)),
                params: TaskParams::nums(&[f64::from(next_side)]),
                shape: self.cost.tile(next_side),
                level: next_level,
                task: payload.tile,
            };
            out.recirculate(LocalTask::new(
                buffer,
                TilePayload {
                    tile: payload.tile,
                    truth: payload.truth,
                    pyramid: payload.pyramid,
                },
            ));
        }
    }
}

/// Run NBIA end-to-end on the native threaded runtime.
///
/// Returns the classified tiles (sorted by tile index) and the runtime's
/// execution report.
pub fn run_local<W: WeightProvider + Sync>(
    config: &NbiaLocalConfig,
    weights: &W,
) -> (Vec<TileResult>, anthill::local::LocalReport) {
    run_local_traced(config, weights, &anthill::obs::Recorder::disabled())
}

/// [`run_local`] with observability: the pipeline records task lifecycle
/// events (enqueue / dispatch / start / finish) into `recorder`, stamped
/// with monotonic wall time since the run start.
pub fn run_local_traced<W: WeightProvider + Sync>(
    config: &NbiaLocalConfig,
    weights: &W,
    recorder: &anthill::obs::Recorder,
) -> (Vec<TileResult>, anthill::local::LocalReport) {
    let (pipeline, sources) = build_pipeline(config);
    let (outputs, report) = pipeline.run_traced(sources, weights, recorder);
    (collect_results(outputs), report)
}

/// [`run_local`] executed by the engine's sequential reference driver
/// ([`anthill::engine::sequential`]) instead of free-running threads: the
/// same filters and policy, but assignments and output order are a pure
/// function of the configuration — identical on every run.
pub fn run_local_deterministic<W: WeightProvider + Sync>(
    config: &NbiaLocalConfig,
    weights: &W,
) -> (Vec<TileResult>, anthill::local::LocalReport) {
    let (pipeline, sources) = build_pipeline(config);
    let (outputs, report) = pipeline.run_deterministic(sources, weights);
    (collect_results(outputs), report)
}

/// The shared setup of the native runs: train the classifier, decompose
/// each full-resolution tile into its pyramid (analysis starts at the
/// coarsest level), and assemble the single-stage pipeline.
fn build_pipeline(config: &NbiaLocalConfig) -> (Pipeline, Vec<LocalTask>) {
    let cost = NbiaCostModel::paper_calibrated();
    let classifier = TileClassifier::train(config.seed ^ 0x7EAC, 6, config.low_side);
    let mut gen = TileGenerator::new(config.seed);

    let filter = Arc::new(AnalysisFilter {
        classifier,
        cost: cost.clone(),
        threshold: config.confidence_threshold,
        next_id: AtomicU64::new(1_000_000),
    });

    let mut sources = Vec::with_capacity(config.tiles as usize);
    for tile in 0..config.tiles {
        let truth = TileClass::ALL[(tile % 3) as usize];
        let full = gen.generate(truth, config.high_side);
        let pyramid = Arc::new(TilePyramid::build(full, config.high_side, config.low_side));
        sources.push(LocalTask::new(
            DataBuffer {
                id: BufferId(tile),
                params: TaskParams::nums(&[f64::from(config.low_side)]),
                shape: cost.tile(config.low_side),
                level: 0,
                task: tile,
            },
            TilePayload {
                tile,
                truth,
                pyramid,
            },
        ));
    }

    let mut pipeline = Pipeline::new(config.policy);
    pipeline.add_stage(filter, config.workers.clone());
    (pipeline, sources)
}

fn collect_results(outputs: Vec<LocalTask>) -> Vec<TileResult> {
    let mut results: Vec<TileResult> = outputs
        .into_iter()
        .map(|t| {
            *t.payload
                .downcast::<TileResult>()
                .expect("NBIA result payload")
        })
        .collect();
    results.sort_by_key(|r| r.tile);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use anthill::weights::OracleWeights;
    use anthill_hetsim::GpuParams;

    fn oracle() -> OracleWeights {
        OracleWeights::new(GpuParams::geforce_8800gt(), true)
    }

    #[test]
    fn classifies_every_tile_exactly_once() {
        let config = NbiaLocalConfig {
            tiles: 30,
            ..NbiaLocalConfig::default()
        };
        let (results, report) = run_local(&config, &oracle());
        assert_eq!(results.len(), 30);
        let tiles: Vec<u64> = results.iter().map(|r| r.tile).collect();
        assert_eq!(tiles, (0..30).collect::<Vec<_>>());
        assert!(report.total() >= 30);
    }

    #[test]
    fn classification_is_mostly_correct() {
        let config = NbiaLocalConfig {
            tiles: 30,
            ..NbiaLocalConfig::default()
        };
        let (results, _) = run_local(&config, &oracle());
        let correct = results.iter().filter(|r| r.predicted == r.truth).count();
        assert!(correct * 10 >= results.len() * 8, "correct {correct}/30");
    }

    #[test]
    fn low_threshold_accepts_everything_at_level_zero() {
        let config = NbiaLocalConfig {
            tiles: 12,
            confidence_threshold: 0.0,
            ..NbiaLocalConfig::default()
        };
        let (results, report) = run_local(&config, &oracle());
        assert!(results.iter().all(|r| r.level == 0));
        assert_eq!(report.total(), 12);
    }

    #[test]
    fn impossible_threshold_climbs_the_whole_pyramid() {
        let config = NbiaLocalConfig {
            tiles: 10,
            low_side: 32,
            high_side: 128, // pyramid depth 3: 32, 64, 128
            confidence_threshold: 1.5,
            ..NbiaLocalConfig::default()
        };
        let (results, report) = run_local(&config, &oracle());
        assert_eq!(results.len(), 10);
        assert!(results.iter().all(|r| r.level == 2), "{results:?}");
        // Every tile handled once per pyramid level.
        assert_eq!(report.total(), 30);
    }

    #[test]
    fn deterministic_run_agrees_with_threaded_run() {
        let config = NbiaLocalConfig {
            tiles: 24,
            ..NbiaLocalConfig::default()
        };
        let (threaded, _) = run_local(&config, &oracle());
        let (det_a, rep_a) = run_local_deterministic(&config, &oracle());
        let (det_b, rep_b) = run_local_deterministic(&config, &oracle());
        // Classification outcomes are schedule-independent, so all three
        // runs agree tile by tile; the deterministic runs agree on the
        // device assignments too.
        assert_eq!(det_a.len(), 24);
        for (x, y) in threaded.iter().zip(&det_a) {
            assert_eq!(x.tile, y.tile);
            assert_eq!(x.predicted, y.predicted, "tile {}", x.tile);
            assert_eq!(x.level, y.level, "tile {}", x.tile);
        }
        for (x, y) in det_a.iter().zip(&det_b) {
            assert_eq!(
                (x.tile, x.predicted, x.level),
                (y.tile, y.predicted, y.level)
            );
        }
        assert_eq!(rep_a.handled, rep_b.handled);
    }

    #[test]
    fn higher_levels_reuse_the_same_tissue() {
        // The pyramid means reprocessing sees a higher-resolution view of
        // the *same* tile — classification at the top should still match
        // the generated truth most of the time.
        let config = NbiaLocalConfig {
            tiles: 15,
            confidence_threshold: 1.5, // force everything to the top
            ..NbiaLocalConfig::default()
        };
        let (results, _) = run_local(&config, &oracle());
        let correct = results.iter().filter(|r| r.predicted == r.truth).count();
        assert!(correct * 10 >= results.len() * 7, "correct {correct}/15");
    }
}
