//! NBIA — the Neuroblastoma Image Analysis System (paper Section 2) on the
//! anthill runtime.
//!
//! Two deployments:
//!
//! * [`simulated`] — the paper-scale cluster configuration on the
//!   virtual-time executor (what the evaluation harness runs); thin
//!   conveniences over [`anthill::sim`].
//! * [`NbiaLocal`](run_local) — the real pipeline on the native threaded
//!   runtime: it generates synthetic tissue tiles, builds their
//!   multi-resolution pyramids, converts RGB → La\*b\*, extracts GLCM/LBP
//!   features, classifies stromal development with a hypothesis test, and
//!   recirculates low-confidence tiles at the next pyramid level — the
//!   full control flow of the paper's Figure 1, computing real values.
//!
//! The heavy filters (color conversion + statistical features) are fused
//! with the classifier into one stage, as the paper's optimized GPU
//! configuration fuses them to avoid unnecessary transfers
//! (`repro fusion` quantifies that choice).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use anthill::buffer::{BufferId, DataBuffer};
use anthill::local::{Emitter, ExecMode, LocalFilter, LocalTask, Pipeline, WorkerSpec};
use anthill::policy::PolicyKind;
use anthill::weights::WeightProvider;
use anthill_estimator::TaskParams;
use anthill_hetsim::{DeviceKind, NbiaCostModel};
use anthill_kernels::pyramid::TilePyramid;
use anthill_kernels::tiles::{tile_features, TileClass, TileClassifier, TileGenerator};

/// Re-exports and helpers for the simulated (paper-scale) deployment.
pub mod simulated {
    pub use anthill::sim::{run_nbia, SimConfig, SimReport, WorkloadSpec};
}

/// Configuration of a native-runtime NBIA run.
#[derive(Debug, Clone)]
pub struct NbiaLocalConfig {
    /// Number of tiles to analyze.
    pub tiles: u64,
    /// Low-resolution (starting) tile side in pixels.
    pub low_side: u32,
    /// Full-resolution tile side in pixels (a power-of-two multiple of
    /// `low_side`; the pyramid holds every level in between).
    pub high_side: u32,
    /// Classification confidence threshold of the hypothesis test; tiles
    /// below it climb to the next pyramid level.
    pub confidence_threshold: f64,
    /// RNG seed for tile synthesis.
    pub seed: u64,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Worker slots of the analysis stage.
    pub workers: Vec<WorkerSpec>,
}

impl Default for NbiaLocalConfig {
    fn default() -> Self {
        NbiaLocalConfig {
            tiles: 48,
            low_side: 32,
            high_side: 128,
            confidence_threshold: 0.25,
            seed: 0xB10,
            policy: PolicyKind::DdWrr,
            workers: vec![
                WorkerSpec {
                    kind: DeviceKind::Cpu,
                    mode: ExecMode::Native,
                },
                WorkerSpec {
                    kind: DeviceKind::Gpu,
                    mode: ExecMode::Emulated { scale: 1e-4 },
                },
            ],
        }
    }
}

/// One classified tile in the run output.
#[derive(Debug, Clone, PartialEq)]
pub struct TileResult {
    /// Tile index.
    pub tile: u64,
    /// The true (generated) class.
    pub truth: TileClass,
    /// The predicted class.
    pub predicted: TileClass,
    /// Pyramid level the decision was accepted at (0 = lowest resolution).
    pub level: u8,
    /// Decision confidence.
    pub confidence: f64,
}

/// Payload carried through the pipeline: the tile's whole pyramid (shared,
/// as the decomposition step stores every resolution) and its identity.
struct TilePayload {
    tile: u64,
    truth: TileClass,
    pyramid: Arc<TilePyramid>,
}

/// The fused analysis filter: color conversion + features + classifier +
/// the multi-resolution hypothesis-test loop over the pyramid.
struct AnalysisFilter {
    classifier: TileClassifier,
    cost: NbiaCostModel,
    threshold: f64,
    next_id: AtomicU64,
}

impl LocalFilter for AnalysisFilter {
    fn handle(&self, _device: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
        let payload = task
            .payload
            .downcast::<TilePayload>()
            .expect("NBIA tile payload");
        let level = task.buffer.level as usize;
        let (side, pixels) = payload.pyramid.level(level);
        let features = tile_features(pixels, side);
        let (decision, accepted) = self.classifier.accept(&features, self.threshold);
        let at_top = level + 1 >= payload.pyramid.depth();
        if accepted || at_top {
            let buffer_level = task.buffer.level;
            out.forward(LocalTask::new(
                task.buffer,
                TileResult {
                    tile: payload.tile,
                    truth: payload.truth,
                    predicted: decision.class,
                    level: buffer_level,
                    confidence: decision.confidence,
                },
            ));
        } else {
            // Hypothesis test failed: climb one pyramid level and
            // recirculate (Figure 1's feedback edge).
            let next_level = (level + 1) as u8;
            let next_side = payload.pyramid.side(next_level as usize);
            let buffer = DataBuffer {
                id: BufferId(self.next_id.fetch_add(1, Ordering::Relaxed)),
                params: TaskParams::nums(&[f64::from(next_side)]),
                shape: self.cost.tile(next_side),
                level: next_level,
                task: payload.tile,
            };
            out.recirculate(LocalTask::new(
                buffer,
                TilePayload {
                    tile: payload.tile,
                    truth: payload.truth,
                    pyramid: payload.pyramid,
                },
            ));
        }
    }
}

/// Run NBIA end-to-end on the native threaded runtime.
///
/// Returns the classified tiles (sorted by tile index) and the runtime's
/// execution report.
pub fn run_local<W: WeightProvider + Sync>(
    config: &NbiaLocalConfig,
    weights: &W,
) -> (Vec<TileResult>, anthill::local::LocalReport) {
    run_local_traced(config, weights, &anthill::obs::Recorder::disabled())
}

/// [`run_local`] with observability: the pipeline records task lifecycle
/// events (enqueue / dispatch / start / finish) into `recorder`, stamped
/// with monotonic wall time since the run start.
pub fn run_local_traced<W: WeightProvider + Sync>(
    config: &NbiaLocalConfig,
    weights: &W,
    recorder: &anthill::obs::Recorder,
) -> (Vec<TileResult>, anthill::local::LocalReport) {
    let (pipeline, sources) = build_pipeline(config);
    let (outputs, report) = pipeline.run_traced(sources, weights, recorder);
    (collect_results(outputs), report)
}

/// [`run_local`] executed by the engine's sequential reference driver
/// ([`anthill::engine::sequential`]) instead of free-running threads: the
/// same filters and policy, but assignments and output order are a pure
/// function of the configuration — identical on every run.
pub fn run_local_deterministic<W: WeightProvider + Sync>(
    config: &NbiaLocalConfig,
    weights: &W,
) -> (Vec<TileResult>, anthill::local::LocalReport) {
    let (pipeline, sources) = build_pipeline(config);
    let (outputs, report) = pipeline.run_deterministic(sources, weights);
    (collect_results(outputs), report)
}

/// The shared setup of the native runs: train the classifier, decompose
/// each full-resolution tile into its pyramid (analysis starts at the
/// coarsest level), and assemble the single-stage pipeline.
fn build_pipeline(config: &NbiaLocalConfig) -> (Pipeline, Vec<LocalTask>) {
    let cost = NbiaCostModel::paper_calibrated();
    let classifier = TileClassifier::train(config.seed ^ 0x7EAC, 6, config.low_side);
    let mut gen = TileGenerator::new(config.seed);

    let filter = Arc::new(AnalysisFilter {
        classifier,
        cost: cost.clone(),
        threshold: config.confidence_threshold,
        next_id: AtomicU64::new(1_000_000),
    });

    let mut sources = Vec::with_capacity(config.tiles as usize);
    for tile in 0..config.tiles {
        let truth = TileClass::ALL[(tile % 3) as usize];
        let full = gen.generate(truth, config.high_side);
        let pyramid = Arc::new(TilePyramid::build(full, config.high_side, config.low_side));
        sources.push(LocalTask::new(
            DataBuffer {
                id: BufferId(tile),
                params: TaskParams::nums(&[f64::from(config.low_side)]),
                shape: cost.tile(config.low_side),
                level: 0,
                task: tile,
            },
            TilePayload {
                tile,
                truth,
                pyramid,
            },
        ));
    }

    let mut pipeline = Pipeline::new(config.policy);
    pipeline.add_stage(filter, config.workers.clone());
    (pipeline, sources)
}

fn collect_results(outputs: Vec<LocalTask>) -> Vec<TileResult> {
    let mut results: Vec<TileResult> = outputs
        .into_iter()
        .map(|t| {
            *t.payload
                .downcast::<TileResult>()
                .expect("NBIA result payload")
        })
        .collect();
    results.sort_by_key(|r| r.tile);
    results
}

/// The explicit three-filter deployment of Figure 1: **reader**
/// (pyramid decomposition) → **feature** (color conversion + GLCM/LBP
/// feature extraction) → **classifier** (the hypothesis test), with the
/// classifier's rejection feedback edge returning tiles to the feature
/// filter one pyramid level up.
///
/// The same topology runs on four backends: the native threaded runtime
/// (payload-carrying filters computing real values), and the three
/// buffer-level backends — sequential reference, DES, and TCP — where a
/// [`GraphModel`](graph::GraphModel) evaluates the identical feature and
/// classification math coordinator-side while workers model the compute
/// cost. Because every classification is a pure function of the tile's
/// pixels at a pyramid level, the classifier seed, and the threshold, all
/// deployments produce byte-identical [`TileResult`]s — including against
/// the fused single-filter pipeline ([`run_local`]).
pub mod graph {
    use super::*;
    use std::collections::HashMap;

    use anthill::engine::sequential::{self as seq, GraphEmission, SequentialConfig};
    use anthill::graph::{DataflowGraph, EdgeSpec, FilterSpec};
    use anthill::net::{
        run_graph_deterministic_with, spawn_worker_thread, tcp_pair, Behavior, NetConfig,
        NetGraphOutcome, NetWorkerConn,
    };
    use anthill::policy::Policy;
    use anthill::sim::{run_graph_sim, GraphSimConfig, GraphSimReport};
    use anthill::weights::OracleWeights;
    use anthill_hetsim::{DeviceId, GpuParams};
    use anthill_kernels::color::Rgb8;

    /// Filter id of the reader (pyramid decomposition) stage.
    pub const READER: usize = 0;
    /// Filter id of the feature-extraction stage.
    pub const FEATURE: usize = 1;
    /// Filter id of the classifier stage.
    pub const CLASSIFIER: usize = 2;

    /// The NBIA dataflow: a three-filter chain with the classifier's
    /// rejection feedback edge into the feature filter.
    pub fn topology() -> DataflowGraph {
        DataflowGraph::new(
            vec![
                FilterSpec::new("reader"),
                FilterSpec::new("feature"),
                FilterSpec::new("classifier"),
            ],
            vec![
                EdgeSpec::round_robin(READER, FEATURE),
                EdgeSpec::round_robin(FEATURE, CLASSIFIER),
                EdgeSpec::feedback(CLASSIFIER, FEATURE),
            ],
        )
        .expect("the NBIA topology is a valid graph")
    }

    /// Source payload entering the reader: the tile's full-resolution
    /// pixels, not yet decomposed.
    struct TileSource {
        tile: u64,
        truth: TileClass,
        full: Vec<Rgb8>,
    }

    /// Payload leaving the feature filter: the tile plus its extracted
    /// feature vector at the buffer's pyramid level.
    struct FeaturePayload {
        tile: u64,
        truth: TileClass,
        pyramid: Arc<TilePyramid>,
        features: Vec<f64>,
    }

    /// Reader: decompose the full-resolution tile into its pyramid.
    struct ReaderFilter {
        high_side: u32,
        low_side: u32,
    }

    impl LocalFilter for ReaderFilter {
        fn handle(&self, _device: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
            let src = task
                .payload
                .downcast::<TileSource>()
                .expect("NBIA tile source payload");
            let pyramid = Arc::new(TilePyramid::build(src.full, self.high_side, self.low_side));
            out.forward(LocalTask::new(
                task.buffer,
                TilePayload {
                    tile: src.tile,
                    truth: src.truth,
                    pyramid,
                },
            ));
        }
    }

    /// Feature extraction at the buffer's pyramid level (recirculated
    /// tiles re-enter here over the feedback edge and are re-extracted at
    /// the higher resolution).
    struct FeatureFilter;

    impl LocalFilter for FeatureFilter {
        fn handle(&self, _device: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
            let p = task
                .payload
                .downcast::<TilePayload>()
                .expect("NBIA tile payload");
            let (side, pixels) = p.pyramid.level(task.buffer.level as usize);
            let features = tile_features(pixels, side);
            out.forward(LocalTask::new(
                task.buffer,
                FeaturePayload {
                    tile: p.tile,
                    truth: p.truth,
                    pyramid: p.pyramid,
                    features,
                },
            ));
        }
    }

    /// The hypothesis test: accept the classification or push the tile
    /// back to the feature filter one pyramid level up.
    struct ClassifierFilter {
        classifier: TileClassifier,
        cost: NbiaCostModel,
        threshold: f64,
        next_id: AtomicU64,
    }

    impl LocalFilter for ClassifierFilter {
        fn handle(&self, _device: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
            let p = task
                .payload
                .downcast::<FeaturePayload>()
                .expect("NBIA feature payload");
            let level = task.buffer.level as usize;
            let (decision, accepted) = self.classifier.accept(&p.features, self.threshold);
            let at_top = level + 1 >= p.pyramid.depth();
            if accepted || at_top {
                let buffer_level = task.buffer.level;
                out.forward(LocalTask::new(
                    task.buffer,
                    TileResult {
                        tile: p.tile,
                        truth: p.truth,
                        predicted: decision.class,
                        level: buffer_level,
                        confidence: decision.confidence,
                    },
                ));
            } else {
                let next_level = (level + 1) as u8;
                let next_side = p.pyramid.side(next_level as usize);
                let buffer = DataBuffer {
                    id: BufferId(self.next_id.fetch_add(1, Ordering::Relaxed)),
                    params: TaskParams::nums(&[f64::from(next_side)]),
                    shape: self.cost.tile(next_side),
                    level: next_level,
                    task: p.tile,
                };
                // Routed over the declared feedback edge back to the
                // feature filter.
                out.recirculate(LocalTask::new(
                    buffer,
                    TilePayload {
                        tile: p.tile,
                        truth: p.truth,
                        pyramid: p.pyramid,
                    },
                ));
            }
        }
    }

    fn cpu_native() -> Vec<WorkerSpec> {
        vec![WorkerSpec {
            kind: DeviceKind::Cpu,
            mode: ExecMode::Native,
        }]
    }

    /// The native three-stage pipeline plus its sources: tiles enter as
    /// full-resolution pixels and the reader performs the decomposition.
    fn build_graph_pipeline(config: &NbiaLocalConfig) -> (Pipeline, Vec<LocalTask>) {
        let cost = NbiaCostModel::paper_calibrated();
        let classifier = TileClassifier::train(config.seed ^ 0x7EAC, 6, config.low_side);
        let mut gen = TileGenerator::new(config.seed);

        let mut sources = Vec::with_capacity(config.tiles as usize);
        for tile in 0..config.tiles {
            let truth = TileClass::ALL[(tile % 3) as usize];
            let full = gen.generate(truth, config.high_side);
            sources.push(LocalTask::new(
                DataBuffer {
                    id: BufferId(tile),
                    params: TaskParams::nums(&[f64::from(config.low_side)]),
                    shape: cost.tile(config.low_side),
                    level: 0,
                    task: tile,
                },
                TileSource { tile, truth, full },
            ));
        }

        let mut pipeline = Pipeline::new(config.policy).with_graph(topology());
        pipeline.add_stage(
            Arc::new(ReaderFilter {
                high_side: config.high_side,
                low_side: config.low_side,
            }),
            cpu_native(),
        );
        pipeline.add_stage(Arc::new(FeatureFilter), config.workers.clone());
        pipeline.add_stage(
            Arc::new(ClassifierFilter {
                classifier,
                cost,
                threshold: config.confidence_threshold,
                next_id: AtomicU64::new(1_000_000),
            }),
            cpu_native(),
        );
        (pipeline, sources)
    }

    /// Run the three-filter NBIA pipeline on the native threaded runtime.
    pub fn run_native<W: WeightProvider + Sync>(
        config: &NbiaLocalConfig,
        weights: &W,
    ) -> (Vec<TileResult>, anthill::local::LocalReport) {
        run_native_traced(config, weights, &anthill::obs::Recorder::disabled())
    }

    /// [`run_native`] with observability: per-edge `edge_enqueued` events
    /// and the usual task lifecycle land in `recorder`.
    pub fn run_native_traced<W: WeightProvider + Sync>(
        config: &NbiaLocalConfig,
        weights: &W,
        recorder: &anthill::obs::Recorder,
    ) -> (Vec<TileResult>, anthill::local::LocalReport) {
        let (pipeline, sources) = build_graph_pipeline(config);
        let (outputs, report) = pipeline.run_traced(sources, weights, recorder);
        (collect_results(outputs), report)
    }

    /// [`run_native`] under the sequential reference driver: assignments
    /// and output order are a pure function of the configuration.
    pub fn run_native_deterministic<W: WeightProvider>(
        config: &NbiaLocalConfig,
        weights: &W,
    ) -> (Vec<TileResult>, anthill::local::LocalReport) {
        let (pipeline, sources) = build_graph_pipeline(config);
        let (outputs, report) = pipeline.run_deterministic(sources, weights);
        (collect_results(outputs), report)
    }

    /// Coordinator-side NBIA semantics for the buffer-level backends
    /// (sequential reference, DES, TCP): pyramids are decomposed up
    /// front, features and the hypothesis test run at completion time,
    /// and the emissions they produce drive the graph's routing while
    /// workers model only the compute cost. The math is shared with the
    /// payload-carrying native deployment, so every backend produces
    /// byte-identical [`TileResult`]s.
    pub struct GraphModel {
        classifier: TileClassifier,
        cost: NbiaCostModel,
        threshold: f64,
        pyramids: HashMap<u64, Arc<TilePyramid>>,
        truths: HashMap<u64, TileClass>,
        features: HashMap<(u64, u8), Vec<f64>>,
        results: Vec<TileResult>,
        next_id: u64,
    }

    impl GraphModel {
        /// Build the model and the seed buffers entering the reader.
        pub fn new(config: &NbiaLocalConfig) -> (GraphModel, Vec<(usize, DataBuffer)>) {
            let cost = NbiaCostModel::paper_calibrated();
            let classifier = TileClassifier::train(config.seed ^ 0x7EAC, 6, config.low_side);
            let mut gen = TileGenerator::new(config.seed);
            let mut pyramids = HashMap::new();
            let mut truths = HashMap::new();
            let mut seeds = Vec::with_capacity(config.tiles as usize);
            for tile in 0..config.tiles {
                let truth = TileClass::ALL[(tile % 3) as usize];
                let full = gen.generate(truth, config.high_side);
                pyramids.insert(
                    tile,
                    Arc::new(TilePyramid::build(full, config.high_side, config.low_side)),
                );
                truths.insert(tile, truth);
                seeds.push((
                    READER,
                    DataBuffer {
                        id: BufferId(tile),
                        params: TaskParams::nums(&[f64::from(config.low_side)]),
                        shape: cost.tile(config.low_side),
                        level: 0,
                        task: tile,
                    },
                ));
            }
            (
                GraphModel {
                    classifier,
                    cost,
                    threshold: config.confidence_threshold,
                    pyramids,
                    truths,
                    features: HashMap::new(),
                    results: Vec::new(),
                    next_id: 1_000_000,
                },
                seeds,
            )
        }

        /// Handle one completion at `filter`, producing the emission the
        /// backend routes over the graph.
        pub fn handle(
            &mut self,
            filter: usize,
            _kind: DeviceKind,
            buffer: &DataBuffer,
        ) -> GraphEmission {
            let mut em = GraphEmission::default();
            match filter {
                READER => em.forward.push(buffer.clone()),
                FEATURE => {
                    let pyramid = &self.pyramids[&buffer.task];
                    let (side, pixels) = pyramid.level(buffer.level as usize);
                    self.features
                        .insert((buffer.task, buffer.level), tile_features(pixels, side));
                    em.forward.push(buffer.clone());
                }
                CLASSIFIER => {
                    let features = &self.features[&(buffer.task, buffer.level)];
                    let (decision, accepted) = self.classifier.accept(features, self.threshold);
                    let pyramid = &self.pyramids[&buffer.task];
                    let at_top = buffer.level as usize + 1 >= pyramid.depth();
                    if accepted || at_top {
                        self.results.push(TileResult {
                            tile: buffer.task,
                            truth: self.truths[&buffer.task],
                            predicted: decision.class,
                            level: buffer.level,
                            confidence: decision.confidence,
                        });
                        em.forward.push(buffer.clone());
                    } else {
                        let next_level = buffer.level + 1;
                        let next_side = pyramid.side(next_level as usize);
                        em.feedback.push(DataBuffer {
                            id: BufferId(self.next_id),
                            params: TaskParams::nums(&[f64::from(next_side)]),
                            shape: self.cost.tile(next_side),
                            level: next_level,
                            task: buffer.task,
                        });
                        self.next_id += 1;
                    }
                }
                f => unreachable!("NBIA has no filter {f}"),
            }
            em
        }

        /// The classified tiles, sorted by tile index.
        pub fn into_results(self) -> Vec<TileResult> {
            let mut results = self.results;
            results.sort_by_key(|r| r.tile);
            results
        }
    }

    fn engine_policy(kind: PolicyKind) -> Policy {
        match kind {
            PolicyKind::DdFcfs => Policy::ddfcfs(8),
            PolicyKind::DdWrr => Policy::ddwrr(8),
            PolicyKind::Odds => Policy::odds(),
            PolicyKind::Affinity => Policy::affinity(8),
            PolicyKind::Bandit => Policy::bandit(8),
        }
    }

    fn oracle() -> OracleWeights {
        OracleWeights::new(GpuParams::geforce_8800gt(), true)
    }

    /// Per-filter device kinds of the buffer-level runs: one CPU for the
    /// reader and classifier, CPU + GPU replicas for the feature filter.
    fn device_kinds() -> Vec<Vec<DeviceKind>> {
        vec![
            vec![DeviceKind::Cpu],
            vec![DeviceKind::Cpu, DeviceKind::Gpu],
            vec![DeviceKind::Cpu],
        ]
    }

    /// Run the three-filter pipeline on the engine's sequential reference
    /// driver (buffer-level; the [`GraphModel`] computes the semantics).
    pub fn run_reference(config: &NbiaLocalConfig) -> (Vec<TileResult>, seq::GraphOutcome) {
        let (mut model, seeds) = GraphModel::new(config);
        let devices: Vec<Vec<DeviceId>> = device_kinds()
            .iter()
            .enumerate()
            .map(|(f, kinds)| {
                kinds
                    .iter()
                    .enumerate()
                    .map(|(i, &kind)| DeviceId {
                        node: f,
                        kind,
                        index: i,
                    })
                    .collect()
            })
            .collect();
        let outcome = seq::run_graph(
            SequentialConfig::new(engine_policy(config.policy)),
            &topology(),
            &devices,
            seeds,
            oracle(),
            |f, k, b| model.handle(f, k, b),
        );
        (model.into_results(), outcome)
    }

    /// Run the three-filter pipeline on the virtual-time DES cluster.
    pub fn run_sim(config: &NbiaLocalConfig) -> (Vec<TileResult>, GraphSimReport) {
        let (mut model, seeds) = GraphModel::new(config);
        let cfg = GraphSimConfig::new(engine_policy(config.policy));
        let report = run_graph_sim(
            &cfg,
            &topology(),
            &device_kinds(),
            seeds,
            Box::new(oracle()),
            |f, k, b| model.handle(f, k, b),
        );
        (model.into_results(), report)
    }

    /// Run the three-filter pipeline over TCP loopback workers in
    /// lockstep deterministic mode; the [`GraphModel`] drives routing
    /// through the coordinator-side emission hook.
    pub fn run_net(
        config: &NbiaLocalConfig,
    ) -> std::io::Result<(Vec<TileResult>, NetGraphOutcome)> {
        run_net_traced(config, &anthill::obs::Recorder::disabled())
    }

    /// [`run_net`] with observability: the coordinator's merged trace
    /// (engine events plus re-stamped remote worker spans) lands in
    /// `recorder`.
    pub fn run_net_traced(
        config: &NbiaLocalConfig,
        recorder: &anthill::obs::Recorder,
    ) -> std::io::Result<(Vec<TileResult>, NetGraphOutcome)> {
        let (mut model, seeds) = GraphModel::new(config);
        let workers: std::io::Result<Vec<Vec<NetWorkerConn>>> = device_kinds()
            .iter()
            .enumerate()
            .map(|(f, kinds)| {
                kinds
                    .iter()
                    .enumerate()
                    .map(|(i, &kind)| {
                        let (coord, worker_side) = tcp_pair()?;
                        spawn_worker_thread(worker_side, Behavior::Identity);
                        Ok(NetWorkerConn {
                            device: DeviceId {
                                node: f,
                                kind,
                                index: i,
                            },
                            stream: coord,
                        })
                    })
                    .collect()
            })
            .collect();
        let mut cfg = NetConfig::new(engine_policy(config.policy));
        cfg.recorder = recorder.clone();
        let outcome = run_graph_deterministic_with(
            cfg,
            &topology(),
            workers?,
            seeds,
            oracle(),
            &mut |f, k, b| Some(model.handle(f, k, b)),
        )?;
        Ok((model.into_results(), outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anthill::weights::OracleWeights;
    use anthill_hetsim::GpuParams;

    fn oracle() -> OracleWeights {
        OracleWeights::new(GpuParams::geforce_8800gt(), true)
    }

    #[test]
    fn classifies_every_tile_exactly_once() {
        let config = NbiaLocalConfig {
            tiles: 30,
            ..NbiaLocalConfig::default()
        };
        let (results, report) = run_local(&config, &oracle());
        assert_eq!(results.len(), 30);
        let tiles: Vec<u64> = results.iter().map(|r| r.tile).collect();
        assert_eq!(tiles, (0..30).collect::<Vec<_>>());
        assert!(report.total() >= 30);
    }

    #[test]
    fn classification_is_mostly_correct() {
        let config = NbiaLocalConfig {
            tiles: 30,
            ..NbiaLocalConfig::default()
        };
        let (results, _) = run_local(&config, &oracle());
        let correct = results.iter().filter(|r| r.predicted == r.truth).count();
        assert!(correct * 10 >= results.len() * 8, "correct {correct}/30");
    }

    #[test]
    fn low_threshold_accepts_everything_at_level_zero() {
        let config = NbiaLocalConfig {
            tiles: 12,
            confidence_threshold: 0.0,
            ..NbiaLocalConfig::default()
        };
        let (results, report) = run_local(&config, &oracle());
        assert!(results.iter().all(|r| r.level == 0));
        assert_eq!(report.total(), 12);
    }

    #[test]
    fn impossible_threshold_climbs_the_whole_pyramid() {
        let config = NbiaLocalConfig {
            tiles: 10,
            low_side: 32,
            high_side: 128, // pyramid depth 3: 32, 64, 128
            confidence_threshold: 1.5,
            ..NbiaLocalConfig::default()
        };
        let (results, report) = run_local(&config, &oracle());
        assert_eq!(results.len(), 10);
        assert!(results.iter().all(|r| r.level == 2), "{results:?}");
        // Every tile handled once per pyramid level.
        assert_eq!(report.total(), 30);
    }

    #[test]
    fn deterministic_run_agrees_with_threaded_run() {
        let config = NbiaLocalConfig {
            tiles: 24,
            ..NbiaLocalConfig::default()
        };
        let (threaded, _) = run_local(&config, &oracle());
        let (det_a, rep_a) = run_local_deterministic(&config, &oracle());
        let (det_b, rep_b) = run_local_deterministic(&config, &oracle());
        // Classification outcomes are schedule-independent, so all three
        // runs agree tile by tile; the deterministic runs agree on the
        // device assignments too.
        assert_eq!(det_a.len(), 24);
        for (x, y) in threaded.iter().zip(&det_a) {
            assert_eq!(x.tile, y.tile);
            assert_eq!(x.predicted, y.predicted, "tile {}", x.tile);
            assert_eq!(x.level, y.level, "tile {}", x.tile);
        }
        for (x, y) in det_a.iter().zip(&det_b) {
            assert_eq!(
                (x.tile, x.predicted, x.level),
                (y.tile, y.predicted, y.level)
            );
        }
        assert_eq!(rep_a.handled, rep_b.handled);
    }

    #[test]
    fn three_filter_native_pipeline_matches_the_fused_filter() {
        let config = NbiaLocalConfig {
            tiles: 24,
            ..NbiaLocalConfig::default()
        };
        let (fused, _) = run_local(&config, &oracle());
        let (split, report) = graph::run_native(&config, &oracle());
        assert_eq!(
            split, fused,
            "splitting the fused filter must not change any classification"
        );
        // Per-edge conservation: every tile crosses reader→feature once,
        // feature→classifier once per visited level, and the feedback
        // edge once per rejection.
        assert_eq!(report.edge_delivered[&0], 24);
        let visits = report.edge_delivered[&1];
        assert_eq!(report.edge_delivered[&2], visits - 24);
    }

    #[test]
    fn every_backend_classifies_bytewise_identically() {
        let config = NbiaLocalConfig {
            tiles: 18,
            ..NbiaLocalConfig::default()
        };
        let (fused, _) = run_local(&config, &oracle());
        let (native_det, _) = graph::run_native_deterministic(&config, &oracle());
        let (reference, ref_out) = graph::run_reference(&config);
        let (sim, sim_report) = graph::run_sim(&config);
        let (net, net_out) = graph::run_net(&config).expect("net graph run");
        assert_eq!(native_det, fused, "native deterministic");
        assert_eq!(reference, fused, "sequential reference");
        assert_eq!(sim, fused, "DES");
        assert_eq!(net, fused, "TCP");
        // The buffer-level backends route identical emissions, so their
        // per-edge delivery counts agree exactly.
        assert_eq!(ref_out.edge_delivered, sim_report.edge_delivered);
        assert_eq!(ref_out.edge_delivered, net_out.edge_delivered);
        assert_eq!(ref_out.total, sim_report.total);
        assert_eq!(ref_out.total, net_out.total);
    }

    #[test]
    fn forced_recirculation_crosses_the_feedback_edge_on_every_backend() {
        let config = NbiaLocalConfig {
            tiles: 8,
            low_side: 32,
            high_side: 128, // pyramid depth 3
            confidence_threshold: 1.5,
            ..NbiaLocalConfig::default()
        };
        let (reference, out) = graph::run_reference(&config);
        assert!(reference.iter().all(|r| r.level == 2));
        // 8 tiles enter, every tile visits 3 levels: reader edge 8,
        // feature→classifier edge 24, feedback edge 16.
        assert_eq!(out.edge_delivered[&0], 8);
        assert_eq!(out.edge_delivered[&1], 24);
        assert_eq!(out.edge_delivered[&2], 16);
        assert_eq!(
            out.total,
            8 + 24 + 24,
            "reader once, feature and classifier thrice"
        );
        let (sim, sim_report) = graph::run_sim(&config);
        assert_eq!(sim, reference);
        assert_eq!(sim_report.edge_delivered, out.edge_delivered);
    }

    #[test]
    fn higher_levels_reuse_the_same_tissue() {
        // The pyramid means reprocessing sees a higher-resolution view of
        // the *same* tile — classification at the top should still match
        // the generated truth most of the time.
        let config = NbiaLocalConfig {
            tiles: 15,
            confidence_threshold: 1.5, // force everything to the top
            ..NbiaLocalConfig::default()
        };
        let (results, _) = run_local(&config, &oracle());
        let correct = results.iter().filter(|r| r.predicted == r.truth).count();
        assert!(correct * 10 >= results.len() * 7, "correct {correct}/15");
    }
}
