//! The six estimator benchmark applications of paper Table 1.
//!
//! Each application defines a parameter space and a device-time model used
//! to generate phase-one benchmark profiles (30 jobs, CPU + GPU times).
//! CPU times follow analytic complexity models with multiplicative
//! measurement noise; GPU times divide them by a parameter-dependent
//! relative speedup with its own (smaller) noise — the paper's central
//! premise that relative fitness is smoother than absolute time. Every
//! application also has a *real* CPU kernel ([`BenchApp::execute_cpu`])
//! from `anthill-kernels`, so profiles can alternatively be measured
//! rather than modeled.

use anthill_estimator::{ProfileStore, TaskParams};
use anthill_hetsim::{GpuParams, NbiaCostModel};
use anthill_simkit::SimRng;

/// One of the paper's six benchmark applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchApp {
    /// European option pricing (CUDA SDK).
    BlackScholes,
    /// All-pairs N-body iteration (CUDA SDK).
    NBody,
    /// Electrical heart-activity simulation (Rocha et al.).
    HeartSim,
    /// k-nearest-neighbour classification (Anthill).
    Knn,
    /// Frequent-itemset mining (Anthill).
    Eclat,
    /// The NBIA tile component (Section 2).
    NbiaComponent,
}

impl BenchApp {
    /// All six applications, in Table 1 order.
    pub const ALL: [BenchApp; 6] = [
        BenchApp::BlackScholes,
        BenchApp::NBody,
        BenchApp::HeartSim,
        BenchApp::Knn,
        BenchApp::Eclat,
        BenchApp::NbiaComponent,
    ];

    /// Display name as used in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            BenchApp::BlackScholes => "Black-Scholes",
            BenchApp::NBody => "N-body",
            BenchApp::HeartSim => "Heart Simulation",
            BenchApp::Knn => "kNN",
            BenchApp::Eclat => "Eclat",
            BenchApp::NbiaComponent => "NBIA-component",
        }
    }

    /// Draw one job: `(params, cpu_seconds, gpu_seconds)`.
    fn sample(self, rng: &mut SimRng) -> (TaskParams, f64, f64) {
        match self {
            BenchApp::BlackScholes => {
                // The option count spans two decades while spot, volatility
                // and expiry are nuisance dimensions: they dominate the kNN
                // distance but barely touch the runtime, so neighbours are
                // nearly random in `n` — absolute-time prediction collapses
                // while the (saturated, flat) speedup stays accurate:
                // Table 1's 2.5% vs 70.5%.
                let n = 10f64.powf(rng.uniform_range(4.0, 6.3));
                let spot = rng.uniform_range(50.0, 150.0);
                let vol = rng.uniform_range(0.1, 0.6);
                let expiry = rng.uniform_range(0.1, 2.0);
                let cpu = 45e-9 * n * rng.lognormal_noise(0.05);
                // Embarrassingly parallel and compute-dense: the GPU
                // advantage is saturated across the whole realistic range.
                let speedup = 11.5 * rng.lognormal_noise(0.025);
                (
                    TaskParams::nums(&[n, spot, vol, expiry]),
                    cpu,
                    cpu / speedup,
                )
            }
            BenchApp::NBody => {
                // Quadratic in body count over a narrow range: times are
                // predictable, speedup noisier (7.3 / 11.6).
                let n = rng.uniform_range(4_000.0, 14_000.0);
                let cpu = 9e-9 * n * n * rng.lognormal_noise(0.09);
                let speedup = 25.0 * n / (n + 2_000.0) * rng.lognormal_noise(0.07);
                (TaskParams::nums(&[n]), cpu, cpu / speedup)
            }
            BenchApp::HeartSim => {
                // Grid side and step count; stiff-solver behaviour makes
                // both predictions noisy (13.8 / 42.0).
                let side = rng.uniform_range(64.0, 512.0);
                let steps = rng.uniform_range(100.0, 2_000.0);
                let cpu = 2.2e-8 * side * side * steps * rng.lognormal_noise(0.20);
                let speedup = (4.0 + 14.0 * side / (side + 256.0)) * rng.lognormal_noise(0.12);
                (TaskParams::nums(&[side, steps]), cpu, cpu / speedup)
            }
            BenchApp::Knn => {
                // Training size, query count and k (8.8 / 21.2).
                let train = rng.uniform_range(5e4, 2e5);
                let queries = rng.uniform_range(100.0, 2_000.0);
                let k = rng.uniform_range(4.0, 16.0);
                let cpu = 6e-9 * train * queries * (1.0 + k / 16.0) * rng.lognormal_noise(0.08);
                let speedup = 15.0 * train / (train + 1e4) * rng.lognormal_noise(0.075);
                (TaskParams::nums(&[train, queries, k]), cpu, cpu / speedup)
            }
            BenchApp::Eclat => {
                // Support-threshold-driven search: runtime is exponential-
                // ish in the inverse support — absolute times are wildly
                // unpredictable (11.3 / 102.6).
                let transactions = rng.uniform_range(1e4, 1e5);
                let items = rng.uniform_range(20.0, 120.0);
                let support = rng.uniform_range(0.01, 0.20);
                let blowup = (0.22 / support).powf(2.0);
                let cpu = 4e-8 * transactions * items * blowup * rng.lognormal_noise(0.25);
                let speedup =
                    (3.0 + 6.0 * (1.0 - support * 4.0).max(0.0)) * rng.lognormal_noise(0.10);
                (
                    TaskParams::nums(&[transactions, items, support]),
                    cpu,
                    cpu / speedup,
                )
            }
            BenchApp::NbiaComponent => {
                // The calibrated NBIA tile model over the pyramid's
                // discrete resolution levels. Tile *content* makes the
                // per-tile CPU time noisy (early-exit classification, cache
                // behaviour) while the relative speedup per level is stable
                // (7.4 / 30.4).
                let side = *rng.pick(&[32.0f64, 64.0, 128.0, 256.0, 512.0]);
                let model = NbiaCostModel::paper_calibrated();
                let gpu_params = GpuParams::geforce_8800gt();
                let shape = model.tile(side as u32);
                let content = rng.lognormal_noise(0.28);
                let cpu = shape.cpu.as_secs_f64() * content;
                let gpu = gpu_params
                    .sync_task_time(shape.bytes_in, shape.gpu_kernel, shape.bytes_out)
                    .as_secs_f64()
                    * content
                    * rng.lognormal_noise(0.065);
                (TaskParams::nums(&[side]), cpu, gpu)
            }
        }
    }

    /// Generate a phase-one benchmark profile of `jobs` jobs.
    pub fn generate_profile(self, seed: u64, jobs: usize) -> ProfileStore {
        let mut rng = SimRng::new(seed).fork(self.name());
        let mut store = ProfileStore::new(self.name());
        for _ in 0..jobs {
            let (params, cpu, gpu) = self.sample(&mut rng);
            store.add_cpu_gpu(params, cpu, gpu);
        }
        store
    }

    /// Run the application's real CPU kernel for a small, fixed workload
    /// derived from `scale` in `(0, 1]`. Returns an opaque checksum so the
    /// computation cannot be optimized away.
    pub fn execute_cpu(self, scale: f64) -> f64 {
        let scale = scale.clamp(0.05, 1.0);
        match self {
            BenchApp::BlackScholes => {
                let n = (2_000.0 * scale) as usize;
                let opts: Vec<_> = (0..n)
                    .map(|i| anthill_kernels::black_scholes::Option_ {
                        spot: 80.0 + (i % 40) as f64,
                        strike: 100.0,
                        expiry: 0.5 + (i % 10) as f64 * 0.1,
                        rate: 0.03,
                        volatility: 0.2 + (i % 5) as f64 * 0.05,
                    })
                    .collect();
                anthill_kernels::black_scholes::price_batch(&opts)
                    .iter()
                    .map(|p| p.call + p.put)
                    .sum()
            }
            BenchApp::NBody => {
                let mut sys = anthill_kernels::nbody::System::disc((128.0 * scale) as usize);
                sys.step(1e-3);
                sys.energy()
            }
            BenchApp::HeartSim => {
                let side = (40.0 * scale) as usize + 8;
                let mut g = anthill_kernels::heart::HeartGrid::new(
                    side,
                    side,
                    anthill_kernels::heart::FhnParams::default(),
                );
                g.stimulate(0, 0, 4, 1.0);
                g.run(200, 0.005);
                g.mean_activation()
            }
            BenchApp::Knn => {
                let n = (500.0 * scale) as usize + 10;
                let training: Vec<_> = (0..n)
                    .map(|i| anthill_kernels::knn::LabelledPoint {
                        coords: vec![(i % 17) as f64, (i % 29) as f64],
                        label: (i % 3) as u32,
                    })
                    .collect();
                let queries: Vec<Vec<f64>> =
                    (0..20).map(|i| vec![i as f64, (i * 2) as f64]).collect();
                anthill_kernels::knn::classify_batch(&training, &queries, 5)
                    .iter()
                    .map(|&l| f64::from(l))
                    .sum()
            }
            BenchApp::Eclat => {
                let rows = (200.0 * scale) as u64 + 10;
                let db = anthill_kernels::eclat::Transactions {
                    rows: (0..rows)
                        .map(|i| {
                            (0..8)
                                .filter(|j| (i + j) % 3 != 0)
                                .map(|j| j as u32)
                                .collect()
                        })
                        .collect(),
                };
                anthill_kernels::eclat::mine(&db, 2).len() as f64
            }
            BenchApp::NbiaComponent => {
                let side = (64.0 * scale) as u32 + 8;
                let mut gen = anthill_kernels::tiles::TileGenerator::new(7);
                let px = gen.generate(anthill_kernels::tiles::TileClass::StromaPoor, side);
                anthill_kernels::tiles::tile_features(&px, side)
                    .iter()
                    .sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anthill_estimator::cross_validate;

    #[test]
    fn profiles_have_requested_size_and_both_devices() {
        for app in BenchApp::ALL {
            let p = app.generate_profile(1, 30);
            assert_eq!(p.len(), 30, "{}", app.name());
            for s in p.samples() {
                assert!(s.time_on(anthill_estimator::DeviceClass::CPU).unwrap() > 0.0);
                assert!(s.time_on(anthill_estimator::DeviceClass::GPU).unwrap() > 0.0);
            }
        }
    }

    #[test]
    fn profiles_are_seed_deterministic() {
        let a = BenchApp::Eclat.generate_profile(9, 10);
        let b = BenchApp::Eclat.generate_profile(9, 10);
        for (x, y) in a.samples().iter().zip(b.samples()) {
            assert_eq!(
                x.time_on(anthill_estimator::DeviceClass::CPU),
                y.time_on(anthill_estimator::DeviceClass::CPU)
            );
        }
    }

    #[test]
    fn speedup_error_is_smaller_than_time_error_for_every_app() {
        // Table 1's central finding, app by app.
        for app in BenchApp::ALL {
            let p = app.generate_profile(42, 30);
            let r = cross_validate(&p, 2, 10);
            assert!(
                r.speedup_mape < r.cpu_time_mape,
                "{}: speedup {:.1}% !< time {:.1}%",
                app.name(),
                r.speedup_mape,
                r.cpu_time_mape
            );
            assert!(
                r.speedup_mape < 25.0,
                "{}: speedup error too high: {:.1}%",
                app.name(),
                r.speedup_mape
            );
        }
    }

    #[test]
    fn real_kernels_execute_and_return_finite_checksums() {
        for app in BenchApp::ALL {
            let x = app.execute_cpu(0.3);
            assert!(x.is_finite(), "{}: {x}", app.name());
        }
    }
}
