//! The Virtual Microscope — the other flagship filter-stream application
//! of the Anthill/DataCutter lineage (the paper's reference \[8\]): serve
//! interactive viewport queries over an enormous digitized slide.
//!
//! Dataflow (three filters, a real multi-stage pipeline on the native
//! runtime):
//!
//! ```text
//! read/decompress ──► zoom (downsample to the requested level) ──► composite
//! ```
//!
//! Each viewport query fans out into one task per covered slide tile; the
//! compositor reassembles the viewport once every tile has arrived. The
//! zoom filter is the compute-heavy, GPU-friendly stage (pixel-parallel
//! box filtering), so the demand-driven schedulers have real
//! heterogeneous choices to make.

use std::collections::HashMap;
use std::sync::Arc;

use anthill::buffer::{BufferId, DataBuffer};
use anthill::local::{Emitter, LocalFilter, LocalTask, Pipeline, WorkerSpec};
use anthill::policy::PolicyKind;
use anthill::weights::WeightProvider;
use anthill_estimator::TaskParams;
use anthill_hetsim::NbiaCostModel;
use anthill_kernels::color::Rgb8;
use anthill_kernels::pyramid::downsample;
use anthill_kernels::tiles::{TileClass, TileGenerator};
use parking_lot::Mutex;

/// The slide: a `cols × rows` grid of square tiles, synthesized on demand
/// (the "disk" of the read filter).
#[derive(Debug, Clone)]
pub struct Slide {
    /// Tiles per row.
    pub cols: u32,
    /// Tile rows.
    pub rows: u32,
    /// Full-resolution tile side (a power of two).
    pub tile_side: u32,
    /// Synthesis seed.
    pub seed: u64,
}

impl Slide {
    /// Deterministic tissue class of a tile (a coarse tissue map).
    pub fn class_at(&self, col: u32, row: u32) -> TileClass {
        // Blobby regions: hash the coarse coordinates.
        let h = (u64::from(col / 3))
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(u64::from(row / 3).wrapping_mul(0x85EB_CA6B))
            .wrapping_add(self.seed);
        TileClass::ALL[(h % 3) as usize]
    }

    /// Synthesize ("read and decompress") one full-resolution tile.
    pub fn read_tile(&self, col: u32, row: u32) -> Vec<Rgb8> {
        assert!(col < self.cols && row < self.rows, "tile out of slide");
        let tile_seed = self.seed ^ (u64::from(row) << 32 | u64::from(col));
        TileGenerator::new(tile_seed).generate(self.class_at(col, row), self.tile_side)
    }
}

/// A viewport query: a rectangle of tiles at a zoom level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// Query id.
    pub id: u64,
    /// First tile column.
    pub col0: u32,
    /// First tile row.
    pub row0: u32,
    /// Width in tiles.
    pub width: u32,
    /// Height in tiles.
    pub height: u32,
    /// Zoom-out level: each level halves the tile side (0 = full res).
    pub zoom: u8,
}

impl Query {
    /// Tiles covered by the viewport.
    pub fn tile_count(&self) -> u32 {
        self.width * self.height
    }
}

/// A rendered viewport.
#[derive(Debug, Clone)]
pub struct Rendered {
    /// The query this answers.
    pub query: Query,
    /// Output side of each composited tile.
    pub tile_side: u32,
    /// Mean luminance of the composited viewport (a content checksum).
    pub mean_luma: f64,
}

struct TileTask {
    query: Query,
    pixels: Vec<Rgb8>,
    side: u32,
}

/// Stage 1: read/decompress the tile named by the task.
struct ReadFilter {
    slide: Slide,
}

impl LocalFilter for ReadFilter {
    fn handle(&self, _d: anthill_hetsim::DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
        let t = task.payload.downcast::<TileRef>().expect("tile ref");
        let pixels = self.slide.read_tile(t.col, t.row);
        out.forward(LocalTask::new(
            task.buffer,
            TileTask {
                query: t.query,
                side: self.slide.tile_side,
                pixels,
            },
        ));
    }
}

struct TileRef {
    query: Query,
    col: u32,
    row: u32,
}

/// Stage 2: box-filter the tile down to the requested zoom level (the
/// pixel-parallel, accelerator-friendly stage).
struct ZoomFilter;

impl LocalFilter for ZoomFilter {
    fn handle(&self, _d: anthill_hetsim::DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
        let mut t = task.payload.downcast::<TileTask>().expect("tile task");
        for _ in 0..t.query.zoom {
            if t.side < 2 {
                break;
            }
            t.pixels = downsample(&t.pixels, t.side);
            t.side /= 2;
        }
        out.forward(LocalTask::new(task.buffer, *t));
    }
}

/// Stage 3: composite tiles into viewports; emit each viewport once all
/// its tiles arrived. Shared state behind a mutex — filters are
/// replicated, state must be thread-safe (paper §3: Anthill handles
/// "state partitioning among transparent copies").
struct CompositeFilter {
    pending: Mutex<HashMap<u64, (u32, f64)>>, // query id -> (tiles left, luma sum)
}

impl LocalFilter for CompositeFilter {
    fn handle(&self, _d: anthill_hetsim::DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
        let t = task.payload.downcast::<TileTask>().expect("tile task");
        let luma: f64 = t
            .pixels
            .iter()
            .map(|p| 0.299 * f64::from(p.r) + 0.587 * f64::from(p.g) + 0.114 * f64::from(p.b))
            .sum::<f64>()
            / t.pixels.len().max(1) as f64;
        let done = {
            let mut pending = self.pending.lock();
            let entry = pending
                .entry(t.query.id)
                .or_insert((t.query.tile_count(), 0.0));
            entry.0 -= 1;
            entry.1 += luma;
            if entry.0 == 0 {
                let (_, sum) = pending.remove(&t.query.id).expect("entry exists");
                Some(sum / f64::from(t.query.tile_count()))
            } else {
                None
            }
        };
        if let Some(mean_luma) = done {
            out.forward(LocalTask::new(
                task.buffer,
                Rendered {
                    query: t.query,
                    tile_side: t.side,
                    mean_luma,
                },
            ));
        }
    }
}

/// Run a batch of viewport queries through the three-filter pipeline.
/// Returns one [`Rendered`] per query (sorted by id) plus the runtime
/// report.
pub fn run_queries<W: WeightProvider + Sync>(
    slide: &Slide,
    queries: &[Query],
    policy: PolicyKind,
    workers_per_stage: Vec<Vec<WorkerSpec>>,
    weights: &W,
) -> (Vec<Rendered>, anthill::local::LocalReport) {
    assert_eq!(workers_per_stage.len(), 3, "three filters");
    let cost = NbiaCostModel::paper_calibrated();
    let mut pipeline = Pipeline::new(policy);
    let mut stages = workers_per_stage.into_iter();
    pipeline.add_stage(
        Arc::new(ReadFilter {
            slide: slide.clone(),
        }),
        stages.next().expect("stage 1"),
    );
    pipeline.add_stage(Arc::new(ZoomFilter), stages.next().expect("stage 2"));
    pipeline.add_stage(
        Arc::new(CompositeFilter {
            pending: Mutex::new(HashMap::new()),
        }),
        stages.next().expect("stage 3"),
    );

    let mut sources = Vec::new();
    let mut next_id = 0u64;
    for q in queries {
        for row in q.row0..q.row0 + q.height {
            for col in q.col0..q.col0 + q.width {
                assert!(col < slide.cols && row < slide.rows, "query off-slide");
                let id = next_id;
                next_id += 1;
                sources.push(LocalTask::new(
                    DataBuffer {
                        id: BufferId(id),
                        params: TaskParams::nums(&[f64::from(slide.tile_side)]),
                        shape: cost.tile(slide.tile_side),
                        level: q.zoom,
                        task: q.id,
                    },
                    TileRef {
                        query: *q,
                        col,
                        row,
                    },
                ));
            }
        }
    }

    let (out, report) = pipeline.run(sources, weights);
    let mut rendered: Vec<Rendered> = out
        .into_iter()
        .map(|t| *t.payload.downcast::<Rendered>().expect("rendered viewport"))
        .collect();
    rendered.sort_by_key(|r| r.query.id);
    (rendered, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anthill::local::ExecMode;
    use anthill::weights::OracleWeights;
    use anthill_hetsim::{DeviceKind, GpuParams};

    fn slide() -> Slide {
        Slide {
            cols: 8,
            rows: 8,
            tile_side: 64,
            seed: 99,
        }
    }

    fn cpu_stage(n: usize) -> Vec<WorkerSpec> {
        vec![
            WorkerSpec {
                kind: DeviceKind::Cpu,
                mode: ExecMode::Native,
            };
            n
        ]
    }

    fn oracle() -> OracleWeights {
        OracleWeights::new(GpuParams::geforce_8800gt(), true)
    }

    #[test]
    fn every_query_is_rendered_once() {
        let queries = vec![
            Query {
                id: 0,
                col0: 0,
                row0: 0,
                width: 3,
                height: 2,
                zoom: 1,
            },
            Query {
                id: 1,
                col0: 4,
                row0: 4,
                width: 2,
                height: 2,
                zoom: 2,
            },
        ];
        let (rendered, report) = run_queries(
            &slide(),
            &queries,
            PolicyKind::DdFcfs,
            vec![cpu_stage(2), cpu_stage(2), cpu_stage(1)],
            &oracle(),
        );
        assert_eq!(rendered.len(), 2);
        assert_eq!(rendered[0].query, queries[0]);
        assert_eq!(rendered[1].tile_side, 16); // 64 >> 2
                                               // 6 + 4 tiles, each through 3 stages.
        assert_eq!(report.total(), 30);
    }

    #[test]
    fn zoom_preserves_mean_luminance() {
        // Box filtering must keep the viewport's average brightness
        // (within rounding): render the same viewport at zoom 0 and 3.
        let q = |id, zoom| Query {
            id,
            col0: 1,
            row0: 1,
            width: 2,
            height: 2,
            zoom,
        };
        let (r, _) = run_queries(
            &slide(),
            &[q(0, 0), q(1, 3)],
            PolicyKind::DdFcfs,
            vec![cpu_stage(1), cpu_stage(1), cpu_stage(1)],
            &oracle(),
        );
        let diff = (r[0].mean_luma - r[1].mean_luma).abs();
        assert!(diff < 3.0, "luma drifted {diff}: {r:?}");
    }

    #[test]
    fn rendering_is_deterministic_across_policies() {
        let queries = vec![Query {
            id: 0,
            col0: 0,
            row0: 0,
            width: 4,
            height: 4,
            zoom: 1,
        }];
        let (a, _) = run_queries(
            &slide(),
            &queries,
            PolicyKind::DdFcfs,
            vec![cpu_stage(2), cpu_stage(2), cpu_stage(2)],
            &oracle(),
        );
        let (b, _) = run_queries(
            &slide(),
            &queries,
            PolicyKind::DdWrr,
            vec![cpu_stage(1), cpu_stage(3), cpu_stage(1)],
            &oracle(),
        );
        // Tile lumas accumulate in arrival order, so float associativity
        // allows ulp-level differences across schedules — the *content*
        // must agree.
        assert!(
            (a[0].mean_luma - b[0].mean_luma).abs() < 1e-9,
            "{} vs {}",
            a[0].mean_luma,
            b[0].mean_luma
        );
    }

    #[test]
    fn tissue_map_is_deterministic_and_blobby() {
        let s = slide();
        assert_eq!(s.class_at(0, 0), s.class_at(1, 1));
        let classes: std::collections::HashSet<_> = (0..8)
            .flat_map(|c| (0..8).map(move |r| (c, r)))
            .map(|(c, r)| s.class_at(c, r))
            .collect();
        assert!(classes.len() >= 2, "slide should have varied tissue");
    }

    #[test]
    #[should_panic(expected = "off-slide")]
    fn off_slide_queries_rejected() {
        let _ = run_queries(
            &slide(),
            &[Query {
                id: 0,
                col0: 7,
                row0: 7,
                width: 3,
                height: 1,
                zoom: 0,
            }],
            PolicyKind::DdFcfs,
            vec![cpu_stage(1), cpu_stage(1), cpu_stage(1)],
            &oracle(),
        );
    }
}
