//! VI — the vector-incrementer microbenchmark of paper Section 6.2: a
//! large integer vector is split into chunks; each chunk is copied to the
//! GPU, incremented iterating six times over each value, and copied back
//! (compute-to-communication ratio ≈ 7:3).
//!
//! Used by the Figure 7 / Table 2 experiments through the transfer
//! pipeline simulator, and runnable natively (real increments) on the
//! threaded runtime.

use anthill_hetsim::{TaskShape, ViCostModel};

/// Number of passes over each value (per the paper: "iterating over each
/// value six times").
pub const ITERATIONS: u32 = 6;

/// VI workload parameters.
#[derive(Debug, Clone)]
pub struct ViWorkload {
    /// Total vector length in elements.
    pub vector_len: u64,
    /// Chunk size in elements.
    pub chunk: u64,
    /// Cost model for the simulated experiments.
    pub cost: ViCostModel,
}

impl ViWorkload {
    /// The paper's configuration: a 360M-integer vector with the given
    /// chunk size (100K, 500K or 1M in Figure 7).
    pub fn paper(chunk: u64) -> ViWorkload {
        assert!(chunk > 0);
        ViWorkload {
            vector_len: 360_000_000,
            chunk,
            cost: ViCostModel::paper_calibrated(),
        }
    }

    /// Number of chunks (ceiling division).
    pub fn chunks(&self) -> u64 {
        self.vector_len.div_ceil(self.chunk)
    }

    /// The task shapes of every chunk, for the transfer pipeline.
    pub fn shapes(&self) -> Vec<TaskShape> {
        let full = self.cost.chunk(self.chunk);
        let mut out = vec![full; self.chunks() as usize];
        let rem = self.vector_len % self.chunk;
        if rem != 0 {
            *out.last_mut().expect("at least one chunk") = self.cost.chunk(rem);
        }
        out
    }
}

/// The actual VI kernel: increment every element, iterating [`ITERATIONS`]
/// times (what the paper's GPU kernel computes).
pub fn increment_chunk(chunk: &mut [u32]) {
    for _ in 0..ITERATIONS {
        for v in chunk.iter_mut() {
            *v = v.wrapping_add(1);
        }
    }
}

/// Run VI natively over a vector, chunk by chunk; returns the processed
/// vector. (Single-threaded reference implementation; the examples drive
/// the threaded runtime version.)
pub fn run_reference(vector: &mut [u32], chunk: usize) {
    assert!(chunk > 0);
    for c in vector.chunks_mut(chunk) {
        increment_chunk(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_chunk_counts() {
        assert_eq!(ViWorkload::paper(100_000).chunks(), 3_600);
        assert_eq!(ViWorkload::paper(500_000).chunks(), 720);
        assert_eq!(ViWorkload::paper(1_000_000).chunks(), 360);
    }

    #[test]
    fn shapes_cover_the_whole_vector() {
        let w = ViWorkload {
            vector_len: 1_000,
            chunk: 300,
            cost: ViCostModel::paper_calibrated(),
        };
        let shapes = w.shapes();
        assert_eq!(shapes.len(), 4);
        let total: u64 = shapes.iter().map(|s| s.bytes_in / 4).sum();
        assert_eq!(total, 1_000);
        // Last chunk is the 100-element remainder.
        assert_eq!(shapes[3].bytes_in, 400);
    }

    #[test]
    fn increment_adds_iterations() {
        let mut v = vec![0u32, 10, u32::MAX];
        increment_chunk(&mut v);
        assert_eq!(v, vec![6, 16, 5]); // wrapping
    }

    #[test]
    fn reference_processes_every_element() {
        let mut v: Vec<u32> = (0..1000).collect();
        run_reference(&mut v, 64);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 + 6));
    }
}
