//! # anthill-simkit — deterministic discrete-event simulation
//!
//! The simulation substrate for the `anthill-rs` reproduction of
//! *"Run-time optimizations for replicated dataflows on heterogeneous
//! environments"* (HPDC 2010).
//!
//! The paper's evaluation ran on a 14-node CPU+GPU cluster; this repository
//! reproduces it on a calibrated discrete-event model. `anthill-simkit`
//! provides the engine that model runs on:
//!
//! * [`SimTime`]/[`SimDuration`] — integer nanosecond virtual time,
//! * [`Engine`]/[`World`]/[`Scheduler`] — a minimal, deterministic
//!   event loop with FIFO tie-breaking and event cancellation,
//! * [`SimRng`] — a self-contained xoshiro256** PRNG with stable,
//!   label-addressed stream forking,
//! * [`FifoServer`]/[`MultiServer`]/[`Pipe`] — timed-resource building
//!   blocks for hardware models,
//! * [`Welford`], [`TimeWeightedMean`], [`UtilizationTracker`],
//!   [`TraceSeries`] — measurement utilities.
//!
//! ## Example
//!
//! ```
//! use anthill_simkit::{Engine, Scheduler, SimDuration, SimTime, World};
//!
//! struct Counter { fired: u32 }
//! enum Ev { Ping }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, _now: SimTime, _ev: Ev, sched: &mut Scheduler<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 10 {
//!             sched.after(SimDuration::from_millis(1), Ev::Ping);
//!         }
//!     }
//! }
//!
//! let mut eng = Engine::new(Counter { fired: 0 });
//! eng.schedule(SimTime::ZERO, Ev::Ping);
//! eng.run();
//! assert_eq!(eng.world().fired, 10);
//! assert_eq!(eng.now(), SimTime::ZERO + SimDuration::from_millis(9));
//! ```

#![warn(missing_docs)]

mod engine;
mod resource;
mod rng;
mod stats;
mod time;

pub use engine::{Engine, EventId, RunOutcome, Scheduler, World};
pub use resource::{FifoServer, MultiServer, Pipe};
pub use rng::SimRng;
pub use stats::{DurationHistogram, TimeWeightedMean, TraceSeries, UtilizationTracker, Welford};
pub use time::{SimDuration, SimTime};
