//! The discrete-event engine: an event heap over virtual time plus a
//! user-supplied world that handles events and schedules new ones.
//!
//! The engine is deliberately minimal: events are a user enum, the world is
//! a plain mutable struct, and handlers receive a [`Scheduler`] to enqueue
//! follow-up events. Determinism is guaranteed by (a) integer virtual time
//! and (b) FIFO tie-breaking of simultaneous events via a sequence number.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with the lowest sequence number winning ties (FIFO).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pending-event queue handed to world handlers for scheduling.
pub struct Scheduler<E> {
    heap: BinaryHeap<Scheduled<E>>,
    cancelled: HashSet<u64>,
    seq: u64,
    now: SimTime,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `ev` at absolute time `at`. Times in the past are clamped
    /// to `now` (the event still runs, immediately after current ones).
    pub fn at(&mut self, at: SimTime, ev: E) -> EventId {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, ev });
        EventId(seq)
    }

    /// Schedule `ev` after a delay from the current time.
    #[inline]
    pub fn after(&mut self, delay: SimDuration, ev: E) -> EventId {
        self.at(self.now + delay, ev)
    }

    /// Schedule `ev` to run at the current instant, after already-pending
    /// events at this instant.
    #[inline]
    pub fn immediately(&mut self, ev: E) -> EventId {
        self.at(self.now, ev)
    }

    /// Cancel a previously scheduled event. Safe to call more than once or
    /// after the event has fired (it is then a no-op).
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Number of pending (non-cancelled, best-effort) events.
    pub fn pending(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.seq) {
                continue;
            }
            self.now = s.at;
            return Some((s.at, s.ev));
        }
        None
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(s) = self.heap.peek() {
            if self.cancelled.contains(&s.seq) {
                let s = self.heap.pop().unwrap();
                self.cancelled.remove(&s.seq);
                continue;
            }
            return Some(s.at);
        }
        None
    }
}

/// A simulation world: owns all model state and reacts to events.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handle one event at virtual time `now`, scheduling any follow-ups.
    fn handle(&mut self, now: SimTime, ev: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Outcome of an engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time or step limit was reached with events still pending.
    LimitReached,
}

/// The discrete-event engine driving a [`World`].
pub struct Engine<W: World> {
    world: W,
    sched: Scheduler<W::Event>,
    steps: u64,
}

impl<W: World> Engine<W> {
    /// Create an engine around a world.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            sched: Scheduler::new(),
            steps: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Number of events processed so far.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Immutable access to the world.
    #[inline]
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (e.g. for pre-run configuration).
    #[inline]
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the engine, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedule an event before or between runs.
    pub fn schedule(&mut self, at: SimTime, ev: W::Event) -> EventId {
        self.sched.at(at, ev)
    }

    /// Run until the queue drains.
    pub fn run(&mut self) -> RunOutcome {
        self.run_bounded(SimTime::MAX, u64::MAX)
    }

    /// Run until the queue drains or virtual time would pass `until`.
    /// Events at exactly `until` are processed.
    pub fn run_until(&mut self, until: SimTime) -> RunOutcome {
        self.run_bounded(until, u64::MAX)
    }

    /// Run until the queue drains, `until` passes, or `max_steps` events
    /// have been processed (a safety net against runaway models).
    pub fn run_bounded(&mut self, until: SimTime, max_steps: u64) -> RunOutcome {
        let mut remaining = max_steps;
        loop {
            if remaining == 0 {
                return RunOutcome::LimitReached;
            }
            match self.sched.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > until => return RunOutcome::LimitReached,
                Some(_) => {}
            }
            let (now, ev) = self.sched.pop().expect("peek said non-empty");
            self.world.handle(now, ev, &mut self.sched);
            self.steps += 1;
            remaining -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
        Chain(u32),
    }

    #[derive(Default)]
    struct Log {
        seen: Vec<(u64, u32)>,
    }

    impl World for Log {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
            match ev {
                Ev::Tick(id) => self.seen.push((now.as_nanos(), id)),
                Ev::Chain(n) => {
                    self.seen.push((now.as_nanos(), n));
                    if n > 0 {
                        sched.after(SimDuration::from_nanos(10), Ev::Chain(n - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut eng = Engine::new(Log::default());
        eng.schedule(SimTime(30), Ev::Tick(3));
        eng.schedule(SimTime(10), Ev::Tick(1));
        eng.schedule(SimTime(20), Ev::Tick(2));
        assert_eq!(eng.run(), RunOutcome::Drained);
        assert_eq!(eng.world().seen, vec![(10, 1), (20, 2), (30, 3)]);
        assert_eq!(eng.now(), SimTime(30));
        assert_eq!(eng.steps(), 3);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut eng = Engine::new(Log::default());
        for id in 0..100 {
            eng.schedule(SimTime(5), Ev::Tick(id));
        }
        eng.run();
        let ids: Vec<u32> = eng.world().seen.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut eng = Engine::new(Log::default());
        eng.schedule(SimTime(0), Ev::Chain(5));
        eng.run();
        assert_eq!(eng.world().seen.len(), 6);
        assert_eq!(eng.now(), SimTime(50));
    }

    #[test]
    fn run_until_stops_at_horizon_inclusive() {
        let mut eng = Engine::new(Log::default());
        eng.schedule(SimTime(10), Ev::Tick(1));
        eng.schedule(SimTime(20), Ev::Tick(2));
        eng.schedule(SimTime(21), Ev::Tick(3));
        assert_eq!(eng.run_until(SimTime(20)), RunOutcome::LimitReached);
        assert_eq!(eng.world().seen, vec![(10, 1), (20, 2)]);
        assert_eq!(eng.run(), RunOutcome::Drained);
        assert_eq!(eng.world().seen.len(), 3);
    }

    #[test]
    fn cancellation_suppresses_events() {
        let mut eng = Engine::new(Log::default());
        let a = eng.schedule(SimTime(10), Ev::Tick(1));
        eng.schedule(SimTime(20), Ev::Tick(2));
        eng.sched.cancel(a);
        eng.run();
        assert_eq!(eng.world().seen, vec![(20, 2)]);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        struct Clamper {
            fired_at: Vec<u64>,
        }
        impl World for Clamper {
            type Event = bool;
            fn handle(&mut self, now: SimTime, ev: bool, sched: &mut Scheduler<bool>) {
                self.fired_at.push(now.as_nanos());
                if ev {
                    // "In the past" — must be clamped to now, not dropped.
                    sched.at(SimTime(1), false);
                }
            }
        }
        let mut eng = Engine::new(Clamper { fired_at: vec![] });
        eng.schedule(SimTime(100), true);
        eng.run();
        assert_eq!(eng.world().fired_at, vec![100, 100]);
    }

    #[test]
    fn step_limit_halts() {
        let mut eng = Engine::new(Log::default());
        eng.schedule(SimTime(0), Ev::Chain(1_000_000));
        assert_eq!(eng.run_bounded(SimTime::MAX, 10), RunOutcome::LimitReached);
        assert_eq!(eng.steps(), 10);
    }
}
