//! Statistics collected during simulation runs: online moments,
//! time-weighted means, utilization tracking and time-series traces.

use crate::time::{SimDuration, SimTime};

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Relative standard deviation (coefficient of variation); 0 when the
    /// mean is 0.
    pub fn rel_std_dev(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m.abs()
        }
    }
}

/// Time-weighted mean of a piecewise-constant signal (e.g. queue length).
#[derive(Debug, Clone)]
pub struct TimeWeightedMean {
    last_t: SimTime,
    last_v: f64,
    integral: f64,
    start: SimTime,
}

impl TimeWeightedMean {
    /// Start tracking at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> TimeWeightedMean {
        TimeWeightedMean {
            last_t: t0,
            last_v: v0,
            integral: 0.0,
            start: t0,
        }
    }

    /// Record that the signal changed to `v` at time `t`.
    pub fn update(&mut self, t: SimTime, v: f64) {
        let dt = t.since(self.last_t).as_secs_f64();
        self.integral += self.last_v * dt;
        self.last_t = t;
        self.last_v = v;
    }

    /// Time-weighted mean over `[start, t]`.
    pub fn mean_at(&self, t: SimTime) -> f64 {
        let total = t.since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.last_v;
        }
        let tail = t.since(self.last_t).as_secs_f64();
        (self.integral + self.last_v * tail) / total
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }
}

/// Tracks the busy/idle state of a device and produces utilization numbers
/// and a utilization trace (fraction busy per sampling bucket).
#[derive(Debug, Clone)]
pub struct UtilizationTracker {
    busy_since: Option<SimTime>,
    total_busy: SimDuration,
    /// Completed busy intervals, for bucketed traces.
    intervals: Vec<(SimTime, SimTime)>,
}

impl UtilizationTracker {
    /// New tracker; the device starts idle.
    pub fn new() -> UtilizationTracker {
        UtilizationTracker {
            busy_since: None,
            total_busy: SimDuration::ZERO,
            intervals: Vec::new(),
        }
    }

    /// Mark the device busy from `t`. No-op if already busy.
    pub fn set_busy(&mut self, t: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(t);
        }
    }

    /// Mark the device idle from `t`. No-op if already idle.
    pub fn set_idle(&mut self, t: SimTime) {
        if let Some(since) = self.busy_since.take() {
            let end = t.max(since);
            self.total_busy += end.since(since);
            self.intervals.push((since, end));
        }
    }

    /// Is the device currently busy?
    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Total busy time up to `t` (including an open interval).
    pub fn busy_time(&self, t: SimTime) -> SimDuration {
        match self.busy_since {
            Some(since) => self.total_busy + t.since(since),
            None => self.total_busy,
        }
    }

    /// Utilization in `[0, 1]` over `[0, t]`.
    pub fn utilization(&self, t: SimTime) -> f64 {
        if t == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_time(t).as_nanos() as f64 / t.as_nanos() as f64).min(1.0)
    }

    /// Fraction-busy per bucket of width `bucket` over `[0, horizon]`.
    pub fn trace(&self, horizon: SimTime, bucket: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        let nb = horizon.as_nanos().div_ceil(bucket.as_nanos()).max(1) as usize;
        let mut busy = vec![0u64; nb];
        let mut all = self.intervals.clone();
        if let Some(since) = self.busy_since {
            all.push((since, horizon.max(since)));
        }
        for (s, e) in all {
            let e = e.min(horizon);
            if e <= s {
                continue;
            }
            let first = (s.as_nanos() / bucket.as_nanos()) as usize;
            let last = ((e.as_nanos() - 1) / bucket.as_nanos()) as usize;
            for (b, slot) in busy
                .iter_mut()
                .enumerate()
                .take(last.min(nb - 1) + 1)
                .skip(first)
            {
                let b_start = b as u64 * bucket.as_nanos();
                let b_end = b_start + bucket.as_nanos();
                let overlap = e
                    .as_nanos()
                    .min(b_end)
                    .saturating_sub(s.as_nanos().max(b_start));
                *slot += overlap;
            }
        }
        busy.iter()
            .enumerate()
            .map(|(b, &ns)| {
                (
                    SimTime(b as u64 * bucket.as_nanos()),
                    ns as f64 / bucket.as_nanos() as f64,
                )
            })
            .collect()
    }
}

impl Default for UtilizationTracker {
    fn default() -> Self {
        Self::new()
    }
}

/// A log-spaced duration histogram with approximate quantiles: buckets
/// grow geometrically from 1 µs, so the p50/p95/p99 of task latencies and
/// queueing delays cost O(1) memory per device.
#[derive(Debug, Clone)]
pub struct DurationHistogram {
    /// Bucket i counts durations in `[base·g^i, base·g^(i+1))`.
    counts: Vec<u64>,
    base_ns: f64,
    growth: f64,
    total: u64,
    sum_ns: f64,
    max_ns: u64,
}

impl DurationHistogram {
    /// Default: 96 buckets from 1 µs growing by 1.25× (covers ~5 ms ... >1 h).
    pub fn new() -> DurationHistogram {
        DurationHistogram {
            counts: vec![0; 96],
            base_ns: 1_000.0,
            growth: 1.25,
            total: 0,
            sum_ns: 0.0,
            max_ns: 0,
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let idx = if (ns as f64) < self.base_ns {
            0
        } else {
            (((ns as f64) / self.base_ns).ln() / self.growth.ln()).floor() as usize
        };
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_ns += ns as f64;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean duration (zero when empty).
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / self.total as f64) as u64)
    }

    /// Largest recorded duration.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Raw per-bucket counts (bucket `i` covers `[base·g^i, base·g^(i+1))`).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Merge another histogram into this one (identical bucket layouts).
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Approximate quantile `q ∈ [0, 1]` (upper edge of the bucket holding
    /// the q-th sample). Zero when empty.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = self.base_ns * self.growth.powi(i as i32 + 1);
                return SimDuration::from_nanos(upper.min(self.max_ns as f64) as u64);
            }
        }
        self.max()
    }
}

impl Default for DurationHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A recorded time series of `(time, value)` points.
#[derive(Debug, Clone, Default)]
pub struct TraceSeries {
    points: Vec<(SimTime, f64)>,
}

impl TraceSeries {
    /// Empty series.
    pub fn new() -> TraceSeries {
        TraceSeries::default()
    }

    /// Append a point. Times should be non-decreasing (not enforced).
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last value, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Downsample to at most `n` evenly spaced points (keeps first & last).
    pub fn downsample(&self, n: usize) -> Vec<(SimTime, f64)> {
        if n == 0 || self.points.is_empty() {
            return Vec::new();
        }
        if self.points.len() <= n {
            return self.points.clone();
        }
        let step = (self.points.len() - 1) as f64 / (n - 1).max(1) as f64;
        (0..n)
            .map(|i| self.points[(i as f64 * step).round() as usize])
            .collect()
    }

    /// Mean of the recorded values (unweighted).
    pub fn value_mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        assert!((w.rel_std_dev() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn time_weighted_mean_integrates_steps() {
        let mut m = TimeWeightedMean::new(SimTime(0), 0.0);
        m.update(SimTime(1_000_000_000), 10.0); // 0 for 1s
        m.update(SimTime(3_000_000_000), 0.0); // 10 for 2s
                                               // mean over [0, 4s]: (0*1 + 10*2 + 0*1) / 4 = 5
        assert!((m.mean_at(SimTime(4_000_000_000)) - 5.0).abs() < 1e-9);
        assert_eq!(m.current(), 0.0);
    }

    #[test]
    fn utilization_tracks_intervals() {
        let mut u = UtilizationTracker::new();
        u.set_busy(SimTime(0));
        u.set_idle(SimTime(50));
        u.set_busy(SimTime(75));
        assert!(u.is_busy());
        assert_eq!(u.busy_time(SimTime(100)), SimDuration(75));
        assert!((u.utilization(SimTime(100)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn utilization_double_set_is_noop() {
        let mut u = UtilizationTracker::new();
        u.set_busy(SimTime(0));
        u.set_busy(SimTime(10)); // ignored
        u.set_idle(SimTime(20));
        u.set_idle(SimTime(30)); // ignored
        assert_eq!(u.busy_time(SimTime(30)), SimDuration(20));
    }

    #[test]
    fn utilization_trace_buckets() {
        let mut u = UtilizationTracker::new();
        u.set_busy(SimTime(0));
        u.set_idle(SimTime(150));
        let tr = u.trace(SimTime(300), SimDuration(100));
        assert_eq!(tr.len(), 3);
        assert!((tr[0].1 - 1.0).abs() < 1e-12);
        assert!((tr[1].1 - 0.5).abs() < 1e-12);
        assert!((tr[2].1 - 0.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = DurationHistogram::new();
        for ms in 1..=100u64 {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5).as_secs_f64();
        let p95 = h.quantile(0.95).as_secs_f64();
        assert!((0.045..0.075).contains(&p50), "p50 {p50}");
        assert!((0.09..0.14).contains(&p95), "p95 {p95}");
        assert!((h.mean().as_secs_f64() - 0.0505).abs() < 0.005);
        assert_eq!(h.max(), SimDuration::from_millis(100));
    }

    #[test]
    fn histogram_merge_combines_populations() {
        let mut a = DurationHistogram::new();
        let mut b = DurationHistogram::new();
        for ms in 1..=50u64 {
            a.record(SimDuration::from_millis(ms));
        }
        for ms in 51..=100u64 {
            b.record(SimDuration::from_millis(ms));
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        let p50 = a.quantile(0.5).as_secs_f64();
        assert!((0.045..0.075).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = DurationHistogram::new();
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
        h.record(SimDuration::ZERO);
        h.record(SimDuration::from_secs(100_000));
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= SimDuration::from_secs(1));
    }

    #[test]
    fn trace_series_downsamples_preserving_endpoints() {
        let mut s = TraceSeries::new();
        for i in 0..100 {
            s.push(SimTime(i), i as f64);
        }
        let d = s.downsample(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0].0, SimTime(0));
        assert_eq!(d[4].0, SimTime(99));
        assert!(s.downsample(0).is_empty());
        assert_eq!(s.downsample(1000).len(), 100);
    }
}
