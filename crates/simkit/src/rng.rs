//! Deterministic random number generation for simulations.
//!
//! The engine must be reproducible across runs and platforms, so we carry
//! our own small PRNG (xoshiro256** seeded via SplitMix64) rather than
//! depending on `rand`'s version-dependent stream definitions. Every
//! simulation component derives its own stream from a root seed with
//! [`SimRng::fork`], so adding a new consumer never perturbs the draws seen
//! by existing ones.

/// SplitMix64 step: used for seeding and for stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** PRNG.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second normal deviate from Box-Muller.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            gauss_spare: None,
        }
    }

    /// Derive an independent stream for a named sub-component.
    ///
    /// The label keeps forks stable as code evolves: a fork for `"network"`
    /// yields the same stream regardless of how many other forks exist.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Mix the label hash with this generator's state without consuming
        // from it, so forking is order-independent.
        let mut sm = self.s[0] ^ h.rotate_left(17) ^ self.s[3].rotate_left(31);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            gauss_spare: None,
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`. Requires `lo <= hi`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` using Lemire's method. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Rejection-free in the common case; unbiased overall.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal deviate (Box-Muller, with caching of the pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        loop {
            let u1 = self.uniform();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.uniform();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = std::f64::consts::TAU * u2;
            self.gauss_spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Log-normal multiplicative noise factor with median 1 and the given
    /// sigma of the underlying normal. Useful for modelling measurement
    /// noise on execution times.
    #[inline]
    pub fn lognormal_noise(&mut self, sigma: f64) -> f64 {
        (sigma * self.gaussian()).exp()
    }

    /// Exponential deviate with the given mean. Returns 0 for mean <= 0.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u = 1.0 - self.uniform(); // in (0, 1]
        -mean * u.ln()
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_label_stable_and_order_independent() {
        let root = SimRng::new(7);
        let mut f1 = root.fork("network");
        let _ = root.fork("gpu");
        let mut f2 = root.fork("network");
        for _ in 0..16 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
        let mut g = root.fork("gpu");
        assert_ne!(g.next_u64(), root.fork("network").next_u64());
    }

    #[test]
    fn uniform_is_in_unit_interval_and_covers_it() {
        let mut r = SimRng::new(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::new(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SimRng::new(11);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let z = r.gaussian();
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(17);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn lognormal_noise_median_near_one() {
        let mut r = SimRng::new(23);
        let mut v: Vec<f64> = (0..10_001).map(|_| r.lognormal_noise(0.3)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[5_000];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }
}
