//! Timed resources: small building blocks the hardware models compose.
//!
//! These are *timing* abstractions, not queues of work items: a caller asks
//! "if a job of this service time is submitted now, when does it start and
//! finish?" and the resource advances its internal availability. The caller
//! (the simulation world) is responsible for scheduling a completion event
//! at the returned finish time. This keeps the resources trivially
//! composable: a PCIe copy engine, a NIC serializing packets, and a GPU
//! compute engine are all [`FifoServer`]s with different service-time
//! formulas.

use crate::time::{SimDuration, SimTime};

/// A single server processing jobs in submission order (M/G/1-style
/// occupancy without an explicit job queue).
#[derive(Debug, Clone)]
pub struct FifoServer {
    next_free: SimTime,
    busy: SimDuration,
    jobs: u64,
}

impl FifoServer {
    /// A server idle since time zero.
    pub fn new() -> FifoServer {
        FifoServer {
            next_free: SimTime::ZERO,
            busy: SimDuration::ZERO,
            jobs: 0,
        }
    }

    /// Submit a job at `now` with the given service time; returns
    /// `(start, finish)`. The job starts when the server frees up.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> (SimTime, SimTime) {
        let start = self.next_free.max(now);
        let finish = start + service;
        self.next_free = finish;
        self.busy += service;
        self.jobs += 1;
        (start, finish)
    }

    /// When the server next becomes idle (given jobs submitted so far).
    #[inline]
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Whether a job submitted at `now` would start immediately.
    #[inline]
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.next_free <= now
    }

    /// Total busy time accumulated.
    #[inline]
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of jobs submitted.
    #[inline]
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization in `[0, 1]` over the interval `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_nanos() as f64 / horizon.as_nanos() as f64).min(1.0)
    }
}

impl Default for FifoServer {
    fn default() -> Self {
        Self::new()
    }
}

/// A pool of `k` identical servers; each job takes the earliest-free one.
#[derive(Debug, Clone)]
pub struct MultiServer {
    servers: Vec<FifoServer>,
}

impl MultiServer {
    /// Create a pool of `k >= 1` servers.
    pub fn new(k: usize) -> MultiServer {
        assert!(k >= 1, "MultiServer needs at least one server");
        MultiServer {
            servers: vec![FifoServer::new(); k],
        }
    }

    /// Number of servers in the pool.
    #[inline]
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Always false; pools have at least one server.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Submit a job at `now`; returns `(server_index, start, finish)`.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> (usize, SimTime, SimTime) {
        let (idx, _) = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.next_free(), *i))
            .expect("pool is non-empty");
        let (start, finish) = self.servers[idx].submit(now, service);
        (idx, start, finish)
    }

    /// Earliest time any server becomes free.
    pub fn earliest_free(&self) -> SimTime {
        self.servers
            .iter()
            .map(|s| s.next_free())
            .min()
            .expect("pool is non-empty")
    }

    /// Aggregate utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        let busy: u64 = self.servers.iter().map(|s| s.busy_time().as_nanos()).sum();
        (busy as f64 / (horizon.as_nanos() as f64 * self.servers.len() as f64)).min(1.0)
    }
}

/// A bandwidth-and-latency pipe: messages serialize on the pipe at
/// `bytes / bandwidth`, then take a fixed propagation latency to arrive.
/// Models a NIC uplink or a PCIe direction.
#[derive(Debug, Clone)]
pub struct Pipe {
    server: FifoServer,
    /// Payload bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Per-message fixed cost paid on the pipe (driver/protocol overhead).
    pub per_message: SimDuration,
    /// Propagation latency added after serialization completes.
    pub latency: SimDuration,
}

impl Pipe {
    /// Create a pipe with the given bandwidth (bytes/second), per-message
    /// overhead and propagation latency.
    pub fn new(bandwidth_bps: f64, per_message: SimDuration, latency: SimDuration) -> Pipe {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        Pipe {
            server: FifoServer::new(),
            bandwidth_bps,
            per_message,
            latency,
        }
    }

    /// Time to serialize `bytes` on this pipe, excluding queueing/latency.
    pub fn service_time(&self, bytes: u64) -> SimDuration {
        self.per_message + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }

    /// Send a message of `bytes` at `now`; returns its arrival time at the
    /// far end.
    pub fn send(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let service = self.service_time(bytes);
        let (_, finished) = self.server.submit(now, service);
        finished + self.latency
    }

    /// Total busy (serialization) time on the pipe.
    pub fn busy_time(&self) -> SimDuration {
        self.server.busy_time()
    }

    /// Messages sent.
    pub fn messages(&self) -> u64 {
        self.server.jobs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_server_serializes_jobs() {
        let mut s = FifoServer::new();
        let (a0, a1) = s.submit(SimTime(0), SimDuration(100));
        let (b0, b1) = s.submit(SimTime(10), SimDuration(50));
        assert_eq!((a0, a1), (SimTime(0), SimTime(100)));
        assert_eq!((b0, b1), (SimTime(100), SimTime(150)));
        assert_eq!(s.busy_time(), SimDuration(150));
        assert_eq!(s.jobs(), 2);
    }

    #[test]
    fn fifo_server_idles_between_jobs() {
        let mut s = FifoServer::new();
        s.submit(SimTime(0), SimDuration(10));
        let (start, finish) = s.submit(SimTime(100), SimDuration(10));
        assert_eq!((start, finish), (SimTime(100), SimTime(110)));
        assert!((s.utilization(SimTime(110)) - 20.0 / 110.0).abs() < 1e-9);
    }

    #[test]
    fn multi_server_spreads_load() {
        let mut m = MultiServer::new(2);
        let (i0, s0, f0) = m.submit(SimTime(0), SimDuration(100));
        let (i1, s1, f1) = m.submit(SimTime(0), SimDuration(100));
        let (_i2, s2, _) = m.submit(SimTime(0), SimDuration(100));
        assert_ne!(i0, i1);
        assert_eq!((s0, s1), (SimTime(0), SimTime(0)));
        assert_eq!(s2, SimTime(100));
        assert_eq!(f0.max(f1), SimTime(100));
        assert_eq!(m.earliest_free(), SimTime(100));
    }

    #[test]
    fn pipe_accounts_for_bandwidth_and_latency() {
        // 1000 bytes/s, 5ns per message, 10ns latency.
        let mut p = Pipe::new(1000.0, SimDuration(5), SimDuration(10));
        // 1000 bytes => 1s serialization.
        let arrival = p.send(SimTime(0), 1000);
        assert_eq!(arrival, SimTime(1_000_000_000 + 5 + 10));
        // Second message queues behind the first's serialization.
        let arrival2 = p.send(SimTime(0), 1000);
        assert_eq!(arrival2, SimTime(2 * (1_000_000_000 + 5) + 10));
        assert_eq!(p.messages(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_rejected() {
        let _ = MultiServer::new(0);
    }
}
