//! Virtual time for the discrete-event engine.
//!
//! Time is an integer number of nanoseconds since the start of the
//! simulation. Integer time keeps the engine deterministic (no float
//! accumulation drift) while nanosecond resolution is fine enough for the
//! hardware models built on top (PCIe transfers, kernel launches, network
//! messages).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Elapsed duration since `earlier`. Saturates at zero if `earlier`
    /// is actually later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Build a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Build a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Build a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Build a duration from fractional seconds. Negative and non-finite
    /// inputs are clamped to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// True if this duration is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Scale by a non-negative float factor, rounding to nanoseconds.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Ratio of two durations as a float. Returns `f64::INFINITY` when the
    /// denominator is zero and the numerator is not, `0.0` when both are.
    #[inline]
    pub fn ratio(self, denom: SimDuration) -> f64 {
        if denom.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(5));
        assert_eq!(t.since(SimTime::ZERO).as_secs_f64(), 0.005);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime(10);
        let b = SimTime(20);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration(10));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration(1_500_000_000));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(SimDuration(5).ratio(SimDuration(0)), f64::INFINITY);
        assert_eq!(SimDuration(0).ratio(SimDuration(0)), 0.0);
        assert!((SimDuration(10).ratio(SimDuration(4)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_secs(1).mul_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(250));
        assert_eq!(SimDuration::from_secs(1).mul_f64(-2.0), SimDuration::ZERO);
    }
}
