//! Multi-resolution pyramid construction (paper Section 2: "a pyramid
//! representation, with multiple copies of the image tiles from the
//! decomposition step, each one with a different resolution").
//!
//! The analysis starts at the lowest resolution and climbs only when the
//! classification is not confident; each level is a 2× box-filter
//! downsample of the one above, so the levels are *consistent views of
//! the same tissue* — which is what makes reprocessing at a higher
//! resolution informative.

use crate::color::Rgb8;

/// One tile at every resolution level, highest resolution first.
#[derive(Debug, Clone)]
pub struct TilePyramid {
    levels: Vec<(u32, Vec<Rgb8>)>,
}

/// 2× box-filter downsample of a square RGB tile. Panics unless `side` is
/// even and matches the pixel count.
pub fn downsample(pixels: &[Rgb8], side: u32) -> Vec<Rgb8> {
    assert_eq!(pixels.len(), (side * side) as usize, "size mismatch");
    assert!(
        side >= 2 && side.is_multiple_of(2),
        "side must be even, got {side}"
    );
    let out_side = side / 2;
    let mut out = Vec::with_capacity((out_side * out_side) as usize);
    for y in 0..out_side {
        for x in 0..out_side {
            let (mut r, mut g, mut b) = (0u32, 0u32, 0u32);
            for dy in 0..2 {
                for dx in 0..2 {
                    let p = pixels[((2 * y + dy) * side + 2 * x + dx) as usize];
                    r += u32::from(p.r);
                    g += u32::from(p.g);
                    b += u32::from(p.b);
                }
            }
            out.push(Rgb8 {
                r: (r / 4) as u8,
                g: (g / 4) as u8,
                b: (b / 4) as u8,
            });
        }
    }
    out
}

impl TilePyramid {
    /// Build a pyramid from the full-resolution tile down to `min_side`
    /// (inclusive). `side` must be a power-of-two multiple of `min_side`.
    pub fn build(full: Vec<Rgb8>, side: u32, min_side: u32) -> TilePyramid {
        assert!(min_side >= 1 && side >= min_side);
        assert!(
            side.is_multiple_of(min_side) && (side / min_side).is_power_of_two(),
            "side {side} must be a power-of-two multiple of min_side {min_side}"
        );
        let mut levels = vec![(side, full)];
        let mut cur_side = side;
        while cur_side > min_side {
            let (s, px) = levels.last().expect("non-empty");
            let down = downsample(px, *s);
            cur_side = s / 2;
            levels.push((cur_side, down));
        }
        TilePyramid { levels }
    }

    /// Number of levels (level 0 = coarsest).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Pixels and side at analysis level `level` (0 = coarsest, as NBIA's
    /// processing order counts).
    pub fn level(&self, level: usize) -> (u32, &[Rgb8]) {
        assert!(level < self.depth(), "level {level} of {}", self.depth());
        let (side, px) = &self.levels[self.depth() - 1 - level];
        (*side, px)
    }

    /// Side length at analysis level `level`.
    pub fn side(&self, level: usize) -> u32 {
        self.level(level).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiles::{TileClass, TileGenerator};

    fn solid(side: u32, v: u8) -> Vec<Rgb8> {
        vec![Rgb8 { r: v, g: v, b: v }; (side * side) as usize]
    }

    #[test]
    fn downsample_averages_quads() {
        // 2x2 tile of distinct values -> single averaged pixel.
        let px = vec![
            Rgb8 { r: 0, g: 0, b: 0 },
            Rgb8 {
                r: 100,
                g: 100,
                b: 100,
            },
            Rgb8 {
                r: 100,
                g: 100,
                b: 100,
            },
            Rgb8 {
                r: 200,
                g: 200,
                b: 200,
            },
        ];
        let out = downsample(&px, 2);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0],
            Rgb8 {
                r: 100,
                g: 100,
                b: 100
            }
        );
    }

    #[test]
    fn downsample_preserves_solid_color() {
        let out = downsample(&solid(64, 137), 64);
        assert_eq!(out.len(), 32 * 32);
        assert!(out.iter().all(|p| p.r == 137 && p.g == 137 && p.b == 137));
    }

    #[test]
    fn pyramid_levels_have_expected_sides() {
        let p = TilePyramid::build(solid(128, 5), 128, 32);
        assert_eq!(p.depth(), 3);
        assert_eq!(p.side(0), 32);
        assert_eq!(p.side(1), 64);
        assert_eq!(p.side(2), 128);
        assert_eq!(p.level(0).1.len(), 32 * 32);
    }

    #[test]
    fn pyramid_of_real_texture_keeps_class_statistics() {
        // The coarse level of a stroma-poor tile is still stroma-poor-ish:
        // darker and busier than a background tile's coarse level.
        let mut gen = TileGenerator::new(3);
        let poor = TilePyramid::build(gen.generate(TileClass::StromaPoor, 128), 128, 32);
        let bg = TilePyramid::build(gen.generate(TileClass::Background, 128), 128, 32);
        let mean = |px: &[Rgb8]| {
            px.iter()
                .map(|p| u32::from(p.r) + u32::from(p.g) + u32::from(p.b))
                .sum::<u32>() as f64
                / px.len() as f64
        };
        let (_, poor_lo) = poor.level(0);
        let (_, bg_lo) = bg.level(0);
        assert!(mean(poor_lo) < mean(bg_lo) - 100.0);
    }

    #[test]
    #[should_panic(expected = "power-of-two multiple")]
    fn non_power_of_two_ratio_rejected() {
        let _ = TilePyramid::build(solid(96, 1), 96, 32);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_side_rejected() {
        let _ = downsample(&solid(3, 1), 3);
    }
}
