//! # anthill-kernels — computational kernels and synthetic workloads
//!
//! Real CPU implementations of the computations the paper's applications
//! perform. They serve two roles in the reproduction:
//!
//! 1. the NBIA image-analysis pipeline ([`color`], [`texture`], [`tiles`])
//!    actually computes on synthetic tiles when run on the native threaded
//!    runtime, and
//! 2. the six estimator benchmark applications of Table 1 ([`black_scholes`],
//!    [`nbody`], [`heart`], [`knn`], [`eclat`], plus the NBIA component)
//!    provide realistic parameter spaces and workloads.
//!
//! GPU *code generation* is out of the paper's scope ("we assume the
//! necessary code to run the application on both the CPU and the GPU are
//! provided"); GPU execution cost in this repository comes from the
//! calibrated device model in `anthill-hetsim`.

#![warn(missing_docs)]

pub mod black_scholes;
pub mod color;
pub mod eclat;
pub mod heart;
pub mod knn;
pub mod nbody;
pub mod par;
pub mod pyramid;
pub mod texture;
pub mod tiles;
