//! Brute-force k-nearest-neighbour classification — estimator benchmark
//! application (paper Table 1, an Anthill application). Distinct from the
//! estimator's internal kNN regression: this is the *workload*, a dense
//! all-pairs distance scan plus majority vote.

/// A labelled point in d-dimensional space.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledPoint {
    /// Coordinates.
    pub coords: Vec<f64>,
    /// Class label.
    pub label: u32,
}

/// Squared Euclidean distance between two coordinate slices.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Classify `query` by majority vote among its `k` nearest points in
/// `training`. Distance ties are broken by training order; vote ties by the
/// smaller label. Panics on an empty training set or `k == 0`.
pub fn classify(training: &[LabelledPoint], query: &[f64], k: usize) -> u32 {
    assert!(k >= 1, "k must be at least 1");
    assert!(!training.is_empty(), "empty training set");
    let mut dists: Vec<(f64, usize)> = training
        .iter()
        .enumerate()
        .map(|(i, p)| (dist2(&p.coords, query), i))
        .collect();
    dists.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    let k = k.min(dists.len());
    let mut votes: Vec<(u32, usize)> = Vec::new();
    for &(_, i) in &dists[..k] {
        let label = training[i].label;
        match votes.iter_mut().find(|(l, _)| *l == label) {
            Some((_, c)) => *c += 1,
            None => votes.push((label, 1)),
        }
    }
    votes
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .expect("k >= 1 guarantees at least one vote")
        .0
}

/// Classify a batch of queries (the parallel workload shape).
pub fn classify_batch(training: &[LabelledPoint], queries: &[Vec<f64>], k: usize) -> Vec<u32> {
    queries.iter().map(|q| classify(training, q, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(coords: &[f64], label: u32) -> LabelledPoint {
        LabelledPoint {
            coords: coords.to_vec(),
            label,
        }
    }

    fn two_clusters() -> Vec<LabelledPoint> {
        vec![
            pt(&[0.0, 0.0], 0),
            pt(&[0.1, 0.0], 0),
            pt(&[0.0, 0.1], 0),
            pt(&[5.0, 5.0], 1),
            pt(&[5.1, 5.0], 1),
            pt(&[5.0, 5.1], 1),
        ]
    }

    #[test]
    fn nearest_cluster_wins() {
        let t = two_clusters();
        assert_eq!(classify(&t, &[0.2, 0.2], 3), 0);
        assert_eq!(classify(&t, &[4.8, 4.9], 3), 1);
    }

    #[test]
    fn k1_returns_label_of_nearest() {
        let t = two_clusters();
        assert_eq!(classify(&t, &[2.4, 2.4], 1), 0);
        assert_eq!(classify(&t, &[2.6, 2.6], 1), 1);
    }

    #[test]
    fn vote_tie_prefers_smaller_label() {
        let t = vec![pt(&[0.0], 1), pt(&[2.0], 0)];
        // Equidistant with k=2: one vote each; label 0 wins the tie.
        assert_eq!(classify(&t, &[1.0], 2), 0);
    }

    #[test]
    fn k_larger_than_training_set_is_clamped() {
        let t = two_clusters();
        let l = classify(&t, &[0.0, 0.0], 100);
        // All 6 points vote: 3 vs 3 tie, smaller label wins.
        assert_eq!(l, 0);
    }

    #[test]
    fn batch_matches_singles() {
        let t = two_clusters();
        let qs = vec![vec![0.0, 0.0], vec![5.0, 5.0]];
        assert_eq!(classify_batch(&t, &qs, 3), vec![0, 1]);
    }

    #[test]
    fn dist2_is_squared_euclidean() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist2(&[1.0], &[1.0]), 0.0);
    }
}
