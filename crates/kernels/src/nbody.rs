//! All-pairs N-body gravity — estimator benchmark application (paper
//! Table 1; from the CUDA SDK). O(n²) force evaluation with leapfrog
//! integration and Plummer softening.

/// One body's state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Mass.
    pub mass: f64,
}

/// An N-body system.
#[derive(Debug, Clone)]
pub struct System {
    /// The bodies.
    pub bodies: Vec<Body>,
    /// Softening length (avoids the 1/r² singularity).
    pub softening: f64,
    /// Gravitational constant (1 in simulation units).
    pub g: f64,
}

impl System {
    /// Build a system with default constants.
    pub fn new(bodies: Vec<Body>) -> System {
        System {
            bodies,
            softening: 1e-3,
            g: 1.0,
        }
    }

    /// Deterministic "cold plummer-ish" disc of `n` bodies for benchmarks.
    pub fn disc(n: usize) -> System {
        let bodies = (0..n)
            .map(|i| {
                let a = i as f64 * 2.399_963_229_728_653; // golden angle
                let r = (i as f64 + 0.5).sqrt() / (n as f64).sqrt();
                Body {
                    pos: [r * a.cos(), r * a.sin(), 0.0],
                    vel: [-a.sin() * r.sqrt(), a.cos() * r.sqrt(), 0.0],
                    mass: 1.0 / n as f64,
                }
            })
            .collect();
        System::new(bodies)
    }

    /// All-pairs accelerations (the O(n²) kernel).
    pub fn accelerations(&self) -> Vec<[f64; 3]> {
        let eps2 = self.softening * self.softening;
        let bodies = &self.bodies;
        bodies
            .iter()
            .map(|bi| {
                let mut acc = [0.0f64; 3];
                for bj in bodies {
                    let dx = bj.pos[0] - bi.pos[0];
                    let dy = bj.pos[1] - bi.pos[1];
                    let dz = bj.pos[2] - bi.pos[2];
                    let r2 = dx * dx + dy * dy + dz * dz + eps2;
                    let inv_r3 = self.g * bj.mass / (r2 * r2.sqrt());
                    acc[0] += dx * inv_r3;
                    acc[1] += dy * inv_r3;
                    acc[2] += dz * inv_r3;
                }
                acc
            })
            .collect()
    }

    /// Advance one leapfrog (kick-drift-kick) step of size `dt`.
    pub fn step(&mut self, dt: f64) {
        let acc = self.accelerations();
        for (b, a) in self.bodies.iter_mut().zip(&acc) {
            for (k, ak) in a.iter().enumerate() {
                b.vel[k] += 0.5 * dt * ak;
                b.pos[k] += dt * b.vel[k];
            }
        }
        let acc2 = self.accelerations();
        for (b, a) in self.bodies.iter_mut().zip(&acc2) {
            for (k, ak) in a.iter().enumerate() {
                b.vel[k] += 0.5 * dt * ak;
            }
        }
    }

    /// Total energy (kinetic + potential), for conservation checks.
    pub fn energy(&self) -> f64 {
        let mut e = 0.0;
        for (i, bi) in self.bodies.iter().enumerate() {
            let v2: f64 = bi.vel.iter().map(|v| v * v).sum();
            e += 0.5 * bi.mass * v2;
            for bj in &self.bodies[i + 1..] {
                let dx = bj.pos[0] - bi.pos[0];
                let dy = bj.pos[1] - bi.pos[1];
                let dz = bj.pos[2] - bi.pos[2];
                let r = (dx * dx + dy * dy + dz * dz + self.softening * self.softening).sqrt();
                e -= self.g * bi.mass * bj.mass / r;
            }
        }
        e
    }

    /// Center-of-mass momentum (should stay ~0 for symmetric systems).
    pub fn momentum(&self) -> [f64; 3] {
        let mut p = [0.0f64; 3];
        for b in &self.bodies {
            for (pk, vk) in p.iter_mut().zip(&b.vel) {
                *pk += b.mass * vk;
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_body_attraction_is_symmetric() {
        let sys = System::new(vec![
            Body {
                pos: [0.0, 0.0, 0.0],
                vel: [0.0; 3],
                mass: 1.0,
            },
            Body {
                pos: [1.0, 0.0, 0.0],
                vel: [0.0; 3],
                mass: 1.0,
            },
        ]);
        let acc = sys.accelerations();
        assert!(acc[0][0] > 0.0 && acc[1][0] < 0.0);
        assert!((acc[0][0] + acc[1][0]).abs() < 1e-12);
    }

    #[test]
    fn inverse_square_law() {
        let mk = |d: f64| {
            System::new(vec![
                Body {
                    pos: [0.0; 3],
                    vel: [0.0; 3],
                    mass: 1.0,
                },
                Body {
                    pos: [d, 0.0, 0.0],
                    vel: [0.0; 3],
                    mass: 1.0,
                },
            ])
        };
        let a1 = mk(1.0).accelerations()[0][0];
        let a2 = mk(2.0).accelerations()[0][0];
        assert!((a1 / a2 - 4.0).abs() < 0.01, "ratio {}", a1 / a2);
    }

    #[test]
    fn momentum_is_conserved_over_steps() {
        let mut sys = System::disc(64);
        let p0 = sys.momentum();
        for _ in 0..10 {
            sys.step(1e-3);
        }
        let p1 = sys.momentum();
        for k in 0..3 {
            assert!((p1[k] - p0[k]).abs() < 1e-9, "axis {k}");
        }
    }

    #[test]
    fn energy_roughly_conserved_with_small_steps() {
        let mut sys = System::disc(32);
        let e0 = sys.energy();
        for _ in 0..50 {
            sys.step(1e-4);
        }
        let e1 = sys.energy();
        let rel = ((e1 - e0) / e0).abs();
        assert!(rel < 0.05, "relative drift {rel}");
    }

    #[test]
    fn disc_is_deterministic() {
        let a = System::disc(16);
        let b = System::disc(16);
        assert_eq!(a.bodies, b.bodies);
    }
}
