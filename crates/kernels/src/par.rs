//! Chunked fork–join helper for the parallel (`_par`) kernel variants.
//!
//! The NBIA kernels are data-parallel over pixels or rows; this module
//! provides the one primitive they need: split an index range into
//! contiguous chunks, run a worker per chunk on crossbeam scoped threads,
//! and return the per-chunk results **in chunk order** so callers can merge
//! deterministically. All `_par` kernels accumulate integer-valued `f64`
//! counts (exact below 2^53) and merge partials in this fixed order, which
//! makes them bit-identical to their sequential counterparts — the
//! sequential reference driver stays reproducible whether or not the `par`
//! knob is on.

use std::ops::Range;

/// Split `0..n` into at most `threads` contiguous chunks, run `work` on
/// each chunk on its own scoped thread, and return the results in chunk
/// order. With `threads <= 1` (or a trivially small `n`) the work runs on
/// the calling thread — no spawn cost, identical results.
pub fn run_chunks<T, W>(n: usize, threads: usize, work: W) -> Vec<T>
where
    T: Send,
    W: Fn(Range<usize>) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return vec![work(0..n)];
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<Range<usize>> = (0..threads)
        .map(|i| (i * chunk).min(n)..((i + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect();
    let work = &work;
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| s.spawn(move |_| work(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel kernel worker panicked"))
            .collect()
    })
    .expect("parallel kernel scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_the_range_in_order() {
        let parts = run_chunks(10, 3, |r| r.collect::<Vec<usize>>());
        let flat: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<usize>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let parts = run_chunks(5, 1, |r| r.len());
        assert_eq!(parts, vec![5]);
    }

    #[test]
    fn empty_range_yields_one_empty_chunk() {
        let parts = run_chunks(0, 4, |r| r.len());
        assert_eq!(parts, vec![0]);
    }

    #[test]
    fn more_threads_than_items_degrades_gracefully() {
        let parts = run_chunks(3, 16, |r| r.collect::<Vec<usize>>());
        let flat: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(flat, vec![0, 1, 2]);
    }
}
