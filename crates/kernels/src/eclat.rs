//! Eclat frequent-itemset mining — estimator benchmark application (paper
//! Table 1, an Anthill application).
//!
//! Vertical layout: each item maps to the bitset of transactions containing
//! it (its *tidset*); itemset support is the popcount of tidset
//! intersections, and the search recurses depth-first over equivalence
//! classes with support-based pruning.

/// A transaction database in horizontal form: each transaction is a sorted
/// list of item ids.
#[derive(Debug, Clone, Default)]
pub struct Transactions {
    /// The transactions.
    pub rows: Vec<Vec<u32>>,
}

/// A frequent itemset with its support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The items, in ascending order.
    pub items: Vec<u32>,
    /// Number of transactions containing all of them.
    pub support: u32,
}

/// A dense bitset over transaction ids.
#[derive(Debug, Clone, PartialEq)]
struct TidSet {
    words: Vec<u64>,
}

impl TidSet {
    fn new(n_transactions: usize) -> TidSet {
        TidSet {
            words: vec![0; n_transactions.div_ceil(64)],
        }
    }

    #[inline]
    fn insert(&mut self, tid: usize) {
        self.words[tid / 64] |= 1 << (tid % 64);
    }

    #[inline]
    fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    fn intersect(&self, other: &TidSet) -> TidSet {
        TidSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }
}

/// Mine all itemsets with support >= `min_support` from `db`.
/// Results are returned sorted (by length, then lexicographically).
pub fn mine(db: &Transactions, min_support: u32) -> Vec<FrequentItemset> {
    assert!(min_support >= 1, "support threshold must be positive");
    let n = db.rows.len();
    // Build vertical representation.
    let mut max_item = 0u32;
    for row in &db.rows {
        for &it in row {
            max_item = max_item.max(it);
        }
    }
    let mut tidsets: Vec<TidSet> = vec![TidSet::new(n); max_item as usize + 1];
    for (tid, row) in db.rows.iter().enumerate() {
        for &it in row {
            tidsets[it as usize].insert(tid);
        }
    }
    // Frequent single items, ascending.
    let singles: Vec<(u32, TidSet, u32)> = (0..=max_item)
        .filter_map(|it| {
            let sup = tidsets[it as usize].count();
            if sup >= min_support {
                Some((it, tidsets[it as usize].clone(), sup))
            } else {
                None
            }
        })
        .collect();

    let mut out = Vec::new();
    for (i, (it, tids, sup)) in singles.iter().enumerate() {
        out.push(FrequentItemset {
            items: vec![*it],
            support: *sup,
        });
        recurse(&mut out, &[*it], tids, &singles[i + 1..], min_support);
    }
    out.sort_by(|a, b| {
        a.items
            .len()
            .cmp(&b.items.len())
            .then(a.items.cmp(&b.items))
    });
    out
}

fn recurse(
    out: &mut Vec<FrequentItemset>,
    prefix: &[u32],
    prefix_tids: &TidSet,
    tail: &[(u32, TidSet, u32)],
    min_support: u32,
) {
    // Build this prefix's equivalence class, then extend depth-first.
    let class: Vec<(u32, TidSet, u32)> = tail
        .iter()
        .filter_map(|(it, tids, _)| {
            let inter = prefix_tids.intersect(tids);
            let sup = inter.count();
            if sup >= min_support {
                Some((*it, inter, sup))
            } else {
                None
            }
        })
        .collect();
    for (i, (it, tids, sup)) in class.iter().enumerate() {
        let mut items = prefix.to_vec();
        items.push(*it);
        out.push(FrequentItemset {
            items: items.clone(),
            support: *sup,
        });
        recurse(out, &items, tids, &class[i + 1..], min_support);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classic_db() -> Transactions {
        // The textbook example database.
        Transactions {
            rows: vec![
                vec![1, 2, 5],
                vec![2, 4],
                vec![2, 3],
                vec![1, 2, 4],
                vec![1, 3],
                vec![2, 3],
                vec![1, 3],
                vec![1, 2, 3, 5],
                vec![1, 2, 3],
            ],
        }
    }

    fn support_of(fis: &[FrequentItemset], items: &[u32]) -> Option<u32> {
        fis.iter().find(|f| f.items == items).map(|f| f.support)
    }

    #[test]
    fn classic_example_supports() {
        let fis = mine(&classic_db(), 2);
        assert_eq!(support_of(&fis, &[1]), Some(6));
        assert_eq!(support_of(&fis, &[2]), Some(7));
        assert_eq!(support_of(&fis, &[1, 2]), Some(4));
        assert_eq!(support_of(&fis, &[1, 2, 3]), Some(2));
        assert_eq!(support_of(&fis, &[1, 2, 5]), Some(2));
        assert_eq!(support_of(&fis, &[4]), Some(2));
        // {4,5} never co-occur.
        assert_eq!(support_of(&fis, &[4, 5]), None);
    }

    #[test]
    fn higher_threshold_prunes_more() {
        let low = mine(&classic_db(), 2);
        let high = mine(&classic_db(), 4);
        assert!(high.len() < low.len());
        // Anti-monotonicity: every high-support itemset also appears at the
        // lower threshold with the same support.
        for f in &high {
            assert_eq!(support_of(&low, &f.items), Some(f.support));
        }
    }

    #[test]
    fn subsets_have_at_least_the_support_of_supersets() {
        let fis = mine(&classic_db(), 2);
        for f in &fis {
            if f.items.len() >= 2 {
                for drop in 0..f.items.len() {
                    let mut sub = f.items.clone();
                    sub.remove(drop);
                    let sup = support_of(&fis, &sub).expect("subset must be frequent");
                    assert!(sup >= f.support);
                }
            }
        }
    }

    #[test]
    fn empty_db_yields_nothing() {
        let fis = mine(&Transactions::default(), 1);
        assert!(fis.is_empty());
    }

    #[test]
    fn min_support_one_counts_everything() {
        let db = Transactions {
            rows: vec![vec![0, 1], vec![1]],
        };
        let fis = mine(&db, 1);
        assert_eq!(support_of(&fis, &[0]), Some(1));
        assert_eq!(support_of(&fis, &[1]), Some(2));
        assert_eq!(support_of(&fis, &[0, 1]), Some(1));
    }

    #[test]
    fn large_tid_space_crosses_word_boundaries() {
        // 130 transactions, item 7 in all of them.
        let db = Transactions {
            rows: (0..130).map(|_| vec![7]).collect(),
        };
        let fis = mine(&db, 100);
        assert_eq!(support_of(&fis, &[7]), Some(130));
    }
}
