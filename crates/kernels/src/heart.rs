//! Cardiac electrical activity simulation — estimator benchmark application
//! (paper Table 1, "Heart Simulation", after Rocha et al.). We implement
//! the Barkley model — the standard reduced FitzHugh–Nagumo-type model of
//! excitable cardiac tissue — on a 2-D grid with explicit Euler time
//! stepping and a 5-point Laplacian (no-flux boundaries).
//!
//! Kinetics: `dv/dt = D∇²v + v(1−v)(v−(w+b)/a)/ε`, `dw/dt = v − w`.

/// Barkley model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FhnParams {
    /// Excitation gain (larger => more excitable).
    pub a: f64,
    /// Threshold offset: the rest-state excitation threshold is `b/a`.
    pub b: f64,
    /// Time-scale separation (small => fast activation front).
    pub epsilon: f64,
    /// Diffusion coefficient.
    pub diffusion: f64,
}

impl Default for FhnParams {
    fn default() -> Self {
        // The classic Barkley parameter set for sustained waves.
        FhnParams {
            a: 0.75,
            b: 0.06,
            epsilon: 0.02,
            diffusion: 1.0,
        }
    }
}

/// A 2-D excitable-tissue grid.
#[derive(Debug, Clone)]
pub struct HeartGrid {
    /// Grid width (columns).
    pub width: usize,
    /// Grid height (rows).
    pub height: usize,
    /// Activation variable (membrane potential surrogate), row-major.
    pub v: Vec<f64>,
    /// Recovery variable, row-major.
    pub w: Vec<f64>,
    /// Model parameters.
    pub params: FhnParams,
    scratch: Vec<f64>,
}

impl HeartGrid {
    /// A resting grid (`v = w = 0`).
    pub fn new(width: usize, height: usize, params: FhnParams) -> HeartGrid {
        assert!(width >= 3 && height >= 3, "grid too small for a Laplacian");
        HeartGrid {
            width,
            height,
            v: vec![0.0; width * height],
            w: vec![0.0; width * height],
            params,
            scratch: vec![0.0; width * height],
        }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        y * self.width + x
    }

    /// Apply a square stimulus of amplitude `amp` with corner `(x, y)` and
    /// side `side` (clipped to the grid).
    pub fn stimulate(&mut self, x: usize, y: usize, side: usize, amp: f64) {
        for yy in y..(y + side).min(self.height) {
            for xx in x..(x + side).min(self.width) {
                let i = self.idx(xx, yy);
                self.v[i] += amp;
            }
        }
    }

    /// Advance one explicit Euler step of size `dt` on a unit-spaced grid.
    pub fn step(&mut self, dt: f64) {
        let (w_, h_) = (self.width, self.height);
        let p = self.params;
        // Laplacian with no-flux (mirror) boundaries into scratch.
        for y in 0..h_ {
            for x in 0..w_ {
                let i = y * w_ + x;
                let left = self.v[y * w_ + x.saturating_sub(1)];
                let right = self.v[y * w_ + (x + 1).min(w_ - 1)];
                let up = self.v[y.saturating_sub(1) * w_ + x];
                let down = self.v[(y + 1).min(h_ - 1) * w_ + x];
                self.scratch[i] = left + right + up + down - 4.0 * self.v[i];
            }
        }
        for i in 0..w_ * h_ {
            let v = self.v[i];
            let w = self.w[i];
            // Barkley kinetics: fast activation, O(1) linear recovery.
            let threshold = (w + p.b) / p.a;
            let dv = p.diffusion * self.scratch[i] + v * (1.0 - v) * (v - threshold) / p.epsilon;
            let dw = v - w;
            self.v[i] = v + dt * dv;
            self.w[i] = w + dt * dw;
        }
    }

    /// Run `steps` steps of size `dt`.
    pub fn run(&mut self, steps: usize, dt: f64) {
        for _ in 0..steps {
            self.step(dt);
        }
    }

    /// Mean activation over the grid.
    pub fn mean_activation(&self) -> f64 {
        self.v.iter().sum::<f64>() / self.v.len() as f64
    }

    /// Fraction of cells whose activation exceeds `threshold`.
    pub fn excited_fraction(&self, threshold: f64) -> f64 {
        self.v.iter().filter(|&&v| v > threshold).count() as f64 / self.v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resting_tissue_stays_at_rest() {
        let mut g = HeartGrid::new(16, 16, FhnParams::default());
        g.run(100, 0.005);
        assert!(g.mean_activation().abs() < 1e-12);
    }

    #[test]
    fn stimulus_propagates_as_a_wave() {
        let mut g = HeartGrid::new(40, 40, FhnParams::default());
        g.stimulate(0, 0, 5, 1.0);
        let seed_area = g.excited_fraction(0.5);
        let (mut far_peak, mut area_peak) = (0.0f64, 0.0f64);
        for _ in 0..40 {
            g.run(100, 0.005); // t = 0..20
            far_peak = far_peak.max(g.v[g.idx(20, 20)]);
            area_peak = area_peak.max(g.excited_fraction(0.5));
        }
        assert!(
            area_peak > 2.0 * seed_area,
            "wave must spread: {seed_area} -> {area_peak}"
        );
        assert!(far_peak > 0.5, "far cell peak activation {far_peak}");
    }

    #[test]
    fn subthreshold_stimulus_decays() {
        let mut g = HeartGrid::new(20, 20, FhnParams::default());
        g.stimulate(8, 8, 3, 0.02); // below the threshold b/a = 0.08
        g.run(2000, 0.005);
        assert!(g.excited_fraction(0.5) == 0.0);
        assert!(g.mean_activation().abs() < 0.01);
    }

    #[test]
    fn values_stay_bounded() {
        let mut g = HeartGrid::new(30, 30, FhnParams::default());
        g.stimulate(10, 10, 6, 1.0);
        g.run(4000, 0.005);
        assert!(g.v.iter().all(|v| v.is_finite() && v.abs() < 10.0));
        assert!(g.w.iter().all(|w| w.is_finite() && w.abs() < 10.0));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_grid_rejected() {
        let _ = HeartGrid::new(2, 2, FhnParams::default());
    }
}
