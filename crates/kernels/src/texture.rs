//! Texture features — the NBIA pipeline's "Statistical features" filter
//! (paper Section 2): gray-level co-occurrence (GLCM) statistics and local
//! binary patterns (LBP), which together characterize the color/intensity
//! variation of tissue structure.

/// A gray-level co-occurrence matrix over `levels × levels` quantized
/// intensities, for one pixel offset.
#[derive(Debug, Clone)]
pub struct Glcm {
    levels: usize,
    counts: Vec<f64>,
    total: f64,
}

/// Accumulate symmetric co-occurrence counts for anchor rows in
/// `rows` only. Counts are integer-valued `f64` (each pair adds exactly
/// 1.0 twice), so partial accumulators from disjoint row ranges merge
/// exactly — the basis of `compute_par`'s bit-reproducibility.
fn glcm_rows(
    img: &[u8],
    width: usize,
    height: usize,
    l: usize,
    dx: isize,
    dy: isize,
    rows: std::ops::Range<usize>,
) -> (Vec<f64>, f64) {
    let mut counts = vec![0.0f64; l * l];
    let mut total = 0.0f64;
    for y in rows.start as isize..rows.end as isize {
        for x in 0..width as isize {
            let (nx, ny) = (x + dx, y + dy);
            if nx < 0 || ny < 0 || nx >= width as isize || ny >= height as isize {
                continue;
            }
            let a = img[y as usize * width + x as usize] as usize;
            let b = img[ny as usize * width + nx as usize] as usize;
            debug_assert!(a < l && b < l, "pixel exceeds quantization levels");
            // Symmetric: count both (a,b) and (b,a).
            counts[a * l + b] += 1.0;
            counts[b * l + a] += 1.0;
            total += 2.0;
        }
    }
    (counts, total)
}

impl Glcm {
    /// Compute the symmetric GLCM of a row-major `width × height` quantized
    /// image for offset `(dx, dy)`.
    pub fn compute(
        img: &[u8],
        width: usize,
        height: usize,
        levels: u8,
        dx: isize,
        dy: isize,
    ) -> Glcm {
        Glcm::compute_par(img, width, height, levels, dx, dy, 1)
    }

    /// Parallel variant of [`Glcm::compute`]: anchor rows are split across
    /// `threads` scoped workers and the partial count matrices merged in
    /// row order. Bit-identical to the sequential computation (integer
    /// counts, exact merge).
    pub fn compute_par(
        img: &[u8],
        width: usize,
        height: usize,
        levels: u8,
        dx: isize,
        dy: isize,
        threads: usize,
    ) -> Glcm {
        assert_eq!(img.len(), width * height, "image size mismatch");
        assert!(levels >= 2);
        let l = levels as usize;
        let parts = crate::par::run_chunks(height, threads, |rows| {
            glcm_rows(img, width, height, l, dx, dy, rows)
        });
        let mut counts = vec![0.0f64; l * l];
        let mut total = 0.0f64;
        for (part_counts, part_total) in parts {
            for (c, p) in counts.iter_mut().zip(&part_counts) {
                *c += p;
            }
            total += part_total;
        }
        Glcm {
            levels: l,
            counts,
            total: total.max(1.0),
        }
    }

    #[inline]
    fn p(&self, i: usize, j: usize) -> f64 {
        self.counts[i * self.levels + j] / self.total
    }

    /// Haralick contrast: Σ p(i,j)·(i−j)².
    pub fn contrast(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                let d = i as f64 - j as f64;
                s += self.p(i, j) * d * d;
            }
        }
        s
    }

    /// Energy (angular second moment): Σ p(i,j)².
    pub fn energy(&self) -> f64 {
        (0..self.levels)
            .flat_map(|i| (0..self.levels).map(move |j| (i, j)))
            .map(|(i, j)| self.p(i, j) * self.p(i, j))
            .sum()
    }

    /// Homogeneity (inverse difference moment): Σ p(i,j)/(1+(i−j)²).
    pub fn homogeneity(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                let d = i as f64 - j as f64;
                s += self.p(i, j) / (1.0 + d * d);
            }
        }
        s
    }

    /// Entropy: −Σ p(i,j)·ln p(i,j).
    pub fn entropy(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                let p = self.p(i, j);
                if p > 0.0 {
                    s -= p * p.ln();
                }
            }
        }
        s
    }

    /// Variance: Σ p(i,j)·(i−µ)² (Haralick f4).
    pub fn variance(&self) -> f64 {
        let mu = self.mean_level();
        let mut s = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                s += (i as f64 - mu) * (i as f64 - mu) * self.p(i, j);
            }
        }
        s
    }

    /// Sum average: Σ k·p_{x+y}(k) (Haralick f6).
    pub fn sum_average(&self) -> f64 {
        self.sum_distribution()
            .iter()
            .enumerate()
            .map(|(k, &p)| k as f64 * p)
            .sum()
    }

    /// Sum entropy: −Σ p_{x+y}(k)·ln p_{x+y}(k) (Haralick f8).
    pub fn sum_entropy(&self) -> f64 {
        -self
            .sum_distribution()
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }

    /// Difference entropy: −Σ p_{x−y}(k)·ln p_{x−y}(k) (Haralick f11).
    pub fn difference_entropy(&self) -> f64 {
        -self
            .diff_distribution()
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }

    /// Mean gray level under the (symmetric) marginal.
    fn mean_level(&self) -> f64 {
        let mut mu = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                mu += i as f64 * self.p(i, j);
            }
        }
        mu
    }

    /// Distribution of i+j (2·levels − 1 entries).
    fn sum_distribution(&self) -> Vec<f64> {
        let mut d = vec![0.0; 2 * self.levels - 1];
        for i in 0..self.levels {
            for j in 0..self.levels {
                d[i + j] += self.p(i, j);
            }
        }
        d
    }

    /// Distribution of |i−j| (levels entries).
    fn diff_distribution(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.levels];
        for i in 0..self.levels {
            for j in 0..self.levels {
                d[i.abs_diff(j)] += self.p(i, j);
            }
        }
        d
    }

    /// Correlation: Σ p(i,j)·(i−µ)(j−µ)/σ² (symmetric GLCM, so the row and
    /// column marginals coincide). Returns 0 for constant images (σ = 0).
    pub fn correlation(&self) -> f64 {
        let mut mu = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                mu += i as f64 * self.p(i, j);
            }
        }
        let mut var = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                var += (i as f64 - mu) * (i as f64 - mu) * self.p(i, j);
            }
        }
        if var <= 1e-12 {
            return 0.0;
        }
        let mut s = 0.0;
        for i in 0..self.levels {
            for j in 0..self.levels {
                s += self.p(i, j) * (i as f64 - mu) * (j as f64 - mu);
            }
        }
        s / var
    }
}

/// The 8-neighbour local binary pattern code of the pixel at `(x, y)`.
/// Border pixels clamp to the edge (replicated border).
pub fn lbp_code(img: &[u8], width: usize, height: usize, x: usize, y: usize) -> u8 {
    let center = img[y * width + x];
    // Clockwise from top-left.
    const OFFS: [(isize, isize); 8] = [
        (-1, -1),
        (0, -1),
        (1, -1),
        (1, 0),
        (1, 1),
        (0, 1),
        (-1, 1),
        (-1, 0),
    ];
    let mut code = 0u8;
    for (bit, (dx, dy)) in OFFS.iter().enumerate() {
        let nx = (x as isize + dx).clamp(0, width as isize - 1) as usize;
        let ny = (y as isize + dy).clamp(0, height as isize - 1) as usize;
        if img[ny * width + nx] >= center {
            code |= 1 << bit;
        }
    }
    code
}

/// Normalized 256-bin LBP histogram of a quantized image.
pub fn lbp_histogram(img: &[u8], width: usize, height: usize) -> Vec<f64> {
    lbp_histogram_par(img, width, height, 1)
}

/// Parallel variant of [`lbp_histogram`]: rows are split across `threads`
/// scoped workers, per-chunk integer counts are merged in row order, and
/// normalization happens once at the end — bit-identical to the sequential
/// histogram.
pub fn lbp_histogram_par(img: &[u8], width: usize, height: usize, threads: usize) -> Vec<f64> {
    assert_eq!(img.len(), width * height);
    let parts = crate::par::run_chunks(height, threads, |rows| {
        let mut hist = vec![0.0f64; 256];
        for y in rows {
            for x in 0..width {
                hist[lbp_code(img, width, height, x, y) as usize] += 1.0;
            }
        }
        hist
    });
    let mut hist = vec![0.0f64; 256];
    for part in parts {
        for (h, p) in hist.iter_mut().zip(&part) {
            *h += p;
        }
    }
    let n = (width * height) as f64;
    for h in &mut hist {
        *h /= n;
    }
    hist
}

/// The four pixel offsets of the NBIA GLCM feature block.
const GLCM_OFFSETS: [(isize, isize); 4] = [(1, 0), (0, 1), (1, 1), (1, -1)];

/// The NBIA per-tile feature vector: GLCM statistics at 4 offsets plus a
/// compacted LBP histogram.
pub fn feature_vector(img: &[u8], width: usize, height: usize, levels: u8) -> Vec<f64> {
    feature_vector_par(img, width, height, levels, 1)
}

/// Parallel variant of [`feature_vector`]: the four GLCM offsets and the
/// LBP histogram are five independent jobs, run on scoped workers and
/// assembled in the fixed sequential order. With `threads <= 1` this runs
/// entirely inline; either way the output is bit-identical to
/// [`feature_vector`].
pub fn feature_vector_par(
    img: &[u8],
    width: usize,
    height: usize,
    levels: u8,
    threads: usize,
) -> Vec<f64> {
    let glcm_stats = |g: Glcm| -> [f64; 5] {
        [
            g.contrast(),
            g.energy(),
            g.homogeneity(),
            g.entropy(),
            g.correlation(),
        ]
    };
    let mut out = Vec::with_capacity(4 * 5 + 16);
    if threads <= 1 {
        for (dx, dy) in GLCM_OFFSETS {
            out.extend(glcm_stats(Glcm::compute(
                img, width, height, levels, dx, dy,
            )));
        }
        let hist = lbp_histogram(img, width, height);
        for chunk in hist.chunks(16) {
            out.push(chunk.iter().sum());
        }
        return out;
    }
    let (blocks, hist) = crossbeam::thread::scope(|s| {
        let glcm_handles: Vec<_> = GLCM_OFFSETS
            .iter()
            .map(|&(dx, dy)| {
                s.spawn(move |_| glcm_stats(Glcm::compute(img, width, height, levels, dx, dy)))
            })
            .collect();
        let lbp_handle = s.spawn(move |_| lbp_histogram(img, width, height));
        let blocks: Vec<[f64; 5]> = glcm_handles
            .into_iter()
            .map(|h| h.join().expect("glcm worker panicked"))
            .collect();
        (blocks, lbp_handle.join().expect("lbp worker panicked"))
    })
    .expect("feature_vector scope panicked");
    for block in blocks {
        out.extend(block);
    }
    for chunk in hist.chunks(16) {
        out.push(chunk.iter().sum());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant(width: usize, height: usize, v: u8) -> Vec<u8> {
        vec![v; width * height]
    }

    fn checkerboard(width: usize, height: usize, lo: u8, hi: u8) -> Vec<u8> {
        (0..height)
            .flat_map(|y| (0..width).map(move |x| if (x + y) % 2 == 0 { lo } else { hi }))
            .collect()
    }

    #[test]
    fn constant_image_has_zero_contrast_and_max_energy() {
        let img = constant(8, 8, 3);
        let g = Glcm::compute(&img, 8, 8, 8, 1, 0);
        assert_eq!(g.contrast(), 0.0);
        assert!((g.energy() - 1.0).abs() < 1e-12);
        assert!((g.homogeneity() - 1.0).abs() < 1e-12);
        assert!(g.entropy().abs() < 1e-12);
    }

    #[test]
    fn checkerboard_has_maximal_horizontal_contrast() {
        let img = checkerboard(8, 8, 0, 7);
        let g = Glcm::compute(&img, 8, 8, 8, 1, 0);
        // Every horizontal pair differs by 7.
        assert!(
            (g.contrast() - 49.0).abs() < 1e-9,
            "contrast {}",
            g.contrast()
        );
        // Diagonal pairs are always equal.
        let gd = Glcm::compute(&img, 8, 8, 8, 1, 1);
        assert_eq!(gd.contrast(), 0.0);
        assert!((gd.correlation() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let img = checkerboard(6, 4, 1, 5);
        let g = Glcm::compute(&img, 6, 4, 8, 0, 1);
        let sum: f64 = (0..8)
            .flat_map(|i| (0..8).map(move |j| (i, j)))
            .map(|(i, j)| g.p(i, j))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn haralick_extensions_on_known_textures() {
        let flat = Glcm::compute(&constant(8, 8, 3), 8, 8, 8, 1, 0);
        // Constant image: variance 0; sum average 2·level; entropies 0.
        assert!(flat.variance().abs() < 1e-12);
        assert!((flat.sum_average() - 6.0).abs() < 1e-12);
        assert!(flat.sum_entropy().abs() < 1e-12);
        assert!(flat.difference_entropy().abs() < 1e-12);

        let busy = Glcm::compute(&checkerboard(8, 8, 0, 7), 8, 8, 8, 1, 0);
        // Checkerboard: all pairs are (0,7)/(7,0): sum is always 7,
        // difference always 7 -> entropies still 0, but variance maximal.
        assert!((busy.sum_average() - 7.0).abs() < 1e-9);
        assert!(busy.variance() > 10.0);
        // A noisy gradient has positive sum and difference entropy.
        let grad: Vec<u8> = (0..64).map(|i| ((i * 7) % 8) as u8).collect();
        let g = Glcm::compute(&grad, 8, 8, 8, 1, 0);
        assert!(g.sum_entropy() > 0.5);
        assert!(g.difference_entropy() > 0.2);
    }

    #[test]
    fn marginal_distributions_sum_to_one() {
        let img = checkerboard(6, 6, 1, 5);
        let g = Glcm::compute(&img, 6, 6, 8, 1, 1);
        let s: f64 = g.sum_distribution().iter().sum();
        let d: f64 = g.diff_distribution().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lbp_of_constant_image_is_all_ones_code() {
        // All neighbours equal the center => all bits set (>= comparison).
        let img = constant(5, 5, 9);
        let h = lbp_histogram(&img, 5, 5);
        assert!((h[255] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lbp_detects_a_bright_center() {
        // A single bright pixel in the middle gets code 0 (no neighbour >=).
        let mut img = constant(3, 3, 10);
        img[4] = 200;
        assert_eq!(lbp_code(&img, 3, 3, 1, 1), 0);
    }

    #[test]
    fn lbp_histogram_is_normalized() {
        let img = checkerboard(7, 5, 2, 6);
        let h = lbp_histogram(&img, 7, 5);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_variants_are_bit_identical() {
        // Integer-count accumulation merged in fixed order: the par
        // variants must match the sequential ones bit for bit.
        let img: Vec<u8> = (0..31 * 17).map(|i| ((i * 13) % 8) as u8).collect();
        for threads in [2, 3, 8] {
            for (dx, dy) in [(1isize, 0isize), (0, 1), (1, 1), (1, -1)] {
                let seq = Glcm::compute(&img, 31, 17, 8, dx, dy);
                let par = Glcm::compute_par(&img, 31, 17, 8, dx, dy, threads);
                assert_eq!(seq.counts, par.counts, "glcm counts t={threads}");
                assert_eq!(seq.total, par.total);
            }
            assert_eq!(
                lbp_histogram(&img, 31, 17),
                lbp_histogram_par(&img, 31, 17, threads),
                "lbp t={threads}"
            );
            assert_eq!(
                feature_vector(&img, 31, 17, 8),
                feature_vector_par(&img, 31, 17, 8, threads),
                "features t={threads}"
            );
        }
    }

    #[test]
    fn feature_vector_shape_and_discrimination() {
        let flat = feature_vector(&constant(16, 16, 4), 16, 16, 8);
        let busy = feature_vector(&checkerboard(16, 16, 0, 7), 16, 16, 8);
        assert_eq!(flat.len(), 36);
        assert_eq!(busy.len(), 36);
        // Contrast (index 0) separates the two textures decisively.
        assert!(busy[0] > flat[0] + 10.0);
    }
}
