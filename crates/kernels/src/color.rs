//! RGB → CIE La\*b\* color conversion — the NBIA pipeline's first
//! computational filter (paper Section 2). La\*b\* separates intensity from
//! color and makes pixel differences perceptually uniform, enabling
//! Euclidean distances in the feature computation.

/// An 8-bit RGB pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rgb8 {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

/// A CIE La\*b\* pixel (D65 white point).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lab {
    /// Lightness, 0..100.
    pub l: f32,
    /// Green–red axis.
    pub a: f32,
    /// Blue–yellow axis.
    pub b: f32,
}

#[inline]
fn srgb_to_linear(c: f64) -> f64 {
    if c <= 0.04045 {
        c / 12.92
    } else {
        ((c + 0.055) / 1.055).powf(2.4)
    }
}

#[inline]
fn lab_f(t: f64) -> f64 {
    const DELTA: f64 = 6.0 / 29.0;
    if t > DELTA * DELTA * DELTA {
        t.cbrt()
    } else {
        t / (3.0 * DELTA * DELTA) + 4.0 / 29.0
    }
}

/// Convert one sRGB pixel to La\*b\* (D65).
pub fn rgb_to_lab(p: Rgb8) -> Lab {
    let r = srgb_to_linear(f64::from(p.r) / 255.0);
    let g = srgb_to_linear(f64::from(p.g) / 255.0);
    let b = srgb_to_linear(f64::from(p.b) / 255.0);
    // sRGB D65 matrix.
    let x = 0.412_456_4 * r + 0.357_576_1 * g + 0.180_437_5 * b;
    let y = 0.212_672_9 * r + 0.715_152_2 * g + 0.072_175_0 * b;
    let z = 0.019_333_9 * r + 0.119_192_0 * g + 0.950_304_1 * b;
    // D65 reference white.
    let (xn, yn, zn) = (0.950_47, 1.0, 1.088_83);
    let (fx, fy, fz) = (lab_f(x / xn), lab_f(y / yn), lab_f(z / zn));
    Lab {
        l: (116.0 * fy - 16.0) as f32,
        a: (500.0 * (fx - fy)) as f32,
        b: (200.0 * (fy - fz)) as f32,
    }
}

/// Convert a whole tile of pixels.
pub fn convert_tile(pixels: &[Rgb8]) -> Vec<Lab> {
    pixels.iter().map(|&p| rgb_to_lab(p)).collect()
}

/// Parallel variant of [`convert_tile`]: the pixel range is split across
/// `threads` scoped workers and the per-chunk outputs concatenated in
/// chunk order. The conversion is elementwise, so the result is
/// bit-identical to the sequential one.
pub fn convert_tile_par(pixels: &[Rgb8], threads: usize) -> Vec<Lab> {
    let parts = crate::par::run_chunks(pixels.len(), threads, |range| {
        pixels[range]
            .iter()
            .map(|&p| rgb_to_lab(p))
            .collect::<Vec<Lab>>()
    });
    let mut out = Vec::with_capacity(pixels.len());
    for part in parts {
        out.extend(part);
    }
    out
}

/// Quantize the L channel of a converted tile to `levels` gray levels
/// (input to the co-occurrence computation).
pub fn quantize_l(lab: &[Lab], levels: u8) -> Vec<u8> {
    assert!(levels >= 2, "need at least 2 levels");
    lab.iter()
        .map(|p| {
            let norm = (p.l / 100.0).clamp(0.0, 1.0);
            ((norm * f32::from(levels - 1)).round()) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn px(r: u8, g: u8, b: u8) -> Rgb8 {
        Rgb8 { r, g, b }
    }

    #[test]
    fn black_and_white_anchors() {
        let black = rgb_to_lab(px(0, 0, 0));
        assert!(black.l.abs() < 0.01);
        assert!(black.a.abs() < 0.01 && black.b.abs() < 0.01);
        let white = rgb_to_lab(px(255, 255, 255));
        assert!((white.l - 100.0).abs() < 0.01, "L {}", white.l);
        assert!(white.a.abs() < 0.1 && white.b.abs() < 0.1);
    }

    #[test]
    fn primary_colors_have_expected_signs() {
        let red = rgb_to_lab(px(255, 0, 0));
        assert!(red.a > 50.0, "red a* {}", red.a);
        let green = rgb_to_lab(px(0, 255, 0));
        assert!(green.a < -50.0, "green a* {}", green.a);
        let blue = rgb_to_lab(px(0, 0, 255));
        assert!(blue.b < -50.0, "blue b* {}", blue.b);
        let yellow = rgb_to_lab(px(255, 255, 0));
        assert!(yellow.b > 50.0, "yellow b* {}", yellow.b);
    }

    #[test]
    fn known_reference_value() {
        // sRGB (128,128,128) => L* ≈ 53.59, a* = b* = 0.
        let gray = rgb_to_lab(px(128, 128, 128));
        assert!((gray.l - 53.59).abs() < 0.05, "L {}", gray.l);
        assert!(gray.a.abs() < 0.01 && gray.b.abs() < 0.01);
    }

    #[test]
    fn lightness_is_monotonic_in_gray_level() {
        let mut last = -1.0f32;
        for v in (0..=255).step_by(5) {
            let l = rgb_to_lab(px(v, v, v)).l;
            assert!(l > last, "L must increase: {last} -> {l}");
            last = l;
        }
    }

    #[test]
    fn quantization_spans_the_range() {
        let lab = vec![
            rgb_to_lab(px(0, 0, 0)),
            rgb_to_lab(px(128, 128, 128)),
            rgb_to_lab(px(255, 255, 255)),
        ];
        let q = quantize_l(&lab, 8);
        assert_eq!(q[0], 0);
        assert_eq!(q[2], 7);
        assert!(q[1] > 0 && q[1] < 7);
    }

    #[test]
    fn convert_tile_is_elementwise() {
        let tile = vec![px(10, 20, 30), px(200, 100, 50)];
        let out = convert_tile(&tile);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], rgb_to_lab(tile[0]));
        assert_eq!(out[1], rgb_to_lab(tile[1]));
    }

    #[test]
    fn parallel_conversion_is_bit_identical() {
        let tile: Vec<Rgb8> = (0..97)
            .map(|i| px((i * 7) as u8, (i * 13) as u8, (i * 29) as u8))
            .collect();
        let seq = convert_tile(&tile);
        for threads in [1, 2, 4, 16] {
            assert_eq!(seq, convert_tile_par(&tile, threads), "t={threads}");
        }
    }
}
