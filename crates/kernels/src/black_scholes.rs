//! Black-Scholes European option pricing — one of the six applications used
//! to evaluate the performance estimator (paper Table 1; from the CUDA SDK).
//!
//! The closed-form price requires the standard normal CDF, implemented via
//! the Abramowitz & Stegun 7.1.26 `erf` approximation (max abs error
//! ~1.5e-7, plenty for workload purposes).

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
#[inline]
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// One option contract's inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Option_ {
    /// Current underlying price.
    pub spot: f64,
    /// Strike price.
    pub strike: f64,
    /// Time to expiry in years.
    pub expiry: f64,
    /// Risk-free rate.
    pub rate: f64,
    /// Volatility.
    pub volatility: f64,
}

/// Call and put prices for one contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Priced {
    /// European call price.
    pub call: f64,
    /// European put price.
    pub put: f64,
}

/// Price a single European option pair under Black-Scholes.
pub fn price(o: Option_) -> Priced {
    assert!(o.spot > 0.0 && o.strike > 0.0 && o.expiry > 0.0 && o.volatility > 0.0);
    let sqrt_t = o.expiry.sqrt();
    let d1 = ((o.spot / o.strike).ln() + (o.rate + 0.5 * o.volatility * o.volatility) * o.expiry)
        / (o.volatility * sqrt_t);
    let d2 = d1 - o.volatility * sqrt_t;
    let discount = (-o.rate * o.expiry).exp();
    let call = o.spot * norm_cdf(d1) - o.strike * discount * norm_cdf(d2);
    let put = o.strike * discount * norm_cdf(-d2) - o.spot * norm_cdf(-d1);
    Priced { call, put }
}

/// Price a batch of options (the SDK benchmark's workload shape).
pub fn price_batch(options: &[Option_]) -> Vec<Priced> {
    options.iter().map(|&o| price(o)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(spot: f64, strike: f64, expiry: f64, rate: f64, vol: f64) -> Option_ {
        Option_ {
            spot,
            strike,
            expiry,
            rate,
            volatility: vol,
        }
    }

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
    }

    #[test]
    fn textbook_call_price() {
        // Hull's classic example: S=42, K=40, r=10%, sigma=20%, T=0.5
        // => call ≈ 4.76, put ≈ 0.81.
        let p = price(opt(42.0, 40.0, 0.5, 0.10, 0.20));
        assert!((p.call - 4.76).abs() < 0.01, "call {}", p.call);
        assert!((p.put - 0.81).abs() < 0.01, "put {}", p.put);
    }

    #[test]
    fn put_call_parity_holds() {
        for (s, k, t, r, v) in [
            (100.0, 100.0, 1.0, 0.05, 0.2),
            (80.0, 120.0, 2.0, 0.01, 0.5),
            (150.0, 50.0, 0.25, 0.03, 0.35),
        ] {
            let p = price(opt(s, k, t, r, v));
            let parity = p.call - p.put - (s - k * (-r * t).exp());
            assert!(parity.abs() < 1e-9, "parity violation {parity}");
        }
    }

    #[test]
    fn deep_in_and_out_of_the_money_limits() {
        let deep_itm = price(opt(1000.0, 1.0, 0.1, 0.0, 0.2));
        assert!((deep_itm.call - 999.0).abs() < 0.5);
        let deep_otm = price(opt(1.0, 1000.0, 0.1, 0.0, 0.2));
        assert!(deep_otm.call < 1e-6);
    }

    #[test]
    fn batch_matches_single() {
        let os = vec![opt(100.0, 90.0, 1.0, 0.02, 0.3); 4];
        let batch = price_batch(&os);
        assert_eq!(batch.len(), 4);
        for p in batch {
            assert_eq!(p, price(os[0]));
        }
    }
}
