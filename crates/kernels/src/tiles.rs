//! Synthetic whole-slide tiles: the NBIA workload substitute.
//!
//! The paper processes digitized neuroblastoma slides decomposed into tiles
//! and classified as stroma-rich, stroma-poor, or background. The runtime
//! behaviour depends on tile geometry and classification confidence, not on
//! medical content, so we generate textured RGB tiles with class-typical
//! statistics (documented substitution; `DESIGN.md` §1) and classify them
//! with a nearest-centroid rule over the real GLCM/LBP features, accepting
//! a tile's label only when the decision margin passes a hypothesis-test
//! style confidence threshold — otherwise the tile is recomputed at the
//! next resolution, exactly the control flow of Figure 1.

use crate::color::{convert_tile, convert_tile_par, quantize_l, Rgb8};
use crate::texture::{feature_vector, feature_vector_par};
use anthill_simkit::SimRng;

/// Tissue classes assigned by NBIA's stromal-development classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileClass {
    /// Stroma-rich tissue (smooth collagen, favorable histology indicator).
    StromaRich,
    /// Stroma-poor tissue (dense nuclei speckle).
    StromaPoor,
    /// Background (no tissue).
    Background,
}

impl TileClass {
    /// All classes.
    pub const ALL: [TileClass; 3] = [
        TileClass::StromaRich,
        TileClass::StromaPoor,
        TileClass::Background,
    ];
}

/// Quantization levels used by the NBIA feature computation.
pub const QUANT_LEVELS: u8 = 8;

/// Generates synthetic tiles with class-typical texture statistics.
#[derive(Debug, Clone)]
pub struct TileGenerator {
    rng: SimRng,
}

impl TileGenerator {
    /// Deterministic generator from a seed.
    pub fn new(seed: u64) -> TileGenerator {
        TileGenerator {
            rng: SimRng::new(seed),
        }
    }

    /// Generate a `side × side` RGB tile of the given class.
    pub fn generate(&mut self, class: TileClass, side: u32) -> Vec<Rgb8> {
        let n = (side * side) as usize;
        let mut out = Vec::with_capacity(n);
        match class {
            TileClass::Background => {
                // Near-white glass with faint sensor noise.
                for _ in 0..n {
                    let v = 245.0 + self.rng.normal(0.0, 2.0);
                    let v = v.clamp(0.0, 255.0) as u8;
                    out.push(Rgb8 { r: v, g: v, b: v });
                }
            }
            TileClass::StromaRich => {
                // Smooth pink collagen: low-frequency sinusoidal lightness
                // field plus mild noise.
                let phase = self.rng.uniform_range(0.0, std::f64::consts::TAU);
                let freq = self.rng.uniform_range(0.5, 1.5);
                for i in 0..n {
                    let x = (i as u32 % side) as f64 / f64::from(side);
                    let y = (i as u32 / side) as f64 / f64::from(side);
                    let field = ((x * freq + y * 0.7 * freq) * std::f64::consts::TAU + phase).sin();
                    let l = 190.0 + 25.0 * field + self.rng.normal(0.0, 4.0);
                    let l = l.clamp(0.0, 255.0);
                    out.push(Rgb8 {
                        r: l as u8,
                        g: (l * 0.72) as u8,
                        b: (l * 0.80) as u8,
                    });
                }
            }
            TileClass::StromaPoor => {
                // Dense nuclei: high-frequency dark-purple speckle on a
                // lighter eosin background.
                for _ in 0..n {
                    if self.rng.chance(0.45) {
                        let l = self.rng.uniform_range(40.0, 110.0);
                        out.push(Rgb8 {
                            r: (l * 0.55) as u8,
                            g: (l * 0.40) as u8,
                            b: l as u8,
                        });
                    } else {
                        let l = self.rng.uniform_range(170.0, 230.0);
                        out.push(Rgb8 {
                            r: l as u8,
                            g: (l * 0.75) as u8,
                            b: (l * 0.85) as u8,
                        });
                    }
                }
            }
        }
        out
    }
}

/// Compute the NBIA feature vector of an RGB tile (color conversion,
/// quantization, GLCM + LBP) — the work of the pipeline's two heavy
/// filters, fused.
pub fn tile_features(pixels: &[Rgb8], side: u32) -> Vec<f64> {
    let lab = convert_tile(pixels);
    let q = quantize_l(&lab, QUANT_LEVELS);
    feature_vector(&q, side as usize, side as usize, QUANT_LEVELS)
}

/// Parallel variant of [`tile_features`]: the color conversion and the
/// feature computation fan out over `threads` scoped workers (the `par`
/// knob of the native runtime). Bit-identical to [`tile_features`] — the
/// underlying `_par` kernels merge integer counts in fixed chunk order.
pub fn tile_features_par(pixels: &[Rgb8], side: u32, threads: usize) -> Vec<f64> {
    let lab = convert_tile_par(pixels, threads);
    let q = quantize_l(&lab, QUANT_LEVELS);
    feature_vector_par(&q, side as usize, side as usize, QUANT_LEVELS, threads)
}

/// A nearest-centroid tile classifier with a confidence margin.
#[derive(Debug, Clone)]
pub struct TileClassifier {
    centroids: Vec<(TileClass, Vec<f64>)>,
    scale: Vec<f64>,
}

/// A classification decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The winning class.
    pub class: TileClass,
    /// Margin-based confidence in `[0, 1]`: 0 = ambiguous, 1 = decisive.
    pub confidence: f64,
}

impl TileClassifier {
    /// Train centroids from `samples_per_class` generated tiles of side
    /// `side` per class.
    pub fn train(seed: u64, samples_per_class: usize, side: u32) -> TileClassifier {
        assert!(samples_per_class >= 1);
        let mut gen = TileGenerator::new(seed);
        let mut centroids = Vec::new();
        let mut all: Vec<Vec<f64>> = Vec::new();
        for class in TileClass::ALL {
            let mut sum: Vec<f64> = Vec::new();
            for _ in 0..samples_per_class {
                let f = tile_features(&gen.generate(class, side), side);
                if sum.is_empty() {
                    sum = vec![0.0; f.len()];
                }
                for (s, x) in sum.iter_mut().zip(&f) {
                    *s += x;
                }
                all.push(f);
            }
            for s in &mut sum {
                *s /= samples_per_class as f64;
            }
            centroids.push((class, sum));
        }
        // Per-dimension scale (max abs over training) for a balanced metric.
        let dims = centroids[0].1.len();
        let mut scale = vec![0.0f64; dims];
        for f in &all {
            for (s, x) in scale.iter_mut().zip(f) {
                *s = s.max(x.abs());
            }
        }
        for s in &mut scale {
            if *s == 0.0 {
                *s = 1.0;
            }
        }
        TileClassifier { centroids, scale }
    }

    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .zip(&self.scale)
            .map(|((x, y), s)| {
                let d = (x - y) / s;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Classify a feature vector, returning the class and a margin-based
    /// confidence (`1 − d_best / d_second`).
    pub fn classify(&self, features: &[f64]) -> Decision {
        let mut scored: Vec<(f64, TileClass)> = self
            .centroids
            .iter()
            .map(|(c, cen)| (self.dist(features, cen), *c))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let best = scored[0];
        let second = scored[1];
        let confidence = if second.0 <= 1e-12 {
            0.0
        } else {
            (1.0 - best.0 / second.0).clamp(0.0, 1.0)
        };
        Decision {
            class: best.1,
            confidence,
        }
    }

    /// The hypothesis test of the Classifier filter: accept the decision at
    /// this resolution iff its confidence reaches `threshold`.
    pub fn accept(&self, features: &[f64], threshold: f64) -> (Decision, bool) {
        let d = self.classify(features);
        let ok = d.confidence >= threshold;
        (d, ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let mut a = TileGenerator::new(5);
        let mut b = TileGenerator::new(5);
        assert_eq!(
            a.generate(TileClass::StromaPoor, 16),
            b.generate(TileClass::StromaPoor, 16)
        );
    }

    #[test]
    fn parallel_tile_features_are_bit_identical() {
        let mut gen = TileGenerator::new(3);
        let tile = gen.generate(TileClass::StromaPoor, 32);
        let seq = tile_features(&tile, 32);
        for threads in [1, 2, 4] {
            assert_eq!(seq, tile_features_par(&tile, 32, threads), "t={threads}");
        }
    }

    #[test]
    fn classes_have_distinct_statistics() {
        let mut gen = TileGenerator::new(7);
        let bg = tile_features(&gen.generate(TileClass::Background, 32), 32);
        let rich = tile_features(&gen.generate(TileClass::StromaRich, 32), 32);
        let poor = tile_features(&gen.generate(TileClass::StromaPoor, 32), 32);
        // Contrast (feature 0): background ≈ 0, poor > rich.
        assert!(bg[0] < 0.2, "background contrast {}", bg[0]);
        assert!(poor[0] > rich[0], "poor {} !> rich {}", poor[0], rich[0]);
    }

    #[test]
    fn classifier_separates_the_classes() {
        let clf = TileClassifier::train(11, 6, 32);
        let mut gen = TileGenerator::new(99);
        let mut correct = 0;
        let trials = 10;
        for class in TileClass::ALL {
            for _ in 0..trials {
                let f = tile_features(&gen.generate(class, 32), 32);
                if clf.classify(&f).class == class {
                    correct += 1;
                }
            }
        }
        assert!(correct >= 28, "accuracy too low: {correct}/{}", 3 * trials);
    }

    #[test]
    fn higher_resolution_does_not_hurt_confidence_on_clean_classes() {
        let clf = TileClassifier::train(13, 6, 32);
        let mut gen = TileGenerator::new(42);
        let f = tile_features(&gen.generate(TileClass::Background, 32), 32);
        let d = clf.classify(&f);
        assert_eq!(d.class, TileClass::Background);
        assert!(d.confidence > 0.3, "confidence {}", d.confidence);
    }

    #[test]
    fn accept_thresholds_the_margin() {
        let clf = TileClassifier::train(17, 6, 32);
        let mut gen = TileGenerator::new(23);
        let f = tile_features(&gen.generate(TileClass::StromaPoor, 32), 32);
        let (_, always) = clf.accept(&f, 0.0);
        let (_, never) = clf.accept(&f, 1.1);
        assert!(always);
        assert!(!never);
    }
}
