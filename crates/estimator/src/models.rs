//! Alternative model-learning algorithms for the performance estimator.
//!
//! The paper's estimator is deliberately simple (plain kNN with averaged
//! neighbour times) and names "more sophisticated model learning
//! algorithms" as future work. This module provides that comparison set:
//!
//! * [`PlainKnn`] — the paper's algorithm (wraps [`KnnEstimator`]),
//! * [`WeightedKnn`] — kNN with inverse-distance weighting,
//! * [`LinearModel`] — least-squares linear regression on the numeric
//!   parameters (the "basic regression model" the paper argues is
//!   insufficient),
//! * [`ConstantSpeedup`] — the Mars-style assumption of one fixed
//!   speedup per application (what the paper's related-work critique
//!   targets).
//!
//! All implement [`LearnedModel`], so the cross-validation harness can
//! score any of them (`anthill-bench`'s `repro sweep-models`).

use crate::distance::Normalizer;
use crate::knn::KnnEstimator;
use crate::param::{ParamValue, TaskParams};
use crate::profile::{DeviceClass, ProfileStore};

/// A fitted performance model: predicts per-device times for a task.
pub trait LearnedModel {
    /// Predicted execution time on `device`, seconds.
    fn predict_time(&self, device: DeviceClass, params: &TaskParams) -> Option<f64>;

    /// Predicted relative speedup of `fast` over `slow`.
    fn predict_speedup(
        &self,
        fast: DeviceClass,
        slow: DeviceClass,
        params: &TaskParams,
    ) -> Option<f64> {
        let tf = self.predict_time(fast, params)?;
        let ts = self.predict_time(slow, params)?;
        if tf > 0.0 {
            Some(ts / tf)
        } else {
            None
        }
    }

    /// Human-readable model name.
    fn name(&self) -> &'static str;
}

/// The paper's plain kNN (k = 2 by default).
pub struct PlainKnn(KnnEstimator);

impl PlainKnn {
    /// Fit on a profile with the given `k`.
    pub fn fit(store: ProfileStore, k: usize) -> PlainKnn {
        PlainKnn(KnnEstimator::fit(store, k))
    }
}

impl LearnedModel for PlainKnn {
    fn predict_time(&self, device: DeviceClass, params: &TaskParams) -> Option<f64> {
        self.0.predict_time(device, params)
    }
    fn name(&self) -> &'static str {
        "kNN (paper)"
    }
}

/// kNN with inverse-distance-weighted averaging of neighbour times.
pub struct WeightedKnn {
    store: ProfileStore,
    normalizer: Normalizer,
    k: usize,
}

impl WeightedKnn {
    /// Fit on a profile with the given `k >= 1`.
    pub fn fit(store: ProfileStore, k: usize) -> WeightedKnn {
        assert!(k >= 1 && !store.is_empty());
        let normalizer = Normalizer::fit(&store);
        WeightedKnn {
            store,
            normalizer,
            k,
        }
    }
}

impl LearnedModel for WeightedKnn {
    fn predict_time(&self, device: DeviceClass, params: &TaskParams) -> Option<f64> {
        let mut dists: Vec<(f64, usize)> = self
            .store
            .samples()
            .iter()
            .enumerate()
            .map(|(i, s)| (self.normalizer.distance(params, &s.params), i))
            .collect();
        dists.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let mut num = 0.0;
        let mut den = 0.0;
        for &(d, i) in dists.iter().take(self.k) {
            let Some(t) = self.store.samples()[i].time_on(device) else {
                continue;
            };
            // An exact match dominates; otherwise weight by 1/d.
            let w = 1.0 / d.max(1e-9);
            num += w * t;
            den += w;
        }
        if den > 0.0 {
            Some(num / den)
        } else {
            None
        }
    }
    fn name(&self) -> &'static str {
        "weighted kNN"
    }
}

/// Ordinary least squares on the numeric parameters (categoricals are
/// ignored), one model per device. Solved by normal equations with
/// Gaussian elimination and a tiny ridge term for stability.
pub struct LinearModel {
    /// Per device class: intercept followed by one coefficient per
    /// numeric dimension.
    coeffs: Vec<(DeviceClass, Vec<f64>)>,
    numeric_dims: Vec<usize>,
    scales: Vec<f64>,
}

impl LinearModel {
    /// Fit per-device linear models on a non-empty profile.
    pub fn fit(store: &ProfileStore) -> LinearModel {
        assert!(!store.is_empty());
        let arity = store.samples()[0].params.len();
        let numeric_dims: Vec<usize> = (0..arity)
            .filter(|&d| {
                store
                    .samples()
                    .iter()
                    .all(|s| matches!(s.params[d], ParamValue::Num(_)))
            })
            .collect();
        // Scale each numeric dim by its max abs for conditioning.
        let scales: Vec<f64> = numeric_dims
            .iter()
            .map(|&d| {
                store
                    .samples()
                    .iter()
                    .filter_map(|s| s.params[d].as_num())
                    .fold(0.0f64, |m, x| m.max(x.abs()))
                    .max(1e-12)
            })
            .collect();

        let devices: Vec<DeviceClass> = {
            let mut ds: Vec<DeviceClass> = store
                .samples()
                .iter()
                .flat_map(|s| s.times.iter().map(|&(d, _)| d))
                .collect();
            ds.sort();
            ds.dedup();
            ds
        };

        let n = numeric_dims.len() + 1;
        let mut coeffs = Vec::new();
        for device in devices {
            // Normal equations: (XᵀX + λI) β = Xᵀy.
            let mut ata = vec![vec![0.0f64; n]; n];
            let mut aty = vec![0.0f64; n];
            for s in store.samples() {
                let Some(y) = s.time_on(device) else { continue };
                let row = Self::features(&numeric_dims, &scales, &s.params);
                for i in 0..n {
                    aty[i] += row[i] * y;
                    for j in 0..n {
                        ata[i][j] += row[i] * row[j];
                    }
                }
            }
            for (i, row) in ata.iter_mut().enumerate() {
                row[i] += 1e-9;
            }
            let beta = solve(ata, aty);
            coeffs.push((device, beta));
        }
        LinearModel {
            coeffs,
            numeric_dims,
            scales,
        }
    }

    fn features(dims: &[usize], scales: &[f64], params: &TaskParams) -> Vec<f64> {
        let mut row = Vec::with_capacity(dims.len() + 1);
        row.push(1.0);
        for (&d, &s) in dims.iter().zip(scales) {
            row.push(params[d].as_num().unwrap_or(0.0) / s);
        }
        row
    }
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty system");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-15 {
            continue;
        }
        for row in col + 1..n {
            let f = a[row][col] / diag;
            let (upper, lower) = a.split_at_mut(row);
            let pivot_row = &upper[col];
            for (x, p) in lower[0].iter_mut().zip(pivot_row).skip(col) {
                *x -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = if a[row][row].abs() < 1e-15 {
            0.0
        } else {
            acc / a[row][row]
        };
    }
    x
}

impl LearnedModel for LinearModel {
    fn predict_time(&self, device: DeviceClass, params: &TaskParams) -> Option<f64> {
        let (_, beta) = self.coeffs.iter().find(|(d, _)| *d == device)?;
        let row = Self::features(&self.numeric_dims, &self.scales, params);
        let y: f64 = row.iter().zip(beta).map(|(x, b)| x * b).sum();
        Some(y.max(1e-12))
    }
    fn name(&self) -> &'static str {
        "linear regression"
    }
}

/// One fixed speedup for the whole application (the static assumption of
/// systems like Mars, which the paper's data-dependence argument refutes):
/// predicts each device's time as the mean profile time, so the predicted
/// speedup is constant.
pub struct ConstantSpeedup {
    means: Vec<(DeviceClass, f64)>,
}

impl ConstantSpeedup {
    /// Fit per-device mean times.
    pub fn fit(store: &ProfileStore) -> ConstantSpeedup {
        let mut acc: Vec<(DeviceClass, f64, usize)> = Vec::new();
        for s in store.samples() {
            for &(d, t) in &s.times {
                match acc.iter_mut().find(|(x, _, _)| *x == d) {
                    Some((_, sum, n)) => {
                        *sum += t;
                        *n += 1;
                    }
                    None => acc.push((d, t, 1)),
                }
            }
        }
        ConstantSpeedup {
            means: acc
                .into_iter()
                .map(|(d, sum, n)| (d, sum / n as f64))
                .collect(),
        }
    }
}

impl LearnedModel for ConstantSpeedup {
    fn predict_time(&self, device: DeviceClass, _params: &TaskParams) -> Option<f64> {
        self.means
            .iter()
            .find(|(d, _)| *d == device)
            .map(|&(_, t)| t)
    }
    fn name(&self) -> &'static str {
        "constant speedup"
    }
}

/// Cross-validate any model: mean absolute percent errors of speedup and
/// CPU-time prediction over `folds`-fold CV.
pub fn cross_validate_model<F, M>(
    store: &ProfileStore,
    folds: usize,
    fit: F,
) -> crate::crossval::CrossValReport
where
    F: Fn(ProfileStore) -> M,
    M: LearnedModel,
{
    assert!(folds >= 2 && store.len() >= folds);
    let mut sp_err = 0.0;
    let mut t_err = 0.0;
    let mut n = 0usize;
    for f in 0..folds {
        let (train, test) = store.fold(folds, f);
        if train.is_empty() {
            continue;
        }
        let model = fit(train);
        for s in test.samples() {
            let (Some(ac), Some(ag)) = (s.time_on(DeviceClass::CPU), s.time_on(DeviceClass::GPU))
            else {
                continue;
            };
            if ac <= 0.0 || ag <= 0.0 {
                continue;
            }
            let actual_speedup = ac / ag;
            let Some(ps) = model.predict_speedup(DeviceClass::GPU, DeviceClass::CPU, &s.params)
            else {
                continue;
            };
            let Some(pt) = model.predict_time(DeviceClass::CPU, &s.params) else {
                continue;
            };
            sp_err += ((ps - actual_speedup) / actual_speedup).abs();
            t_err += ((pt - ac) / ac).abs();
            n += 1;
        }
    }
    crate::crossval::CrossValReport {
        speedup_mape: if n == 0 {
            0.0
        } else {
            100.0 * sp_err / n as f64
        },
        cpu_time_mape: if n == 0 {
            0.0
        } else {
            100.0 * t_err / n as f64
        },
        evaluated: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profile with linear time and size-dependent speedup.
    fn profile() -> ProfileStore {
        let mut st = ProfileStore::new("m");
        for i in 1..=30 {
            let x = i as f64 * 10.0;
            let cpu = 2.0 * x + 5.0;
            let speedup = 1.0 + x / 100.0;
            st.add_cpu_gpu(TaskParams::nums(&[x]), cpu, cpu / speedup);
        }
        st
    }

    #[test]
    fn linear_model_recovers_linear_times() {
        let m = LinearModel::fit(&profile());
        for x in [15.0, 123.0, 250.0] {
            let t = m
                .predict_time(DeviceClass::CPU, &TaskParams::nums(&[x]))
                .unwrap();
            let expect = 2.0 * x + 5.0;
            assert!((t - expect).abs() / expect < 0.01, "x={x}: {t} vs {expect}");
        }
    }

    #[test]
    fn weighted_knn_interpolates_better_than_plain_between_points() {
        let st = profile();
        let plain = PlainKnn::fit(st.clone(), 2);
        let weighted = WeightedKnn::fit(st, 2);
        // Query close to x=100 (between samples 100 and 110).
        let q = TaskParams::nums(&[101.0]);
        let expect = 2.0 * 101.0 + 5.0;
        let ep = (plain.predict_time(DeviceClass::CPU, &q).unwrap() - expect).abs();
        let ew = (weighted.predict_time(DeviceClass::CPU, &q).unwrap() - expect).abs();
        assert!(ew <= ep + 1e-9, "weighted {ew} vs plain {ep}");
    }

    #[test]
    fn constant_speedup_ignores_parameters() {
        let m = ConstantSpeedup::fit(&profile());
        let a = m
            .predict_speedup(
                DeviceClass::GPU,
                DeviceClass::CPU,
                &TaskParams::nums(&[10.0]),
            )
            .unwrap();
        let b = m
            .predict_speedup(
                DeviceClass::GPU,
                DeviceClass::CPU,
                &TaskParams::nums(&[300.0]),
            )
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cv_ranks_models_sensibly_on_linear_data() {
        let st = profile();
        let lin = cross_validate_model(&st, 10, |tr| LinearModel::fit(&tr));
        let knn = cross_validate_model(&st, 10, |tr| PlainKnn::fit(tr, 2));
        let cst = cross_validate_model(&st, 10, |tr| ConstantSpeedup::fit(&tr));
        // Linear data: regression wins on time; constant-speedup is the
        // worst at speedups (they vary 1.1x..4x here).
        assert!(lin.cpu_time_mape < knn.cpu_time_mape);
        assert!(cst.speedup_mape > 2.0 * knn.speedup_mape);
        assert!(lin.evaluated > 0 && knn.evaluated > 0);
    }

    #[test]
    fn weighted_knn_exact_on_training_point() {
        let m = WeightedKnn::fit(profile(), 3);
        let t = m
            .predict_time(DeviceClass::CPU, &TaskParams::nums(&[100.0]))
            .unwrap();
        assert!((t - 205.0).abs() < 1.0, "{t}");
    }

    #[test]
    fn solver_handles_singular_matrices_gracefully() {
        // Duplicate columns: rank-deficient; must not panic.
        let mut st = ProfileStore::new("s");
        for i in 1..=10 {
            let x = i as f64;
            st.add_cpu_gpu(TaskParams::nums(&[x, x]), x, x / 2.0);
        }
        let m = LinearModel::fit(&st);
        let t = m
            .predict_time(DeviceClass::CPU, &TaskParams::nums(&[5.0, 5.0]))
            .unwrap();
        assert!((t - 5.0).abs() < 0.2, "{t}");
    }
}
