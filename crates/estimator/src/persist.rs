//! Profile persistence: the paper's phase one benchmarks an application
//! once and *stores* the execution times for later runs (Figure 3). A
//! small self-describing text format keeps the store dependency-free:
//!
//! ```text
//! # anthill-profile v1
//! app: NBIA-component
//! columns: n:num, variant:cat
//! devices: 0, 1
//! row: 32|stroma ; 0=0.00112, 1=0.00109
//! ```

use std::fmt::Write as _;

use crate::param::{ParamValue, TaskParams};
use crate::profile::{DeviceClass, ProfileSample, ProfileStore};

/// Errors from parsing a serialized profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line (0 = structural).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "profile parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Escape `|`, `;`, `,`, newlines and backslashes in categorical values.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' | '|' | ';' | ',' | '\n' => {
                out.push('\\');
                out.push(if c == '\n' { 'n' } else { c });
            }
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Serialize a profile to the text format.
pub fn to_text(store: &ProfileStore) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# anthill-profile v1");
    let _ = writeln!(out, "app: {}", escape(&store.app));
    for s in store.samples() {
        let params: Vec<String> = s
            .params
            .iter()
            .map(|p| match p {
                ParamValue::Num(x) => format!("{x:?}"),
                ParamValue::Cat(c) => format!("${}", escape(c)),
            })
            .collect();
        let times: Vec<String> = s
            .times
            .iter()
            .map(|(d, t)| format!("{}={t:?}", d.0))
            .collect();
        let _ = writeln!(out, "row: {} ; {}", params.join("|"), times.join(", "));
    }
    out
}

/// Parse a profile from the text format.
pub fn from_text(text: &str) -> Result<ProfileStore, ParseError> {
    let mut app = String::new();
    let mut store: Option<ProfileStore> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("app:") {
            app = unescape(rest.trim());
            store = Some(ProfileStore::new(app.clone()));
            continue;
        }
        let Some(rest) = line.strip_prefix("row:") else {
            return Err(err(lineno, format!("unrecognized line: {line}")));
        };
        let store = store
            .as_mut()
            .ok_or_else(|| err(lineno, "row before app header"))?;
        // Escape-aware split: categorical values may contain ';'.
        let parts = split_unescaped(rest, ';');
        if parts.len() != 2 {
            return Err(err(lineno, "row must have exactly one ';' separator"));
        }
        let (params_part, times_part) = (parts[0].as_str(), parts[1].as_str());
        let mut params = Vec::new();
        for field in split_unescaped(params_part.trim(), '|') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            if let Some(cat) = field.strip_prefix('$') {
                params.push(ParamValue::Cat(unescape(cat)));
            } else {
                let x: f64 = field
                    .parse()
                    .map_err(|e| err(lineno, format!("bad number '{field}': {e}")))?;
                params.push(ParamValue::Num(x));
            }
        }
        let mut times = Vec::new();
        for field in split_unescaped(times_part.trim(), ',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (d, t) = field
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("bad time entry '{field}'")))?;
            let device: u16 = d
                .trim()
                .parse()
                .map_err(|e| err(lineno, format!("bad device id '{d}': {e}")))?;
            let secs: f64 = t
                .trim()
                .parse()
                .map_err(|e| err(lineno, format!("bad seconds '{t}': {e}")))?;
            times.push((DeviceClass(device), secs));
        }
        if times.is_empty() {
            return Err(err(lineno, "row has no device times"));
        }
        store.add(ProfileSample {
            params: TaskParams::new(params),
            times,
        });
    }
    store.ok_or_else(|| err(0, format!("no 'app:' header found (app='{app}')")))
}

/// Split on `sep`, honouring backslash escapes.
fn split_unescaped(s: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            cur.push('\\');
            cur.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == sep {
            out.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if escaped {
        cur.push('\\');
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params;

    fn sample_store() -> ProfileStore {
        let mut st = ProfileStore::new("demo app");
        st.add_cpu_gpu(params![64.0, "variant-a"], 0.125, 0.01);
        st.add_cpu_gpu(params![512.0, "variant|b"], 2.5, 0.075);
        st.add(ProfileSample {
            params: params![8.0, "c"],
            times: vec![(DeviceClass(7), 3.5)],
        });
        st
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample_store();
        let text = to_text(&original);
        let parsed = from_text(&text).expect("round trip parses");
        assert_eq!(parsed.app, original.app);
        assert_eq!(parsed.len(), original.len());
        for (a, b) in parsed.samples().iter().zip(original.samples()) {
            assert_eq!(a.params, b.params);
            assert_eq!(a.times, b.times);
        }
    }

    #[test]
    fn float_precision_survives() {
        let mut st = ProfileStore::new("p");
        st.add_cpu_gpu(params![1.0e-9], 1.234567890123e-7, 9.87654321e3);
        let parsed = from_text(&to_text(&st)).unwrap();
        let s = &parsed.samples()[0];
        assert_eq!(s.time_on(DeviceClass::CPU), Some(1.234567890123e-7));
        assert_eq!(s.time_on(DeviceClass::GPU), Some(9.87654321e3));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hi\n\napp: x\n# mid\nrow: 1.0 ; 0=2.0\n";
        let st = from_text(text).unwrap();
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = from_text("app: x\nrow: nonsense ; 0=1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad number"));
        let e = from_text("row: 1 ; 0=1").unwrap_err();
        assert!(e.message.contains("before app header"));
        let e = from_text("app: x\nwhat is this").unwrap_err();
        assert!(e.message.contains("unrecognized"));
        let e = from_text("").unwrap_err();
        assert_eq!(e.line, 0);
    }

    #[test]
    fn escaped_separators_in_categories() {
        let mut st = ProfileStore::new("a;b|c");
        st.add_cpu_gpu(params!["x|y;z,w"], 1.0, 2.0);
        let parsed = from_text(&to_text(&st)).unwrap();
        assert_eq!(parsed.app, "a;b|c");
        assert_eq!(parsed.samples()[0].params, params!["x|y;z,w"]);
    }

    #[test]
    fn fitted_estimator_matches_after_round_trip() {
        let st = sample_store();
        let parsed = from_text(&to_text(&st)).unwrap();
        let a = crate::KnnEstimator::fit(st, 1);
        let b = crate::KnnEstimator::fit(parsed, 1);
        let q = params![64.0, "variant-a"];
        assert_eq!(
            a.predict_time(DeviceClass::CPU, &q),
            b.predict_time(DeviceClass::CPU, &q)
        );
    }
}
