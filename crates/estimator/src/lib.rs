//! # anthill-estimator — relative-performance estimation (paper Section 4)
//!
//! The paper's central observation is that GPU speedup is *data dependent*:
//! where a task should run can only be decided at run time, from its input
//! parameters. Predicting absolute execution times is hard; predicting the
//! *relative fitness* (speedup) of the same task across devices is much
//! easier and is all the schedulers need (they only require a correct
//! *ordering* of tasks per device).
//!
//! Two-phase strategy (paper Figure 3):
//! 1. benchmark a representative workload, storing input parameters and
//!    per-device execution times in a [`ProfileStore`];
//! 2. at run time, a [`KnnEstimator`] retrieves the `k` nearest profiled
//!    executions under a mixed-type normalized distance ([`Normalizer`])
//!    and averages their times per device to derive the task's speedup.
//!
//! [`cross_validate`] reproduces Table 1's evaluation methodology (10-fold
//! CV of speedup error vs direct CPU-time error).
//!
//! ```
//! use anthill_estimator::{params, DeviceClass, KnnEstimator, ProfileStore};
//!
//! let mut profile = ProfileStore::new("demo");
//! for i in 1..=30u32 {
//!     let size = f64::from(i) * 32.0;
//!     let cpu = size * size * 1e-6;          // CPU time grows with area
//!     let gpu = 1e-3 + size * size * 3e-8;   // GPU pays a fixed overhead
//!     profile.add_cpu_gpu(params![size], cpu, gpu);
//! }
//! let est = KnnEstimator::fit_default(profile);
//! let small = est.predict_speedup(DeviceClass::GPU, DeviceClass::CPU, &params![32.0]).unwrap();
//! let large = est.predict_speedup(DeviceClass::GPU, DeviceClass::CPU, &params![960.0]).unwrap();
//! assert!(small < 4.0 && large > 10.0); // data-dependent speedup
//! ```

#![warn(missing_docs)]

mod crossval;
mod distance;
mod knn;
pub mod models;
pub mod online;
mod param;
pub mod persist;
mod profile;

pub use crossval::{cross_validate, sweep_k, CrossValReport};
pub use distance::Normalizer;
pub use knn::{KnnEstimator, DEFAULT_K};
pub use online::{fnv1a64, OnlineCell, OnlineProfile, ShapeKey};
pub use param::{ParamValue, TaskParams};
pub use profile::{DeviceClass, ProfileSample, ProfileStore};
