//! Benchmark profiles: the training data of the performance estimator.
//!
//! Phase one of the paper's two-phase strategy benchmarks a new application
//! on a representative workload and stores, per job: the input parameters,
//! the targeted devices, and the measured execution times (Figure 3).

use crate::param::TaskParams;
use serde::{Deserialize, Serialize};

/// A class of processing device, as seen by the estimator. The estimator is
/// agnostic about what the classes mean; the runtime maps its device kinds
/// onto them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceClass(pub u16);

impl DeviceClass {
    /// Conventional class for a CPU core (the paper's baseline device).
    pub const CPU: DeviceClass = DeviceClass(0);
    /// Conventional class for a GPU.
    pub const GPU: DeviceClass = DeviceClass(1);
}

/// One profiled job: its input parameters and the measured execution time on
/// each benchmarked device class, in seconds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileSample {
    /// The job's input parameters.
    pub params: TaskParams,
    /// `(device, seconds)` pairs; one entry per benchmarked device.
    pub times: Vec<(DeviceClass, f64)>,
}

impl ProfileSample {
    /// Execution time on `device`, if it was benchmarked.
    pub fn time_on(&self, device: DeviceClass) -> Option<f64> {
        self.times
            .iter()
            .find(|(d, _)| *d == device)
            .map(|&(_, t)| t)
    }

    /// Measured speedup of `fast` relative to `slow` (slow time / fast
    /// time), if both were benchmarked and the fast time is positive.
    pub fn speedup(&self, fast: DeviceClass, slow: DeviceClass) -> Option<f64> {
        let tf = self.time_on(fast)?;
        let ts = self.time_on(slow)?;
        if tf > 0.0 {
            Some(ts / tf)
        } else {
            None
        }
    }
}

/// The stored profile of one application: a bag of benchmarked jobs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProfileStore {
    /// Application name (for reporting).
    pub app: String,
    samples: Vec<ProfileSample>,
}

impl ProfileStore {
    /// Empty profile for an application.
    pub fn new(app: impl Into<String>) -> ProfileStore {
        ProfileStore {
            app: app.into(),
            samples: Vec::new(),
        }
    }

    /// Add one benchmarked job. Samples with differing arity are rejected
    /// because distances would be meaningless.
    pub fn add(&mut self, sample: ProfileSample) {
        if let Some(first) = self.samples.first() {
            assert_eq!(
                first.params.len(),
                sample.params.len(),
                "all samples of a profile must share parameter arity"
            );
        }
        self.samples.push(sample);
    }

    /// Convenience: add a job benchmarked on CPU and GPU.
    pub fn add_cpu_gpu(&mut self, params: TaskParams, cpu_secs: f64, gpu_secs: f64) {
        self.add(ProfileSample {
            params,
            times: vec![(DeviceClass::CPU, cpu_secs), (DeviceClass::GPU, gpu_secs)],
        });
    }

    /// All samples.
    pub fn samples(&self) -> &[ProfileSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the profile has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Split into `k` folds for cross-validation: fold `i` contains samples
    /// whose index `% k == i`. Returns `(train, test)` stores for fold `i`.
    pub fn fold(&self, k: usize, i: usize) -> (ProfileStore, ProfileStore) {
        assert!(k >= 2 && i < k, "invalid fold spec");
        let mut train = ProfileStore::new(self.app.clone());
        let mut test = ProfileStore::new(self.app.clone());
        for (idx, s) in self.samples.iter().enumerate() {
            if idx % k == i {
                test.samples.push(s.clone());
            } else {
                train.samples.push(s.clone());
            }
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params;

    #[test]
    fn sample_lookups() {
        let s = ProfileSample {
            params: params![10.0],
            times: vec![(DeviceClass::CPU, 2.0), (DeviceClass::GPU, 0.5)],
        };
        assert_eq!(s.time_on(DeviceClass::CPU), Some(2.0));
        assert_eq!(s.time_on(DeviceClass(9)), None);
        assert_eq!(s.speedup(DeviceClass::GPU, DeviceClass::CPU), Some(4.0));
        assert_eq!(s.speedup(DeviceClass(9), DeviceClass::CPU), None);
    }

    #[test]
    fn zero_fast_time_yields_none() {
        let s = ProfileSample {
            params: params![1.0],
            times: vec![(DeviceClass::CPU, 2.0), (DeviceClass::GPU, 0.0)],
        };
        assert_eq!(s.speedup(DeviceClass::GPU, DeviceClass::CPU), None);
    }

    #[test]
    fn store_folds_partition_the_samples() {
        let mut st = ProfileStore::new("app");
        for i in 0..10 {
            st.add_cpu_gpu(params![i as f64], 1.0, 0.5);
        }
        let mut total_test = 0;
        for i in 0..5 {
            let (train, test) = st.fold(5, i);
            assert_eq!(train.len() + test.len(), 10);
            assert_eq!(test.len(), 2);
            total_test += test.len();
        }
        assert_eq!(total_test, 10);
    }

    #[test]
    #[should_panic(expected = "parameter arity")]
    fn mismatched_arity_rejected() {
        let mut st = ProfileStore::new("app");
        st.add_cpu_gpu(params![1.0], 1.0, 1.0);
        st.add_cpu_gpu(params![1.0, 2.0], 1.0, 1.0);
    }
}
