//! The kNN model-learning algorithm of Section 4.
//!
//! When a new task is created, the `k` nearest profiled executions are
//! retrieved by the mixed-type distance on input parameters; their
//! execution times are averaged per device, and the averages are used to
//! compute the task's relative speedup across devices. The paper uses
//! `k = 2` as it "achieved near-best estimations for all configurations".

use crate::distance::Normalizer;
use crate::param::TaskParams;
use crate::profile::{DeviceClass, ProfileStore};

/// Default number of neighbours, per the paper.
pub const DEFAULT_K: usize = 2;

/// A fitted kNN performance estimator for one application.
#[derive(Debug, Clone)]
pub struct KnnEstimator {
    store: ProfileStore,
    normalizer: Normalizer,
    k: usize,
}

impl KnnEstimator {
    /// Fit an estimator over a profile with the given `k` (>= 1).
    pub fn fit(store: ProfileStore, k: usize) -> KnnEstimator {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            !store.is_empty(),
            "cannot fit an estimator on an empty profile"
        );
        let normalizer = Normalizer::fit(&store);
        KnnEstimator {
            store,
            normalizer,
            k,
        }
    }

    /// Fit with the paper's default `k = 2`.
    pub fn fit_default(store: ProfileStore) -> KnnEstimator {
        Self::fit(store, DEFAULT_K)
    }

    /// The `k` in use.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.store.len()
    }

    /// Indices of the `k` nearest training samples to `query`, closest
    /// first. Ties are broken by sample order (deterministic).
    fn neighbours(&self, query: &TaskParams) -> Vec<usize> {
        let mut dists: Vec<(f64, usize)> = self
            .store
            .samples()
            .iter()
            .enumerate()
            .map(|(i, s)| (self.normalizer.distance(query, &s.params), i))
            .collect();
        dists.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        dists.truncate(self.k);
        dists.into_iter().map(|(_, i)| i).collect()
    }

    /// Predicted execution time (seconds) on `device`: the mean of the k
    /// nearest neighbours' measured times on that device. `None` if no
    /// neighbour was benchmarked on that device.
    pub fn predict_time(&self, device: DeviceClass, query: &TaskParams) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in self.neighbours(query) {
            if let Some(t) = self.store.samples()[i].time_on(device) {
                sum += t;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Predicted relative speedup of `fast` over `slow` for the query task:
    /// mean neighbour time on `slow` divided by mean neighbour time on
    /// `fast`. `None` if either device has no neighbour data or the fast
    /// mean is zero.
    pub fn predict_speedup(
        &self,
        fast: DeviceClass,
        slow: DeviceClass,
        query: &TaskParams,
    ) -> Option<f64> {
        let tf = self.predict_time(fast, query)?;
        let ts = self.predict_time(slow, query)?;
        if tf > 0.0 {
            Some(ts / tf)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params;

    fn linear_profile(n: usize) -> ProfileStore {
        // cpu = x, gpu = x / 4 (speedup 4 everywhere)
        let mut st = ProfileStore::new("lin");
        for i in 1..=n {
            let x = i as f64;
            st.add_cpu_gpu(params![x], x, x / 4.0);
        }
        st
    }

    #[test]
    fn k1_on_training_point_is_exact() {
        let est = KnnEstimator::fit(linear_profile(10), 1);
        let t = est.predict_time(DeviceClass::CPU, &params![7.0]).unwrap();
        assert_eq!(t, 7.0);
        let s = est
            .predict_speedup(DeviceClass::GPU, DeviceClass::CPU, &params![7.0])
            .unwrap();
        assert!((s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn k2_averages_the_two_nearest() {
        let est = KnnEstimator::fit(linear_profile(10), 2);
        // Query 6.4: nearest are 6 and 7 -> mean cpu 6.5
        let t = est.predict_time(DeviceClass::CPU, &params![6.4]).unwrap();
        assert!((t - 6.5).abs() < 1e-12);
    }

    #[test]
    fn constant_speedup_predicted_even_between_samples() {
        let est = KnnEstimator::fit_default(linear_profile(30));
        for q in [1.5, 10.2, 29.9, 35.0] {
            let s = est
                .predict_speedup(DeviceClass::GPU, DeviceClass::CPU, &params![q])
                .unwrap();
            assert!((s - 4.0).abs() < 1e-9, "q={q} s={s}");
        }
    }

    #[test]
    fn missing_device_yields_none() {
        let mut st = ProfileStore::new("one-device");
        st.add(crate::ProfileSample {
            params: params![1.0],
            times: vec![(DeviceClass::CPU, 1.0)],
        });
        let est = KnnEstimator::fit(st, 1);
        assert!(est.predict_time(DeviceClass::GPU, &params![1.0]).is_none());
        assert!(est
            .predict_speedup(DeviceClass::GPU, DeviceClass::CPU, &params![1.0])
            .is_none());
    }

    #[test]
    fn k_larger_than_store_uses_all_samples() {
        let est = KnnEstimator::fit(linear_profile(3), 10);
        let t = est.predict_time(DeviceClass::CPU, &params![2.0]).unwrap();
        assert!((t - 2.0).abs() < 1e-12); // mean of 1,2,3
    }

    #[test]
    fn categorical_dimension_steers_neighbours() {
        let mut st = ProfileStore::new("cat");
        // variant "a" is slow on GPU, "b" is fast.
        for i in 1..=5 {
            let x = i as f64;
            st.add_cpu_gpu(params![x, "a"], x, x); // speedup 1
            st.add_cpu_gpu(params![x, "b"], x, x / 10.0); // speedup 10
        }
        let est = KnnEstimator::fit(st, 2);
        let sa = est
            .predict_speedup(DeviceClass::GPU, DeviceClass::CPU, &params![3.0, "a"])
            .unwrap();
        let sb = est
            .predict_speedup(DeviceClass::GPU, DeviceClass::CPU, &params![3.0, "b"])
            .unwrap();
        assert!((sa - 1.0).abs() < 1e-9, "sa={sa}");
        assert!((sb - 10.0).abs() < 1e-9, "sb={sb}");
    }
}
