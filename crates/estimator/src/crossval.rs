//! Cross-validation of the estimator, reproducing the methodology behind
//! Table 1: 10-fold cross-validation over a 30-job profile, reporting the
//! average percent error of (a) the predicted GPU-vs-CPU speedup and (b) the
//! directly predicted CPU execution time.

use crate::knn::KnnEstimator;
use crate::profile::{DeviceClass, ProfileStore};

/// Errors measured by one cross-validation, as mean absolute percent errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossValReport {
    /// Mean |predicted speedup − actual speedup| / actual speedup × 100.
    pub speedup_mape: f64,
    /// Mean |predicted CPU time − actual CPU time| / actual CPU time × 100.
    pub cpu_time_mape: f64,
    /// Number of (sample, prediction) pairs evaluated.
    pub evaluated: usize,
}

/// Run `folds`-fold cross-validation of a kNN estimator with the given `k`
/// over `store`, predicting GPU-vs-CPU speedups and CPU times.
///
/// Samples lacking a CPU or GPU measurement are skipped (they cannot be
/// scored). Panics if `folds < 2` or the store is too small to leave a
/// non-empty training set in every fold.
pub fn cross_validate(store: &ProfileStore, k: usize, folds: usize) -> CrossValReport {
    assert!(folds >= 2, "need at least 2 folds");
    assert!(
        store.len() >= folds,
        "store of {} samples cannot be split into {} folds",
        store.len(),
        folds
    );
    let mut speedup_err_sum = 0.0;
    let mut time_err_sum = 0.0;
    let mut n = 0usize;

    for f in 0..folds {
        let (train, test) = store.fold(folds, f);
        if train.is_empty() || test.is_empty() {
            continue;
        }
        let est = KnnEstimator::fit(train, k);
        for s in test.samples() {
            let (Some(actual_cpu), Some(actual_gpu)) =
                (s.time_on(DeviceClass::CPU), s.time_on(DeviceClass::GPU))
            else {
                continue;
            };
            if actual_cpu <= 0.0 || actual_gpu <= 0.0 {
                continue;
            }
            let actual_speedup = actual_cpu / actual_gpu;
            let Some(pred_speedup) =
                est.predict_speedup(DeviceClass::GPU, DeviceClass::CPU, &s.params)
            else {
                continue;
            };
            let Some(pred_cpu) = est.predict_time(DeviceClass::CPU, &s.params) else {
                continue;
            };
            speedup_err_sum += ((pred_speedup - actual_speedup) / actual_speedup).abs();
            time_err_sum += ((pred_cpu - actual_cpu) / actual_cpu).abs();
            n += 1;
        }
    }

    CrossValReport {
        speedup_mape: if n == 0 {
            0.0
        } else {
            100.0 * speedup_err_sum / n as f64
        },
        cpu_time_mape: if n == 0 {
            0.0
        } else {
            100.0 * time_err_sum / n as f64
        },
        evaluated: n,
    }
}

/// Sweep `k` over a range and return `(k, report)` pairs; used for the
/// paper's observation that `k = 2` is near-best.
pub fn sweep_k(store: &ProfileStore, ks: &[usize], folds: usize) -> Vec<(usize, CrossValReport)> {
    ks.iter()
        .map(|&k| (k, cross_validate(store, k, folds)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params;

    /// Profile where speedup is a smooth function of the parameter but the
    /// absolute times are strongly nonlinear: kNN should predict speedups
    /// much better than times, as in Table 1.
    fn curved_profile(n: usize) -> ProfileStore {
        let mut st = ProfileStore::new("curved");
        for i in 0..n {
            let x = 1.0 + i as f64;
            // CPU time grows super-linearly; GPU keeps a smooth advantage.
            let cpu = 0.001 * x * x * (1.0 + 0.5 * (x * 0.7).sin().abs());
            let speedup = 1.0 + 10.0 * (x / n as f64);
            st.add_cpu_gpu(params![x], cpu, cpu / speedup);
        }
        st
    }

    #[test]
    fn perfect_profile_has_zero_speedup_error() {
        // Constant speedup, linear time => kNN speedup is exact.
        let mut st = ProfileStore::new("const");
        for i in 1..=30 {
            let x = i as f64;
            st.add_cpu_gpu(params![x], x, x / 5.0);
        }
        let r = cross_validate(&st, 2, 10);
        assert!(r.speedup_mape < 1e-9, "speedup mape {}", r.speedup_mape);
        assert!(r.evaluated > 0);
    }

    #[test]
    fn speedup_error_below_time_error_on_curved_profile() {
        let st = curved_profile(30);
        let r = cross_validate(&st, 2, 10);
        assert!(
            r.speedup_mape < r.cpu_time_mape,
            "speedup {} !< time {}",
            r.speedup_mape,
            r.cpu_time_mape
        );
    }

    #[test]
    fn sweep_covers_all_k() {
        let st = curved_profile(30);
        let sw = sweep_k(&st, &[1, 2, 4, 8], 10);
        assert_eq!(sw.len(), 4);
        assert!(sw.iter().all(|(_, r)| r.evaluated > 0));
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_rejected() {
        let st = curved_profile(10);
        let _ = cross_validate(&st, 2, 1);
    }
}
