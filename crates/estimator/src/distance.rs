//! The mixed-type distance metric of Section 4.
//!
//! Numeric dimensions are first normalized by dividing each value by the
//! highest absolute value observed for that dimension in the profile, then
//! compared with Euclidean distance. Categorical dimensions contribute 0 on
//! an exact match and 1 otherwise.

use crate::param::{ParamValue, TaskParams};
use crate::profile::ProfileStore;

/// Per-dimension normalization factors learned from a profile.
#[derive(Debug, Clone)]
pub struct Normalizer {
    /// `Some(max_abs)` for numeric dimensions, `None` for categorical ones.
    scales: Vec<Option<f64>>,
}

impl Normalizer {
    /// Learn scales from the samples in a profile. Panics on an empty
    /// profile (there is nothing to normalize against).
    pub fn fit(store: &ProfileStore) -> Normalizer {
        assert!(
            !store.is_empty(),
            "cannot fit a normalizer to an empty profile"
        );
        let arity = store.samples()[0].params.len();
        let mut scales: Vec<Option<f64>> = vec![None; arity];
        for s in store.samples() {
            for (d, v) in s.params.iter().enumerate() {
                if let ParamValue::Num(x) = v {
                    let e = scales[d].get_or_insert(0.0);
                    *e = e.max(x.abs());
                }
            }
        }
        // Dimensions whose max is 0 (all zeros) keep scale 1 so the
        // normalized value stays 0 rather than dividing by zero.
        for s in scales.iter_mut().flatten() {
            if *s == 0.0 {
                *s = 1.0;
            }
        }
        Normalizer { scales }
    }

    /// Number of dimensions this normalizer expects.
    pub fn arity(&self) -> usize {
        self.scales.len()
    }

    /// Distance between two parameter vectors under this normalization.
    ///
    /// Numeric dimensions: normalized Euclidean. Categorical dimensions add
    /// 0 on match, 1 on mismatch (inside the same sum of squares, per the
    /// paper's description). A numeric/categorical kind mismatch counts as
    /// maximal disagreement (1).
    pub fn distance(&self, a: &TaskParams, b: &TaskParams) -> f64 {
        assert_eq!(a.len(), self.arity(), "query arity mismatch");
        assert_eq!(b.len(), self.arity(), "sample arity mismatch");
        let mut sum = 0.0;
        for (d, (va, vb)) in a.iter().zip(b.iter()).enumerate() {
            let term = match (va, vb) {
                (ParamValue::Num(x), ParamValue::Num(y)) => {
                    let s = self.scales[d].unwrap_or(1.0);
                    let diff = (x - y) / s;
                    diff * diff
                }
                (ParamValue::Cat(x), ParamValue::Cat(y)) if x == y => 0.0,
                (ParamValue::Cat(_), ParamValue::Cat(_)) => 1.0,
                // Kind mismatch: treat as fully different.
                _ => 1.0,
            };
            sum += term;
        }
        sum.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params;

    fn store_with(rows: &[&[f64]]) -> ProfileStore {
        let mut st = ProfileStore::new("t");
        for r in rows {
            st.add_cpu_gpu(TaskParams::nums(r), 1.0, 1.0);
        }
        st
    }

    #[test]
    fn normalized_euclidean() {
        // Max per dim: [10, 100]
        let st = store_with(&[&[10.0, 50.0], &[5.0, 100.0]]);
        let n = Normalizer::fit(&st);
        let d = n.distance(&params![10.0, 0.0], &params![0.0, 100.0]);
        // normalized diffs: (1.0, -1.0) => sqrt(2)
        assert!((d - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn categorical_contributes_binary() {
        let mut st = ProfileStore::new("t");
        st.add_cpu_gpu(params![1.0, "a"], 1.0, 1.0);
        st.add_cpu_gpu(params![2.0, "b"], 1.0, 1.0);
        let n = Normalizer::fit(&st);
        assert_eq!(n.distance(&params![2.0, "a"], &params![2.0, "a"]), 0.0);
        assert_eq!(n.distance(&params![2.0, "a"], &params![2.0, "b"]), 1.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let st = store_with(&[&[3.0, 4.0], &[1.0, 2.0]]);
        let n = Normalizer::fit(&st);
        let a = params![3.0, 2.0];
        let b = params![1.0, 4.0];
        assert_eq!(n.distance(&a, &a), 0.0);
        assert!((n.distance(&a, &b) - n.distance(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn all_zero_dimension_does_not_blow_up() {
        let st = store_with(&[&[0.0], &[0.0]]);
        let n = Normalizer::fit(&st);
        assert_eq!(n.distance(&params![0.0], &params![0.0]), 0.0);
    }

    #[test]
    fn kind_mismatch_is_maximal() {
        let mut st = ProfileStore::new("t");
        st.add_cpu_gpu(params![1.0, "a"], 1.0, 1.0);
        let n = Normalizer::fit(&st);
        let d = n.distance(&params![1.0, "a"], &params![1.0, 2.0]);
        assert_eq!(d, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty profile")]
    fn empty_profile_rejected() {
        let _ = Normalizer::fit(&ProfileStore::new("t"));
    }
}
