//! Online (run-time) service-time profiles.
//!
//! The benchmark-time [`crate::ProfileStore`] is static: it never learns
//! from what the cluster actually observes. This module closes the loop.
//! An [`OnlineProfile`] ingests observed service-time spans — the
//! `remote_start`/`remote_finish` pairs flowing back from workers — keyed
//! by `(device class, task shape)` and maintains, per cell:
//!
//! * an **EWMA mean** (and EWMA of squared deviations for a variance
//!   estimate), so recent observations dominate stale ones;
//! * a **bounded-history quantile sketch**: the last `history_cap` raw
//!   samples in a ring, from which any quantile is answered exactly over
//!   that window.
//!
//! The structure is deterministic: given the same sequence of
//! `observe` calls it reaches bit-identical state — there is no internal
//! randomness and iteration order is fixed (`BTreeMap`). That is the
//! property the learned schedulers in `anthill::policy::learned` build
//! their cross-backend determinism contract on.
//!
//! Profiles round-trip through a self-describing text format
//! ([`OnlineProfile::to_text`] / [`OnlineProfile::from_text`]) so a run's
//! learned state can be persisted and used to warm-start the next run.

use crate::profile::DeviceClass;
use std::collections::BTreeMap;

/// Stable 64-bit key identifying a task shape (a hash of its parameters).
pub type ShapeKey = u64;

/// FNV-1a over `bytes`: a small, endian-stable, dependency-free hash used
/// to derive [`ShapeKey`]s (and the learned schedulers' decision noise).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Default EWMA smoothing factor: recent spans get 20% of the mass.
pub const DEFAULT_ALPHA: f64 = 0.2;
/// Default bounded-history window per cell.
pub const DEFAULT_HISTORY: usize = 64;

/// One `(device class, task shape)` cell of an [`OnlineProfile`].
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineCell {
    count: u64,
    ewma: f64,
    ewvar: f64,
    history: Vec<f64>,
    cursor: usize,
}

impl OnlineCell {
    fn new() -> OnlineCell {
        OnlineCell {
            count: 0,
            ewma: 0.0,
            ewvar: 0.0,
            history: Vec::new(),
            cursor: 0,
        }
    }

    fn observe(&mut self, alpha: f64, cap: usize, secs: f64) {
        if self.count == 0 {
            self.ewma = secs;
            self.ewvar = 0.0;
        } else {
            let dev = secs - self.ewma;
            self.ewma += alpha * dev;
            self.ewvar = (1.0 - alpha) * (self.ewvar + alpha * dev * dev);
        }
        if self.history.len() < cap {
            self.history.push(secs);
        } else if cap > 0 {
            self.history[self.cursor] = secs;
            self.cursor = (self.cursor + 1) % cap;
        }
        self.count += 1;
    }

    /// Observations ingested so far (including ones evicted from history).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// EWMA service-time mean, seconds.
    pub fn mean(&self) -> f64 {
        self.ewma
    }

    /// EWMA variance of the service time.
    pub fn variance(&self) -> f64 {
        self.ewvar
    }

    /// Exact quantile `q in [0,1]` over the bounded history window.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.history.is_empty() {
            return None;
        }
        let mut sorted = self.history.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("service times are finite"));
        let q = q.clamp(0.0, 1.0);
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx])
    }
}

/// A deterministic online service-time profile: per-`(device class,
/// task shape)` EWMA statistics plus a bounded-history quantile sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineProfile {
    alpha: f64,
    history_cap: usize,
    cells: BTreeMap<(u16, ShapeKey), OnlineCell>,
}

impl Default for OnlineProfile {
    fn default() -> OnlineProfile {
        OnlineProfile::new(DEFAULT_ALPHA, DEFAULT_HISTORY)
    }
}

impl OnlineProfile {
    /// Profile with the given EWMA factor and per-cell history window.
    pub fn new(alpha: f64, history_cap: usize) -> OnlineProfile {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        OnlineProfile {
            alpha,
            history_cap,
            cells: BTreeMap::new(),
        }
    }

    /// Ingest one observed span of `secs` for `(dev, key)`; returns the
    /// cell's updated observation count.
    pub fn observe(&mut self, dev: DeviceClass, key: ShapeKey, secs: f64) -> u64 {
        let cell = self
            .cells
            .entry((dev.0, key))
            .or_insert_with(OnlineCell::new);
        cell.observe(self.alpha, self.history_cap, secs);
        cell.count
    }

    /// The cell for `(dev, key)`, if any span has been observed for it.
    pub fn cell(&self, dev: DeviceClass, key: ShapeKey) -> Option<&OnlineCell> {
        self.cells.get(&(dev.0, key))
    }

    /// EWMA mean for `(dev, key)`, if observed.
    pub fn mean(&self, dev: DeviceClass, key: ShapeKey) -> Option<f64> {
        self.cell(dev, key).map(OnlineCell::mean)
    }

    /// Observation count for `(dev, key)` (0 if never observed).
    pub fn count(&self, dev: DeviceClass, key: ShapeKey) -> u64 {
        self.cell(dev, key).map_or(0, OnlineCell::count)
    }

    /// Number of populated `(device, shape)` cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no span has ever been observed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total observations across all cells.
    pub fn total_observations(&self) -> u64 {
        self.cells.values().map(OnlineCell::count).sum()
    }

    /// Serialize to the self-describing `# anthill-online-profile v1`
    /// text format (deterministic: cells in key order).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# anthill-online-profile v1\n");
        out.push_str(&format!(
            "alpha: {}\nhistory: {}\n",
            self.alpha, self.history_cap
        ));
        for (&(dev, key), cell) in &self.cells {
            let hist: Vec<String> = cell.history.iter().map(|t| format!("{t}")).collect();
            out.push_str(&format!(
                "cell: {dev} {key} ; {} {} {} {} ; {}\n",
                cell.count,
                cell.ewma,
                cell.ewvar,
                cell.cursor,
                hist.join(",")
            ));
        }
        out
    }

    /// Parse the text format produced by [`to_text`](Self::to_text).
    pub fn from_text(text: &str) -> Result<OnlineProfile, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l.trim() == "# anthill-online-profile v1" => {}
            _ => return Err("missing '# anthill-online-profile v1' header".into()),
        }
        let mut profile = OnlineProfile::default();
        for (no, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |m: &str| format!("line {}: {m}", no + 1);
            if let Some(v) = line.strip_prefix("alpha:") {
                profile.alpha = v.trim().parse().map_err(|_| err("bad alpha"))?;
                if !(profile.alpha > 0.0 && profile.alpha <= 1.0) {
                    return Err(err("alpha must be in (0, 1]"));
                }
            } else if let Some(v) = line.strip_prefix("history:") {
                profile.history_cap = v.trim().parse().map_err(|_| err("bad history"))?;
            } else if let Some(v) = line.strip_prefix("cell:") {
                let mut parts = v.splitn(3, ';');
                let head = parts.next().ok_or_else(|| err("missing cell head"))?;
                let stats = parts.next().ok_or_else(|| err("missing cell stats"))?;
                let hist = parts.next().ok_or_else(|| err("missing cell history"))?;
                let head: Vec<&str> = head.split_whitespace().collect();
                let stats: Vec<&str> = stats.split_whitespace().collect();
                if head.len() != 2 || stats.len() != 4 {
                    return Err(err("malformed cell"));
                }
                let dev: u16 = head[0].parse().map_err(|_| err("bad device class"))?;
                let key: u64 = head[1].parse().map_err(|_| err("bad shape key"))?;
                let mut cell = OnlineCell::new();
                cell.count = stats[0].parse().map_err(|_| err("bad count"))?;
                cell.ewma = stats[1].parse().map_err(|_| err("bad ewma"))?;
                cell.ewvar = stats[2].parse().map_err(|_| err("bad ewvar"))?;
                cell.cursor = stats[3].parse().map_err(|_| err("bad cursor"))?;
                for t in hist.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    cell.history
                        .push(t.parse().map_err(|_| err("bad history sample"))?);
                }
                if cell.history.len() > profile.history_cap
                    || (cell.cursor > 0 && cell.cursor >= profile.history_cap)
                {
                    return Err(err("history exceeds declared window"));
                }
                profile.cells.insert((dev, key), cell);
            } else {
                return Err(err("unknown directive"));
            }
        }
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: ShapeKey = 0xfeed;

    #[test]
    fn ewma_tracks_a_shifted_mean() {
        let mut p = OnlineProfile::default();
        for _ in 0..50 {
            p.observe(DeviceClass::CPU, K, 1.0);
        }
        assert!((p.mean(DeviceClass::CPU, K).unwrap() - 1.0).abs() < 1e-9);
        for _ in 0..50 {
            p.observe(DeviceClass::CPU, K, 3.0);
        }
        // Recent mass dominates: the EWMA has moved almost all the way.
        assert!(p.mean(DeviceClass::CPU, K).unwrap() > 2.9);
    }

    #[test]
    fn history_is_bounded_and_quantiles_follow_the_window() {
        let mut p = OnlineProfile::new(0.3, 8);
        for i in 0..100u32 {
            p.observe(DeviceClass::GPU, K, f64::from(i));
        }
        let cell = p.cell(DeviceClass::GPU, K).unwrap();
        assert_eq!(cell.count(), 100);
        // Only the last 8 samples (92..=99) remain in the sketch.
        assert_eq!(cell.quantile(0.0), Some(92.0));
        assert_eq!(cell.quantile(1.0), Some(99.0));
        assert_eq!(cell.quantile(0.5), Some(96.0));
    }

    #[test]
    fn cells_are_independent_per_device_and_shape() {
        let mut p = OnlineProfile::default();
        p.observe(DeviceClass::CPU, 1, 5.0);
        p.observe(DeviceClass::GPU, 1, 0.5);
        p.observe(DeviceClass::CPU, 2, 7.0);
        assert_eq!(p.len(), 3);
        assert_eq!(p.mean(DeviceClass::CPU, 1), Some(5.0));
        assert_eq!(p.mean(DeviceClass::GPU, 1), Some(0.5));
        assert_eq!(p.mean(DeviceClass::CPU, 2), Some(7.0));
        assert_eq!(p.mean(DeviceClass::GPU, 2), None);
        assert_eq!(p.total_observations(), 3);
    }

    #[test]
    fn identical_observation_sequences_reach_identical_state() {
        let feed = |p: &mut OnlineProfile| {
            for i in 0..40u32 {
                let dev = if i % 3 == 0 {
                    DeviceClass::GPU
                } else {
                    DeviceClass::CPU
                };
                p.observe(dev, u64::from(i % 5), f64::from(i) * 0.01 + 0.001);
            }
        };
        let mut a = OnlineProfile::default();
        let mut b = OnlineProfile::default();
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a, b);
        assert_eq!(a.to_text(), b.to_text());
    }

    #[test]
    fn text_round_trip_is_lossless() {
        let mut p = OnlineProfile::new(0.25, 4);
        for i in 0..10u32 {
            p.observe(DeviceClass::CPU, 7, f64::from(i) * 0.125);
            p.observe(DeviceClass::GPU, 7, f64::from(i) * 0.0625);
        }
        let text = p.to_text();
        let back = OnlineProfile::from_text(&text).unwrap();
        assert_eq!(p, back);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(OnlineProfile::from_text("").is_err());
        assert!(OnlineProfile::from_text("# wrong header").is_err());
        let bad_cell = "# anthill-online-profile v1\ncell: 0 ; 1 2 3 4 ;\n";
        assert!(OnlineProfile::from_text(bad_cell).is_err());
        let bad_alpha = "# anthill-online-profile v1\nalpha: 2.0\n";
        assert!(OnlineProfile::from_text(bad_alpha).is_err());
        let overflow = "# anthill-online-profile v1\nhistory: 1\ncell: 0 1 ; 3 1 0 0 ; 1,2,3\n";
        assert!(OnlineProfile::from_text(overflow).is_err());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        assert_eq!(fnv1a64(b"tile:512"), fnv1a64(b"tile:512"));
    }
}
