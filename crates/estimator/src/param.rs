//! Task input parameters: the feature space the estimator predicts from.
//!
//! The paper's estimator works on "application input parameters", which mix
//! numeric values (tile size, vector length, iteration counts) with
//! non-numeric attributes (algorithm variant, data layout). Numeric
//! dimensions are normalized by the per-dimension maximum before a Euclidean
//! distance; categorical dimensions contribute 0 on an exact match and 1
//! otherwise (Section 4).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One task parameter: numeric or categorical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// A numeric parameter (sizes, counts, rates).
    Num(f64),
    /// A categorical parameter (variant names, flags).
    Cat(String),
}

impl ParamValue {
    /// The numeric value, if this parameter is numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            ParamValue::Num(x) => Some(*x),
            ParamValue::Cat(_) => None,
        }
    }

    /// True if this parameter is categorical.
    pub fn is_cat(&self) -> bool {
        matches!(self, ParamValue::Cat(_))
    }
}

impl From<f64> for ParamValue {
    fn from(x: f64) -> Self {
        ParamValue::Num(x)
    }
}

impl From<u64> for ParamValue {
    fn from(x: u64) -> Self {
        ParamValue::Num(x as f64)
    }
}

impl From<usize> for ParamValue {
    fn from(x: usize) -> Self {
        ParamValue::Num(x as f64)
    }
}

impl From<&str> for ParamValue {
    fn from(s: &str) -> Self {
        ParamValue::Cat(s.to_owned())
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Num(x) => write!(f, "{x}"),
            ParamValue::Cat(s) => write!(f, "{s}"),
        }
    }
}

/// An ordered vector of task parameters. All tasks of one application share
/// the same arity and per-position kind (numeric vs categorical).
///
/// The values are immutable after construction and shared behind an `Arc`,
/// so cloning a `TaskParams` (and therefore a `DataBuffer` carrying one)
/// is a reference-count bump, never a deep copy — retries, fault
/// re-enqueues and inter-stage hops in the runtimes are zero-copy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskParams(Arc<[ParamValue]>);

impl Default for TaskParams {
    fn default() -> TaskParams {
        TaskParams::new(Vec::new())
    }
}

impl TaskParams {
    /// Build from anything convertible to parameter values.
    pub fn new(values: Vec<ParamValue>) -> TaskParams {
        TaskParams(values.into())
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if there are no parameters.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over dimensions.
    pub fn iter(&self) -> std::slice::Iter<'_, ParamValue> {
        self.0.iter()
    }

    /// Convenience: build an all-numeric parameter vector.
    pub fn nums(values: &[f64]) -> TaskParams {
        TaskParams(values.iter().map(|&x| ParamValue::Num(x)).collect())
    }

    /// True when two parameter vectors share the same backing allocation
    /// (a clone is a reference-count bump, not a copy).
    pub fn shares_storage(&self, other: &TaskParams) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl std::ops::Index<usize> for TaskParams {
    type Output = ParamValue;
    fn index(&self, i: usize) -> &ParamValue {
        &self.0[i]
    }
}

/// Builds `TaskParams` ergonomically: `params![64.0, "gpu-variant", 3.0]`.
#[macro_export]
macro_rules! params {
    ($($v:expr),* $(,)?) => {
        $crate::TaskParams::new(vec![$($crate::ParamValue::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(ParamValue::from(2.5).as_num(), Some(2.5));
        assert_eq!(ParamValue::from(7u64).as_num(), Some(7.0));
        assert!(ParamValue::from("abc").is_cat());
        assert_eq!(ParamValue::from("abc").as_num(), None);
    }

    #[test]
    fn macro_builds_mixed_params() {
        let p = params![64.0, "variant-a", 3usize];
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].as_num(), Some(64.0));
        assert!(p[1].is_cat());
        assert_eq!(p[2].as_num(), Some(3.0));
    }

    #[test]
    fn nums_helper() {
        let p = TaskParams::nums(&[1.0, 2.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.iter().filter_map(|v| v.as_num()).sum::<f64>(), 3.0);
    }

    #[test]
    fn clones_share_storage() {
        let p = params![64.0, "variant-a"];
        let q = p.clone();
        assert!(p.shares_storage(&q), "clone must be a refcount bump");
        assert_eq!(p, q);
        assert!(!p.shares_storage(&params![64.0, "variant-a"]));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", ParamValue::from(1.5)), "1.5");
        assert_eq!(format!("{}", ParamValue::from("x")), "x");
    }
}
