//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! Usage:
//! ```text
//! repro <experiment> [--quick] [--trace <path>]
//! repro all [--quick]
//! ```
//! where `<experiment>` is one of the paper artifacts — `table1`, `fig6`,
//! `fig7`, `table2`, `table3`, `fig8`, `table4`, `fig9`, `fig10`,
//! `table6`, `fig11`, `fig12`, `fig13`, `fig14` — or one of the
//! extensions/ablations: `sweep-k`, `sweep-models`, `mixed-gpus`,
//! `concurrent-kernels`, `fusion`, `slow-node`.
//!
//! `--quick` shrinks workloads (~10×) for fast sanity runs; without it the
//! paper's exact workload sizes are used. Run with `--release`.
//!
//! `--trace <path>` (honored by `fig12`) dumps the run's structured event
//! trace: a `.jsonl` path gets the line-oriented dump, anything else the
//! Chrome `trace_event` JSON loadable in Perfetto / `chrome://tracing`,
//! e.g. `repro fig12 --quick --trace trace.json`.
//!
//! `repro smoke [--trace <dir>]` is the CI gate: one small experiment per
//! scheduling policy with tracing enabled, failing (exit 1) if any trace
//! does not round-trip through the JSONL schema or loses task events, and
//! writing a `BENCH_engine.json` timing summary to the working directory.
//! With `--trace <dir>`, per-policy traces land in `<dir>` too.
//!
//! `repro chaos [--faults <spec>] [--trace <dir>]` is the fault-tolerance
//! CI gate: the same per-policy sweep but through a fault schedule —
//! message drops plus a scheduled mid-run death of node 0's GPU worker —
//! failing (exit 1) unless every policy still completes the whole
//! workload, the trace round-trips, and the death shows up as a
//! `worker_died` event. `<spec>` is a comma list of `key=value` knobs:
//! `seed=42,drop=0.2,fail=0.0,death-ms=100` (those are the defaults;
//! `death-ms=0` disables the death). Writes `BENCH_chaos.json`.
//!
//! `repro perf [--quick] [--min-speedup <x>] [--bind-cores]` is the native-runtime perf
//! gate: the same fixed 8-worker workload runs once with the pre-overhaul
//! hot path (coarse dispatch locks + serialized trace sink) and once with
//! the optimized one (sharded dispatch + batched sink), best-of-3 each,
//! failing (exit 1) if conservation breaks or the measured speedup falls
//! below `--min-speedup` (default 1.0 — CI machines are noisy; the
//! recorded acceptance target is 1.5, see `DESIGN.md` §10). Writes and
//! schema-validates `BENCH_perf.json`.
//!
//! `repro net [--trace <dir>]` is the networked-backend CI gate: per
//! policy, an NBIA-shaped workload runs through the TCP coordinator with
//! two *spawned worker processes* (this same binary re-entered via the
//! hidden `worker` subcommand) on loopback, and the per-device assignment
//! must be bit-identical to the sequential reference driver. The merged
//! coordinator+worker trace must round-trip the JSONL schema (including
//! the `remote_start`/`remote_finish` span events). Writes
//! `BENCH_net_parity.json`; with `--trace <dir>`, per-policy traces land
//! there too.
//!
//! `repro netbench [--quick] [--min-speedup <x>] [--bind-cores]
//! [--trace <dir>]` is the event-loop throughput gate (DESIGN.md §15):
//! the same loopback workload runs through the retained thread-per-socket
//! coordinator and the readiness-based event loop, and a 1000-worker
//! loopback fan-in must complete on the event loop with zero deaths. Fails (exit 1) if the event loop's frames/sec falls
//! below `--min-speedup` (default 2.0) times the baseline's, or the
//! write path allocates more than one buffer per frame. `--bind-cores`
//! pins the coordinator thread (recorded in the report; a no-op where
//! the platform refuses). Writes and schema-validates `BENCH_net.json`;
//! with `--trace <dir>`, the scale run's trace lands there too.
//!
//! `repro load [--quick] [--profile <p>] [--trace <dir>]` is the
//! open-loop load gate: each arrival profile (`poisson`, `bursty`,
//! `diurnal`; `--profile` selects one, default all) drives both the
//! native pipeline and the TCP coordinator with a seed-deterministic
//! schedule (100k tasks for the full Poisson run; `--quick` shrinks it),
//! recording per-task queue/service/end-to-end latency into bucketed
//! histograms and a queue-depth time series. The Poisson selection also
//! runs saturating schedules under the `shed_oldest` and `deadline_drop`
//! overload policies and asserts the intake stays bounded while the
//! admission counters conserve. Writes and schema-validates
//! `BENCH_load.json` (`BENCH_load_<profile>.json` when filtered); with
//! `--trace <dir>`, per-run traces land there and their
//! `task_admitted`/`task_shed`/`task_deadline_dropped` events must match
//! the counters.
//!
//! `repro elastic [--quick] [--trace <dir>]` is the elastic-membership
//! CI gate (DESIGN.md §14): a rolling restart retires every initial
//! worker of a live TCP run through a graceful drain while replacements
//! join mid-run over the `Join`/`JoinAck` handshake (zero loss, zero
//! deaths, the `worker_joined`/`worker_draining`/`worker_left` trio in
//! the trace), and a saturating open-loop schedule drives the DQAA
//! congestion-signal autoscaler against a worker pool. Writes and
//! schema-validates `BENCH_elastic.json`; with `--trace <dir>`, the
//! rolling-restart trace lands there too.
//!
//! `repro graph [--quick] [--trace <dir>]` is the multi-filter dataflow
//! CI gate: the NBIA three-filter pipeline (reader → feature extraction →
//! classification with a feedback stream) runs on the native threaded
//! runtime and on the TCP lockstep coordinator, and both must classify
//! byte-identically to the fused single-filter deployment; the
//! Black-Scholes fan-out/fan-in diamond runs natively against the direct
//! batch and over spawned worker *processes* against the sequential
//! reference driver's assignment, dispatch order and per-edge delivery
//! counts, for every policy. Every merged trace must round-trip the
//! JSONL schema. Writes and schema-validates `BENCH_graph.json`; with
//! `--trace <dir>`, per-run traces land there too.
//!
//! `repro policies [--quick] [--trace <dir>]` is the learned-policy CI
//! gate: DDWRR, AFFINITY and BANDIT run head-to-head on the paper's two
//! base cases plus a stale-profile scenario whose phase-one estimator
//! benchmark is noisy enough to invert the tile-resolution device
//! ordering. Fails (exit 1) unless every learned run stays within 5% of
//! DDWRR on the well-calibrated scenarios, at least one learned policy
//! beats DDWRR outright on a heterogeneous scenario (the stale profile
//! among them), the learned traces actually contain
//! `policy_decision`/`profile_updated` events while the classic runs
//! stay inert, and every trace round-trips the JSONL schema. Writes and
//! schema-validates `BENCH_policies.json`; with `--trace <dir>`, per-run
//! traces land there too.
//!
//! `repro worker <addr> [identity|recirc:N|busy:N]` (hidden) turns the
//! process into a net-backend worker connected to `<addr>` — the form the
//! net gate and the chaos tests spawn.

use anthill::buffer::{BufferId, DataBuffer};
use anthill::engine::sequential::{
    run as sequential_run, run_graph as sequential_run_graph, Emission, GraphEmission,
    SequentialConfig,
};
use anthill::engine::{AdmissionConfig, AdmissionCounters, OverloadPolicy};
use anthill::faults::{FaultConfig, FaultProb, RecoveryConfig, WorkerDeathSpec};
use anthill::graph::DataflowGraph;
use anthill::local::{
    Emitter, ExecMode, HotPath, LoadConfig, LocalFilter, LocalTask, Pipeline, WorkerSpec,
};
use anthill::membership::{Autoscaler, AutoscalerConfig, WorkerPool};
use anthill::net::{
    run_concurrent, run_concurrent_elastic, run_concurrent_load, run_concurrent_load_autoscaled,
    run_deterministic, run_graph_deterministic, spawn_joining_worker_thread, spawn_worker_thread,
    tcp_pair, Behavior, DrainAt, ElasticLoad, NetConfig, NetPath, NetWorkerConn,
};
use anthill::obs::{chrome, json, jsonl, EventKind, Recorder};
use anthill::policy::{Policy, PolicyKind};
use anthill::sim::{run_nbia, SimConfig, WorkloadSpec};
use anthill::weights::OracleWeights;
use anthill_apps::flows::pricing;
use anthill_apps::nbia::{self, NbiaLocalConfig};
use anthill_bench::elastic::{
    render_elastic_report, validate_elastic_report, AutoscaleRow, RollingRow,
};
use anthill_bench::experiments::{cluster, estimator, transfer};
use anthill_bench::graph::{render_graph_report, validate_graph_report, GraphRunRow};
use anthill_bench::load::{
    render_load_report, validate_load_report, ArrivalProfile, DepthPoint, LatencyHistogram,
    LatencyStats, LoadRunRow,
};
use anthill_bench::netbench::{
    render_netbench_report, validate_netbench_report, AbRow, PathSample, ScaleRow,
};
use anthill_bench::viz::{render, ChartSpec, Series};
use anthill_estimator::TaskParams;
use anthill_hetsim::{ClusterSpec, DeviceId, DeviceKind, GpuParams, NbiaCostModel, TaskShape};
use anthill_kernels::black_scholes::{price_batch, Option_};
use anthill_simkit::{SimDuration, SimTime};
use std::sync::Arc;
use std::time::Duration;

struct Scale {
    base_tiles: u64,
    scaling_tiles: u64,
    vi_len: u64,
    fig6_tiles: usize,
}

impl Scale {
    fn paper() -> Scale {
        Scale {
            base_tiles: 26_742,
            scaling_tiles: 267_420,
            vi_len: 360_000_000,
            fig6_tiles: 2_000,
        }
    }
    fn quick() -> Scale {
        Scale {
            base_tiles: 4_000,
            scaling_tiles: 40_000,
            vi_len: 36_000_000,
            fig6_tiles: 300,
        }
    }
}

const RATES: [f64; 6] = [0.0, 0.04, 0.08, 0.12, 0.16, 0.20];
const SEED: u64 = 42;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden subcommand: become a net-backend worker process. Intercepted
    // before normal parsing so its operands never collide with experiment
    // names or flags.
    if args.first().map(String::as_str) == Some("worker") {
        let behavior = match args.get(2) {
            None => anthill::net::Behavior::Identity,
            Some(spec) => match anthill::net::Behavior::parse(spec) {
                Some(b) => b,
                None => {
                    eprintln!("repro worker: unknown behavior '{spec}'");
                    std::process::exit(2);
                }
            },
        };
        let Some(addr) = args.get(1) else {
            eprintln!("usage: repro worker <coordinator-addr> [identity|recirc:N|busy:N]");
            std::process::exit(2);
        };
        match anthill::net::connect_and_run(addr, behavior) {
            Ok(_) => return,
            Err(e) => {
                eprintln!("repro worker: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut quick = false;
    let mut trace_path: Option<String> = None;
    let mut faults_spec: Option<String> = None;
    // Defaults differ per gate: `perf` gates at 1.0 (noisy shared
    // runners), `netbench` at 2.0 (the event loop's acceptance bar).
    let mut min_speedup: Option<f64> = None;
    let mut bind_cores = false;
    let mut profile_sel = "all".to_string();
    let mut selected: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--profile" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some(p @ ("all" | "poisson" | "bursty" | "diurnal")) => {
                        profile_sel = p.to_string();
                    }
                    _ => {
                        eprintln!("--profile requires one of: all, poisson, bursty, diurnal");
                        std::process::exit(2);
                    }
                }
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(p) => trace_path = Some(p.clone()),
                    None => {
                        eprintln!("--trace requires a file path");
                        std::process::exit(2);
                    }
                }
            }
            "--faults" => {
                i += 1;
                match args.get(i) {
                    Some(s) => faults_spec = Some(s.clone()),
                    None => {
                        eprintln!("--faults requires a spec, e.g. seed=42,drop=0.2");
                        std::process::exit(2);
                    }
                }
            }
            "--min-speedup" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(x) if x > 0.0 => min_speedup = Some(x),
                    _ => {
                        eprintln!("--min-speedup requires a positive number, e.g. 1.5");
                        std::process::exit(2);
                    }
                }
            }
            "--bind-cores" => bind_cores = true,
            a if a.starts_with("--") => {
                eprintln!("unknown flag '{a}'");
                std::process::exit(2);
            }
            a => {
                if selected.is_none() {
                    selected = Some(a.to_string());
                }
            }
        }
        i += 1;
    }
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let what = selected.as_deref().unwrap_or("all");

    let known = [
        "table1",
        "sweep-k",
        "sweep-models",
        "fig6",
        "fig7",
        "table2",
        "table3",
        "fig8",
        "table4",
        "fig9",
        "fig10",
        "table6",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "mixed-gpus",
        "concurrent-kernels",
        "fusion",
        "slow-node",
        "smoke",
        "chaos",
        "perf",
        "net",
        "netbench",
        "load",
        "elastic",
        "graph",
        "policies",
        "all",
    ];
    if !known.contains(&what) {
        eprintln!("unknown experiment '{what}'; known: {}", known.join(", "));
        std::process::exit(2);
    }

    // The smoke gate is an explicit selection only — it is a CI artifact
    // producer, not a paper experiment, so `all` does not include it.
    if what == "smoke" {
        smoke(trace_path.as_deref());
        return;
    }
    if what == "chaos" {
        let spec = match ChaosSpec::parse(faults_spec.as_deref()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bad --faults spec: {e}");
                std::process::exit(2);
            }
        };
        chaos(&spec, trace_path.as_deref());
        return;
    }
    if what == "perf" {
        perf(quick, min_speedup.unwrap_or(1.0), bind_cores);
        return;
    }
    if what == "net" {
        net_gate(trace_path.as_deref());
        return;
    }
    if what == "netbench" {
        netbench_gate(
            quick,
            min_speedup.unwrap_or(2.0),
            bind_cores,
            trace_path.as_deref(),
        );
        return;
    }
    if what == "load" {
        load_gate(quick, &profile_sel, trace_path.as_deref());
        return;
    }
    if what == "elastic" {
        elastic_gate(quick, trace_path.as_deref());
        return;
    }
    if what == "graph" {
        graph_gate(quick, trace_path.as_deref());
        return;
    }
    if what == "policies" {
        policies_gate(quick, trace_path.as_deref());
        return;
    }
    if faults_spec.is_some() {
        eprintln!("note: --faults is honored by the chaos experiment only; ignoring it");
    }
    if profile_sel != "all" {
        eprintln!("note: --profile is honored by the load gate only; ignoring it");
    }

    let run = |name: &str| what == "all" || what == name;

    if run("table1") {
        table1();
    }
    if run("sweep-k") {
        sweep_k();
    }
    if run("sweep-models") {
        sweep_models();
    }
    if run("fig6") {
        fig6(&scale);
    }
    if run("fig7") {
        fig7(&scale);
    }
    if run("table2") {
        table2(&scale);
    }
    if run("table3") {
        table3(&scale);
    }
    if run("fig8") {
        fig8(&scale);
    }
    if run("table4") {
        table4(&scale);
    }
    if run("fig9") {
        fig9(&scale);
    }
    if run("fig10") {
        fig10(&scale);
    }
    if run("table6") {
        table6(&scale);
    }
    if run("fig11") {
        fig11(&scale);
    }
    if trace_path.is_some() && !run("fig12") {
        eprintln!(
            "note: --trace is honored by the fig12, smoke, and chaos experiments only; ignoring it"
        );
    }
    if run("fig12") {
        fig12(&scale, trace_path.as_deref());
    }
    if run("fig13") {
        fig13(&scale);
    }
    if run("fig14") {
        fig14(&scale);
    }
    if run("mixed-gpus") {
        mixed_gpus(&scale);
    }
    if run("concurrent-kernels") {
        concurrent_kernels(&scale);
    }
    if run("fusion") {
        fusion(&scale);
    }
    if run("slow-node") {
        slow_node(&scale);
    }
}

/// CI smoke gate: one small heterogeneous run per policy, traced through
/// the engine, with the trace validated against the JSONL schema. Writes a
/// `BENCH_engine.json` timing summary; exits nonzero on any failure.
fn smoke(trace_dir: Option<&str>) {
    header(
        "Smoke: one small experiment per policy through the scheduling engine",
        "CI gate — validates trace schema + task conservation, emits BENCH_engine.json",
    );
    let policies = [
        ("ddfcfs", Policy::ddfcfs(4)),
        ("ddwrr", Policy::ddwrr(16)),
        ("odds", Policy::odds()),
    ];
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>8} {:>12} {:>10} {:>10} {:>10}",
        "policy", "tasks", "makespan(s)", "speedup", "events", "wall(ms)"
    );
    for (name, policy) in policies {
        let recorder = Recorder::enabled();
        let workload = WorkloadSpec {
            tiles: 1_000,
            ..WorkloadSpec::paper_base(0.08)
        };
        let mut cfg = SimConfig::new(ClusterSpec::heterogeneous(1, 1), policy);
        cfg.recorder = recorder.clone();
        let wall = std::time::Instant::now();
        let report = run_nbia(&cfg, &workload);
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

        // Schema gate: the trace must round-trip through the JSONL format
        // losslessly, and account for every finished task.
        let events = recorder.events();
        let text = jsonl::to_jsonl(&events);
        let parsed = match jsonl::parse_jsonl(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("smoke {name}: trace failed JSONL schema validation: {e}");
                std::process::exit(1);
            }
        };
        if parsed != events {
            eprintln!(
                "smoke {name}: trace round-trip mismatch ({} events in, {} out)",
                events.len(),
                parsed.len()
            );
            std::process::exit(1);
        }
        let finishes = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Finish { .. }))
            .count() as u64;
        if finishes != report.total_tasks {
            eprintln!(
                "smoke {name}: trace lost tasks ({} finish events, {} tasks reported)",
                finishes, report.total_tasks
            );
            std::process::exit(1);
        }
        if let Some(dir) = trace_dir {
            let path = format!("{}/smoke-{name}.trace.jsonl", dir.trim_end_matches('/'));
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("smoke {name}: failed to write trace to {path}: {e}");
                std::process::exit(1);
            }
            println!("  wrote {} events to {path}", events.len());
        }
        println!(
            "{:<10} {:>8} {:>12.3} {:>10.2} {:>10} {:>10.1}",
            name,
            report.total_tasks,
            report.makespan.as_secs_f64(),
            report.speedup(),
            events.len(),
            wall_ms
        );
        rows.push(format!(
            concat!(
                "  {{\"policy\": \"{}\", \"tasks\": {}, \"makespan_s\": {:.6}, ",
                "\"speedup\": {:.4}, \"trace_events\": {}, \"wall_ms\": {:.2}}}"
            ),
            name,
            report.total_tasks,
            report.makespan.as_secs_f64(),
            report.speedup(),
            events.len(),
            wall_ms
        ));
    }
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    match std::fs::write("BENCH_engine.json", &json) {
        Ok(()) => println!("wrote BENCH_engine.json"),
        Err(e) => {
            eprintln!("smoke: failed to write BENCH_engine.json: {e}");
            std::process::exit(1);
        }
    }
}

/// Knobs of the chaos gate's fault schedule, parsed from `--faults`.
struct ChaosSpec {
    seed: u64,
    drop: f64,
    fail: f64,
    death_ms: u64,
}

impl ChaosSpec {
    /// Parse a `key=value` comma list; `None` means all defaults. Keys:
    /// `seed` (u64), `drop` / `fail` (probabilities in `[0, 1)`), and
    /// `death-ms` (virtual ms at which node 0's GPU worker dies; 0
    /// disables the death).
    fn parse(spec: Option<&str>) -> Result<ChaosSpec, String> {
        let mut out = ChaosSpec {
            seed: 42,
            drop: 0.2,
            fail: 0.0,
            death_ms: 100,
        };
        let Some(spec) = spec else { return Ok(out) };
        for pair in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("'{pair}' is not key=value"))?;
            match key {
                "seed" => {
                    out.seed = value.parse().map_err(|e| format!("seed: {e}"))?;
                }
                "drop" | "fail" => {
                    let p: f64 = value.parse().map_err(|e| format!("{key}: {e}"))?;
                    if !(0.0..1.0).contains(&p) {
                        return Err(format!("{key}={p} must be in [0, 1)"));
                    }
                    if key == "drop" {
                        out.drop = p;
                    } else {
                        out.fail = p;
                    }
                }
                "death-ms" => {
                    out.death_ms = value.parse().map_err(|e| format!("death-ms: {e}"))?;
                }
                other => return Err(format!("unknown key '{other}'")),
            }
        }
        Ok(out)
    }

    fn faults(&self) -> FaultConfig {
        let deaths = if self.death_ms == 0 {
            Vec::new()
        } else {
            // Homogeneous nodes are (cpu, gpu): worker 1 of node 0 is a GPU.
            vec![WorkerDeathSpec {
                node: 0,
                worker: 1,
                at: SimTime(self.death_ms * 1_000_000),
            }]
        };
        FaultConfig {
            drop: FaultProb::uniform(self.drop),
            task_fail: FaultProb::uniform(self.fail),
            deaths,
            recovery: RecoveryConfig::standard(),
            seed: self.seed,
            ..FaultConfig::none()
        }
    }
}

/// Fault-tolerance CI gate: each policy runs the same 400-tile workload
/// through an identical fault schedule (message drops + one scheduled GPU
/// worker death). Fails unless every run completes the whole workload
/// with a schema-valid trace that records the death. Writes a
/// `BENCH_chaos.json` summary; exits nonzero on any failure.
fn chaos(spec: &ChaosSpec, trace_dir: Option<&str>) {
    header(
        "Chaos: per-policy recovery run under an identical fault schedule",
        "CI gate — drops + worker death must not lose tasks (Section 5 runtime, fault extension)",
    );
    println!(
        "   schedule: seed={} drop={} fail={} death-ms={}",
        spec.seed, spec.drop, spec.fail, spec.death_ms
    );
    let policies = [
        ("ddfcfs", Policy::ddfcfs(8)),
        ("ddwrr", Policy::ddwrr(30)),
        ("odds", Policy::odds()),
    ];
    let workload = WorkloadSpec {
        tiles: 400,
        ..WorkloadSpec::paper_base(0.2)
    };
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>8} {:>12} {:>8} {:>8} {:>8} {:>10}",
        "policy", "tasks", "makespan(s)", "retries", "died", "reassign", "events"
    );
    for (name, policy) in policies {
        let recorder = Recorder::enabled();
        let mut cfg = SimConfig::new(ClusterSpec::homogeneous(2), policy);
        cfg.recorder = recorder.clone();
        cfg.faults = spec.faults();
        let report = run_nbia(&cfg, &workload);

        let events = recorder.events();
        let text = jsonl::to_jsonl(&events);
        match jsonl::parse_jsonl(&text) {
            Ok(parsed) if parsed == events => {}
            Ok(_) => {
                eprintln!("chaos {name}: trace round-trip mismatch");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("chaos {name}: trace failed JSONL schema validation: {e}");
                std::process::exit(1);
            }
        }
        if report.total_tasks != workload.total_buffers() {
            eprintln!(
                "chaos {name}: lost tasks ({} completed, {} expected)",
                report.total_tasks,
                workload.total_buffers()
            );
            std::process::exit(1);
        }
        let count = |pred: fn(&EventKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count();
        let retries = count(|k| matches!(k, EventKind::TaskRetried { .. }));
        let died = count(|k| matches!(k, EventKind::WorkerDied { .. }));
        let reassigned = count(|k| matches!(k, EventKind::TaskReassigned { .. }));
        let expect_deaths = cfg.faults.deaths.len();
        if died != expect_deaths {
            eprintln!(
                "chaos {name}: {expect_deaths} deaths scheduled but {died} worker_died events"
            );
            std::process::exit(1);
        }
        if let Some(dir) = trace_dir {
            let path = format!("{}/chaos-{name}.trace.jsonl", dir.trim_end_matches('/'));
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("chaos {name}: failed to write trace to {path}: {e}");
                std::process::exit(1);
            }
            println!("  wrote {} events to {path}", events.len());
        }
        println!(
            "{:<10} {:>8} {:>12.3} {:>8} {:>8} {:>8} {:>10}",
            name,
            report.total_tasks,
            report.makespan.as_secs_f64(),
            retries,
            died,
            reassigned,
            events.len()
        );
        rows.push(format!(
            concat!(
                "  {{\"policy\": \"{}\", \"tasks\": {}, \"makespan_s\": {:.6}, ",
                "\"retries\": {}, \"worker_deaths\": {}, \"reassigned\": {}, \"trace_events\": {}}}"
            ),
            name,
            report.total_tasks,
            report.makespan.as_secs_f64(),
            retries,
            died,
            reassigned,
            events.len()
        ));
    }
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    match std::fs::write("BENCH_chaos.json", &json) {
        Ok(()) => println!("wrote BENCH_chaos.json"),
        Err(e) => {
            eprintln!("chaos: failed to write BENCH_chaos.json: {e}");
            std::process::exit(1);
        }
    }
}

/// Extra recirculation rounds per task in the perf workload: each task is
/// handled `PERF_ROUNDS + 1` times, so the bulk of the enqueue / park /
/// claim / trace traffic happens on the concurrent worker threads (the
/// contended hot path) rather than in the serial source fill.
const PERF_ROUNDS: u8 = 4;

/// Recirculates each task [`PERF_ROUNDS`] times, then forwards it. The
/// handler body does no work, so every measured nanosecond is runtime
/// overhead: queue ops, dispatch-state locks, trace emission, tallies.
struct PerfRecirc;
impl LocalFilter for PerfRecirc {
    fn handle(&self, _d: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
        if task.buffer.level < PERF_ROUNDS {
            let mut task = task;
            task.buffer.level += 1;
            out.recirculate(task);
        } else {
            out.forward(task);
        }
    }
}

/// The acceptance target of the hot-path overhaul, recorded alongside the
/// measurement in `BENCH_perf.json` (CI gates on `--min-speedup`, which
/// defaults lower because shared runners are noisy).
const PERF_TARGET_SPEEDUP: f64 = 1.5;

/// Native-runtime perf gate: a fixed single-stage workload on 8 CPU
/// workers, run under both DDFCFS and DDWRR, each A/B'd between the
/// pre-overhaul hot path ([`HotPath::Coarse`] dispatch locks, full
/// [`SharedQueue`](anthill::queue::SharedQueue) stage lanes, the
/// serialized trace sink) and the optimized one ([`HotPath::Sharded`]
/// dispatch shards, tuned stage lanes, the batched sink). Each variant
/// runs `reps` times and keeps its best throughput; conservation and
/// trace-completeness are asserted on every run. Writes `BENCH_perf.json`
/// (validated by re-parsing) and exits nonzero if the *worst* per-policy
/// speedup falls below `min_speedup`.
fn perf(quick: bool, min_speedup: f64, bind_cores: bool) {
    header(
        "Perf: native-runtime hot-path A/B (coarse+serialized vs sharded+batched)",
        "run-time optimization premise (§5–6): dispatch overhead dominates at fine task granularity",
    );
    let tasks: u64 = if quick { 4_000 } else { 24_000 };
    let handles = tasks * u64::from(PERF_ROUNDS) + tasks;
    let reps = 3;
    let workers = 8;
    let weights = OracleWeights::new(GpuParams::geforce_8800gt(), true);

    let make_task = |id: u64| {
        LocalTask::new(
            DataBuffer {
                id: BufferId(id),
                params: TaskParams::nums(&[id as f64]),
                shape: TaskShape {
                    cpu: SimDuration::from_micros(1),
                    gpu_kernel: SimDuration::from_micros(1),
                    bytes_in: 8,
                    bytes_out: 8,
                },
                level: 0,
                task: id,
            },
            (),
        )
    };

    // One measured run; returns tasks/second. Every run re-checks the
    // invariants the A/B relies on: nothing lost, every finish traced.
    let run_once = |label: &str,
                    policy: PolicyKind,
                    hot_path: HotPath,
                    recorder: &Recorder|
     -> f64 {
        let mut p = Pipeline::new(policy)
            .with_hot_path(hot_path)
            .with_bind_cores(bind_cores);
        p.add_stage(
            Arc::new(PerfRecirc),
            vec![
                WorkerSpec {
                    kind: DeviceKind::Cpu,
                    mode: ExecMode::Native,
                };
                workers
            ],
        );
        let sources: Vec<LocalTask> = (0..tasks).map(make_task).collect();
        let wall = std::time::Instant::now();
        let (out, report) = p.run_traced(sources, &weights, recorder);
        let secs = wall.elapsed().as_secs_f64();
        if out.len() as u64 != tasks || report.total() != handles {
            eprintln!(
                "perf {label}: conservation broken ({} out of {tasks}, {} handled of {handles})",
                out.len(),
                report.total()
            );
            std::process::exit(1);
        }
        let finished = recorder.metrics().counter_total("tasks_finished");
        let events = recorder.take_events();
        let finish_events = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Finish { .. }))
            .count() as u64;
        if finished != handles || finish_events != handles {
            eprintln!(
                "perf {label}: trace lost tasks ({finished} counted, {finish_events} finish events, {handles} expected)"
            );
            std::process::exit(1);
        }
        handles as f64 / secs
    };

    let best = |label: &str, policy: PolicyKind, hot_path: HotPath, mk: fn() -> Recorder| -> f64 {
        let mut best_tps = 0.0f64;
        for rep in 0..reps {
            let tps = run_once(label, policy, hot_path, &mk());
            println!("    {label:<20} rep {rep}: {tps:>12.0} tasks/s");
            best_tps = best_tps.max(tps);
        }
        best_tps
    };

    let mut rows = Vec::new();
    let mut worst = f64::INFINITY;
    for (pname, policy) in [("ddfcfs", PolicyKind::DdFcfs), ("ddwrr", PolicyKind::DdWrr)] {
        println!("  policy {pname}");
        let baseline = best(
            "coarse+serialized",
            policy,
            HotPath::Coarse,
            Recorder::enabled_serialized,
        );
        let optimized = best(
            "sharded+batched",
            policy,
            HotPath::Sharded,
            Recorder::enabled,
        );
        let speedup = optimized / baseline;
        worst = worst.min(speedup);
        println!(
            "    {pname}: baseline {baseline:>10.0}  optimized {optimized:>10.0}  speedup {speedup:.2}x"
        );
        rows.push(format!(
            "    {{\"policy\": \"{pname}\", \"baseline_tasks_per_s\": {baseline:.1}, \"optimized_tasks_per_s\": {optimized:.1}, \"speedup\": {speedup:.4}}}"
        ));
    }
    println!(
        "\n  worst-policy speedup {worst:>6.2}x  (gate {min_speedup:.2}x, target {PERF_TARGET_SPEEDUP:.2}x)"
    );

    let body = format!(
        concat!(
            "{{\n",
            "  \"workload\": {{\"tasks\": {}, \"handles\": {}, \"rounds\": {}, \"workers\": {}, \"stage\": \"recirc\"}},\n",
            "  \"baseline\": {{\"hot_path\": \"coarse\", \"stage_lanes\": \"shared_queue\", \"trace_sink\": \"serialized\"}},\n",
            "  \"optimized\": {{\"hot_path\": \"sharded\", \"stage_lanes\": \"tuned\", \"trace_sink\": \"batched\"}},\n",
            "  \"policies\": [\n{}\n  ],\n",
            "  \"speedup\": {:.4},\n",
            "  \"min_speedup_gate\": {:.2},\n",
            "  \"min_speedup_target\": {:.2},\n",
            "  \"reps\": {},\n",
            "  \"quick\": {}\n",
            "}}\n"
        ),
        tasks,
        handles,
        PERF_ROUNDS,
        workers,
        rows.join(",\n"),
        worst,
        min_speedup,
        PERF_TARGET_SPEEDUP,
        reps,
        quick
    );
    // Schema gate: the summary must parse back as JSON with the fields CI
    // consumers read.
    match json::parse(&body) {
        Ok(v) => {
            let policies_ok = v.get("policies").and_then(|p| p.as_arr()).is_some_and(|p| {
                p.len() == 2
                    && p.iter().all(|row| {
                        row.get("baseline_tasks_per_s").is_some()
                            && row.get("optimized_tasks_per_s").is_some()
                            && row.get("speedup").and_then(|x| x.as_f64()).is_some()
                    })
            });
            if !policies_ok || v.get("speedup").and_then(|x| x.as_f64()).is_none() {
                eprintln!("perf: BENCH_perf.json missing required fields");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("perf: BENCH_perf.json failed schema validation: {e}");
            std::process::exit(1);
        }
    }
    match std::fs::write("BENCH_perf.json", &body) {
        Ok(()) => println!("wrote BENCH_perf.json"),
        Err(e) => {
            eprintln!("perf: failed to write BENCH_perf.json: {e}");
            std::process::exit(1);
        }
    }
    if worst < min_speedup {
        eprintln!("perf: worst-policy speedup {worst:.2}x below the {min_speedup:.2}x gate");
        std::process::exit(1);
    }
}

/// One NBIA-shaped tile for the net gate, sides cycling through the
/// paper's range so the policies actually have heterogeneity to exploit.
fn net_tile(id: u64) -> DataBuffer {
    let side = [32u32, 128, 256, 512][(id % 4) as usize];
    DataBuffer {
        id: BufferId(id),
        params: TaskParams::nums(&[f64::from(side)]),
        shape: NbiaCostModel::paper_calibrated().tile(side),
        level: 0,
        task: id,
    }
}

/// Networked-backend CI gate: per policy, the same NBIA-shaped workload
/// runs through the TCP coordinator with two spawned worker *processes*
/// on loopback, and both the per-device assignment and the dispatch
/// order must be bit-identical to the sequential reference driver. The
/// merged trace (coordinator events + re-stamped worker spans) must
/// round-trip the JSONL schema. Writes `BENCH_net_parity.json` (the
/// throughput numbers live in `BENCH_net.json`, owned by
/// [`netbench_gate`]); exits nonzero on any failure.
fn net_gate(trace_dir: Option<&str>) {
    header(
        "Net: loopback TCP backend vs the sequential reference driver",
        "CI gate — spawned worker processes, bit-identical assignment, merged trace schema",
    );
    let exe = std::env::current_exe().expect("own executable path");
    let tiles: Vec<DataBuffer> = (0..240).map(net_tile).collect();
    let devices = [
        DeviceId {
            node: 0,
            kind: DeviceKind::Cpu,
            index: 0,
        },
        DeviceId {
            node: 0,
            kind: DeviceKind::Gpu,
            index: 0,
        },
    ];
    let policies = [
        ("ddfcfs", Policy::ddfcfs(4)),
        ("ddwrr", Policy::ddwrr(16)),
        ("odds", Policy::odds()),
    ];
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "policy", "tasks", "cpu", "gpu", "events", "wall(ms)"
    );
    for (name, policy) in policies {
        let reference = sequential_run(
            SequentialConfig::new(policy),
            &devices,
            tiles.clone(),
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
            |_, _| Emission::default(),
        );

        let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
            Ok(l) => l,
            Err(e) => {
                eprintln!("net {name}: failed to bind loopback listener: {e}");
                std::process::exit(1);
            }
        };
        let addr = listener.local_addr().expect("listener addr").to_string();
        let mut children = Vec::new();
        let mut workers = Vec::new();
        for device in devices {
            let child = match std::process::Command::new(&exe)
                .args(["worker", &addr, "identity"])
                .stdin(std::process::Stdio::null())
                .spawn()
            {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("net {name}: failed to spawn worker process: {e}");
                    std::process::exit(1);
                }
            };
            children.push(child);
            match listener.accept() {
                Ok((stream, _)) => workers.push(NetWorkerConn { device, stream }),
                Err(e) => {
                    eprintln!("net {name}: worker failed to connect: {e}");
                    std::process::exit(1);
                }
            }
        }

        let recorder = Recorder::enabled();
        let mut cfg = NetConfig::new(policy);
        cfg.recorder = recorder.clone();
        let wall = std::time::Instant::now();
        let out = match run_deterministic(
            cfg,
            workers,
            tiles.clone(),
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
        ) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("net {name}: coordinator failed: {e}");
                std::process::exit(1);
            }
        };
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        for child in &mut children {
            match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => {
                    eprintln!("net {name}: worker process exited with {status}");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("net {name}: failed to reap worker process: {e}");
                    std::process::exit(1);
                }
            }
        }

        if out.assigned != reference.assigned || out.dispatch_order != reference.dispatch_order {
            eprintln!(
                "net {name}: TCP backend diverged from the sequential reference \
                 (net {:?} vs reference {:?})",
                out.assigned, reference.assigned
            );
            std::process::exit(1);
        }

        // The merged trace must carry one re-stamped worker span per task
        // and survive a JSONL round trip.
        let events = recorder.events();
        let remote_finishes = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RemoteFinish { .. }))
            .count() as u64;
        if remote_finishes != out.total {
            eprintln!(
                "net {name}: trace lost worker spans ({remote_finishes} remote_finish \
                 events, {} tasks)",
                out.total
            );
            std::process::exit(1);
        }
        let text = jsonl::to_jsonl(&events);
        match jsonl::parse_jsonl(&text) {
            Ok(parsed) if parsed == events => {}
            Ok(parsed) => {
                eprintln!(
                    "net {name}: trace round-trip mismatch ({} events in, {} out)",
                    events.len(),
                    parsed.len()
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("net {name}: trace failed JSONL schema validation: {e}");
                std::process::exit(1);
            }
        }
        if let Some(dir) = trace_dir {
            let path = format!("{}/net-{name}.trace.jsonl", dir.trim_end_matches('/'));
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("net {name}: failed to write trace to {path}: {e}");
                std::process::exit(1);
            }
            println!("  wrote {} events to {path}", events.len());
        }

        let cpu = out
            .assigned
            .get(&(DeviceKind::Cpu, 0))
            .copied()
            .unwrap_or(0);
        let gpu = out
            .assigned
            .get(&(DeviceKind::Gpu, 0))
            .copied()
            .unwrap_or(0);
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>10} {:>10.1}",
            name,
            out.total,
            cpu,
            gpu,
            events.len(),
            wall_ms
        );
        rows.push(format!(
            concat!(
                "  {{\"policy\": \"{}\", \"tasks\": {}, \"cpu\": {}, \"gpu\": {}, ",
                "\"parity\": true, \"trace_events\": {}, \"wall_ms\": {:.2}}}"
            ),
            name,
            out.total,
            cpu,
            gpu,
            events.len(),
            wall_ms
        ));
    }
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    match std::fs::write("BENCH_net_parity.json", &json) {
        Ok(()) => println!("wrote BENCH_net_parity.json"),
        Err(e) => {
            eprintln!("net: failed to write BENCH_net_parity.json: {e}");
            std::process::exit(1);
        }
    }
}

/// One light tile for the netbench workload: real `TaskParams` on the
/// wire but a near-zero modeled shape, so the measurement is protocol
/// overhead — framing, syscalls, wakeups — not simulated compute.
fn netbench_tile(id: u64) -> DataBuffer {
    DataBuffer {
        id: BufferId(id),
        params: TaskParams::nums(&[id as f64]),
        shape: TaskShape {
            cpu: SimDuration::from_micros(1),
            gpu_kernel: SimDuration::from_micros(1),
            bytes_in: 64,
            bytes_out: 64,
        },
        level: 0,
        task: id,
    }
}

/// Connect `n` in-process loopback workers (alternating CPU/GPU slots),
/// returning the coordinator-side connections and the worker threads.
fn netbench_workers(
    label: &str,
    n: usize,
) -> (
    Vec<NetWorkerConn>,
    Vec<std::thread::JoinHandle<std::io::Result<u64>>>,
) {
    let mut conns = Vec::with_capacity(n);
    let mut threads = Vec::with_capacity(n);
    for i in 0..n {
        let (coord, worker_side) = match tcp_pair() {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("netbench {label}: loopback pair {i}: {e}");
                std::process::exit(1);
            }
        };
        threads.push(spawn_worker_thread(worker_side, Behavior::Identity));
        let kind = if i % 2 == 0 {
            DeviceKind::Cpu
        } else {
            DeviceKind::Gpu
        };
        conns.push(NetWorkerConn {
            device: DeviceId {
                node: 0,
                kind,
                index: i,
            },
            stream: coord,
        });
    }
    (conns, threads)
}

/// One measured netbench run: `n` loopback workers, `tasks` tiles,
/// through the chosen coordinator path. Returns the outcome and the
/// wall-clock seconds; conservation is asserted on every run.
fn netbench_run(
    label: &str,
    path: NetPath,
    n: usize,
    tasks: u64,
    recorder: Option<&Recorder>,
) -> (anthill::net::NetOutcome, f64) {
    let (conns, threads) = netbench_workers(label, n);
    let mut cfg = NetConfig::with_path(Policy::ddfcfs(4), path);
    cfg.deadline = Duration::from_secs(if n >= 512 { 300 } else { 120 });
    if let Some(rec) = recorder {
        cfg.recorder = rec.clone();
    }
    let tiles: Vec<DataBuffer> = (0..tasks).map(netbench_tile).collect();
    let weights = OracleWeights::new(GpuParams::geforce_8800gt(), false);
    let wall = std::time::Instant::now();
    let out = match run_concurrent(cfg, conns, tiles, weights) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("netbench {label}: coordinator failed: {e}");
            std::process::exit(1);
        }
    };
    let secs = wall.elapsed().as_secs_f64();
    for t in threads {
        if let Err(e) = t.join().expect("worker thread panicked") {
            eprintln!("netbench {label}: worker exited with error: {e}");
            std::process::exit(1);
        }
    }
    if out.total != tasks {
        eprintln!(
            "netbench {label}: conservation broken ({} of {tasks} done)",
            out.total
        );
        std::process::exit(1);
    }
    (out, secs)
}

/// Event-loop throughput gate (DESIGN.md §15): frames/sec A/B between
/// the thread-per-socket baseline and the readiness-based event loop on
/// the identical loopback workload (best of `reps` walls each), then a
/// 1000-worker loopback fan-in on the event loop alone. The wire-frame
/// count comes from the event loop's counters — both paths move the
/// same protocol traffic, so the speedup is the wall-clock ratio.
/// Writes and schema-validates `BENCH_net.json`; exits nonzero if the
/// speedup misses `min_speedup` or the report fails its own schema.
fn netbench_gate(quick: bool, min_speedup: f64, bind_cores: bool, trace_dir: Option<&str>) {
    header(
        "Netbench: thread-per-socket vs event-loop coordinator, plus 1000-worker fan-in",
        "run-time optimization premise (§5–6): coordination overhead bounds replicated-filter scaling",
    );
    if bind_cores {
        let pinned = anthill_poller::bind_to_core(0);
        println!(
            "  bind-cores: coordinator pinned to core 0: {}",
            if pinned { "yes" } else { "unsupported (no-op)" }
        );
    }
    // The A/B runs at wide fan-in with a handful of tiles per worker:
    // that is where thread-per-socket pays for its 2N thread spawns,
    // heartbeat wakeups (which scale with workers × wall time), and
    // per-frame channel hops — exactly the wide replicated-filter shape
    // the event loop exists for. At high tiles-per-worker both paths
    // converge on shared per-task protocol cost, so the gate targets the
    // fan-in regime, not raw task count. `--quick` runs 1000 workers (the
    // ISSUE's headline scale, CI-sized); the full run widens to 4000,
    // where the baseline's degradation is structural rather than
    // cold-start luck. One full run churns ~17k loopback socket pairs —
    // back-to-back full runs can transiently exhaust ephemeral ports
    // (TIME_WAIT); space them a minute apart.
    let (ab_workers, ab_tasks): (usize, u64) = if quick {
        (1_000, 2_000)
    } else {
        (4_000, 2_000)
    };
    let (scale_workers, scale_tasks): (usize, u64) = if quick {
        (1_000, 2_000)
    } else {
        (1_000, 6_000)
    };
    let reps = 2;

    // Each rep is a complete fresh deployment — connections, handshake,
    // and the pump's own setup/teardown (2N reader-thread spawns and
    // joins for the baseline, poller registration for the event loop) all
    // land inside the rep's wall, because they are part of the
    // architecture under test. The gate compares the MEAN over reps, not
    // the best: the baseline's cold rep is not noise, it is the cost of
    // standing up thread-per-socket at fan-in.
    let mean = |label: &str, path: NetPath| -> (anthill::net::NetOutcome, f64) {
        let mut last: Option<anthill::net::NetOutcome> = None;
        let mut total = 0.0;
        for rep in 0..reps {
            let (out, secs) = netbench_run(label, path, ab_workers, ab_tasks, None);
            println!(
                "    {label:<18} rep {rep}: {:>8.1} ms  ({:.0} tasks/s)",
                secs * 1e3,
                ab_tasks as f64 / secs
            );
            total += secs;
            last = Some(out);
        }
        (last.expect("at least one rep"), total / reps as f64)
    };

    println!("  A/B: {ab_workers} workers, {ab_tasks} tiles, mean of {reps}");
    let (_, threads_secs) = mean("thread-per-socket", NetPath::Threads);
    let (event_out, event_secs) = mean("event-loop", NetPath::EventLoop);

    let wire = event_out.wire;
    let frames = wire.tx_frames + wire.rx_frames;
    let threads_fps = frames as f64 / threads_secs;
    let event_fps = frames as f64 / event_secs;
    let speedup = event_fps / threads_fps;
    let alloc_per_frame = if wire.tx_frames == 0 {
        f64::NAN
    } else {
        wire.pool_misses as f64 / wire.tx_frames as f64
    };
    println!(
        "  frames {frames} ({} tx + {} rx), {} flushes ({:.1} frames/writev), \
         alloc/frame {alloc_per_frame:.4}",
        wire.tx_frames,
        wire.rx_frames,
        wire.flushes,
        wire.tx_frames as f64 / wire.flushes.max(1) as f64,
    );
    println!(
        "  threads {threads_fps:>10.0} frames/s   event loop {event_fps:>10.0} frames/s   \
         speedup {speedup:.2}x (gate {min_speedup:.2}x)"
    );

    println!("  scale: {scale_workers} loopback workers, {scale_tasks} tiles (event loop)");
    let recorder = trace_dir.map(|_| Recorder::enabled());
    let (scale_out, scale_secs) = netbench_run(
        "scale",
        NetPath::EventLoop,
        scale_workers,
        scale_tasks,
        recorder.as_ref(),
    );
    let s_wire = scale_out.wire;
    let s_frames = s_wire.tx_frames + s_wire.rx_frames;
    let s_alloc = if s_wire.tx_frames == 0 {
        f64::NAN
    } else {
        s_wire.pool_misses as f64 / s_wire.tx_frames as f64
    };
    println!(
        "    {} tasks in {:.1} ms, {} deaths, {:.0} frames/s, alloc/frame {s_alloc:.4}",
        scale_out.total,
        scale_secs * 1e3,
        scale_out.deaths,
        s_frames as f64 / scale_secs,
    );
    if let (Some(dir), Some(rec)) = (trace_dir, &recorder) {
        let text = jsonl::to_jsonl(&rec.events());
        let path = format!("{}/netbench-scale.trace.jsonl", dir.trim_end_matches('/'));
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("netbench: failed to write trace to {path}: {e}");
            std::process::exit(1);
        }
        println!("    wrote scale trace to {path}");
    }

    let ab = AbRow {
        workers: ab_workers as u64,
        tasks: ab_tasks,
        frames,
        threads: PathSample {
            wall_ms: threads_secs * 1e3,
            frames_per_sec: threads_fps,
        },
        eventloop: PathSample {
            wall_ms: event_secs * 1e3,
            frames_per_sec: event_fps,
        },
        speedup,
        tx_frames: wire.tx_frames,
        rx_frames: wire.rx_frames,
        tx_bytes: wire.tx_bytes,
        rx_bytes: wire.rx_bytes,
        flushes: wire.flushes,
        alloc_per_frame,
    };
    let scale = ScaleRow {
        workers: scale_workers as u64,
        tasks: scale_tasks,
        completed: scale_out.total,
        deaths: u64::from(scale_out.deaths),
        wall_ms: scale_secs * 1e3,
        frames_per_sec: s_frames as f64 / scale_secs,
        alloc_per_frame: s_alloc,
    };
    let body = render_netbench_report(&ab, &scale, quick, bind_cores, min_speedup, SEED);
    if let Err(e) = validate_netbench_report(&body) {
        eprintln!("netbench: report failed its own schema gate: {e}");
        // Still land the evidence for the failure artifact upload.
        let _ = std::fs::write("BENCH_net.json", &body);
        std::process::exit(1);
    }
    match std::fs::write("BENCH_net.json", &body) {
        Ok(()) => println!("wrote BENCH_net.json"),
        Err(e) => {
            eprintln!("netbench: failed to write BENCH_net.json: {e}");
            std::process::exit(1);
        }
    }
}

/// Abort the graph gate with a labeled diagnosis.
fn graph_fail(label: &str, why: &str) -> ! {
    eprintln!("graph {label}: {why}");
    std::process::exit(1);
}

/// Trace hygiene shared by every graph-gate run: the merged trace must
/// round-trip the JSONL schema, and with `--trace` it lands on disk.
fn graph_trace_events(label: &str, recorder: &Recorder, trace_dir: Option<&str>) -> u64 {
    let events = recorder.events();
    let text = jsonl::to_jsonl(&events);
    match jsonl::parse_jsonl(&text) {
        Ok(parsed) if parsed == events => {}
        Ok(parsed) => graph_fail(
            label,
            &format!(
                "trace round-trip mismatch ({} events in, {} out)",
                events.len(),
                parsed.len()
            ),
        ),
        Err(e) => graph_fail(label, &format!("trace failed JSONL schema validation: {e}")),
    }
    if let Some(dir) = trace_dir {
        let path = format!("{}/graph-{label}.trace.jsonl", dir.trim_end_matches('/'));
        if let Err(e) = std::fs::write(&path, &text) {
            graph_fail(label, &format!("failed to write trace to {path}: {e}"));
        }
        println!("  wrote {} events to {path}", events.len());
    }
    events.len() as u64
}

/// Per-edge delivery counts as a dense vector indexed by edge id.
fn edge_tallies(n_edges: usize, delivered: &std::collections::HashMap<u32, u64>) -> Vec<u64> {
    (0..n_edges as u32)
        .map(|e| delivered.get(&e).copied().unwrap_or(0))
        .collect()
}

/// Multi-filter dataflow CI gate. The NBIA three-filter pipeline (reader
/// -> feature -> classifier with a refinement feedback edge) runs on the
/// native threaded runtime and on the TCP lockstep coordinator, and both
/// must classify byte-identically to the fused single-filter deployment;
/// the Black-Scholes fan-out/fan-in diamond runs natively against the
/// direct batch, and over spawned worker *processes* against the
/// sequential reference driver's assignment, dispatch order, and
/// per-edge deliveries, for every policy. Every merged trace must
/// round-trip the JSONL schema. Writes and schema-validates
/// `BENCH_graph.json`; exits nonzero on any failure.
fn graph_gate(quick: bool, trace_dir: Option<&str>) {
    header(
        "Graph: DAGs of replicated filters vs fused/reference deployments",
        "CI gate — NBIA pipeline + pricing diamond, per-edge conservation, trace schema",
    );
    let mut rows: Vec<GraphRunRow> = Vec::new();
    println!(
        "{:<18} {:<7} {:<7} {:>7} {:>8} {:>15} {:>8} {:>9}",
        "app/topology", "backend", "policy", "tasks", "outputs", "edges", "events", "wall(ms)"
    );
    let print_row = |r: &GraphRunRow| {
        let edges: Vec<String> = r.edges.iter().map(u64::to_string).collect();
        println!(
            "{:<18} {:<7} {:<7} {:>7} {:>8} {:>15} {:>8} {:>9.1}",
            format!("{}/{}", r.app, r.topology),
            r.backend,
            r.policy,
            r.tasks,
            r.outputs,
            edges.join("/"),
            r.trace_events,
            r.wall_ms
        );
    };

    // --- NBIA: the fused single-filter deployment (the paper's actual
    // setup) is the byte-identity baseline for both graph backends.
    let tiles = if quick { 18 } else { 36 };
    let config = NbiaLocalConfig {
        tiles,
        ..NbiaLocalConfig::default()
    };
    let weights = OracleWeights::new(GpuParams::geforce_8800gt(), true);
    let (fused, _) = nbia::run_local_deterministic(&config, &weights);
    if fused.len() as u64 != tiles {
        graph_fail("nbia-fused", "baseline run lost tiles");
    }
    let nbia_graph = nbia::graph::topology();

    {
        let recorder = Recorder::enabled();
        let wall = std::time::Instant::now();
        let (results, report) = nbia::graph::run_native_traced(&config, &weights, &recorder);
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        if results != fused {
            graph_fail(
                "nbia-native",
                "three-filter native run diverged from the fused deployment",
            );
        }
        let edges = edge_tallies(nbia_graph.edges().len(), &report.edge_delivered);
        if edges[0] != tiles || edges[1] < tiles {
            graph_fail("nbia-native", "pipeline edges lost tiles");
        }
        let trace_events = graph_trace_events("nbia-native", &recorder, trace_dir);
        let row = GraphRunRow {
            app: "nbia".into(),
            topology: "pipeline3".into(),
            backend: "native".into(),
            policy: config.policy.name().to_ascii_lowercase(),
            filters: nbia_graph.n_filters() as u64,
            tasks: report.total(),
            outputs: results.len() as u64,
            edges,
            parity: true,
            trace_events,
            wall_ms,
        };
        print_row(&row);
        rows.push(row);
    }

    {
        let recorder = Recorder::enabled();
        let wall = std::time::Instant::now();
        let (results, outcome) = match nbia::graph::run_net_traced(&config, &recorder) {
            Ok(out) => out,
            Err(e) => graph_fail("nbia-net", &format!("coordinator failed: {e}")),
        };
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        if results != fused {
            graph_fail(
                "nbia-net",
                "TCP graph run diverged from the fused deployment",
            );
        }
        if outcome.deaths != 0 {
            graph_fail("nbia-net", "healthy run recorded worker deaths");
        }
        if outcome.outputs.len() as u64 != tiles {
            graph_fail("nbia-net", "classifier sink lost tiles");
        }
        let remote_finishes = recorder
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RemoteFinish { .. }))
            .count() as u64;
        if remote_finishes != outcome.total {
            graph_fail(
                "nbia-net",
                &format!(
                    "trace lost worker spans ({remote_finishes} remote_finish events, {} buffers)",
                    outcome.total
                ),
            );
        }
        let edges = edge_tallies(nbia_graph.edges().len(), &outcome.edge_delivered);
        let trace_events = graph_trace_events("nbia-net", &recorder, trace_dir);
        let row = GraphRunRow {
            app: "nbia".into(),
            topology: "pipeline3".into(),
            backend: "net".into(),
            policy: config.policy.name().to_ascii_lowercase(),
            filters: nbia_graph.n_filters() as u64,
            tasks: outcome.total,
            outputs: outcome.outputs.len() as u64,
            edges,
            parity: true,
            trace_events,
            wall_ms,
        };
        print_row(&row);
        rows.push(row);
    }

    // --- Pricing: the diamond's merged output must match the direct
    // Black-Scholes batch, option by option.
    let n_opts: usize = if quick { 24 } else { 40 };
    let options: Vec<Option_> = (0..n_opts)
        .map(|i| Option_ {
            spot: 80.0 + 1.5 * i as f64,
            strike: 100.0,
            expiry: 0.5 + 0.25 * (i % 4) as f64,
            rate: 0.03,
            volatility: 0.2 + 0.01 * (i % 7) as f64,
        })
        .collect();
    let direct = price_batch(&options);
    {
        let recorder = Recorder::enabled();
        let wall = std::time::Instant::now();
        let (mut priced, report) =
            pricing::run_diamond_traced(&options, PolicyKind::DdFcfs, &weights, &recorder);
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        priced.sort_by_key(|&(id, _)| id);
        let parity = priced.len() == n_opts
            && priced
                .iter()
                .all(|&(id, p)| direct.get(id as usize) == Some(&p));
        if !parity {
            graph_fail(
                "pricing-native",
                "diamond run disagreed with the direct batch",
            );
        }
        let edges = edge_tallies(4, &report.edge_delivered);
        if edges[0] + edges[1] != n_opts as u64 || edges[2] + edges[3] != n_opts as u64 {
            graph_fail("pricing-native", "diamond edges lost options");
        }
        let trace_events = graph_trace_events("pricing-native", &recorder, trace_dir);
        let row = GraphRunRow {
            app: "pricing".into(),
            topology: "diamond".into(),
            backend: "native".into(),
            policy: PolicyKind::DdFcfs.name().to_ascii_lowercase(),
            filters: 4,
            tasks: report.total(),
            outputs: priced.len() as u64,
            edges,
            parity: true,
            trace_events,
            wall_ms,
        };
        print_row(&row);
        rows.push(row);
    }

    // --- Diamond over the wire: spawned worker processes, every policy,
    // against the sequential reference driver.
    let diamond = DataflowGraph::diamond("split", "price_a", "price_b", "merge");
    let exe = std::env::current_exe().expect("own executable path");
    let net_tasks: u64 = if quick { 48 } else { 96 };
    let net_seeds: Vec<DataBuffer> = (0..net_tasks).map(net_tile).collect();
    let devices: Vec<Vec<DeviceId>> = (0..diamond.n_filters())
        .map(|f| {
            [DeviceKind::Cpu, DeviceKind::Gpu]
                .iter()
                .enumerate()
                .map(|(i, &kind)| DeviceId {
                    node: f,
                    kind,
                    index: i,
                })
                .collect()
        })
        .collect();
    for (name, policy) in [
        ("ddfcfs", Policy::ddfcfs(4)),
        ("ddwrr", Policy::ddwrr(16)),
        ("odds", Policy::odds()),
    ] {
        let label = format!("diamond-net-{name}");
        let seeds: Vec<(usize, DataBuffer)> = net_seeds.iter().map(|b| (0, b.clone())).collect();
        let reference = sequential_run_graph(
            SequentialConfig::new(policy),
            &diamond,
            &devices,
            seeds.clone(),
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
            |_, _, b| GraphEmission {
                forward: vec![b.clone()],
                feedback: Vec::new(),
            },
        );

        let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
            Ok(l) => l,
            Err(e) => graph_fail(&label, &format!("failed to bind loopback listener: {e}")),
        };
        let addr = listener.local_addr().expect("listener addr").to_string();
        let mut children = Vec::new();
        let mut workers: Vec<Vec<NetWorkerConn>> = Vec::new();
        for filter_devices in &devices {
            let mut conns = Vec::new();
            for &device in filter_devices {
                let child = match std::process::Command::new(&exe)
                    .args(["worker", &addr, "identity"])
                    .stdin(std::process::Stdio::null())
                    .spawn()
                {
                    Ok(c) => c,
                    Err(e) => graph_fail(&label, &format!("failed to spawn worker process: {e}")),
                };
                children.push(child);
                match listener.accept() {
                    Ok((stream, _)) => conns.push(NetWorkerConn { device, stream }),
                    Err(e) => graph_fail(&label, &format!("worker failed to connect: {e}")),
                }
            }
            workers.push(conns);
        }

        let recorder = Recorder::enabled();
        let mut cfg = NetConfig::new(policy);
        cfg.recorder = recorder.clone();
        let wall = std::time::Instant::now();
        let out = match run_graph_deterministic(
            cfg,
            &diamond,
            workers,
            seeds,
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
        ) {
            Ok(out) => out,
            Err(e) => graph_fail(&label, &format!("coordinator failed: {e}")),
        };
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        for child in &mut children {
            match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => graph_fail(&label, &format!("worker process exited with {status}")),
                Err(e) => graph_fail(&label, &format!("failed to reap worker process: {e}")),
            }
        }

        if out.assigned != reference.assigned
            || out.dispatch_order != reference.dispatch_order
            || out.edge_delivered != reference.edge_delivered
        {
            graph_fail(
                &label,
                "TCP graph backend diverged from the sequential reference",
            );
        }
        if out.deaths != 0 {
            graph_fail(&label, "healthy run recorded worker deaths");
        }
        let remote_finishes = recorder
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RemoteFinish { .. }))
            .count() as u64;
        if remote_finishes != out.total {
            graph_fail(
                &label,
                &format!(
                    "trace lost worker spans ({remote_finishes} remote_finish events, {} buffers)",
                    out.total
                ),
            );
        }
        let edges = edge_tallies(4, &out.edge_delivered);
        if edges[0] + edges[1] != net_tasks || edges[2] + edges[3] != net_tasks {
            graph_fail(&label, "diamond edges lost buffers");
        }
        let trace_events = graph_trace_events(&label, &recorder, trace_dir);
        let row = GraphRunRow {
            app: "pricing".into(),
            topology: "diamond".into(),
            backend: "net".into(),
            policy: name.into(),
            filters: diamond.n_filters() as u64,
            tasks: out.total,
            outputs: out.outputs.len() as u64,
            edges,
            parity: true,
            trace_events,
            wall_ms,
        };
        print_row(&row);
        rows.push(row);
    }

    let text = render_graph_report(&rows, quick);
    if let Err(e) = validate_graph_report(&text) {
        eprintln!("graph: BENCH_graph.json failed schema validation: {e}");
        std::process::exit(1);
    }
    match std::fs::write("BENCH_graph.json", &text) {
        Ok(()) => println!("wrote BENCH_graph.json ({} runs)", rows.len()),
        Err(e) => {
            eprintln!("graph: failed to write BENCH_graph.json: {e}");
            std::process::exit(1);
        }
    }
}

/// Learned-policy CI gate: DDWRR vs AFFINITY vs BANDIT on the paper's
/// base cases plus the stale-profile recovery scenario, with the verdicts
/// (paper tolerance, heterogeneous win, stale-profile win, learner
/// engagement) enforced by the `BENCH_policies.json` schema validator.
/// Every run's trace must round-trip the JSONL schema; with `--trace`,
/// per-run traces land in the directory. Exits nonzero on any failure.
fn policies_gate(quick: bool, trace_dir: Option<&str>) {
    header(
        "Policies: learned scheduling (online estimator, affinity, bandit) vs DDWRR",
        "CI gate — Table 5 extension; online profile recovery of a stale phase-one benchmark",
    );
    println!(
        "{:<14} {:<9} {:>12} {:>8} {:>8} {:>8} {:>9} {:>9} {:>10}",
        "scenario",
        "policy",
        "makespan(ms)",
        "cpu",
        "gpu",
        "decide",
        "profile",
        "events",
        "vs ddwrr"
    );
    let fail = |label: &str, why: &str| -> ! {
        eprintln!("policies {label}: {why}");
        std::process::exit(1);
    };
    let rows = anthill_bench::policies::head_to_head_traced(quick, |row, events| {
        let label = format!("{}/{}", row.scenario, row.policy);
        let text = jsonl::to_jsonl(events);
        match jsonl::parse_jsonl(&text) {
            Ok(parsed) if parsed == events => {}
            Ok(parsed) => fail(
                &label,
                &format!(
                    "trace round-trip mismatch ({} events in, {} out)",
                    events.len(),
                    parsed.len()
                ),
            ),
            Err(e) => fail(&label, &format!("trace does not round-trip: {e}")),
        }
        if let Some(dir) = trace_dir {
            let path = format!(
                "{}/policies-{}-{}.trace.jsonl",
                dir.trim_end_matches('/'),
                row.scenario,
                row.policy.to_ascii_lowercase()
            );
            if let Err(e) = std::fs::write(&path, &text) {
                fail(&label, &format!("failed to write {path}: {e}"));
            }
        }
        println!(
            "{:<14} {:<9} {:>12.1} {:>8} {:>8} {:>8} {:>9} {:>9} {:>+9.2}%",
            row.scenario,
            row.policy,
            row.makespan_ms,
            row.tasks_cpu,
            row.tasks_gpu,
            row.decisions,
            row.profile_updates,
            events.len(),
            row.vs_ddwrr_pct
        );
    });
    let text = anthill_bench::policies::render_policies_report(&rows, quick);
    if let Err(e) = anthill_bench::policies::validate_policies_report(&text) {
        eprintln!("policies: BENCH_policies.json failed its gate verdicts: {e}");
        std::process::exit(1);
    }
    match std::fs::write("BENCH_policies.json", &text) {
        Ok(()) => println!("wrote BENCH_policies.json ({} runs)", rows.len()),
        Err(e) => {
            eprintln!("policies: failed to write BENCH_policies.json: {e}");
            std::process::exit(1);
        }
    }
}

/// Stage filter of the load gate's native runs: forward immediately, so
/// measured latency is queueing + runtime overhead (plus the emulated
/// busy-wait in the saturation runs).
struct LoadForward;
impl LocalFilter for LoadForward {
    fn handle(&self, _d: DeviceKind, task: LocalTask, out: &mut Emitter<'_>) {
        out.forward(task);
    }
}

/// A constant-shape task for the load gate; `micros` is the modeled (and,
/// under `ExecMode::Emulated`, busy-waited) per-device cost.
fn load_tile(id: u64, micros: u64) -> DataBuffer {
    DataBuffer {
        id: BufferId(id),
        params: TaskParams::nums(&[1.0]),
        shape: TaskShape {
            cpu: SimDuration::from_micros(micros),
            gpu_kernel: SimDuration::from_micros(micros),
            bytes_in: 0,
            bytes_out: 0,
        },
        level: 0,
        task: id,
    }
}

/// The three per-task latency dimensions of one load run, each in its own
/// streaming histogram.
struct LatTriple {
    queue: LatencyHistogram,
    service: LatencyHistogram,
    e2e: LatencyHistogram,
}

impl LatTriple {
    fn new() -> LatTriple {
        LatTriple {
            queue: LatencyHistogram::new(),
            service: LatencyHistogram::new(),
            e2e: LatencyHistogram::new(),
        }
    }

    fn record(&mut self, queue_ns: u64, service_ns: u64, e2e_ns: u64) {
        self.queue.record(queue_ns);
        self.service.record(service_ns);
        self.e2e.record(e2e_ns);
    }

    fn stats(&self) -> [LatencyStats; 3] {
        [
            LatencyStats::from_histogram(&self.queue),
            LatencyStats::from_histogram(&self.service),
            LatencyStats::from_histogram(&self.e2e),
        ]
    }
}

fn expect_load(label: &str, cond: bool, msg: &str) {
    if !cond {
        eprintln!("load {label}: {msg}");
        std::process::exit(1);
    }
}

/// Gate one traced load run: the admission events in the trace must match
/// the controller's counters exactly, the trace must round-trip the JSONL
/// schema, and the result lands in `<dir>/load-<label>.trace.jsonl`.
fn check_load_trace(label: &str, recorder: &Recorder, counters: AdmissionCounters, dir: &str) {
    let events = recorder.events();
    let count =
        |pred: fn(&EventKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count() as u64;
    let admitted = count(|k| matches!(k, EventKind::TaskAdmitted { .. }));
    let shed = count(|k| matches!(k, EventKind::TaskShed { .. }));
    let dropped = count(|k| matches!(k, EventKind::TaskDeadlineDropped { .. }));
    if admitted != counters.admitted
        || shed != counters.shed
        || dropped != counters.deadline_dropped
    {
        eprintln!(
            "load {label}: admission events diverge from counters \
             (events {admitted}/{shed}/{dropped}, counters {}/{}/{})",
            counters.admitted, counters.shed, counters.deadline_dropped
        );
        std::process::exit(1);
    }
    let text = jsonl::to_jsonl(&events);
    match jsonl::parse_jsonl(&text) {
        Ok(parsed) if parsed == events => {}
        Ok(_) => {
            eprintln!("load {label}: trace round-trip mismatch");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("load {label}: trace failed JSONL schema validation: {e}");
            std::process::exit(1);
        }
    }
    let path = format!("{}/load-{label}.trace.jsonl", dir.trim_end_matches('/'));
    if let Err(e) = std::fs::write(&path, &text) {
        eprintln!("load {label}: failed to write trace to {path}: {e}");
        std::process::exit(1);
    }
    println!("  wrote {} events to {path}", events.len());
}

/// One open-loop run through the native pipeline: `workers` CPU slots on a
/// single forwarding stage, per-task latencies streamed into histograms on
/// the worker threads.
fn native_load_run(
    arrivals: &[u64],
    admission: AdmissionConfig,
    mode: ExecMode,
    shape_us: u64,
    workers: usize,
    recorder: &Recorder,
) -> (anthill::local::LoadRunReport, [LatencyStats; 3], f64) {
    let mut p = Pipeline::new(PolicyKind::DdFcfs);
    p.add_stage(
        Arc::new(LoadForward),
        vec![
            WorkerSpec {
                kind: DeviceKind::Cpu,
                mode
            };
            workers
        ],
    );
    let weights = OracleWeights::new(GpuParams::geforce_8800gt(), true);
    let hists = std::sync::Mutex::new(LatTriple::new());
    let wall = std::time::Instant::now();
    let report = p.run_load(
        arrivals,
        &|i, _arrival| LocalTask::new(load_tile(i, shape_us), ()),
        LoadConfig {
            admission,
            sample_every: Duration::from_millis(2),
        },
        &weights,
        recorder,
        &|t, started_ns, finished_ns| {
            // The i-th task's scheduled arrival is recovered through the
            // buffer's task index; `started` is when a worker picked it up.
            let arrival = arrivals[t.buffer.task as usize];
            let e2e = finished_ns.saturating_sub(arrival);
            let service = finished_ns.saturating_sub(started_ns).min(e2e);
            hists.lock().unwrap().record(e2e - service, service, e2e);
        },
    );
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let stats = hists.into_inner().unwrap().stats();
    (report, stats, wall_ms)
}

/// Spawn `count` worker processes (this binary's hidden `worker`
/// subcommand) against a fresh loopback listener.
fn spawn_load_workers(
    label: &str,
    exe: &std::path::Path,
    behavior: &str,
    count: usize,
) -> (Vec<std::process::Child>, Vec<NetWorkerConn>) {
    let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        Err(e) => {
            eprintln!("load {label}: failed to bind loopback listener: {e}");
            std::process::exit(1);
        }
    };
    let addr = listener.local_addr().expect("listener addr").to_string();
    let mut children = Vec::new();
    let mut workers = Vec::new();
    for index in 0..count {
        let child = match std::process::Command::new(exe)
            .args(["worker", &addr, behavior])
            .stdin(std::process::Stdio::null())
            .spawn()
        {
            Ok(c) => c,
            Err(e) => {
                eprintln!("load {label}: failed to spawn worker process: {e}");
                std::process::exit(1);
            }
        };
        children.push(child);
        match listener.accept() {
            Ok((stream, _)) => workers.push(NetWorkerConn {
                device: DeviceId {
                    node: 0,
                    kind: DeviceKind::Cpu,
                    index,
                },
                stream,
            }),
            Err(e) => {
                eprintln!("load {label}: worker failed to connect: {e}");
                std::process::exit(1);
            }
        }
    }
    (children, workers)
}

/// One open-loop run through the TCP coordinator with spawned worker
/// processes on loopback.
#[allow(clippy::too_many_arguments)]
fn net_load_run(
    label: &str,
    exe: &std::path::Path,
    arrivals: &[u64],
    admission: AdmissionConfig,
    behavior: &str,
    worker_count: usize,
    deadline: Duration,
    recorder: &Recorder,
) -> (anthill::net::NetLoadReport, [LatencyStats; 3], f64) {
    let (mut children, workers) = spawn_load_workers(label, exe, behavior, worker_count);
    let mut cfg = NetConfig::new(Policy::ddfcfs(4));
    cfg.recorder = recorder.clone();
    cfg.deadline = deadline;
    let mut hists = LatTriple::new();
    let wall = std::time::Instant::now();
    let report = match run_concurrent_load(
        cfg,
        admission,
        workers,
        arrivals,
        &mut |i, _arrival| load_tile(i, 50),
        Duration::from_millis(2),
        OracleWeights::new(GpuParams::geforce_8800gt(), false),
        &mut |t| hists.record(t.queue_ns, t.service_ns, t.e2e_ns),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("load {label}: coordinator failed: {e}");
            std::process::exit(1);
        }
    };
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    for child in &mut children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("load {label}: worker process exited with {status}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("load {label}: failed to reap worker process: {e}");
                std::process::exit(1);
            }
        }
    }
    (report, hists.stats(), wall_ms)
}

#[allow(clippy::too_many_arguments)]
fn push_load_row(
    rows: &mut Vec<LoadRunRow>,
    profile: &str,
    backend: &str,
    policy: OverloadPolicy,
    tasks: u64,
    admission: AdmissionCounters,
    completed: u64,
    stats: [LatencyStats; 3],
    queue_depth: Vec<DepthPoint>,
    wall_ms: f64,
) {
    println!(
        "{:<10} {:<8} {:<14} {:>8} {:>8} {:>7} {:>12.1} {:>12.1} {:>9.1}",
        profile,
        backend,
        policy.name(),
        tasks,
        completed,
        admission.shed + admission.deadline_dropped,
        stats[2].p50 as f64 / 1e3,
        stats[2].p99 as f64 / 1e3,
        wall_ms
    );
    rows.push(LoadRunRow {
        profile: profile.to_string(),
        backend: backend.to_string(),
        policy: policy.name().to_string(),
        tasks,
        admission,
        completed,
        queue: stats[0],
        service: stats[1],
        e2e: stats[2],
        queue_depth,
        wall_ms,
    });
}

/// Open-loop load CI gate: seed-deterministic arrival schedules drive the
/// native pipeline and the TCP coordinator under the `block` policy (every
/// arrival must complete), then saturating schedules exercise `shed_oldest`
/// and `deadline_drop` (intake must stay bounded, counters must conserve).
/// Writes and schema-validates `BENCH_load.json`; exits nonzero on any
/// failure.
fn load_gate(quick: bool, profile_sel: &str, trace_dir: Option<&str>) {
    header(
        "Load: open-loop arrival harness, native pipeline + TCP coordinator",
        "CI gate — admission conservation + bounded overload under arrival pressure (run-time optimization premise)",
    );
    let exe = std::env::current_exe().expect("own executable path");
    let n_poisson = if quick { 5_000usize } else { 100_000 };
    let n_other = if quick { 3_000usize } else { 30_000 };
    let net_deadline = Duration::from_secs(if quick { 60 } else { 300 });
    let profiles = [
        (ArrivalProfile::Poisson { rate_hz: 30_000.0 }, n_poisson),
        (
            ArrivalProfile::Bursty {
                rate_hz: 60_000.0,
                burst_ms: 5,
                idle_ms: 5,
            },
            n_other,
        ),
        (
            ArrivalProfile::Diurnal {
                peak_hz: 50_000.0,
                trough_hz: 5_000.0,
                period_ms: 40,
            },
            n_other,
        ),
    ];
    let mut rows: Vec<LoadRunRow> = Vec::new();
    println!(
        "{:<10} {:<8} {:<14} {:>8} {:>8} {:>7} {:>12} {:>12} {:>9}",
        "profile",
        "backend",
        "policy",
        "tasks",
        "done",
        "lost",
        "e2e p50(us)",
        "e2e p99(us)",
        "wall(ms)"
    );
    let recorder_for = || {
        if trace_dir.is_some() {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    };

    for (profile, n) in profiles {
        if profile_sel != "all" && profile_sel != profile.name() {
            continue;
        }
        let arrivals = profile.schedule(SEED, n);
        let tasks = n as u64;

        // Native backend, block policy: open-loop overload turns into
        // generator back-pressure, so every arrival must complete.
        {
            let label = format!("{}-native-block", profile.name());
            let recorder = recorder_for();
            let (report, stats, wall_ms) = native_load_run(
                &arrivals,
                AdmissionConfig::default(),
                ExecMode::Native,
                1,
                4,
                &recorder,
            );
            expect_load(
                &label,
                report.admission.conserved(),
                &format!("counters not conserved: {:?}", report.admission),
            );
            expect_load(
                &label,
                report.admission.generated == tasks && report.admission.admitted == tasks,
                &format!("block must admit every arrival: {:?}", report.admission),
            );
            expect_load(
                &label,
                report.completed == tasks,
                &format!("{} of {tasks} completed", report.completed),
            );
            expect_load(
                &label,
                !report.queue_depth.is_empty(),
                "queue-depth series is empty",
            );
            if let Some(dir) = trace_dir {
                check_load_trace(&label, &recorder, report.admission, dir);
            }
            push_load_row(
                &mut rows,
                profile.name(),
                "native",
                OverloadPolicy::Block,
                tasks,
                report.admission,
                report.completed,
                stats,
                report.queue_depth.iter().map(DepthPoint::from).collect(),
                wall_ms,
            );
        }

        // Net backend, block policy: the same schedule through the TCP
        // coordinator with two spawned identity worker processes.
        {
            let label = format!("{}-net-block", profile.name());
            let recorder = recorder_for();
            let (report, stats, wall_ms) = net_load_run(
                &label,
                &exe,
                &arrivals,
                AdmissionConfig::default(),
                "identity",
                2,
                net_deadline,
                &recorder,
            );
            expect_load(
                &label,
                report.admission.conserved(),
                &format!("counters not conserved: {:?}", report.admission),
            );
            expect_load(
                &label,
                report.admission.generated == tasks && report.admission.admitted == tasks,
                &format!("block must admit every arrival: {:?}", report.admission),
            );
            expect_load(
                &label,
                report.completed == tasks && report.outcome.total == tasks,
                &format!(
                    "{} completed, {} worker completions, {tasks} expected",
                    report.completed, report.outcome.total
                ),
            );
            expect_load(
                &label,
                !report.queue_depth.is_empty(),
                "queue-depth series is empty",
            );
            if let Some(dir) = trace_dir {
                check_load_trace(&label, &recorder, report.admission, dir);
            }
            push_load_row(
                &mut rows,
                profile.name(),
                "net",
                OverloadPolicy::Block,
                tasks,
                report.admission,
                report.completed,
                stats,
                report.queue_depth.iter().map(DepthPoint::from).collect(),
                wall_ms,
            );
        }
    }

    // Saturation runs ride with the Poisson selection: arrivals outpace
    // service capacity ~2x, so the overload policies must engage.
    if profile_sel == "all" || profile_sel == "poisson" {
        let n_sat = if quick { 2_000usize } else { 4_000 };
        let arrivals = ArrivalProfile::Poisson { rate_hz: 20_000.0 }.schedule(SEED + 1, n_sat);
        let tasks = n_sat as u64;

        // Native shed_oldest: two emulated 200 µs workers give ~10k/s of
        // capacity against 20k/s of arrivals; the queue must stay capped.
        {
            let label = "saturate-native-shed";
            let cfg = AdmissionConfig {
                inflight_cap: 8,
                queue_cap: 16,
                policy: OverloadPolicy::ShedOldest,
            };
            let recorder = recorder_for();
            let (report, stats, wall_ms) = native_load_run(
                &arrivals,
                cfg,
                ExecMode::Emulated { scale: 1.0 },
                200,
                2,
                &recorder,
            );
            expect_load(
                label,
                report.admission.conserved() && report.admission.generated == tasks,
                &format!("counters not conserved: {:?}", report.admission),
            );
            expect_load(
                label,
                report.admission.shed > 0,
                "a 2x-saturating schedule shed nothing",
            );
            expect_load(
                label,
                report.completed == report.admission.admitted,
                &format!(
                    "{} completed of {} admitted",
                    report.completed, report.admission.admitted
                ),
            );
            expect_load(
                label,
                report.queue_depth.iter().all(|s| s.intake <= 16),
                "intake exceeded queue_cap under shed_oldest",
            );
            if let Some(dir) = trace_dir {
                check_load_trace(label, &recorder, report.admission, dir);
            }
            push_load_row(
                &mut rows,
                "poisson",
                "native",
                cfg.policy,
                tasks,
                report.admission,
                report.completed,
                stats,
                report.queue_depth.iter().map(DepthPoint::from).collect(),
                wall_ms,
            );
        }

        // Native deadline_drop: same overload, but the bound is on waiting
        // time — anything older than 1 ms at intake must be dropped.
        {
            let label = "saturate-native-deadline";
            let cfg = AdmissionConfig {
                inflight_cap: 8,
                queue_cap: 16,
                policy: OverloadPolicy::DeadlineDrop {
                    deadline: SimDuration::from_millis(1),
                },
            };
            let recorder = recorder_for();
            let (report, stats, wall_ms) = native_load_run(
                &arrivals,
                cfg,
                ExecMode::Emulated { scale: 1.0 },
                200,
                2,
                &recorder,
            );
            expect_load(
                label,
                report.admission.conserved() && report.admission.generated == tasks,
                &format!("counters not conserved: {:?}", report.admission),
            );
            expect_load(
                label,
                report.admission.deadline_dropped > 0,
                "a 2x-saturating schedule dropped nothing past the deadline",
            );
            expect_load(
                label,
                report.completed == report.admission.admitted,
                &format!(
                    "{} completed of {} admitted",
                    report.completed, report.admission.admitted
                ),
            );
            if let Some(dir) = trace_dir {
                check_load_trace(label, &recorder, report.admission, dir);
            }
            push_load_row(
                &mut rows,
                "poisson",
                "native",
                cfg.policy,
                tasks,
                report.admission,
                report.completed,
                stats,
                report.queue_depth.iter().map(DepthPoint::from).collect(),
                wall_ms,
            );
        }

        // Net shed_oldest: one busy worker process (~300 µs/task) against
        // 10k/s of arrivals; the coordinator's intake must stay capped.
        {
            let label = "saturate-net-shed";
            let n_net = if quick { 1_500usize } else { 3_000 };
            let arrivals = ArrivalProfile::Poisson { rate_hz: 10_000.0 }.schedule(SEED + 2, n_net);
            let cfg = AdmissionConfig {
                inflight_cap: 4,
                queue_cap: 8,
                policy: OverloadPolicy::ShedOldest,
            };
            let recorder = recorder_for();
            let (report, stats, wall_ms) = net_load_run(
                label,
                &exe,
                &arrivals,
                cfg,
                "busy:300",
                1,
                net_deadline,
                &recorder,
            );
            expect_load(
                label,
                report.admission.conserved() && report.admission.generated == n_net as u64,
                &format!("counters not conserved: {:?}", report.admission),
            );
            expect_load(
                label,
                report.admission.shed > 0,
                "a saturating schedule shed nothing",
            );
            expect_load(
                label,
                report.completed == report.admission.admitted,
                &format!(
                    "{} completed of {} admitted",
                    report.completed, report.admission.admitted
                ),
            );
            expect_load(
                label,
                report.queue_depth.iter().all(|s| s.intake <= 8),
                "intake exceeded queue_cap under shed_oldest",
            );
            if let Some(dir) = trace_dir {
                check_load_trace(label, &recorder, report.admission, dir);
            }
            push_load_row(
                &mut rows,
                "poisson",
                "net",
                cfg.policy,
                n_net as u64,
                report.admission,
                report.completed,
                stats,
                report.queue_depth.iter().map(DepthPoint::from).collect(),
                wall_ms,
            );
        }
    }

    let text = render_load_report(&rows, quick, SEED);
    if let Err(e) = validate_load_report(&text) {
        eprintln!("load: BENCH_load.json failed schema validation: {e}");
        std::process::exit(1);
    }
    let out = if profile_sel == "all" {
        "BENCH_load.json".to_string()
    } else {
        format!("BENCH_load_{profile_sel}.json")
    };
    match std::fs::write(&out, &text) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("load: failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
}

/// Abort the elastic gate with a labeled diagnosis.
fn elastic_fail(label: &str, why: &str) -> ! {
    eprintln!("elastic {label}: {why}");
    std::process::exit(1);
}

/// An in-process worker thread behind a real loopback TCP connection:
/// the coordinator side of the pair is returned, the worker side serves
/// `behavior` on its own thread. The protocol is byte-identical to a
/// spawned worker process; only the startup latency differs.
fn elastic_loopback_worker(label: &str, device: DeviceId, behavior: Behavior) -> NetWorkerConn {
    let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        Err(e) => elastic_fail(label, &format!("failed to bind loopback listener: {e}")),
    };
    let addr = listener.local_addr().expect("listener addr");
    let worker_side = match std::net::TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => elastic_fail(label, &format!("loopback connect failed: {e}")),
    };
    let coordinator = match listener.accept() {
        Ok((s, _)) => s,
        Err(e) => elastic_fail(label, &format!("loopback accept failed: {e}")),
    };
    spawn_worker_thread(worker_side, behavior);
    NetWorkerConn {
        device,
        stream: coordinator,
    }
}

/// Pre-connected standby workers for the autoscaler: `grow` hands out
/// the next idle connection until the standby set is exhausted.
struct StandbyPool {
    ready: std::collections::VecDeque<NetWorkerConn>,
}

impl WorkerPool for StandbyPool {
    type Worker = NetWorkerConn;

    fn grow(&mut self) -> Option<NetWorkerConn> {
        self.ready.pop_front()
    }
}

/// Elastic-membership CI gate (DESIGN.md §14). Two scenarios:
///
/// 1. **Rolling restart** — a live TCP run starts on two CPU workers,
///    two replacements join mid-run through the `Join`/`JoinAck`
///    handshake, and a drain schedule then retires each initial worker
///    exactly once. Zero task loss, zero deaths, the
///    `worker_joined`/`worker_draining`/`worker_left` trio in the trace,
///    no dispatch to a drained slot, and the joiners absorbing a real
///    share of the post-join work.
/// 2. **Autoscale** — a saturating open-loop Poisson schedule against
///    one busy worker, with the DQAA congestion-signal autoscaler
///    growing from a standby pool. Admission counters must conserve and
///    at least one scale-up must engage.
///
/// Writes and schema-validates `BENCH_elastic.json`; exits nonzero on
/// any failure.
fn elastic_gate(quick: bool, trace_dir: Option<&str>) {
    header(
        "Elastic: runtime membership — rolling restart + congestion autoscaler",
        "CI gate — dynamic join/drain with zero loss; DQAA congestion signals drive the pool (run-time adaptation premise)",
    );

    // ---------------------------------------------------- rolling restart
    let tasks: u64 = if quick { 240 } else { 960 };
    let label = "rolling";
    let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        Err(e) => elastic_fail(label, &format!("failed to bind join listener: {e}")),
    };
    let join_addr = listener.local_addr().expect("listener addr").to_string();
    let workers: Vec<NetWorkerConn> = (0..2)
        .map(|index| {
            elastic_loopback_worker(
                label,
                DeviceId {
                    node: 0,
                    kind: DeviceKind::Cpu,
                    index,
                },
                Behavior::Identity,
            )
        })
        .collect();
    // The replacements connect up front; the acceptor admits them from
    // the listener backlog once the run is live.
    let joiners: Vec<_> = (0..2)
        .map(|_| {
            spawn_joining_worker_thread(join_addr.clone(), 0, DeviceKind::Cpu, Behavior::Identity)
        })
        .collect();
    let drains = vec![
        DrainAt {
            after_completions: tasks / 4,
            slot: 0,
        },
        DrainAt {
            after_completions: tasks / 2,
            slot: 1,
        },
    ];
    let recorder = Recorder::enabled();
    let mut cfg = NetConfig::new(Policy::ddwrr(8));
    cfg.recovery = RecoveryConfig::standard();
    cfg.recorder = recorder.clone();
    let sources: Vec<DataBuffer> = (0..tasks).map(net_tile).collect();
    let wall = std::time::Instant::now();
    let out = match run_concurrent_elastic(
        cfg,
        listener,
        drains,
        workers,
        sources,
        OracleWeights::new(GpuParams::geforce_8800gt(), false),
    ) {
        Ok(out) => out,
        Err(e) => elastic_fail(label, &format!("coordinator failed: {e}")),
    };
    let rolling_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    for j in joiners {
        match j.join() {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => elastic_fail(label, &format!("joiner thread failed: {e}")),
            Err(_) => elastic_fail(label, "joiner thread panicked"),
        }
    }
    if out.outcome.total != tasks {
        elastic_fail(
            label,
            &format!("lost work: {} of {tasks} completed", out.outcome.total),
        );
    }
    if out.outcome.deaths != 0 {
        elastic_fail(
            label,
            &format!("{} death(s) — drains must be graceful", out.outcome.deaths),
        );
    }
    if out.joins != 2 || out.drains != 2 {
        elastic_fail(
            label,
            &format!(
                "{} join(s), {} drain(s); expected 2 + 2",
                out.joins, out.drains
            ),
        );
    }

    let events = recorder.events();
    let count =
        |pred: fn(&EventKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count() as u64;
    let joined_events = count(|k| matches!(k, EventKind::WorkerJoined { .. }));
    let draining_events = count(|k| matches!(k, EventKind::WorkerDraining { .. }));
    let left_events = count(|k| matches!(k, EventKind::WorkerLeft));
    if joined_events != 2 || draining_events != 2 || left_events != 2 {
        elastic_fail(
            label,
            &format!(
                "trace trio mismatch: {joined_events} worker_joined, \
                 {draining_events} worker_draining, {left_events} worker_left"
            ),
        );
    }
    for (i, e) in events.iter().enumerate() {
        if !matches!(e.kind, EventKind::WorkerDraining { .. }) {
            continue;
        }
        let later = events[i + 1..]
            .iter()
            .filter(|l| l.origin == e.origin && matches!(l.kind, EventKind::Dispatch { .. }))
            .count();
        if later > 0 {
            elastic_fail(
                label,
                &format!(
                    "slot {} received {later} dispatch(es) after draining",
                    e.origin
                ),
            );
        }
    }
    // Joiner slots continue the io-slot numbering after the two initial
    // workers, so index >= 2 identifies them in the trace.
    let join_pos = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::WorkerJoined { .. }))
        .expect("worker_joined in trace");
    let post_join: Vec<_> = events[join_pos..]
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Finish { .. }))
        .collect();
    let joiner_done = post_join.iter().filter(|e| e.origin.index >= 2).count();
    let joiner_share = if post_join.is_empty() {
        0.0
    } else {
        joiner_done as f64 / post_join.len() as f64
    };
    if joiner_done == 0 {
        elastic_fail(label, "the joiners absorbed no post-join work");
    }
    if let Some(dir) = trace_dir {
        let text = jsonl::to_jsonl(&events);
        let path = format!("{}/elastic-rolling.trace.jsonl", dir.trim_end_matches('/'));
        if let Err(e) = std::fs::write(&path, &text) {
            elastic_fail(label, &format!("failed to write trace to {path}: {e}"));
        }
        println!("  wrote {} events to {path}", events.len());
    }
    let rolling = RollingRow {
        tasks,
        completed: out.outcome.total,
        deaths: u64::from(out.outcome.deaths),
        joins: u64::from(out.joins),
        drains: u64::from(out.drains),
        joined_events,
        draining_events,
        left_events,
        joiner_share,
        wall_ms: rolling_wall_ms,
    };
    println!(
        "rolling    {:>8} tasks  {:>2} joins  {:>2} drains  joiner share {:>5.1}%  {:>9.1} ms",
        tasks,
        out.joins,
        out.drains,
        joiner_share * 100.0,
        rolling_wall_ms
    );

    // --------------------------------------------------------- autoscale
    let label = "autoscale";
    let n = if quick { 1_500usize } else { 3_000 };
    let arrivals = ArrivalProfile::Poisson { rate_hz: 10_000.0 }.schedule(SEED + 3, n);
    // One ~200 µs worker (~5k/s of capacity) against 10k/s of arrivals:
    // the backlog crosses the grow watermark within milliseconds.
    let initial = vec![elastic_loopback_worker(
        label,
        DeviceId {
            node: 0,
            kind: DeviceKind::Cpu,
            index: 0,
        },
        Behavior::parse("busy:200").expect("busy behavior"),
    )];
    let max_workers = 4usize;
    let standby: std::collections::VecDeque<NetWorkerConn> = (1..max_workers)
        .map(|index| {
            elastic_loopback_worker(
                label,
                DeviceId {
                    node: 0,
                    kind: DeviceKind::Cpu,
                    index,
                },
                Behavior::parse("busy:200").expect("busy behavior"),
            )
        })
        .collect();
    let mut pool = StandbyPool { ready: standby };
    let admission = AdmissionConfig {
        inflight_cap: 32,
        queue_cap: 64,
        policy: OverloadPolicy::ShedOldest,
    };
    let mut cfg = NetConfig::new(Policy::ddfcfs(4));
    cfg.deadline = Duration::from_secs(if quick { 60 } else { 120 });
    let wall = std::time::Instant::now();
    let mut completions = 0u64;
    let report = match run_concurrent_load_autoscaled(
        cfg,
        admission,
        initial,
        &arrivals,
        &mut |i, _arrival| load_tile(i, 50),
        Duration::from_millis(2),
        OracleWeights::new(GpuParams::geforce_8800gt(), false),
        &mut |_t| completions += 1,
        ElasticLoad {
            autoscaler: Autoscaler::new(AutoscalerConfig::standard(1, max_workers)),
            pool: &mut pool,
        },
    ) {
        Ok(r) => r,
        Err(e) => elastic_fail(label, &format!("coordinator failed: {e}")),
    };
    let auto_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    if !report.admission.conserved() || report.admission.generated != n as u64 {
        elastic_fail(
            label,
            &format!("counters not conserved: {:?}", report.admission),
        );
    }
    if report.completed != report.admission.admitted {
        elastic_fail(
            label,
            &format!(
                "{} completed of {} admitted",
                report.completed, report.admission.admitted
            ),
        );
    }
    if report.scale_ups == 0 {
        elastic_fail(label, "the saturating schedule triggered no scale-up");
    }
    if report.outcome.deaths != 0 {
        elastic_fail(
            label,
            &format!("{} death(s) during autoscaled run", report.outcome.deaths),
        );
    }
    let autoscale = AutoscaleRow {
        tasks: n as u64,
        generated: report.admission.generated,
        admitted: report.admission.admitted,
        shed: report.admission.shed,
        deadline_dropped: report.admission.deadline_dropped,
        completed: report.completed,
        scale_ups: report.scale_ups,
        scale_downs: report.scale_downs,
        initial_workers: 1,
        max_workers: max_workers as u64,
        wall_ms: auto_wall_ms,
    };
    println!(
        "autoscale  {:>8} tasks  {:>2} ups    {:>2} downs   admitted {:>5}     {:>9.1} ms",
        n, report.scale_ups, report.scale_downs, report.admission.admitted, auto_wall_ms
    );

    let text = render_elastic_report(&rolling, &autoscale, quick, SEED);
    if let Err(e) = validate_elastic_report(&text) {
        eprintln!("elastic: BENCH_elastic.json failed schema validation: {e}");
        std::process::exit(1);
    }
    match std::fs::write("BENCH_elastic.json", &text) {
        Ok(()) => println!("wrote BENCH_elastic.json"),
        Err(e) => {
            eprintln!("elastic: failed to write BENCH_elastic.json: {e}");
            std::process::exit(1);
        }
    }
}

fn header(title: &str, paper: &str) {
    println!();
    println!("== {title} ==");
    println!("   paper reference: {paper}");
}

fn table1() {
    header(
        "Table 1: performance estimator errors (10-fold CV, k=2, 30 jobs)",
        "speedup err: BS 2.5 / N-body 7.3 / Heart 13.8 / kNN 8.8 / Eclat 11.3 / NBIA 7.4 (mean 8.52); CPU-time err 70.5 / 11.6 / 42.0 / 21.2 / 102.6 / 30.4",
    );
    let rows = estimator::table1(SEED);
    println!(
        "{:<18} {:>14} {:>16}",
        "Benchmark", "Speedup err %", "CPU time err %"
    );
    for r in &rows {
        println!(
            "{:<18} {:>14.2} {:>16.2}",
            r.app, r.speedup_err, r.cpu_time_err
        );
    }
    println!(
        "{:<18} {:>14.2}",
        "mean",
        estimator::table1_mean_speedup_error(&rows)
    );
}

fn sweep_k() {
    header(
        "Ablation: estimator k sweep (paper: k=2 near-best)",
        "k = 2 'achieved near-best estimations for all configurations'",
    );
    println!("{:<6} {:>20}", "k", "mean speedup err %");
    for (k, e) in estimator::table1_sweep_k(SEED, &[1, 2, 3, 4, 6, 8]) {
        println!("{k:<6} {e:>20.2}");
    }
}

fn sweep_models() {
    header(
        "Ablation: model-learning algorithms (paper future work)",
        "the paper uses plain kNN; fixed-speedup assumptions (Mars) are its critique target",
    );
    println!(
        "{:<20} {:>18} {:>18}",
        "model", "speedup err %", "CPU time err %"
    );
    for r in estimator::sweep_models(SEED) {
        println!(
            "{:<20} {:>18.2} {:>18.2}",
            r.model, r.speedup_err, r.cpu_time_err
        );
    }
}

fn fig6(s: &Scale) {
    header(
        "Fig. 6: NBIA GPU speedup vs tile size, sync vs async copy",
        "sync: ~1x @32², ~33x @512²; async removes ≤83% of transfer overhead (~20% app gain @512²)",
    );
    println!(
        "{:<8} {:>12} {:>12} {:>22}",
        "tile", "sync x", "async x", "xfer overhead cut %"
    );
    for r in transfer::fig6(&[32, 64, 128, 256, 512], s.fig6_tiles) {
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>22.1}",
            format!("{0}x{0}", r.side),
            r.sync_speedup,
            r.async_speedup,
            r.transfer_reduction_pct
        );
    }
}

fn fig7(s: &Scale) {
    header(
        "Fig. 7: VI exec time vs #streams per chunk size",
        "time falls with stream count to a chunk-size-dependent optimum, then degrades",
    );
    let streams = transfer::STREAM_SWEEP;
    let rows = transfer::fig7(&[100_000, 500_000, 1_000_000], &streams, s.vi_len);
    print!("{:<10}", "streams");
    for c in [100_000u64, 500_000, 1_000_000] {
        print!(" {:>11}", format!("{}K", c / 1000));
    }
    println!();
    for &st in &streams {
        print!("{st:<10}");
        for c in [100_000u64, 500_000, 1_000_000] {
            let t = rows
                .iter()
                .find(|r| r.chunk == c && r.streams == st)
                .map(|r| r.exec_secs)
                .unwrap_or(f64::NAN);
            print!(" {t:>10.2}s");
        }
        println!();
    }
    let series: Vec<Series> = [100_000u64, 500_000, 1_000_000]
        .iter()
        .map(|&c| {
            Series::new(
                format!("{}K", c / 1000),
                rows.iter()
                    .filter(|r| r.chunk == c)
                    .map(|r| ((r.streams as f64).log2(), r.exec_secs))
                    .collect(),
            )
        })
        .collect();
    println!("(x axis: log2 streams)");
    print!(
        "{}",
        render(
            &series,
            ChartSpec {
                zero_y: false,
                ..ChartSpec::default()
            }
        )
    );
}

fn table2(s: &Scale) {
    header(
        "Table 2: VI best static stream count vs dynamic algorithm",
        "best static 16.50/16.16/16.15 s; dynamic 16.53/16.23/16.16 s (within ~1%)",
    );
    println!(
        "{:<10} {:>16} {:>14} {:>14} {:>8}",
        "chunk", "best static (s)", "@streams", "dynamic (s)", "ratio"
    );
    for r in transfer::table2(
        &[100_000, 500_000, 1_000_000],
        &transfer::STREAM_SWEEP,
        s.vi_len,
    ) {
        println!(
            "{:<10} {:>16.2} {:>14} {:>14.2} {:>8.3}",
            format!("{}K", r.chunk / 1000),
            r.best_static_secs,
            r.best_static_streams,
            r.dynamic_secs,
            r.dynamic_secs / r.best_static_secs
        );
    }
}

fn table3(s: &Scale) {
    header(
        "Table 3: CPU-only NBIA time vs recalculation rate",
        "0% 30s / 4% 350s / 8% 665s / 12% 974s / 16% 1287s / 20% 1532s",
    );
    println!("{:<8} {:>12}", "rate %", "time (s)");
    for (rate, t) in cluster::table3(&RATES, s.base_tiles) {
        println!("{:<8.0} {:>12.1}", rate * 100.0, t);
    }
}

fn fig8(s: &Scale) {
    header(
        "Fig. 8: intra-filter policies, 1 CPU+GPU node (sync copies)",
        "at 16%: GPU-only 16.06x, DDFCFS 16.78x, DDWRR 29.79x (DDWRR ~2x GPU-only)",
    );
    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "rate %", "GPU-only", "DDFCFS", "DDWRR"
    );
    for r in cluster::fig8(&RATES, s.base_tiles) {
        println!(
            "{:<8.0} {:>10.2} {:>10.2} {:>10.2}",
            r.rate * 100.0,
            r.gpu_only,
            r.ddfcfs,
            r.ddwrr
        );
    }
}

fn table4(s: &Scale) {
    header(
        "Table 4: % of tiles processed by the CPU at 16% recalc",
        "DDFCFS: 1.52% low / 14.70% high; DDWRR: 84.63% low / 0.16% high",
    );
    println!("{:<10} {:>12} {:>12}", "policy", "32x32 %", "512x512 %");
    for (name, low, high) in cluster::table4(s.base_tiles) {
        println!("{name:<10} {low:>12.2} {high:>12.2}");
    }
}

fn fig9(s: &Scale) {
    header(
        "Fig. 9: homogeneous base case (1 CPU+GPU node), async copies",
        "ODDS ≥ DDWRR even on one node (~23% at 20% recalc incl. async gains)",
    );
    stream_rows(cluster::fig9(&RATES, s.base_tiles));
}

fn fig10(s: &Scale) {
    header(
        "Fig. 10: heterogeneous base case (+1 dual-core CPU node)",
        "at 8%: DDWRR ~25x vs ODDS ~44x (ODDS exploits the CPU-only node)",
    );
    stream_rows(cluster::fig10(&RATES, s.base_tiles));
}

fn stream_rows(rows: Vec<cluster::StreamPolicyRow>) {
    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "rate %", "DDFCFS", "DDWRR", "ODDS"
    );
    for r in &rows {
        println!(
            "{:<8.0} {:>10.2} {:>10.2} {:>10.2}",
            r.rate * 100.0,
            r.ddfcfs,
            r.ddwrr,
            r.odds
        );
    }
    let series = vec![
        Series::new(
            "DDFCFS",
            rows.iter().map(|r| (r.rate * 100.0, r.ddfcfs)).collect(),
        ),
        Series::new(
            "DDWRR",
            rows.iter().map(|r| (r.rate * 100.0, r.ddwrr)).collect(),
        ),
        Series::new(
            "ODDS",
            rows.iter().map(|r| (r.rate * 100.0, r.odds)).collect(),
        ),
    ];
    print!("{}", render(&series, ChartSpec::default()));
}

fn table6(s: &Scale) {
    header(
        "Table 6: % of tiles processed by the GPU per resolution (8% recalc)",
        "homog: low 98.2/17.1/7.0, high 92.4/96.3/97.9; heter: low 84.9/16.7/0, high 85.7/92.9/97.6 (DDFCFS/DDWRR/ODDS)",
    );
    println!(
        "{:<15} {:<10} {:>12} {:>12}",
        "config", "policy", "low res %", "high res %"
    );
    for (c, p, low, high) in cluster::table6(s.base_tiles) {
        println!("{c:<15} {p:<10} {low:>12.2} {high:>12.2}");
    }
}

fn fig11(s: &Scale) {
    header(
        "Fig. 11: best static streamRequestSize (exhaustive) vs ODDS dynamic",
        "DDWRR prefers large windows, DDFCFS small ones; ODDS adapts at run time",
    );
    let windows = [1, 2, 4, 8, 16, 30, 50, 80];
    println!(
        "{:<8} {:>14} {:>14} {:>18}",
        "rate %", "best DDFCFS", "best DDWRR", "ODDS mean window"
    );
    for (rate, f, w, o) in cluster::fig11(&RATES[1..], &windows, s.base_tiles) {
        println!("{:<8.0} {f:>14} {w:>14} {o:>18.1}", rate * 100.0);
    }
}

fn fig12(s: &Scale, trace: Option<&str>) {
    header(
        "Fig. 12: ODDS dynamics on the heterogeneous base case (10% recalc)",
        "(a) near-full CPU utilization; (b) windows shrink at the high-res tail",
    );
    let recorder = if trace.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let r = cluster::fig12_traced(s.base_tiles, 20, recorder.clone());
    if let Some(path) = trace {
        let events = recorder.events();
        let text = if path.ends_with(".jsonl") {
            jsonl::to_jsonl(&events)
        } else {
            chrome::to_chrome_trace(&events)
        };
        match std::fs::write(path, text) {
            Ok(()) => println!("wrote {} trace events to {path}", events.len()),
            Err(e) => {
                eprintln!("failed to write trace to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("(a) utilization trace (fraction busy per 5% bucket):");
    for (dev, trace) in &r.util_traces {
        let cells: Vec<String> = trace
            .iter()
            .map(|&(_, u)| format!("{:3.0}", u * 100.0))
            .collect();
        println!("  {:<10} {}", dev.to_string(), cells.join(" "));
    }
    println!("(b) request-window trace (sampled):");
    for (dev, trace) in &r.request_traces {
        if trace.is_empty() {
            continue;
        }
        let n = trace.len();
        let step = (n / 20).max(1);
        let cells: Vec<String> = trace
            .iter()
            .step_by(step)
            .take(20)
            .map(|&(_, v)| format!("{v:3}"))
            .collect();
        println!("  {:<10} {}", dev.to_string(), cells.join(" "));
    }
    println!("request latency (p50/p95 across threads):");
    for kind in [
        anthill_hetsim::DeviceKind::Cpu,
        anthill_hetsim::DeviceKind::Gpu,
    ] {
        println!(
            "  {kind}: {} / {}",
            r.latency_quantile(kind, 0.5),
            r.latency_quantile(kind, 0.95)
        );
    }
    println!("speedup {:.2}", r.speedup());
}

fn fig13(s: &Scale) {
    header(
        "Fig. 13: scaling the homogeneous cluster (8% recalc, 267,420 tiles)",
        "DDWRR ~2x GPU-only; ODDS +15% over DDWRR; near-linear scaling",
    );
    scaling_rows(cluster::fig13(&[1, 2, 4, 7, 10, 14], s.scaling_tiles));
}

fn fig14(s: &Scale) {
    header(
        "Fig. 14: scaling the heterogeneous cluster (50% GPU-less nodes)",
        "ODDS ~2x DDWRR; 14 heterogeneous nodes far exceed 7 GPU-only machines",
    );
    scaling_rows(cluster::fig14(&[2, 4, 8, 10, 14], s.scaling_tiles));
}

fn mixed_gpus(s: &Scale) {
    header(
        "Extension: mixed GPU types (Section 6.2's remark)",
        "'on an environment with mixed GPU types, an optimal single value might not exist'",
    );
    println!(
        "{:<10} {:>14} {:>14} {:>12}",
        "streams", "8800GT (s)", "GTX280 (s)", "makespan"
    );
    for r in transfer::mixed_gpus(200_000, s.vi_len / 2, &[1, 4, 8, 16, 32, 64, 128]) {
        let label = if r.streams == 0 {
            "adaptive".to_string()
        } else {
            r.streams.to_string()
        };
        println!(
            "{label:<10} {:>14.2} {:>14.2} {:>12.2}",
            r.old_gpu_secs, r.new_gpu_secs, r.makespan_secs
        );
    }
}

fn concurrent_kernels(s: &Scale) {
    header(
        "Extension: concurrent kernels on one GPU (paper future work)",
        "'we intend to consider the concurrent execution of multiple tasks on the same GPU'",
    );
    println!("{:<8} {:>12}", "slots", "exec (s)");
    for r in transfer::concurrent_kernels(s.base_tiles as usize, &[1, 2, 4, 8, 16, 32]) {
        println!("{:<8} {:>12.2}", r.slots, r.exec_secs);
    }
}

fn fusion(s: &Scale) {
    header(
        "Ablation: fused vs unfused NBIA GPU filters",
        "'we also fused the GPU NBIA filters to avoid extra overhead due to unnecessary GPU/CPU data transfers'",
    );
    println!(
        "{:<8} {:>12} {:>12} {:>10}",
        "tile", "fused (s)", "unfused (s)", "overhead"
    );
    for r in transfer::ablate_fusion(&[32, 128, 512], s.fig6_tiles) {
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>9.1}%",
            format!("{0}x{0}", r.side),
            r.fused_secs,
            r.unfused_secs,
            100.0 * (r.unfused_secs / r.fused_secs - 1.0)
        );
    }
}

fn slow_node(s: &Scale) {
    header(
        "Extension: perturbed (slowed) CPU-only node, heterogeneous base case",
        "adaptivity claim beyond the paper: DQAA rebalances around a degraded machine",
    );
    println!("{:<10} {:>10} {:>10}", "speed", "DDWRR", "ODDS");
    for r in cluster::perturb_slow_node(&[1.0, 0.75, 0.5, 0.25], s.base_tiles) {
        println!("{:<10.2} {:>10.2} {:>10.2}", r.speed, r.ddwrr, r.odds);
    }
}

fn scaling_rows(rows: Vec<cluster::ScalingRow>) {
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "nodes", "GPU-only", "DDFCFS", "DDWRR", "ODDS"
    );
    for r in &rows {
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            r.nodes, r.gpu_only, r.ddfcfs, r.ddwrr, r.odds
        );
    }
    let xs = |f: &dyn Fn(&cluster::ScalingRow) -> f64| {
        rows.iter()
            .map(|r| (r.nodes as f64, f(r)))
            .collect::<Vec<_>>()
    };
    let series = vec![
        Series::new("GPU-only", xs(&|r| r.gpu_only)),
        Series::new("DDFCFS", xs(&|r| r.ddfcfs)),
        Series::new("DDWRR", xs(&|r| r.ddwrr)),
        Series::new("ODDS", xs(&|r| r.odds)),
    ];
    print!("{}", render(&series, ChartSpec::default()));
}
