//! Table 1 — evaluating the performance estimator: 10-fold cross-validated
//! speedup-prediction error vs direct CPU-time-prediction error over six
//! applications (30-job profiles, k = 2).

use anthill_apps::bench_suite::BenchApp;
use anthill_estimator::models::{
    cross_validate_model, ConstantSpeedup, LinearModel, PlainKnn, WeightedKnn,
};
use anthill_estimator::{cross_validate, sweep_k};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Application name.
    pub app: &'static str,
    /// Average speedup prediction error, percent.
    pub speedup_err: f64,
    /// Average CPU-time prediction error, percent.
    pub cpu_time_err: f64,
}

/// Reproduce Table 1: per-application estimator errors.
pub fn table1(seed: u64) -> Vec<Table1Row> {
    BenchApp::ALL
        .iter()
        .map(|&app| {
            let profile = app.generate_profile(seed, 30);
            let r = cross_validate(&profile, 2, 10);
            Table1Row {
                app: app.name(),
                speedup_err: r.speedup_mape,
                cpu_time_err: r.cpu_time_mape,
            }
        })
        .collect()
}

/// Mean speedup error across the six applications (the paper reports
/// 8.52%).
pub fn table1_mean_speedup_error(rows: &[Table1Row]) -> f64 {
    rows.iter().map(|r| r.speedup_err).sum::<f64>() / rows.len().max(1) as f64
}

/// Ablation: sweep the estimator's `k` (the paper settled on k = 2 as
/// near-best). Returns `(k, mean speedup error %)` pairs.
pub fn table1_sweep_k(seed: u64, ks: &[usize]) -> Vec<(usize, f64)> {
    ks.iter()
        .map(|&k| {
            let mean: f64 = BenchApp::ALL
                .iter()
                .map(|&app| {
                    let profile = app.generate_profile(seed, 30);
                    sweep_k(&profile, &[k], 10)[0].1.speedup_mape
                })
                .sum::<f64>()
                / BenchApp::ALL.len() as f64;
            (k, mean)
        })
        .collect()
}

/// One row of the model-zoo ablation: per-model mean errors across the
/// six applications.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Model name.
    pub model: &'static str,
    /// Mean speedup error across apps, percent.
    pub speedup_err: f64,
    /// Mean CPU-time error across apps, percent.
    pub cpu_time_err: f64,
}

/// Ablation (paper future work): compare the paper's plain kNN against
/// inverse-distance-weighted kNN, least-squares regression, and the
/// constant-speedup assumption of static partitioners like Mars.
pub fn sweep_models(seed: u64) -> Vec<ModelRow> {
    type Fit = Box<dyn Fn(&anthill_estimator::ProfileStore) -> (f64, f64)>;
    let fits: Vec<(&'static str, Fit)> = vec![
        (
            "kNN k=2 (paper)",
            Box::new(|p| {
                let r = cross_validate_model(p, 10, |tr| PlainKnn::fit(tr, 2));
                (r.speedup_mape, r.cpu_time_mape)
            }),
        ),
        (
            "weighted kNN k=3",
            Box::new(|p| {
                let r = cross_validate_model(p, 10, |tr| WeightedKnn::fit(tr, 3));
                (r.speedup_mape, r.cpu_time_mape)
            }),
        ),
        (
            "linear regression",
            Box::new(|p| {
                let r = cross_validate_model(p, 10, |tr| LinearModel::fit(&tr));
                (r.speedup_mape, r.cpu_time_mape)
            }),
        ),
        (
            "constant speedup",
            Box::new(|p| {
                let r = cross_validate_model(p, 10, |tr| ConstantSpeedup::fit(&tr));
                (r.speedup_mape, r.cpu_time_mape)
            }),
        ),
    ];
    fits.into_iter()
        .map(|(model, fit)| {
            let (mut sp, mut tm) = (0.0, 0.0);
            for app in BenchApp::ALL {
                let profile = app.generate_profile(seed, 30);
                let (s, t) = fit(&profile);
                sp += s;
                tm += t;
            }
            let n = BenchApp::ALL.len() as f64;
            ModelRow {
                model,
                speedup_err: sp / n,
                cpu_time_err: tm / n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_rows_with_the_papers_ordering() {
        let rows = table1(42);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.speedup_err < r.cpu_time_err,
                "{}: {} !< {}",
                r.app,
                r.speedup_err,
                r.cpu_time_err
            );
            assert!(r.speedup_err < 25.0, "{}: {}", r.app, r.speedup_err);
        }
        // Paper: mean 8.52%, worst < 14%. We assert the same bands loosely.
        let mean = table1_mean_speedup_error(&rows);
        assert!((4.0..14.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn model_zoo_shows_data_dependence_matters() {
        let rows = sweep_models(42);
        assert_eq!(rows.len(), 4);
        let knn = rows.iter().find(|r| r.model.contains("paper")).unwrap();
        let constant = rows.iter().find(|r| r.model.contains("constant")).unwrap();
        // Ignoring data dependence costs a lot of speedup accuracy —
        // the paper's core critique of fixed-speedup systems.
        assert!(
            constant.speedup_err > 2.0 * knn.speedup_err,
            "constant {:.1} vs kNN {:.1}",
            constant.speedup_err,
            knn.speedup_err
        );
    }

    #[test]
    fn k2_is_near_best() {
        let sweep = table1_sweep_k(42, &[1, 2, 4, 8]);
        let best = sweep.iter().map(|&(_, e)| e).fold(f64::INFINITY, f64::min);
        let at2 = sweep.iter().find(|(k, _)| *k == 2).unwrap().1;
        assert!(at2 <= best * 1.5, "k=2 err {at2} vs best {best}");
    }
}
