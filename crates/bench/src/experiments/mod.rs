//! One module per evaluation area of the paper; each public function
//! regenerates one table or figure and returns structured rows.

pub mod cluster;
pub mod estimator;
pub mod transfer;
