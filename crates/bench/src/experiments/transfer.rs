//! Section 6.2 — the CPU/GPU transfer experiments: Figure 6 (sync vs
//! async copy speedups by tile size), Figure 7 (VI execution time vs
//! number of CUDA streams), and Table 2 (adaptive vs best-static stream
//! count).

use anthill::transfer::pipeline;
use anthill_apps::vi::ViWorkload;
use anthill_hetsim::{GpuParams, NbiaCostModel};

/// One point of Figure 6: GPU-vs-one-CPU-core speedup for one tile size.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Tile side in pixels.
    pub side: u32,
    /// Speedup with synchronous copies.
    pub sync_speedup: f64,
    /// Speedup with asynchronous (overlapped) copies.
    pub async_speedup: f64,
    /// Fraction of the synchronous transfer overhead removed, percent.
    pub transfer_reduction_pct: f64,
}

/// Reproduce Figure 6: process `tiles` single-resolution tiles per size on
/// one GPU, sync vs async, speedups against one CPU core.
pub fn fig6(sides: &[u32], tiles: usize) -> Vec<Fig6Row> {
    let gpu = GpuParams::geforce_8800gt();
    let model = NbiaCostModel::paper_calibrated();
    sides
        .iter()
        .map(|&side| {
            let shape = model.tile(side);
            let tasks = vec![shape; tiles];
            let cpu_total = shape.cpu.as_secs_f64() * tiles as f64;
            let sync = pipeline::run_sync(&gpu, &tasks).makespan.as_secs_f64();
            let (asy, _) = pipeline::run_async_adaptive(&gpu, &tasks);
            let asy = asy.makespan.as_secs_f64();
            // Transfer overhead = time beyond pure kernel execution.
            let kernel_total = (gpu.kernel_launch + shape.gpu_kernel).as_secs_f64() * tiles as f64;
            let sync_overhead = (sync - kernel_total).max(0.0);
            let async_overhead = (asy - kernel_total).max(0.0);
            let reduction = if sync_overhead > 0.0 {
                100.0 * (1.0 - async_overhead / sync_overhead)
            } else {
                0.0
            };
            Fig6Row {
                side,
                sync_speedup: cpu_total / sync,
                async_speedup: cpu_total / asy,
                transfer_reduction_pct: reduction,
            }
        })
        .collect()
}

/// One point of Figure 7: VI execution time for a stream count.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Chunk size in elements.
    pub chunk: u64,
    /// Number of concurrent events / CUDA streams.
    pub streams: usize,
    /// Execution time in seconds.
    pub exec_secs: f64,
}

/// Reproduce Figure 7: VI execution time vs stream count, one series per
/// chunk size. `vector_len` lets tests shrink the paper's 360M elements.
pub fn fig7(chunks: &[u64], streams: &[usize], vector_len: u64) -> Vec<Fig7Row> {
    let gpu = GpuParams::geforce_8800gt();
    let mut out = Vec::new();
    for &chunk in chunks {
        let w = ViWorkload {
            vector_len,
            ..ViWorkload::paper(chunk)
        };
        let shapes = w.shapes();
        for &s in streams {
            let r = pipeline::run_async_static(&gpu, &shapes, s);
            out.push(Fig7Row {
                chunk,
                streams: s,
                exec_secs: r.makespan.as_secs_f64(),
            });
        }
    }
    out
}

/// One row of Table 2: best static stream count vs the dynamic algorithm.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Chunk size in elements.
    pub chunk: u64,
    /// Best execution time over all static stream counts, seconds.
    pub best_static_secs: f64,
    /// The stream count achieving it.
    pub best_static_streams: usize,
    /// Execution time of the proposed dynamic algorithm, seconds.
    pub dynamic_secs: f64,
}

/// Reproduce Table 2: exhaustive static sweep vs Algorithm 1.
pub fn table2(chunks: &[u64], static_sweep: &[usize], vector_len: u64) -> Vec<Table2Row> {
    let gpu = GpuParams::geforce_8800gt();
    chunks
        .iter()
        .map(|&chunk| {
            let w = ViWorkload {
                vector_len,
                ..ViWorkload::paper(chunk)
            };
            let shapes = w.shapes();
            let (mut best, mut best_s) = (f64::INFINITY, 0);
            for &s in static_sweep {
                let t = pipeline::run_async_static(&gpu, &shapes, s)
                    .makespan
                    .as_secs_f64();
                if t < best {
                    best = t;
                    best_s = s;
                }
            }
            let (dyn_run, _) = pipeline::run_async_adaptive(&gpu, &shapes);
            Table2Row {
                chunk,
                best_static_secs: best,
                best_static_streams: best_s,
                dynamic_secs: dyn_run.makespan.as_secs_f64(),
            }
        })
        .collect()
}

/// The stream counts swept for Figure 7 / Table 2.
pub const STREAM_SWEEP: [usize; 10] = [1, 2, 4, 8, 12, 16, 24, 32, 64, 128];

/// One row of the mixed-GPU experiment.
#[derive(Debug, Clone)]
pub struct MixedGpuRow {
    /// Static stream count (0 = per-GPU adaptive).
    pub streams: usize,
    /// Makespan on the 8800GT half of the work, seconds.
    pub old_gpu_secs: f64,
    /// Makespan on the newer GPU's half, seconds.
    pub new_gpu_secs: f64,
    /// Overall makespan (the slower of the two), seconds.
    pub makespan_secs: f64,
}

/// Section 6.2's remark made concrete: with mixed GPU types, no single
/// static stream count is optimal for both devices, while per-GPU
/// Algorithm 1 instances adapt independently. Splits the VI workload
/// evenly across an 8800GT and a GTX-280-class device and reports the
/// makespan per static count plus the adaptive configuration (streams =
/// 0 row).
pub fn mixed_gpus(chunk: u64, vector_len: u64, sweep: &[usize]) -> Vec<MixedGpuRow> {
    let old = GpuParams::geforce_8800gt();
    let new = GpuParams::gtx_280_class();
    let w = ViWorkload {
        vector_len,
        ..ViWorkload::paper(chunk)
    };
    let shapes = w.shapes();
    let half = shapes.len() / 2;
    let (a, b) = shapes.split_at(half);
    let mut rows: Vec<MixedGpuRow> = sweep
        .iter()
        .map(|&s| {
            let ta = pipeline::run_async_static(&old, a, s)
                .makespan
                .as_secs_f64();
            let tb = pipeline::run_async_static(&new, b, s)
                .makespan
                .as_secs_f64();
            MixedGpuRow {
                streams: s,
                old_gpu_secs: ta,
                new_gpu_secs: tb,
                makespan_secs: ta.max(tb),
            }
        })
        .collect();
    let (da, _) = pipeline::run_async_adaptive(&old, a);
    let (db, _) = pipeline::run_async_adaptive(&new, b);
    rows.push(MixedGpuRow {
        streams: 0,
        old_gpu_secs: da.makespan.as_secs_f64(),
        new_gpu_secs: db.makespan.as_secs_f64(),
        makespan_secs: da.makespan.as_secs_f64().max(db.makespan.as_secs_f64()),
    });
    rows
}

/// One row of the filter-fusion ablation.
#[derive(Debug, Clone)]
pub struct FusionRow {
    /// Tile side in pixels.
    pub side: u32,
    /// GPU makespan with the fused filter, seconds.
    pub fused_secs: f64,
    /// GPU makespan with separate color/feature filters, seconds.
    pub unfused_secs: f64,
}

/// Ablation of the paper's setup note: "we also fused the GPU NBIA
/// filters to avoid extra overhead due to unnecessary GPU/CPU data
/// transfers". Streams `tiles` tiles per size through one GPU, fused
/// (one kernel, one round trip) vs unfused (two kernels, the La*b*
/// intermediate crossing the bus twice).
pub fn ablate_fusion(sides: &[u32], tiles: usize) -> Vec<FusionRow> {
    let gpu = GpuParams::geforce_8800gt();
    let model = NbiaCostModel::paper_calibrated();
    sides
        .iter()
        .map(|&side| {
            let fused_tasks = vec![model.tile(side); tiles];
            let (fused, _) = pipeline::run_async_adaptive(&gpu, &fused_tasks);
            let [a, b] = model.unfused_tile(side);
            let mut unfused_tasks = Vec::with_capacity(tiles * 2);
            for _ in 0..tiles {
                unfused_tasks.push(a);
                unfused_tasks.push(b);
            }
            let (unfused, _) = pipeline::run_async_adaptive(&gpu, &unfused_tasks);
            FusionRow {
                side,
                fused_secs: fused.makespan.as_secs_f64(),
                unfused_secs: unfused.makespan.as_secs_f64(),
            }
        })
        .collect()
}

/// One row of the concurrent-kernel ablation (the paper's future work).
#[derive(Debug, Clone)]
pub struct ConcurrentRow {
    /// Number of co-resident kernel slots.
    pub slots: usize,
    /// Makespan over the small-tile stream, seconds.
    pub exec_secs: f64,
}

/// Future-work ablation: concurrent kernel execution for fine-grained
/// tasks. Streams `tiles` 32×32 NBIA tiles through one GPU with 1..=max
/// kernel slots (32² tiles occupy ~0.4% of the device, so co-residency
/// pays until the copy engines bind).
pub fn concurrent_kernels(tiles: usize, slot_sweep: &[usize]) -> Vec<ConcurrentRow> {
    use anthill_hetsim::concurrent::ConcurrentGpu;
    let params = GpuParams::geforce_8800gt();
    let tasks = vec![NbiaCostModel::paper_calibrated().tile(32); tiles];
    slot_sweep
        .iter()
        .map(|&slots| {
            let mut gpu = ConcurrentGpu::new(params.clone(), slots);
            let batch = (slots * 4).max(16);
            ConcurrentRow {
                slots,
                exec_secs: gpu.run_stream(&tasks, batch).as_secs_f64(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_matches_the_paper() {
        let rows = fig6(&[32, 64, 128, 256, 512], 300);
        // Speedup grows monotonically with tile size, ~1 at 32², ~33 at 512².
        for w in rows.windows(2) {
            assert!(w[1].sync_speedup > w[0].sync_speedup);
        }
        assert!((0.8..1.5).contains(&rows[0].sync_speedup), "{:?}", rows[0]);
        assert!(
            (28.0..38.0).contains(&rows[4].sync_speedup),
            "{:?}",
            rows[4]
        );
        // Async improves every size, strongly at 512² (paper: 83% of the
        // transfer overhead removed, ~20% app gain).
        for r in &rows {
            assert!(r.async_speedup >= r.sync_speedup * 0.99, "{r:?}");
        }
        let big = &rows[4];
        assert!(big.async_speedup > 1.10 * big.sync_speedup, "512²: {big:?}");
        assert!(big.transfer_reduction_pct > 50.0, "512²: {big:?}");
    }

    #[test]
    fn fig7_dips_then_rises() {
        // Small chunks: enough tasks that a 256-stream batch actually has
        // 256 active streams, exposing the over-subscription penalty.
        let rows = fig7(&[100_000], &[1, 8, 32, 256], 36_000_000);
        let t: Vec<f64> = rows.iter().map(|r| r.exec_secs).collect();
        assert!(t[1] < t[0] && t[2] < t[1], "{t:?}");
        assert!(t[3] > t[2], "{t:?}");
    }

    #[test]
    fn mixed_gpus_have_no_shared_optimum() {
        let rows = mixed_gpus(200_000, 20_000_000, &[1, 4, 8, 16, 32, 64]);
        let best_old = rows
            .iter()
            .filter(|r| r.streams > 0)
            .min_by(|a, b| a.old_gpu_secs.partial_cmp(&b.old_gpu_secs).unwrap())
            .unwrap()
            .streams;
        let best_new = rows
            .iter()
            .filter(|r| r.streams > 0)
            .min_by(|a, b| a.new_gpu_secs.partial_cmp(&b.new_gpu_secs).unwrap())
            .unwrap()
            .streams;
        assert_ne!(
            best_old, best_new,
            "the two devices should want different counts"
        );
        // The adaptive row is within a few percent of the best static makespan.
        let adaptive = rows.iter().find(|r| r.streams == 0).unwrap();
        let best_static = rows
            .iter()
            .filter(|r| r.streams > 0)
            .map(|r| r.makespan_secs)
            .fold(f64::INFINITY, f64::min);
        assert!(adaptive.makespan_secs < 1.08 * best_static);
    }

    #[test]
    fn fusion_saves_transfer_overhead() {
        let rows = ablate_fusion(&[512], 200);
        let r = &rows[0];
        assert!(
            r.unfused_secs > 1.1 * r.fused_secs,
            "unfused {:.2}s !>> fused {:.2}s",
            r.unfused_secs,
            r.fused_secs
        );
    }

    #[test]
    fn concurrent_kernels_help_small_tiles() {
        let rows = concurrent_kernels(2_000, &[1, 4, 16]);
        assert!(rows[1].exec_secs < 0.5 * rows[0].exec_secs, "{rows:?}");
        assert!(rows[2].exec_secs < rows[1].exec_secs, "{rows:?}");
    }

    #[test]
    fn table2_dynamic_close_to_best_static() {
        let rows = table2(&[100_000, 1_000_000], &STREAM_SWEEP, 36_000_000);
        for r in &rows {
            let ratio = r.dynamic_secs / r.best_static_secs;
            assert!(ratio < 1.06, "chunk {}: ratio {ratio}", r.chunk);
            assert!(r.best_static_streams >= 4, "{r:?}");
        }
    }
}
