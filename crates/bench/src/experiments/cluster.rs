//! Sections 6.3–6.4 — the cluster experiments: intra-filter policies
//! (Figure 8, Tables 3–4), the stream policies on the homogeneous and
//! heterogeneous base cases (Figures 9–12, Table 6), and scaling
//! (Figures 13–14). All run on the virtual-time cluster executor.

use anthill::policy::Policy;
use anthill::sim::{run_nbia, SimConfig, SimReport, WorkloadSpec};
use anthill_hetsim::{ClusterSpec, DeviceKind, NodeSpec};
use anthill_simkit::SimTime;

/// Static request window used for DDFCFS when not swept (a small window
/// minimizes its load imbalance, per Figure 11's discussion).
pub const DDFCFS_WINDOW: usize = 8;
/// Static request window used for DDWRR when not swept (a large window
/// creates intra-filter scheduling opportunity, per Figure 11).
pub const DDWRR_WINDOW: usize = 30;

fn config(cluster: ClusterSpec, policy: Policy) -> SimConfig {
    SimConfig::new(cluster, policy)
}

/// Run one configuration of the NBIA workload.
pub fn run(
    cluster: ClusterSpec,
    policy: Policy,
    gpu_only: bool,
    async_transfers: bool,
    workload: &WorkloadSpec,
) -> SimReport {
    let mut c = config(cluster, policy);
    c.gpu_only = gpu_only;
    c.async_transfers = async_transfers;
    run_nbia(&c, workload)
}

/// Table 3: CPU-only execution time (one core) vs recalculation rate.
pub fn table3(rates: &[f64], tiles: u64) -> Vec<(f64, f64)> {
    rates
        .iter()
        .map(|&rate| {
            let w = WorkloadSpec {
                tiles,
                ..WorkloadSpec::paper_base(rate)
            };
            let cluster = ClusterSpec::new(vec![NodeSpec {
                cpu_cores: 1,
                gpus: 0,
            }]);
            let r = run(cluster, Policy::ddfcfs(DDFCFS_WINDOW), false, false, &w);
            (rate, r.makespan.as_secs_f64())
        })
        .collect()
}

/// One point of Figure 8: the intra-filter policies on one CPU+GPU node.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Tile recalculation rate.
    pub rate: f64,
    /// GPU-only speedup.
    pub gpu_only: f64,
    /// CPU+GPU speedup under DDFCFS.
    pub ddfcfs: f64,
    /// CPU+GPU speedup under DDWRR.
    pub ddwrr: f64,
}

/// Reproduce Figure 8 (synchronous copies, as in Section 6.3).
pub fn fig8(rates: &[f64], tiles: u64) -> Vec<Fig8Row> {
    rates
        .iter()
        .map(|&rate| {
            let w = WorkloadSpec {
                tiles,
                ..WorkloadSpec::paper_base(rate)
            };
            let one = || ClusterSpec::homogeneous(1);
            Fig8Row {
                rate,
                gpu_only: run(one(), Policy::ddfcfs(DDFCFS_WINDOW), true, false, &w).speedup(),
                ddfcfs: run(one(), Policy::ddfcfs(DDFCFS_WINDOW), false, false, &w).speedup(),
                ddwrr: run(one(), Policy::ddwrr(DDWRR_WINDOW), false, false, &w).speedup(),
            }
        })
        .collect()
}

/// Table 4: percent of tiles of each resolution processed by the CPU at a
/// 16% recalculation rate, per policy. Returns `(policy name, low%, high%)`.
pub fn table4(tiles: u64) -> Vec<(&'static str, f64, f64)> {
    let w = WorkloadSpec {
        tiles,
        ..WorkloadSpec::paper_base(0.16)
    };
    [
        ("DDFCFS", Policy::ddfcfs(DDFCFS_WINDOW)),
        ("DDWRR", Policy::ddwrr(DDWRR_WINDOW)),
    ]
    .into_iter()
    .map(|(name, policy)| {
        let r = run(ClusterSpec::homogeneous(1), policy, false, false, &w);
        (
            name,
            r.share_pct(DeviceKind::Cpu, 0),
            r.share_pct(DeviceKind::Cpu, 1),
        )
    })
    .collect()
}

/// One point of Figures 9/10: the stream policies on a base-case cluster.
#[derive(Debug, Clone)]
pub struct StreamPolicyRow {
    /// Tile recalculation rate.
    pub rate: f64,
    /// Speedup under DDFCFS.
    pub ddfcfs: f64,
    /// Speedup under DDWRR.
    pub ddwrr: f64,
    /// Speedup under ODDS (with asynchronous transfers).
    pub odds: f64,
}

fn stream_policy_rows(
    cluster: impl Fn() -> ClusterSpec,
    rates: &[f64],
    tiles: u64,
) -> Vec<StreamPolicyRow> {
    rates
        .iter()
        .map(|&rate| {
            let w = WorkloadSpec {
                tiles,
                ..WorkloadSpec::paper_base(rate)
            };
            StreamPolicyRow {
                rate,
                ddfcfs: run(cluster(), Policy::ddfcfs(DDFCFS_WINDOW), false, true, &w).speedup(),
                ddwrr: run(cluster(), Policy::ddwrr(DDWRR_WINDOW), false, true, &w).speedup(),
                odds: run(cluster(), Policy::odds(), false, true, &w).speedup(),
            }
        })
        .collect()
}

/// Figure 9: the homogeneous base case (one CPU+GPU node), asynchronous
/// copies, recalculation rate swept.
pub fn fig9(rates: &[f64], tiles: u64) -> Vec<StreamPolicyRow> {
    stream_policy_rows(|| ClusterSpec::homogeneous(1), rates, tiles)
}

/// Figure 10: the heterogeneous base case (one CPU+GPU node plus one
/// dual-core CPU-only node).
pub fn fig10(rates: &[f64], tiles: u64) -> Vec<StreamPolicyRow> {
    stream_policy_rows(|| ClusterSpec::heterogeneous(1, 1), rates, tiles)
}

/// Table 6: percent of tiles processed by the GPU per resolution, for each
/// stream policy on each base case. Returns
/// `(config, policy, gpu low%, gpu high%)`.
pub fn table6(tiles: u64) -> Vec<(&'static str, &'static str, f64, f64)> {
    let w = WorkloadSpec {
        tiles,
        ..WorkloadSpec::paper_base(0.08)
    };
    let mut out = Vec::new();
    for (cname, cluster) in [
        ("Homogeneous", ClusterSpec::homogeneous(1)),
        ("Heterogeneous", ClusterSpec::heterogeneous(1, 1)),
    ] {
        for (pname, policy) in [
            ("DDFCFS", Policy::ddfcfs(DDFCFS_WINDOW)),
            ("DDWRR", Policy::ddwrr(DDWRR_WINDOW)),
            ("ODDS", Policy::odds()),
        ] {
            let r = run(cluster.clone(), policy, false, true, &w);
            out.push((
                cname,
                pname,
                r.share_pct(DeviceKind::Gpu, 0),
                r.share_pct(DeviceKind::Gpu, 1),
            ));
        }
    }
    out
}

/// Figure 11: for each static policy and recalculation rate, the request
/// window that minimizes execution time (exhaustive search), plus ODDS's
/// run-mean adapted window for reference. Returns
/// `(rate, best DDFCFS window, best DDWRR window, ODDS mean window)`.
pub fn fig11(rates: &[f64], windows: &[usize], tiles: u64) -> Vec<(f64, usize, usize, f64)> {
    rates
        .iter()
        .map(|&rate| {
            let w = WorkloadSpec {
                tiles,
                ..WorkloadSpec::paper_base(rate)
            };
            let best = |mk: &dyn Fn(usize) -> Policy| {
                windows
                    .iter()
                    .map(|&win| {
                        let r = run(ClusterSpec::heterogeneous(1, 1), mk(win), false, true, &w);
                        (r.makespan, win)
                    })
                    .min_by_key(|&(t, _)| t)
                    .map(|(_, win)| win)
                    .expect("non-empty window sweep")
            };
            let fcfs = best(&Policy::ddfcfs);
            let wrr = best(&Policy::ddwrr);
            let odds = run(
                ClusterSpec::heterogeneous(1, 1),
                Policy::odds(),
                false,
                true,
                &w,
            );
            // The paper's streamRequestSize counts buffers requested plus
            // received *per filter instance*: sum the per-thread window
            // means within each node, then average over nodes.
            let mean_window = {
                let mut per_node: std::collections::HashMap<usize, f64> =
                    std::collections::HashMap::new();
                for (dev, t) in &odds.request_traces {
                    if t.is_empty() {
                        continue;
                    }
                    let m = t.iter().map(|&(_, v)| v as f64).sum::<f64>() / t.len() as f64;
                    *per_node.entry(dev.node).or_insert(0.0) += m;
                }
                if per_node.is_empty() {
                    0.0
                } else {
                    per_node.values().sum::<f64>() / per_node.len() as f64
                }
            };
            (rate, fcfs, wrr, mean_window)
        })
        .collect()
}

/// Figure 12 data: (a) per-device utilization traces and (b) request-window
/// traces of one ODDS run on the heterogeneous base case at 10% recalc.
pub fn fig12(tiles: u64, buckets: usize) -> SimReport {
    fig12_traced(tiles, buckets, anthill::obs::Recorder::disabled())
}

/// [`fig12`] with an observability sink: the run's structured event trace
/// and metrics land in `recorder` (see `anthill::obs`).
pub fn fig12_traced(tiles: u64, buckets: usize, recorder: anthill::obs::Recorder) -> SimReport {
    let w = WorkloadSpec {
        tiles,
        ..WorkloadSpec::paper_base(0.10)
    };
    let mut c = config(ClusterSpec::heterogeneous(1, 1), Policy::odds());
    c.trace_buckets = buckets;
    c.recorder = recorder;
    run_nbia(&c, &w)
}

/// One point of Figures 13/14: scaling a cluster configuration.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Number of nodes.
    pub nodes: usize,
    /// GPU-only speedup.
    pub gpu_only: f64,
    /// DDFCFS speedup.
    pub ddfcfs: f64,
    /// DDWRR speedup.
    pub ddwrr: f64,
    /// ODDS speedup.
    pub odds: f64,
}

fn scaling(
    mk: impl Fn(usize) -> ClusterSpec,
    sizes: &[usize],
    tiles: u64,
    rate: f64,
) -> Vec<ScalingRow> {
    sizes
        .iter()
        .map(|&n| {
            let w = WorkloadSpec {
                tiles,
                ..WorkloadSpec::paper_base(rate)
            };
            ScalingRow {
                nodes: n,
                gpu_only: run(mk(n), Policy::ddfcfs(DDFCFS_WINDOW), true, true, &w).speedup(),
                ddfcfs: run(mk(n), Policy::ddfcfs(DDFCFS_WINDOW), false, true, &w).speedup(),
                ddwrr: run(mk(n), Policy::ddwrr(DDWRR_WINDOW), false, true, &w).speedup(),
                odds: run(mk(n), Policy::odds(), false, true, &w).speedup(),
            }
        })
        .collect()
}

/// Figure 13: scaling the homogeneous cluster (every node CPU+GPU),
/// 8% recalculation, the paper's large workload by default.
pub fn fig13(sizes: &[usize], tiles: u64) -> Vec<ScalingRow> {
    scaling(ClusterSpec::homogeneous, sizes, tiles, 0.08)
}

/// Figure 14: scaling the heterogeneous cluster (half the nodes GPU-less).
pub fn fig14(sizes: &[usize], tiles: u64) -> Vec<ScalingRow> {
    scaling(
        |n| ClusterSpec::heterogeneous(n / 2, n - n / 2),
        sizes,
        tiles,
        0.08,
    )
}

/// One row of the slow-node perturbation extension.
#[derive(Debug, Clone)]
pub struct PerturbRow {
    /// Speed factor of the perturbed CPU-only node (1.0 = healthy).
    pub speed: f64,
    /// DDWRR speedup.
    pub ddwrr: f64,
    /// ODDS speedup.
    pub odds: f64,
}

/// Extension: heterogeneity beyond GPU presence. One of the CPU-only
/// node's cores runs at a reduced speed (an aged or contended machine);
/// DQAA's latency/processing feedback lets ODDS rebalance automatically,
/// while DDWRR's static windows keep over-committing the slow node.
pub fn perturb_slow_node(speeds: &[f64], tiles: u64) -> Vec<PerturbRow> {
    let w = WorkloadSpec {
        tiles,
        ..WorkloadSpec::paper_base(0.08)
    };
    speeds
        .iter()
        .map(|&speed| {
            let mk = |policy| {
                let mut c = config(ClusterSpec::heterogeneous(1, 1), policy);
                c.cpu_speed = vec![1.0, speed]; // node 1 = the CPU-only node
                run_nbia(&c, &w).speedup()
            };
            PerturbRow {
                speed,
                ddwrr: mk(Policy::ddwrr(DDWRR_WINDOW)),
                odds: mk(Policy::odds()),
            }
        })
        .collect()
}

/// Helper: end time of a report's utilization traces (for plotting).
pub fn trace_horizon(report: &SimReport) -> SimTime {
    report
        .util_traces
        .iter()
        .flat_map(|(_, t)| t.last().map(|&(at, _)| at))
        .max()
        .unwrap_or(SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u64 = 2_000; // reduced tile count for unit tests

    #[test]
    fn table3_grows_linearly_with_rate() {
        let rows = table3(&[0.0, 0.08, 0.16], T);
        assert!(rows[1].1 > 5.0 * rows[0].1);
        let slope1 = rows[1].1 - rows[0].1;
        let slope2 = rows[2].1 - rows[1].1;
        assert!((slope2 / slope1 - 1.0).abs() < 0.15, "{rows:?}");
    }

    #[test]
    fn fig8_ddwrr_roughly_doubles_gpu_only() {
        let rows = fig8(&[0.16], T);
        let r = &rows[0];
        assert!(r.ddwrr > 1.5 * r.gpu_only, "{r:?}");
        assert!(r.ddfcfs < 1.4 * r.gpu_only, "{r:?}");
    }

    #[test]
    fn table4_policies_differ_as_in_the_paper() {
        let rows = table4(T);
        let (_, fcfs_low, _fcfs_high) = rows[0];
        let (_, wrr_low, wrr_high) = rows[1];
        assert!(wrr_low > 60.0, "DDWRR CPU low share {wrr_low}");
        assert!(wrr_high < 5.0, "DDWRR CPU high share {wrr_high}");
        assert!(fcfs_low < wrr_low, "{rows:?}");
    }

    #[test]
    fn fig10_odds_dominates_heterogeneous() {
        // At this reduced scale DDWRR's static windows misplace a visible
        // fraction of the few high-res tiles (an end-game imbalance the
        // paper also discusses); the stable property is ODDS's dominance.
        let rows = fig10(&[0.08], T);
        let r = &rows[0];
        assert!(r.odds > 1.3 * r.ddwrr, "{r:?}");
        assert!(r.odds > 1.3 * r.ddfcfs, "{r:?}");
    }

    #[test]
    fn odds_degrades_more_gracefully_on_a_slow_node() {
        let rows = perturb_slow_node(&[1.0, 0.25], T);
        let odds_loss = rows[0].odds / rows[1].odds;
        let ddwrr_loss = rows[0].ddwrr / rows[1].ddwrr;
        // Both lose capacity, but ODDS must keep a clear advantage at the
        // perturbed point and lose no more (proportionally) than DDWRR.
        assert!(rows[1].odds > rows[1].ddwrr, "{rows:?}");
        assert!(odds_loss < ddwrr_loss * 1.25, "{rows:?}");
    }

    #[test]
    fn fig12_produces_traces() {
        let r = fig12(T, 25);
        assert!(!r.util_traces.is_empty());
        assert!(r
            .request_traces
            .iter()
            .any(|(_, t)| t.iter().any(|&(_, v)| v > 1)));
        assert!(trace_horizon(&r) > SimTime::ZERO);
    }

    #[test]
    fn fig13_scales_with_nodes() {
        let rows = fig13(&[1, 2, 4], T * 4);
        assert!(rows[1].odds > 1.4 * rows[0].odds, "{rows:?}");
        assert!(rows[2].odds > 1.3 * rows[1].odds, "{rows:?}");
        for r in &rows {
            assert!(r.odds >= r.ddfcfs * 0.95, "{r:?}");
        }
    }
}
