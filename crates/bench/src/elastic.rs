//! `BENCH_elastic.json`: the elastic-membership CI gate's report schema
//! (DESIGN.md §14).
//!
//! The `repro elastic` gate runs two scenarios and renders one document:
//!
//! * **rolling** — the rolling-restart acceptance run: every initial
//!   worker of a live TCP run is drained exactly once while replacements
//!   join mid-run through the `Join`/`JoinAck` handshake. The row records
//!   the membership churn (joins, drains, trace event counts) next to the
//!   conservation evidence (tasks, completed, deaths) and the share of
//!   post-join work the joiners absorbed.
//! * **autoscale** — an open-loop saturating schedule with the
//!   [`Autoscaler`](anthill::membership::Autoscaler) wired to a worker
//!   pool: admission counters plus the scale activity.
//!
//! [`validate_elastic_report`] is the schema gate CI runs against the
//! written file: structural presence, admission-counter conservation,
//! and the membership invariants that must hold for *any* passing run
//! (joins mirrored in the trace, drains paired with graceful leaves,
//! zero deaths on the rolling restart).

use anthill::obs::json;

/// The rolling-restart scenario's row.
#[derive(Debug, Clone)]
pub struct RollingRow {
    /// Buffers offered to the run.
    pub tasks: u64,
    /// Buffers completed (must equal `tasks`).
    pub completed: u64,
    /// Worker deaths (must be zero — drains are graceful).
    pub deaths: u64,
    /// Workers admitted mid-run via the `Join` handshake.
    pub joins: u64,
    /// Workers that completed a graceful drain.
    pub drains: u64,
    /// `worker_joined` events in the trace.
    pub joined_events: u64,
    /// `worker_draining` events in the trace.
    pub draining_events: u64,
    /// `worker_left` events in the trace.
    pub left_events: u64,
    /// Fraction of post-join completions executed by joiner slots.
    pub joiner_share: f64,
    /// Wall-clock duration in milliseconds.
    pub wall_ms: f64,
}

/// The autoscaled open-loop scenario's row.
#[derive(Debug, Clone)]
pub struct AutoscaleRow {
    /// Arrivals offered to the schedule.
    pub tasks: u64,
    /// Arrivals generated (admission counter).
    pub generated: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Arrivals shed at the intake.
    pub shed: u64,
    /// Arrivals dropped past their deadline.
    pub deadline_dropped: u64,
    /// Admitted tasks that completed.
    pub completed: u64,
    /// Workers admitted by the autoscaler.
    pub scale_ups: u64,
    /// Graceful drains initiated by the autoscaler.
    pub scale_downs: u64,
    /// Assignable workers at the start of the run.
    pub initial_workers: u64,
    /// Pool bound the autoscaler may grow to.
    pub max_workers: u64,
    /// Wall-clock duration in milliseconds.
    pub wall_ms: f64,
}

/// Render the two scenario rows as the `BENCH_elastic.json` document.
/// The output satisfies [`validate_elastic_report`] whenever the rows
/// record a passing run.
pub fn render_elastic_report(
    rolling: &RollingRow,
    autoscale: &AutoscaleRow,
    quick: bool,
    seed: u64,
) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"seed\": {seed},\n",
            "  \"quick\": {quick},\n",
            "  \"rolling\": {{\n",
            "    \"tasks\": {rt}, \"completed\": {rc}, \"deaths\": {rd},\n",
            "    \"joins\": {rj}, \"drains\": {rdr},\n",
            "    \"joined_events\": {je}, \"draining_events\": {de}, ",
            "\"left_events\": {le},\n",
            "    \"joiner_share\": {share:.4}, \"wall_ms\": {rw:.2}\n",
            "  }},\n",
            "  \"autoscale\": {{\n",
            "    \"tasks\": {at}, \"generated\": {ag}, \"admitted\": {aa}, ",
            "\"shed\": {ash}, \"deadline_dropped\": {add}, \"completed\": {ac},\n",
            "    \"scale_ups\": {su}, \"scale_downs\": {sd}, ",
            "\"initial_workers\": {iw}, \"max_workers\": {mw},\n",
            "    \"wall_ms\": {aw:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        seed = seed,
        quick = quick,
        rt = rolling.tasks,
        rc = rolling.completed,
        rd = rolling.deaths,
        rj = rolling.joins,
        rdr = rolling.drains,
        je = rolling.joined_events,
        de = rolling.draining_events,
        le = rolling.left_events,
        share = rolling.joiner_share,
        rw = rolling.wall_ms,
        at = autoscale.tasks,
        ag = autoscale.generated,
        aa = autoscale.admitted,
        ash = autoscale.shed,
        add = autoscale.deadline_dropped,
        ac = autoscale.completed,
        su = autoscale.scale_ups,
        sd = autoscale.scale_downs,
        iw = autoscale.initial_workers,
        mw = autoscale.max_workers,
        aw = autoscale.wall_ms,
    )
}

fn require_u64(obj: &json::Value, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("missing numeric '{key}'"))
}

/// Schema-validate a `BENCH_elastic.json` document: both scenario
/// objects present with their numeric fields, rolling-restart
/// conservation (`completed == tasks`, zero deaths, every join/drain
/// mirrored by its trace event family), and autoscale admission
/// conservation (`admitted + shed + deadline_dropped == generated`,
/// completions bounded by admissions, at least one scale-up recorded —
/// the gate exists to prove elasticity engaged).
pub fn validate_elastic_report(text: &str) -> Result<(), String> {
    let v = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    v.get("seed")
        .and_then(|s| s.as_u64())
        .ok_or("missing numeric 'seed'")?;

    let rolling = v.get("rolling").ok_or("missing 'rolling' object")?;
    let ctx = |e: String| format!("rolling: {e}");
    let tasks = require_u64(rolling, "tasks").map_err(ctx)?;
    let completed = require_u64(rolling, "completed").map_err(ctx)?;
    let deaths = require_u64(rolling, "deaths").map_err(ctx)?;
    let joins = require_u64(rolling, "joins").map_err(ctx)?;
    let drains = require_u64(rolling, "drains").map_err(ctx)?;
    let joined = require_u64(rolling, "joined_events").map_err(ctx)?;
    let draining = require_u64(rolling, "draining_events").map_err(ctx)?;
    let left = require_u64(rolling, "left_events").map_err(ctx)?;
    if completed != tasks {
        return Err(format!("rolling: lost work ({completed} of {tasks} done)"));
    }
    if deaths != 0 {
        return Err(format!(
            "rolling: {deaths} death(s) — drains must be graceful"
        ));
    }
    if joined != joins {
        return Err(format!(
            "rolling: {joins} join(s) but {joined} worker_joined event(s)"
        ));
    }
    if draining != drains || left != drains {
        return Err(format!(
            "rolling: {drains} drain(s) but {draining} worker_draining / {left} worker_left event(s)"
        ));
    }
    rolling
        .get("joiner_share")
        .and_then(|s| s.as_f64())
        .filter(|s| (0.0..=1.0).contains(s))
        .ok_or("rolling: 'joiner_share' missing or outside [0, 1]")?;

    let auto = v.get("autoscale").ok_or("missing 'autoscale' object")?;
    let ctx = |e: String| format!("autoscale: {e}");
    let generated = require_u64(auto, "generated").map_err(ctx)?;
    let admitted = require_u64(auto, "admitted").map_err(ctx)?;
    let shed = require_u64(auto, "shed").map_err(ctx)?;
    let dropped = require_u64(auto, "deadline_dropped").map_err(ctx)?;
    let completed = require_u64(auto, "completed").map_err(ctx)?;
    let ups = require_u64(auto, "scale_ups").map_err(ctx)?;
    require_u64(auto, "scale_downs").map_err(ctx)?;
    if admitted + shed + dropped != generated {
        return Err(format!(
            "autoscale: conservation broken: {admitted} + {shed} + {dropped} != {generated}"
        ));
    }
    if completed > admitted {
        return Err(format!(
            "autoscale: completed {completed} > admitted {admitted}"
        ));
    }
    if ups == 0 {
        return Err("autoscale: the saturating schedule triggered no scale-up".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> (RollingRow, AutoscaleRow) {
        (
            RollingRow {
                tasks: 400,
                completed: 400,
                deaths: 0,
                joins: 2,
                drains: 2,
                joined_events: 2,
                draining_events: 2,
                left_events: 2,
                joiner_share: 0.41,
                wall_ms: 120.5,
            },
            AutoscaleRow {
                tasks: 3_000,
                generated: 3_000,
                admitted: 2_900,
                shed: 100,
                deadline_dropped: 0,
                completed: 2_900,
                scale_ups: 3,
                scale_downs: 1,
                initial_workers: 1,
                max_workers: 4,
                wall_ms: 800.0,
            },
        )
    }

    #[test]
    fn report_renders_and_validates() {
        let (rolling, auto) = rows();
        let text = render_elastic_report(&rolling, &auto, true, 42);
        validate_elastic_report(&text).expect("schema-valid report");
    }

    #[test]
    fn validation_rejects_lost_work_and_unmirrored_churn() {
        let (rolling, auto) = rows();
        let good = render_elastic_report(&rolling, &auto, true, 42);

        let lost = good.replace("\"completed\": 400", "\"completed\": 399");
        assert!(validate_elastic_report(&lost).is_err(), "loss gate");

        let died = good.replace("\"deaths\": 0", "\"deaths\": 1");
        assert!(validate_elastic_report(&died).is_err(), "death gate");

        let silent = good.replace("\"joined_events\": 2", "\"joined_events\": 1");
        assert!(validate_elastic_report(&silent).is_err(), "trace-trio gate");

        let leaky = good.replace("\"admitted\": 2900", "\"admitted\": 2800");
        assert!(
            validate_elastic_report(&leaky).is_err(),
            "conservation gate"
        );

        let inert = good.replace("\"scale_ups\": 3", "\"scale_ups\": 0");
        assert!(validate_elastic_report(&inert).is_err(), "elasticity gate");
    }
}
