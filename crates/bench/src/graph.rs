//! The `BENCH_graph.json` schema: rows describing multi-filter dataflow
//! runs (one per `(app, backend)` pair of the `repro graph` gate) and the
//! render/validate pair CI uses to keep the document well-formed.
//!
//! A row records the topology (filter and edge counts), the per-edge
//! delivery tallies, and the gate's parity verdict — whether the run's
//! results matched its reference (the fused single-filter NBIA run, the
//! direct Black-Scholes batch, or the sequential reference driver's
//! assignment and dispatch order).

use anthill::obs::json;

/// One graph run of the gate, ready to render into `BENCH_graph.json`.
#[derive(Debug, Clone)]
pub struct GraphRunRow {
    /// Application name (`nbia` or `pricing`).
    pub app: String,
    /// Topology name (`pipeline3`, `diamond`).
    pub topology: String,
    /// Executing backend: `native` or `net`.
    pub backend: String,
    /// Scheduling policy name.
    pub policy: String,
    /// Filters in the graph.
    pub filters: u64,
    /// Completions across all filters (each task counts once per filter
    /// it crosses).
    pub tasks: u64,
    /// Buffers that left the graph at a sink.
    pub outputs: u64,
    /// Buffers delivered per edge, indexed by edge id.
    pub edges: Vec<u64>,
    /// Whether the run's results matched its reference exactly.
    pub parity: bool,
    /// Events in the run's merged trace.
    pub trace_events: u64,
    /// Wall-clock duration in milliseconds.
    pub wall_ms: f64,
}

/// Render gate rows as the `BENCH_graph.json` document. The output
/// satisfies [`validate_graph_report`] whenever every row's parity flag
/// is set and its accounting is conserved.
pub fn render_graph_report(rows: &[GraphRunRow], quick: bool) -> String {
    let runs: Vec<String> = rows
        .iter()
        .map(|r| {
            let edges: Vec<String> = r.edges.iter().map(u64::to_string).collect();
            format!(
                concat!(
                    "    {{\n",
                    "      \"app\": \"{}\", \"topology\": \"{}\", ",
                    "\"backend\": \"{}\", \"policy\": \"{}\",\n",
                    "      \"filters\": {}, \"tasks\": {}, \"outputs\": {},\n",
                    "      \"edges\": [{}],\n",
                    "      \"parity\": {}, \"trace_events\": {}, \"wall_ms\": {:.2}\n",
                    "    }}"
                ),
                r.app,
                r.topology,
                r.backend,
                r.policy,
                r.filters,
                r.tasks,
                r.outputs,
                edges.join(", "),
                r.parity,
                r.trace_events,
                r.wall_ms
            )
        })
        .collect();
    format!(
        "{{\n  \"quick\": {quick},\n  \"runs\": [\n{}\n  ]\n}}\n",
        runs.join(",\n")
    )
}

fn require_u64(run: &json::Value, key: &str) -> Result<u64, String> {
    run.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("run missing numeric '{key}'"))
}

/// Schema-validate a `BENCH_graph.json` document: every run must carry
/// the identifying fields, a true parity verdict, at least one filter, a
/// per-edge tally array, and conserved counts (a task completes at most
/// once per filter, so `tasks <= filters * (outputs + edge deliveries)`
/// is not assumed — instead `outputs <= tasks` and every multi-filter
/// topology must have delivered over at least one edge).
pub fn validate_graph_report(text: &str) -> Result<(), String> {
    let v = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let runs = v
        .get("runs")
        .and_then(|r| r.as_arr())
        .ok_or("missing 'runs' array")?;
    if runs.is_empty() {
        return Err("'runs' is empty".to_string());
    }
    for (i, run) in runs.iter().enumerate() {
        let ctx = |e: String| format!("run {i}: {e}");
        for key in ["app", "topology", "backend", "policy"] {
            run.get(key)
                .and_then(|p| p.as_str())
                .ok_or_else(|| ctx(format!("missing string '{key}'")))?;
        }
        let filters = require_u64(run, "filters").map_err(ctx)?;
        if filters == 0 {
            return Err(ctx("graph has no filters".to_string()));
        }
        let tasks = require_u64(run, "tasks").map_err(ctx)?;
        let outputs = require_u64(run, "outputs").map_err(ctx)?;
        if outputs > tasks {
            return Err(ctx(format!("outputs {outputs} > completions {tasks}")));
        }
        let edges = run
            .get("edges")
            .and_then(|e| e.as_arr())
            .ok_or_else(|| ctx("missing 'edges' array".to_string()))?;
        let mut delivered = 0u64;
        for (ei, e) in edges.iter().enumerate() {
            delivered += e
                .as_u64()
                .ok_or_else(|| ctx(format!("edges[{ei}] is not a number")))?;
        }
        if filters > 1 && delivered == 0 {
            return Err(ctx(
                "a multi-filter run delivered nothing over any edge".to_string()
            ));
        }
        match run.get("parity").and_then(|p| p.as_bool()) {
            Some(true) => {}
            Some(false) => return Err(ctx("parity verdict is false".to_string())),
            None => return Err(ctx("missing boolean 'parity'".to_string())),
        }
        require_u64(run, "trace_events").map_err(ctx)?;
        run.get("wall_ms")
            .and_then(|w| w.as_f64())
            .ok_or_else(|| ctx("missing numeric 'wall_ms'".to_string()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> GraphRunRow {
        GraphRunRow {
            app: "nbia".into(),
            topology: "pipeline3".into(),
            backend: "native".into(),
            policy: "ddwrr".into(),
            filters: 3,
            tasks: 108,
            outputs: 36,
            edges: vec![36, 52, 16],
            parity: true,
            trace_events: 420,
            wall_ms: 12.5,
        }
    }

    #[test]
    fn report_renders_and_validates() {
        let text = render_graph_report(&[row()], true);
        validate_graph_report(&text).expect("schema-valid report");
    }

    #[test]
    fn parity_failures_and_broken_accounting_are_rejected() {
        let text = render_graph_report(&[row()], false);
        let unparity = text.replace("\"parity\": true", "\"parity\": false");
        assert!(validate_graph_report(&unparity).is_err(), "parity gate");

        let mut r = row();
        r.outputs = r.tasks + 1;
        let over = render_graph_report(&[r], false);
        assert!(
            validate_graph_report(&over).is_err(),
            "outputs cannot exceed completions"
        );

        let mut r = row();
        r.edges = vec![0, 0, 0];
        let dry = render_graph_report(&[r], false);
        assert!(
            validate_graph_report(&dry).is_err(),
            "a multi-filter run must use its edges"
        );

        assert!(validate_graph_report("{}").is_err(), "missing runs");
    }
}
