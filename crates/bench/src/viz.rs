//! Terminal line charts for the regenerated figures: the `repro` binary
//! prints each figure both as the paper's data table and as an ASCII
//! chart so the *shape* (crossovers, saturation, dips) is visible at a
//! glance.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points (x ascending).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Chart geometry.
#[derive(Debug, Clone, Copy)]
pub struct ChartSpec {
    /// Plot width in columns (excluding the y-axis gutter).
    pub width: usize,
    /// Plot height in rows.
    pub height: usize,
    /// Force the y-axis to start at zero.
    pub zero_y: bool,
}

impl Default for ChartSpec {
    fn default() -> Self {
        ChartSpec {
            width: 60,
            height: 16,
            zero_y: true,
        }
    }
}

const MARKS: [char; 6] = ['o', '+', 'x', '*', '#', '@'];

/// Render the series into a multi-line string.
pub fn render(series: &[Series], spec: ChartSpec) -> String {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if pts.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if spec.zero_y {
        y_min = y_min.min(0.0);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    let w = spec.width.max(8);
    let h = spec.height.max(4);
    let mut grid = vec![vec![' '; w]; h];

    let to_col = |x: f64| (((x - x_min) / (x_max - x_min)) * (w - 1) as f64).round() as usize;
    let to_row = |y: f64| {
        let r = ((y - y_min) / (y_max - y_min)) * (h - 1) as f64;
        h - 1 - (r.round() as usize).min(h - 1)
    };

    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        // Connect consecutive points with interpolated cells, then stamp
        // the marker at the data points.
        for pair in s.points.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            let (c0, c1) = (to_col(x0), to_col(x1));
            let steps = c1.abs_diff(c0).max(1);
            for step in 0..=steps {
                let f = step as f64 / steps as f64;
                let x = x0 + (x1 - x0) * f;
                let y = y0 + (y1 - y0) * f;
                let (row, col) = (to_row(y), to_col(x));
                if grid[row][col] == ' ' {
                    grid[row][col] = '.';
                }
            }
        }
        for &(x, y) in &s.points {
            grid[to_row(y)][to_col(x)] = mark;
        }
    }

    let mut out = String::new();
    let gutter = 9;
    for (ri, row) in grid.iter().enumerate() {
        let label = if ri == 0 {
            format!("{y_max:>8.1}")
        } else if ri == h - 1 {
            format!("{y_min:>8.1}")
        } else {
            " ".repeat(8)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(gutter - 1));
    out.push('+');
    out.push_str(&"-".repeat(w));
    out.push('\n');
    out.push_str(&" ".repeat(gutter));
    let left = format!("{x_min:.0}");
    let right = format!("{x_max:.0}");
    out.push_str(&left);
    let pad = w.saturating_sub(left.len() + right.len());
    out.push_str(&" ".repeat(pad));
    out.push_str(&right);
    out.push('\n');
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:>gutter$}{} = {}\n",
            "",
            MARKS[si % MARKS.len()],
            s.label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(label: &str, f: impl Fn(f64) -> f64) -> Series {
        Series::new(label, (0..=10).map(|i| (i as f64, f(i as f64))).collect())
    }

    #[test]
    fn renders_axes_and_legend() {
        let chart = render(
            &[line("up", |x| x), line("down", |x| 10.0 - x)],
            ChartSpec::default(),
        );
        assert!(chart.contains("o = up"));
        assert!(chart.contains("+ = down"));
        assert!(chart.contains("+---"));
        // Y labels at the extremes.
        assert!(chart.contains("10.0"));
        assert!(chart.contains("0.0"));
    }

    #[test]
    fn increasing_series_puts_last_point_at_top_right() {
        let chart = render(
            &[line("up", |x| x)],
            ChartSpec {
                width: 20,
                height: 8,
                zero_y: true,
            },
        );
        let rows: Vec<&str> = chart.lines().collect();
        // First plotted row (top) should contain the marker near its end.
        let top = rows[0];
        assert!(top.trim_end().ends_with('o'), "top row: {top:?}");
    }

    #[test]
    fn empty_input_is_graceful() {
        assert_eq!(render(&[], ChartSpec::default()), "(no data)\n");
        let s = Series::new("empty", vec![]);
        assert_eq!(render(&[s], ChartSpec::default()), "(no data)\n");
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = Series::new("flat", vec![(1.0, 5.0), (2.0, 5.0)]);
        let chart = render(&[s], ChartSpec::default());
        assert!(chart.contains('o'));
    }

    #[test]
    fn single_point_renders() {
        let s = Series::new("dot", vec![(3.0, 7.0)]);
        let chart = render(&[s], ChartSpec::default());
        assert!(chart.contains('o'));
    }
}
