//! Open-loop load harness: arrival schedules, streaming latency sketches,
//! a virtual-time admission model, and the `BENCH_load.json` schema.
//!
//! The pieces compose into the `repro load` gate:
//!
//! * [`ArrivalProfile`] — seed-deterministic open-loop schedules
//!   (Poisson, bursty on/off, diurnal ramp), produced as nanosecond
//!   offsets so the same schedule drives the native runtime
//!   (`Pipeline::run_load`), the net coordinator
//!   (`run_concurrent_load`), and the virtual-time model below.
//! * [`LatencyHistogram`] — an HDR-style bucketed histogram (32 linear
//!   sub-buckets per power-of-two octave) giving p50/p99/p999 without
//!   storing samples; the reported quantile is the upper edge of the
//!   bucket holding the exact-rank sample, so its error is bounded by
//!   one bucket width (< 1/32 relative).
//! * [`Reservoir`] — Algorithm R uniform sample, for distribution-shape
//!   debugging beyond fixed quantiles.
//! * [`run_des_load`] — the admission controller replayed under virtual
//!   time: the same `offer`/`poll`/`release` sequence the live backends
//!   drive, with service time modeled as a constant, so admission
//!   decisions are reproducible bit-for-bit (the determinism suite runs
//!   it twice and compares decision logs).
//! * [`render_load_report`] / [`validate_load_report`] — the
//!   `BENCH_load.json` writer and its schema gate (conservation,
//!   quantile monotonicity, queue-depth series present).

use anthill::engine::{
    AdmissionConfig, AdmissionController, AdmissionCounters, AdmissionDecision, Offer,
};
use anthill::obs::{json, DeviceRef, Recorder};
use anthill_simkit::SimRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

// ------------------------------------------------------------- profiles

/// A seed-deterministic open-loop arrival process. `schedule` renders it
/// to absolute nanosecond offsets from the run start; identical
/// `(profile, seed, n)` triples produce byte-identical schedules on every
/// backend and platform (integer accumulation, no wall clock).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProfile {
    /// Memoryless arrivals at a constant mean rate (exponential gaps).
    Poisson {
        /// Mean arrival rate in tasks per second.
        rate_hz: f64,
    },
    /// On/off arrivals: Poisson at `rate_hz` during each burst window,
    /// silence during each idle window.
    Bursty {
        /// Arrival rate inside a burst, tasks per second.
        rate_hz: f64,
        /// Burst window length in milliseconds.
        burst_ms: u64,
        /// Idle window length in milliseconds.
        idle_ms: u64,
    },
    /// A diurnal-shaped ramp: the instantaneous rate sweeps sinusoidally
    /// between `trough_hz` and `peak_hz` over each period, sampled by
    /// thinning a peak-rate Poisson stream.
    Diurnal {
        /// Rate at the top of the ramp, tasks per second.
        peak_hz: f64,
        /// Rate at the bottom of the ramp, tasks per second.
        trough_hz: f64,
        /// Full ramp period in milliseconds.
        period_ms: u64,
    },
}

impl ArrivalProfile {
    /// Stable profile name (used in schedules' RNG fork labels and in
    /// `BENCH_load.json`).
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProfile::Poisson { .. } => "poisson",
            ArrivalProfile::Bursty { .. } => "bursty",
            ArrivalProfile::Diurnal { .. } => "diurnal",
        }
    }

    /// Render the first `n` arrivals as ascending nanosecond offsets.
    /// Deterministic: the stream is drawn from `SimRng::new(seed)` forked
    /// on the profile name, and every offset is accumulated in integer
    /// nanoseconds.
    pub fn schedule(&self, seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SimRng::new(seed).fork(self.name());
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProfile::Poisson { rate_hz } => {
                let mean_gap = 1e9 / rate_hz.max(1e-9);
                let mut t = 0u64;
                for _ in 0..n {
                    t += rng.exponential(mean_gap).max(0.0) as u64;
                    out.push(t);
                }
            }
            ArrivalProfile::Bursty {
                rate_hz,
                burst_ms,
                idle_ms,
            } => {
                let mean_gap = 1e9 / rate_hz.max(1e-9);
                let burst_ns = burst_ms.max(1) * 1_000_000;
                let period_ns = burst_ns + idle_ms * 1_000_000;
                let mut t = 0u64;
                for _ in 0..n {
                    t += rng.exponential(mean_gap).max(0.0) as u64;
                    // A gap landing in the idle window slides to the next
                    // burst start; the burst-local offset is preserved so
                    // gaps stay exponential inside each burst.
                    let phase = t % period_ns;
                    if phase >= burst_ns {
                        t += period_ns - phase;
                    }
                    out.push(t);
                }
            }
            ArrivalProfile::Diurnal {
                peak_hz,
                trough_hz,
                period_ms,
            } => {
                let peak = peak_hz.max(1e-9);
                let trough = trough_hz.clamp(0.0, peak);
                let period_ns = (period_ms.max(1) * 1_000_000) as f64;
                let mean_gap = 1e9 / peak;
                let mut t = 0u64;
                while out.len() < n {
                    t += rng.exponential(mean_gap).max(0.0) as u64;
                    // Thinning: accept in proportion to the instantaneous
                    // rate, which ramps trough -> peak -> trough each
                    // period (phase-shifted sine starting at the trough).
                    let phase = (t as f64 % period_ns) / period_ns;
                    let frac = (1.0 - (std::f64::consts::TAU * phase).cos()) / 2.0;
                    let rate = trough + (peak - trough) * frac;
                    if rng.chance(rate / peak) {
                        out.push(t);
                    }
                }
            }
        }
        out
    }
}

// ------------------------------------------------------------ histogram

/// Linear sub-buckets per power-of-two octave: values below 32 ns are
/// exact; above, the bucket width is `2^octave`, bounding relative
/// quantile error by 1/32.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;

/// An HDR-style bucketed latency histogram over `u64` nanoseconds.
///
/// Memory is O(octaves × 32) regardless of sample count, so a 100k+ task
/// run streams through it without storing per-task samples. Quantiles
/// are reported as the *upper edge* of the bucket containing the
/// exact-rank sample: the estimate never under-reports, and it exceeds
/// the exact order statistic by less than one bucket width (the property
/// suite pins this against adversarial distributions).
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    fn bucket_of(v: u64) -> usize {
        if v < SUB {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let octave = msb - SUB_BITS;
        let sub = (v >> octave) & (SUB - 1);
        ((u64::from(octave) + 1) * SUB + sub) as usize
    }

    /// `[lo, hi)` bounds of bucket `idx`.
    fn bucket_bounds(idx: usize) -> (u64, u64) {
        let idx = idx as u64;
        if idx < SUB {
            return (idx, idx + 1);
        }
        let octave = (idx / SUB - 1) as u32;
        let sub = idx % SUB;
        let lo = (SUB + sub) << octave;
        (lo, lo + (1u64 << octave))
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let idx = Self::bucket_of(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += u128::from(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Width of the bucket that `v` falls into — the bound on how far
    /// [`quantile`](Self::quantile) can sit above the exact order
    /// statistic at that magnitude.
    pub fn bucket_width(v: u64) -> u64 {
        let (lo, hi) = Self::bucket_bounds(Self::bucket_of(v));
        hi - lo
    }

    /// The q-quantile (q in `[0, 1]`) as the upper edge of the bucket
    /// holding the sample of rank `ceil(q × (count−1))`, clamped to the
    /// observed maximum. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Self::bucket_bounds(idx).1.min(self.max);
            }
        }
        self.max
    }
}

// ------------------------------------------------------------ reservoir

/// Fixed-size uniform sample of a stream (Vitter's Algorithm R), seeded
/// through [`SimRng`] so runs are reproducible. Complements the
/// histogram: the histogram answers fixed quantiles with bounded error,
/// the reservoir keeps raw values for shape inspection.
#[derive(Debug, Clone)]
pub struct Reservoir {
    k: usize,
    seen: u64,
    samples: Vec<u64>,
    rng: SimRng,
}

impl Reservoir {
    /// A reservoir keeping at most `k` samples.
    pub fn new(k: usize, seed: u64) -> Reservoir {
        Reservoir {
            k: k.max(1),
            seen: 0,
            samples: Vec::new(),
            rng: SimRng::new(seed).fork("reservoir"),
        }
    }

    /// Offer one stream value.
    pub fn record(&mut self, v: u64) {
        self.seen += 1;
        if self.samples.len() < self.k {
            self.samples.push(v);
        } else {
            let j = self.rng.below(self.seen);
            if (j as usize) < self.k {
                self.samples[j as usize] = v;
            }
        }
    }

    /// Stream length so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample (uniform over the stream seen so far).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }
}

// ------------------------------------------------------- virtual replay

/// Outcome of [`run_des_load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesLoadOutcome {
    /// Admission counters at quiescence.
    pub counters: AdmissionCounters,
    /// The controller's `(now_ns, decision)` log, in decision order.
    pub decisions: Vec<(u64, AdmissionDecision)>,
    /// Tasks that ran to completion.
    pub completed: u64,
}

/// Replay an arrival schedule through the admission controller under
/// *virtual* time: admitted tasks occupy one of the `inflight_cap` slots
/// for exactly `service_ns`, completions release and re-poll exactly as
/// the live drivers do, and a `Block` stall holds back the rest of the
/// schedule (open-loop generator back-pressure). No threads, no clocks —
/// two calls with the same inputs produce identical decision logs.
pub fn run_des_load(arrivals: &[u64], service_ns: u64, cfg: AdmissionConfig) -> DesLoadOutcome {
    let service_ns = service_ns.max(1);
    let mut ctl: AdmissionController<u64> =
        AdmissionController::new(cfg, Recorder::disabled(), DeviceRef::node_scope(0));
    let mut running: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
    let mut stalled: Option<u64> = None;
    let mut i = 0usize;
    let mut completed = 0u64;

    loop {
        let next_arrival = if stalled.is_none() {
            arrivals.get(i).copied()
        } else {
            None
        };
        let next_completion = running.peek().map(|&Reverse(t)| t);
        let now = match (next_arrival, next_completion) {
            (Some(a), Some(c)) => a.min(c),
            (Some(a), None) => a,
            (None, Some(c)) => c,
            (None, None) => break,
        };
        // Completions first at a tie: the live loops see the completion
        // frame before they inject the arrival due at the same instant.
        while let Some(&Reverse(t)) = running.peek() {
            if t > now {
                break;
            }
            running.pop();
            ctl.release();
            completed += 1;
        }
        let polled = ctl.poll(now);
        for _ in polled.admitted {
            running.push(Reverse(now + service_ns));
        }
        if let Some(id) = stalled.take() {
            match ctl.offer(now, id, 0, id) {
                Offer::Admitted(_) => running.push(Reverse(now + service_ns)),
                Offer::Queued { .. } | Offer::ShedSelf(_) => {}
                Offer::Blocked(_) => stalled = Some(id),
            }
        }
        while stalled.is_none() && i < arrivals.len() && arrivals[i] <= now {
            let id = i as u64;
            i += 1;
            match ctl.offer(now, id, 0, id) {
                Offer::Admitted(_) => running.push(Reverse(now + service_ns)),
                Offer::Queued { .. } | Offer::ShedSelf(_) => {}
                Offer::Blocked(_) => stalled = Some(id),
            }
        }
    }

    DesLoadOutcome {
        counters: ctl.counters(),
        decisions: ctl.decisions().to_vec(),
        completed,
    }
}

// ----------------------------------------------------- report rendering

/// p50/p99/p999/max/mean summary of one latency dimension, extracted
/// from a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    /// Median, nanoseconds.
    pub p50: u64,
    /// 99th percentile, nanoseconds.
    pub p99: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999: u64,
    /// Largest sample, nanoseconds.
    pub max: u64,
    /// Mean, nanoseconds.
    pub mean: f64,
}

impl LatencyStats {
    /// Extract the summary quantiles from a histogram.
    pub fn from_histogram(h: &LatencyHistogram) -> LatencyStats {
        LatencyStats {
            p50: h.quantile(0.50),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            max: h.max(),
            mean: h.mean(),
        }
    }

    fn render(&self) -> String {
        format!(
            "{{\"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}, \"mean\": {:.1}}}",
            self.p50, self.p99, self.p999, self.max, self.mean
        )
    }
}

/// One `(profile, backend)` run of the load gate, ready to render into
/// `BENCH_load.json`.
#[derive(Debug, Clone)]
pub struct LoadRunRow {
    /// Arrival profile name ([`ArrivalProfile::name`]).
    pub profile: String,
    /// Executing backend: `"native"` or `"net"`.
    pub backend: String,
    /// Overload policy name (`block`, `shed_oldest`, `deadline_drop`).
    pub policy: String,
    /// Schedule length offered to the run.
    pub tasks: u64,
    /// Admission counters at quiescence.
    pub admission: AdmissionCounters,
    /// Tasks that completed end to end.
    pub completed: u64,
    /// Queue-wait latency summary.
    pub queue: LatencyStats,
    /// Service latency summary.
    pub service: LatencyStats,
    /// End-to-end latency summary.
    pub e2e: LatencyStats,
    /// Queue-depth series sampled by the run's injector.
    pub queue_depth: Vec<DepthPoint>,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: f64,
}

/// One rendered queue-depth sample. `per_stage` breaks `ready` down by
/// filter for graph-shaped pipelines — the aggregate alone cannot show
/// which filter of a DAG is backing up; it stays empty for backends with
/// a single ready queue (e.g. the net coordinator).
#[derive(Debug, Clone)]
pub struct DepthPoint {
    /// Monotonic nanoseconds since run start.
    pub t_ns: u64,
    /// Buffers across every ready lane (equals the `per_stage` sum when
    /// that breakdown is present).
    pub ready: u64,
    /// Tasks waiting at the admission intake.
    pub intake: u64,
    /// Admitted-but-unfinished tasks.
    pub inflight: u64,
    /// Ready-lane depth per filter, indexed by filter id; empty when the
    /// backend has no per-filter breakdown.
    pub per_stage: Vec<u64>,
}

impl DepthPoint {
    /// A sample without a per-filter breakdown.
    pub fn flat(t_ns: u64, ready: u64, intake: u64, inflight: u64) -> DepthPoint {
        DepthPoint {
            t_ns,
            ready,
            intake,
            inflight,
            per_stage: Vec::new(),
        }
    }
}

impl From<&anthill::local::QueueDepthSample> for DepthPoint {
    /// The native runtime samples every stage queue, so its points carry
    /// the per-filter breakdown.
    fn from(s: &anthill::local::QueueDepthSample) -> DepthPoint {
        DepthPoint {
            t_ns: s.t_ns,
            ready: s.ready,
            intake: s.intake,
            inflight: s.inflight,
            per_stage: s.per_stage.clone(),
        }
    }
}

impl From<&anthill::net::NetQueueSample> for DepthPoint {
    /// The net coordinator has a single engine-side ready queue — no
    /// per-filter breakdown.
    fn from(s: &anthill::net::NetQueueSample) -> DepthPoint {
        DepthPoint::flat(s.t_ns, s.ready, s.intake, s.inflight)
    }
}

/// Cap on queue-depth points per run in the rendered report; longer
/// series are evenly downsampled (the first and last samples are kept).
const DEPTH_POINTS: usize = 200;

fn render_point(p: &DepthPoint) -> String {
    let stages: Vec<String> = p.per_stage.iter().map(u64::to_string).collect();
    format!(
        "{{\"t_ns\": {}, \"ready\": {}, \"intake\": {}, \"inflight\": {}, \"per_stage\": [{}]}}",
        p.t_ns,
        p.ready,
        p.intake,
        p.inflight,
        stages.join(", ")
    )
}

fn render_depth(series: &[DepthPoint]) -> String {
    let step = series.len().div_ceil(DEPTH_POINTS).max(1);
    let mut cells: Vec<String> = series.iter().step_by(step).map(render_point).collect();
    if step > 1 && series.len() % step != 1 {
        if let Some(p) = series.last() {
            cells.push(render_point(p));
        }
    }
    format!("[{}]", cells.join(", "))
}

/// Render the load gate's results as the `BENCH_load.json` document.
/// The output always satisfies [`validate_load_report`] when every row's
/// counters conserve.
pub fn render_load_report(rows: &[LoadRunRow], quick: bool, seed: u64) -> String {
    let runs: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"profile\": \"{}\", \"backend\": \"{}\", \"policy\": \"{}\",\n",
                    "      \"tasks\": {}, \"generated\": {}, \"admitted\": {}, ",
                    "\"shed\": {}, \"deadline_dropped\": {}, \"completed\": {},\n",
                    "      \"latency_ns\": {{\n",
                    "        \"queue\": {},\n",
                    "        \"service\": {},\n",
                    "        \"e2e\": {}\n",
                    "      }},\n",
                    "      \"queue_depth\": {},\n",
                    "      \"wall_ms\": {:.2}\n",
                    "    }}"
                ),
                r.profile,
                r.backend,
                r.policy,
                r.tasks,
                r.admission.generated,
                r.admission.admitted,
                r.admission.shed,
                r.admission.deadline_dropped,
                r.completed,
                r.queue.render(),
                r.service.render(),
                r.e2e.render(),
                render_depth(&r.queue_depth),
                r.wall_ms
            )
        })
        .collect();
    format!(
        "{{\n  \"seed\": {seed},\n  \"quick\": {quick},\n  \"runs\": [\n{}\n  ]\n}}\n",
        runs.join(",\n")
    )
}

fn require_u64(run: &json::Value, key: &str) -> Result<u64, String> {
    run.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("run missing numeric '{key}'"))
}

fn check_stats(lat: &json::Value, dim: &str) -> Result<(), String> {
    let d = lat
        .get(dim)
        .ok_or_else(|| format!("latency_ns missing '{dim}'"))?;
    let p50 = require_u64(d, "p50").map_err(|e| format!("{dim}: {e}"))?;
    let p99 = require_u64(d, "p99").map_err(|e| format!("{dim}: {e}"))?;
    let p999 = require_u64(d, "p999").map_err(|e| format!("{dim}: {e}"))?;
    let max = require_u64(d, "max").map_err(|e| format!("{dim}: {e}"))?;
    if !(p50 <= p99 && p99 <= p999 && p999 <= max) {
        return Err(format!(
            "{dim}: quantiles not monotone (p50 {p50}, p99 {p99}, p999 {p999}, max {max})"
        ));
    }
    Ok(())
}

/// Schema-validate a `BENCH_load.json` document: every run must carry the
/// identifying fields, conserved admission counters
/// (`admitted + shed + deadline_dropped == generated`), completions not
/// exceeding admissions, monotone latency quantiles for all three
/// dimensions, and a non-empty queue-depth series whose points each carry
/// a `per_stage` array summing to `ready` whenever the breakdown is
/// present.
pub fn validate_load_report(text: &str) -> Result<(), String> {
    let v = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let runs = v
        .get("runs")
        .and_then(|r| r.as_arr())
        .ok_or("missing 'runs' array")?;
    if runs.is_empty() {
        return Err("'runs' is empty".to_string());
    }
    v.get("seed")
        .and_then(|s| s.as_u64())
        .ok_or("missing numeric 'seed'")?;
    for (i, run) in runs.iter().enumerate() {
        let ctx = |e: String| format!("run {i}: {e}");
        for key in ["profile", "backend", "policy"] {
            run.get(key)
                .and_then(|p| p.as_str())
                .ok_or_else(|| ctx(format!("missing string '{key}'")))?;
        }
        let generated = require_u64(run, "generated").map_err(ctx)?;
        let admitted = require_u64(run, "admitted").map_err(ctx)?;
        let shed = require_u64(run, "shed").map_err(ctx)?;
        let dropped = require_u64(run, "deadline_dropped").map_err(ctx)?;
        let completed = require_u64(run, "completed").map_err(ctx)?;
        if admitted + shed + dropped != generated {
            return Err(ctx(format!(
                "conservation broken: {admitted} + {shed} + {dropped} != {generated}"
            )));
        }
        if completed > admitted {
            return Err(ctx(format!("completed {completed} > admitted {admitted}")));
        }
        let lat = run
            .get("latency_ns")
            .ok_or_else(|| ctx("missing 'latency_ns'".to_string()))?;
        for dim in ["queue", "service", "e2e"] {
            check_stats(lat, dim).map_err(ctx)?;
        }
        let depth = run
            .get("queue_depth")
            .and_then(|d| d.as_arr())
            .ok_or_else(|| ctx("missing 'queue_depth' array".to_string()))?;
        if depth.is_empty() {
            return Err(ctx("'queue_depth' is empty".to_string()));
        }
        for point in depth {
            for key in ["t_ns", "ready", "intake", "inflight"] {
                require_u64(point, key).map_err(|e| ctx(format!("queue_depth {e}")))?;
            }
            let stages = point
                .get("per_stage")
                .and_then(|s| s.as_arr())
                .ok_or_else(|| ctx("queue_depth point missing 'per_stage' array".to_string()))?;
            if !stages.is_empty() {
                let mut sum = 0u64;
                for (si, s) in stages.iter().enumerate() {
                    sum += s
                        .as_u64()
                        .ok_or_else(|| ctx(format!("per_stage[{si}] is not a number")))?;
                }
                let ready = require_u64(point, "ready").map_err(ctx)?;
                if sum != ready {
                    return Err(ctx(format!("per_stage sums to {sum} but ready is {ready}")));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use anthill::engine::OverloadPolicy;

    #[test]
    fn schedules_are_ascending_and_seed_deterministic() {
        for profile in [
            ArrivalProfile::Poisson { rate_hz: 50_000.0 },
            ArrivalProfile::Bursty {
                rate_hz: 80_000.0,
                burst_ms: 2,
                idle_ms: 3,
            },
            ArrivalProfile::Diurnal {
                peak_hz: 60_000.0,
                trough_hz: 5_000.0,
                period_ms: 10,
            },
        ] {
            let a = profile.schedule(7, 2_000);
            let b = profile.schedule(7, 2_000);
            assert_eq!(a, b, "{}", profile.name());
            assert_eq!(a.len(), 2_000);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{}", profile.name());
            let c = profile.schedule(8, 2_000);
            assert_ne!(a, c, "{} must vary with the seed", profile.name());
        }
    }

    #[test]
    fn bursty_schedule_never_lands_in_the_idle_window() {
        let profile = ArrivalProfile::Bursty {
            rate_hz: 100_000.0,
            burst_ms: 2,
            idle_ms: 5,
        };
        let period = 7_000_000u64;
        for t in profile.schedule(3, 3_000) {
            assert!(t % period < 2_000_000, "arrival at {t} is inside idle");
        }
    }

    #[test]
    fn histogram_quantile_sits_within_one_bucket_of_exact() {
        let mut h = LatencyHistogram::new();
        let mut rng = SimRng::new(11);
        let mut exact: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            let v = rng.exponential(1_500_000.0) as u64;
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.5, 0.99, 0.999] {
            let rank = ((exact.len() - 1) as f64 * q).ceil() as usize;
            let truth = exact[rank];
            let approx = h.quantile(q);
            assert!(approx >= truth, "q{q}: {approx} < {truth}");
            assert!(
                approx - truth <= LatencyHistogram::bucket_width(truth),
                "q{q}: {approx} off {truth} by more than one bucket"
            );
        }
    }

    #[test]
    fn reservoir_keeps_k_and_counts_the_stream() {
        let mut r = Reservoir::new(64, 5);
        for v in 0..10_000u64 {
            r.record(v);
        }
        assert_eq!(r.seen(), 10_000);
        assert_eq!(r.samples().len(), 64);
        assert!(r.samples().iter().all(|&v| v < 10_000));
    }

    #[test]
    fn des_load_is_deterministic_and_conserves() {
        let arrivals = ArrivalProfile::Poisson { rate_hz: 200_000.0 }.schedule(42, 5_000);
        let cfg = AdmissionConfig {
            inflight_cap: 8,
            queue_cap: 16,
            policy: OverloadPolicy::ShedOldest,
        };
        let a = run_des_load(&arrivals, 50_000, cfg);
        let b = run_des_load(&arrivals, 50_000, cfg);
        assert_eq!(a, b);
        assert!(a.counters.conserved(), "{:?}", a.counters);
        assert!(a.counters.shed > 0, "schedule saturates the cap");
        assert_eq!(a.completed, a.counters.admitted);
    }

    #[test]
    fn report_renders_and_validates() {
        let mut h = LatencyHistogram::new();
        for v in [10_000u64, 20_000, 400_000, 9_000_000] {
            h.record(v);
        }
        let stats = LatencyStats::from_histogram(&h);
        let row = LoadRunRow {
            profile: "poisson".into(),
            backend: "native".into(),
            policy: "block".into(),
            tasks: 4,
            admission: AdmissionCounters {
                generated: 4,
                admitted: 4,
                shed: 0,
                deadline_dropped: 0,
            },
            completed: 4,
            queue: stats,
            service: stats,
            e2e: stats,
            queue_depth: vec![
                DepthPoint::flat(0, 0, 0, 1),
                DepthPoint {
                    t_ns: 1_000,
                    ready: 2,
                    intake: 1,
                    inflight: 3,
                    per_stage: vec![0, 2, 0],
                },
            ],
            wall_ms: 1.25,
        };
        let text = render_load_report(&[row], true, 42);
        validate_load_report(&text).expect("schema-valid report");

        let broken = text.replace("\"admitted\": 4", "\"admitted\": 3");
        assert!(validate_load_report(&broken).is_err(), "conservation gate");

        // A per-stage breakdown that disagrees with the aggregate fails.
        let skewed = text.replace("\"per_stage\": [0, 2, 0]", "\"per_stage\": [0, 1, 0]");
        assert!(
            validate_load_report(&skewed).is_err(),
            "per-stage sum must match ready"
        );
    }
}
