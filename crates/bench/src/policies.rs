//! Head-to-head benchmark of the learned scheduling policies (AFFINITY,
//! BANDIT) against the paper's tuned DDWRR, plus the `BENCH_policies.json`
//! schema and its render/validate pair.
//!
//! Three DES scenarios, all on the virtual-time cluster executor:
//!
//! * `paper_hom` — the paper's homogeneous base case (one CPU+GPU node,
//!   16% recalculation) with a well-calibrated estimator. Nothing to
//!   learn; the gate only requires the learned policies stay within
//!   [`PAPER_TOLERANCE_PCT`] of DDWRR.
//! * `paper_het` — the paper's heterogeneous base case (a CPU+GPU node
//!   plus a CPU-only node, 8% recalculation), also well-calibrated, at
//!   the full workload scale where the learned corrections settle. Same
//!   tolerance; empirically both learned policies edge out DDWRR here.
//! * `stale_profile` — the CPU+GPU node scheduled from a badly noisy
//!   phase-one profile ([`STALE_NOISE`] lognormal sigma at
//!   [`STALE_SEED`], which inverts the low/high-resolution device
//!   ordering). DDWRR trusts the broken predictions for the whole run;
//!   the learned policies fold observed `task_finished` spans back into
//!   their online profile and recover the true ordering within a few
//!   tasks per shape.
//!
//! The gate's verdicts, enforced by [`validate_policies_report`]: learned
//! policies lose by at most the tolerance on the non-stale scenarios, at
//! least one learned policy beats DDWRR outright on a heterogeneous
//! scenario, and every stale scenario is won by a learned policy. Every
//! row also records the run's `policy_decision` / `profile_updated` event
//! counts, so the report doubles as evidence the learned paths engaged
//! (and that the classic reference stayed inert).

use anthill::obs::{json, EventKind, Recorder, TraceEvent};
use anthill::policy::Policy;
use anthill::sim::{run_nbia, SimConfig, WorkloadSpec};
use anthill_hetsim::{ClusterSpec, DeviceKind};

use crate::experiments::cluster::DDWRR_WINDOW;

/// Learned policies may lose to DDWRR by at most this much (percent of
/// DDWRR's makespan) on the non-stale scenarios.
pub const PAPER_TOLERANCE_PCT: f64 = 5.0;
/// Lognormal sigma of the `stale_profile` scenario's phase-one benchmark
/// noise — large enough that the kNN fit can invert the two tile
/// resolutions' device ordering.
pub const STALE_NOISE: f64 = 2.0;
/// Seed of the `stale_profile` scenario: one where [`STALE_NOISE`]
/// actually inverts the ordering (DDWRR degrades ~65% against its
/// well-calibrated self, which the learned policies claw back).
pub const STALE_SEED: u64 = 5;
/// Root seed of the well-calibrated scenarios.
pub const GATE_SEED: u64 = 0x5EED;

/// One `(scenario, policy)` run of the gate, ready to render into
/// `BENCH_policies.json`.
#[derive(Debug, Clone)]
pub struct PolicyRunRow {
    /// Scenario name (`paper_hom`, `paper_het`, `stale_profile`).
    pub scenario: String,
    /// Policy name (`DDWRR`, `AFFINITY`, `BANDIT`).
    pub policy: String,
    /// Whether the policy is a learned one.
    pub learned: bool,
    /// Whether the scenario runs on a heterogeneous device mix a learned
    /// policy is expected to exploit.
    pub hetero: bool,
    /// Whether the scenario is the stale-profile recovery case where a
    /// learned policy must win.
    pub stale: bool,
    /// Virtual makespan in milliseconds.
    pub makespan_ms: f64,
    /// Speedup over the single-core CPU baseline.
    pub speedup: f64,
    /// Buffers processed on CPU devices.
    pub tasks_cpu: u64,
    /// Buffers processed on GPU devices.
    pub tasks_gpu: u64,
    /// `policy_decision` events in the run's trace.
    pub decisions: u64,
    /// `profile_updated` events in the run's trace.
    pub profile_updates: u64,
    /// Makespan delta vs the same scenario's DDWRR row, in percent
    /// (negative = faster than DDWRR).
    pub vs_ddwrr_pct: f64,
}

/// One gate scenario: a cluster shape plus estimator calibration.
struct Scenario {
    name: &'static str,
    hetero: bool,
    stale: bool,
    rate: f64,
    noise: f64,
    async_transfers: bool,
    seed: u64,
    /// Tiles in full and `--quick` runs. The heterogeneous base case
    /// needs the full workload even when quick: below it, reduced-scale
    /// end-game imbalance (the same artifact the paper notes for DDWRR
    /// in Figure 10) dominates the learned policies' deltas.
    tiles: [u64; 2],
    cluster: fn() -> ClusterSpec,
}

const SCENARIOS: [Scenario; 3] = [
    Scenario {
        name: "paper_hom",
        hetero: false,
        stale: false,
        rate: 0.16,
        noise: 0.08,
        async_transfers: true,
        seed: GATE_SEED,
        tiles: [4000, 1200],
        cluster: || ClusterSpec::homogeneous(1),
    },
    Scenario {
        name: "paper_het",
        hetero: true,
        stale: false,
        rate: 0.08,
        noise: 0.08,
        async_transfers: true,
        seed: GATE_SEED,
        tiles: [4000, 4000],
        cluster: || ClusterSpec::heterogeneous(1, 1),
    },
    Scenario {
        name: "stale_profile",
        hetero: true,
        stale: true,
        rate: 0.16,
        noise: STALE_NOISE,
        async_transfers: false,
        seed: STALE_SEED,
        tiles: [4000, 1200],
        cluster: || ClusterSpec::homogeneous(1),
    },
];

/// The policies every scenario runs, DDWRR (the reference) first.
fn policies() -> [(&'static str, Policy); 3] {
    [
        ("DDWRR", Policy::ddwrr(DDWRR_WINDOW)),
        ("AFFINITY", Policy::affinity(DDWRR_WINDOW)),
        ("BANDIT", Policy::bandit(DDWRR_WINDOW)),
    ]
}

fn run_scenario(
    sc: &Scenario,
    tiles: u64,
    on_run: &mut dyn FnMut(&PolicyRunRow, &[TraceEvent]),
) -> Vec<PolicyRunRow> {
    let workload = WorkloadSpec {
        tiles,
        ..WorkloadSpec::paper_base(sc.rate)
    };
    let mut rows = Vec::new();
    let mut ddwrr_ms = 0.0;
    for (pname, policy) in policies() {
        let mut cfg = SimConfig::new((sc.cluster)(), policy);
        cfg.estimator_noise = sc.noise;
        cfg.async_transfers = sc.async_transfers;
        cfg.seed = sc.seed;
        cfg.recorder = Recorder::enabled();
        let report = run_nbia(&cfg, &workload);
        let events = cfg.recorder.take_events();
        let decisions = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::PolicyDecision { .. }))
            .count() as u64;
        let profile_updates = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ProfileUpdated { .. }))
            .count() as u64;
        let makespan_ms = report.makespan.as_secs_f64() * 1e3;
        if pname == "DDWRR" {
            ddwrr_ms = makespan_ms;
        }
        let tasks = |kind| (0..=1u8).map(|l| report.tasks(kind, l)).sum();
        let row = PolicyRunRow {
            scenario: sc.name.to_string(),
            policy: pname.to_string(),
            learned: policy.kind.learned(),
            hetero: sc.hetero,
            stale: sc.stale,
            makespan_ms,
            speedup: report.speedup(),
            tasks_cpu: tasks(DeviceKind::Cpu),
            tasks_gpu: tasks(DeviceKind::Gpu),
            decisions,
            profile_updates,
            vs_ddwrr_pct: if ddwrr_ms > 0.0 {
                100.0 * (makespan_ms - ddwrr_ms) / ddwrr_ms
            } else {
                0.0
            },
        };
        on_run(&row, &events);
        rows.push(row);
    }
    rows
}

/// Run the full head-to-head: every policy on every scenario, DDWRR first
/// within each scenario so the deltas can be computed.
pub fn head_to_head(quick: bool) -> Vec<PolicyRunRow> {
    head_to_head_traced(quick, |_, _| {})
}

/// [`head_to_head`] with a per-run hook receiving each finished row and
/// the run's full event trace (for round-trip checks and `--trace` dumps).
pub fn head_to_head_traced(
    quick: bool,
    mut on_run: impl FnMut(&PolicyRunRow, &[TraceEvent]),
) -> Vec<PolicyRunRow> {
    SCENARIOS
        .iter()
        .flat_map(|sc| run_scenario(sc, sc.tiles[usize::from(quick)], &mut on_run))
        .collect()
}

/// Render gate rows as the `BENCH_policies.json` document. The output
/// satisfies [`validate_policies_report`] whenever the head-to-head
/// verdicts hold.
pub fn render_policies_report(rows: &[PolicyRunRow], quick: bool) -> String {
    let runs: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"scenario\": \"{}\", \"policy\": \"{}\", ",
                    "\"learned\": {}, \"hetero\": {}, \"stale\": {},\n",
                    "      \"makespan_ms\": {:.3}, \"speedup\": {:.3}, ",
                    "\"vs_ddwrr_pct\": {:.2},\n",
                    "      \"tasks_cpu\": {}, \"tasks_gpu\": {}, ",
                    "\"decisions\": {}, \"profile_updates\": {}\n",
                    "    }}"
                ),
                r.scenario,
                r.policy,
                r.learned,
                r.hetero,
                r.stale,
                r.makespan_ms,
                r.speedup,
                r.vs_ddwrr_pct,
                r.tasks_cpu,
                r.tasks_gpu,
                r.decisions,
                r.profile_updates
            )
        })
        .collect();
    format!(
        "{{\n  \"quick\": {quick},\n  \"tolerance_pct\": {PAPER_TOLERANCE_PCT},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        runs.join(",\n")
    )
}

fn require_u64(run: &json::Value, key: &str) -> Result<u64, String> {
    run.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("run missing numeric '{key}'"))
}

fn require_f64(run: &json::Value, key: &str) -> Result<f64, String> {
    run.get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("run missing numeric '{key}'"))
}

fn require_bool(run: &json::Value, key: &str) -> Result<bool, String> {
    run.get(key)
        .and_then(|v| v.as_bool())
        .ok_or_else(|| format!("run missing boolean '{key}'"))
}

/// Schema-validate a `BENCH_policies.json` document and enforce the gate's
/// head-to-head verdicts:
///
/// * every run carries the identifying fields and processed tasks
///   (`tasks_cpu + tasks_gpu > 0`);
/// * learned runs engaged the learned paths (`decisions > 0` and
///   `profile_updates > 0`); classic runs stayed inert (both zero);
/// * on non-stale scenarios every learned run is within the document's
///   `tolerance_pct` of DDWRR;
/// * at least one learned run on a heterogeneous scenario beat DDWRR
///   outright (`vs_ddwrr_pct < 0`);
/// * on every stale scenario at least one learned run beat DDWRR.
pub fn validate_policies_report(text: &str) -> Result<(), String> {
    let v = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let tolerance = v
        .get("tolerance_pct")
        .and_then(|t| t.as_f64())
        .ok_or("missing numeric 'tolerance_pct'")?;
    let runs = v
        .get("runs")
        .and_then(|r| r.as_arr())
        .ok_or("missing 'runs' array")?;
    if runs.is_empty() {
        return Err("'runs' is empty".to_string());
    }
    let mut stale_scenarios: Vec<String> = Vec::new();
    let mut stale_wins: Vec<String> = Vec::new();
    let mut hetero_win = false;
    for (i, run) in runs.iter().enumerate() {
        let ctx = |e: String| format!("run {i}: {e}");
        let scenario = run
            .get("scenario")
            .and_then(|p| p.as_str())
            .ok_or_else(|| ctx("missing string 'scenario'".to_string()))?
            .to_string();
        run.get("policy")
            .and_then(|p| p.as_str())
            .ok_or_else(|| ctx("missing string 'policy'".to_string()))?;
        let learned = require_bool(run, "learned").map_err(ctx)?;
        let hetero = require_bool(run, "hetero").map_err(ctx)?;
        let stale = require_bool(run, "stale").map_err(ctx)?;
        let makespan = require_f64(run, "makespan_ms").map_err(ctx)?;
        if makespan <= 0.0 {
            return Err(ctx(format!("non-positive makespan {makespan}")));
        }
        require_f64(run, "speedup").map_err(ctx)?;
        let delta = require_f64(run, "vs_ddwrr_pct").map_err(ctx)?;
        let cpu = require_u64(run, "tasks_cpu").map_err(ctx)?;
        let gpu = require_u64(run, "tasks_gpu").map_err(ctx)?;
        if cpu + gpu == 0 {
            return Err(ctx("run processed no tasks".to_string()));
        }
        let decisions = require_u64(run, "decisions").map_err(ctx)?;
        let updates = require_u64(run, "profile_updates").map_err(ctx)?;
        if learned && (decisions == 0 || updates == 0) {
            return Err(ctx(format!(
                "learned run never engaged the learner \
                 ({decisions} decisions, {updates} profile updates)"
            )));
        }
        if !learned && (decisions != 0 || updates != 0) {
            return Err(ctx(format!(
                "classic run emitted learner events \
                 ({decisions} decisions, {updates} profile updates)"
            )));
        }
        if learned && !stale && delta > tolerance {
            return Err(ctx(format!(
                "learned policy loses to DDWRR by {delta:.2}% \
                 (tolerance {tolerance}%) on a well-calibrated scenario"
            )));
        }
        if learned && hetero && delta < 0.0 {
            hetero_win = true;
        }
        if stale {
            if !stale_scenarios.contains(&scenario) {
                stale_scenarios.push(scenario.clone());
            }
            if learned && delta < 0.0 && !stale_wins.contains(&scenario) {
                stale_wins.push(scenario);
            }
        }
    }
    if stale_scenarios.is_empty() {
        return Err("no stale-profile scenario in the report".to_string());
    }
    for sc in &stale_scenarios {
        if !stale_wins.contains(sc) {
            return Err(format!(
                "no learned policy beat DDWRR on stale scenario '{sc}'"
            ));
        }
    }
    if !hetero_win {
        return Err("no learned policy beat DDWRR on any heterogeneous scenario".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<PolicyRunRow> {
        let mk =
            |scenario: &str, policy: &str, hetero: bool, stale: bool, delta: f64| PolicyRunRow {
                scenario: scenario.into(),
                policy: policy.into(),
                learned: policy != "DDWRR",
                hetero,
                stale,
                makespan_ms: 100.0 + delta,
                speedup: 4.0,
                tasks_cpu: 70,
                tasks_gpu: 30,
                decisions: if policy == "DDWRR" { 0 } else { 50 },
                profile_updates: if policy == "DDWRR" { 0 } else { 100 },
                vs_ddwrr_pct: delta,
            };
        vec![
            mk("paper_hom", "DDWRR", false, false, 0.0),
            mk("paper_hom", "AFFINITY", false, false, 1.2),
            mk("paper_hom", "BANDIT", false, false, 3.0),
            mk("stale_profile", "DDWRR", true, true, 0.0),
            mk("stale_profile", "AFFINITY", true, true, -8.0),
            mk("stale_profile", "BANDIT", true, true, 2.0),
        ]
    }

    #[test]
    fn report_renders_and_validates() {
        let text = render_policies_report(&rows(), true);
        validate_policies_report(&text).expect("schema-valid report");
    }

    #[test]
    fn gate_verdicts_are_enforced() {
        // A learned loss beyond tolerance on a paper scenario fails.
        let mut r = rows();
        r[2].vs_ddwrr_pct = 9.0;
        let text = render_policies_report(&r, false);
        assert!(validate_policies_report(&text).is_err(), "paper tolerance");

        // No learned win on the stale scenario fails.
        let mut r = rows();
        r[4].vs_ddwrr_pct = 1.0;
        let text = render_policies_report(&r, false);
        assert!(validate_policies_report(&text).is_err(), "stale win");

        // No learned win on any heterogeneous scenario fails.
        let mut r = rows();
        for row in &mut r {
            row.hetero = false;
        }
        let text = render_policies_report(&r, false);
        assert!(validate_policies_report(&text).is_err(), "hetero win");

        // A learned run that never engaged the learner fails.
        let mut r = rows();
        r[4].decisions = 0;
        let text = render_policies_report(&r, false);
        assert!(validate_policies_report(&text).is_err(), "engagement");

        // A classic run that emitted learner events fails.
        let mut r = rows();
        r[0].profile_updates = 3;
        let text = render_policies_report(&r, false);
        assert!(validate_policies_report(&text).is_err(), "inertness");

        // A report without any stale scenario fails.
        let r: Vec<PolicyRunRow> = rows().into_iter().take(3).collect();
        let text = render_policies_report(&r, false);
        assert!(validate_policies_report(&text).is_err(), "stale presence");

        assert!(validate_policies_report("{}").is_err(), "missing runs");
    }

    #[test]
    fn head_to_head_learned_paths_engage() {
        // A reduced stale-profile run: enough to prove the learned event
        // paths engage and the classic reference stays inert (the real
        // verdicts run at gate scale in `repro policies`).
        let rows = run_scenario(&SCENARIOS[2], 250, &mut |_, _| {});
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.makespan_ms > 0.0, "{r:?}");
            assert!(r.tasks_cpu + r.tasks_gpu > 0, "{r:?}");
            if r.learned {
                assert!(r.decisions > 0, "learner idle: {r:?}");
                assert!(r.profile_updates > 0, "profile idle: {r:?}");
            } else {
                assert_eq!(r.decisions, 0, "classic run decided: {r:?}");
                assert_eq!(r.profile_updates, 0, "classic run observed: {r:?}");
            }
        }
    }
}
