//! # anthill-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (Section 6). Each experiment is a library function returning structured
//! rows — the `repro` binary formats them, and the integration tests
//! assert the paper's qualitative shapes on reduced workloads.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table 1 (estimator errors)        | [`experiments::estimator::table1`] |
//! | Fig. 6 (sync vs async by size)    | [`experiments::transfer::fig6`] |
//! | Fig. 7 (streams vs chunk size)    | [`experiments::transfer::fig7`] |
//! | Table 2 (static vs dynamic)       | [`experiments::transfer::table2`] |
//! | Table 3 (CPU-only times)          | [`experiments::cluster::table3`] |
//! | Fig. 8 (intra-filter policies)    | [`experiments::cluster::fig8`] |
//! | Table 4 (CPU tile profile)        | [`experiments::cluster::table4`] |
//! | Fig. 9 (homogeneous base case)    | [`experiments::cluster::fig9`] |
//! | Fig. 10 (heterogeneous base case) | [`experiments::cluster::fig10`] |
//! | Table 6 (GPU tile profile)        | [`experiments::cluster::table6`] |
//! | Fig. 11 (best request windows)    | [`experiments::cluster::fig11`] |
//! | Fig. 12 (ODDS dynamics)           | [`experiments::cluster::fig12`] |
//! | Fig. 13 (homogeneous scaling)     | [`experiments::cluster::fig13`] |
//! | Fig. 14 (heterogeneous scaling)   | [`experiments::cluster::fig14`] |
//!
//! (The paper's Table 5 is a policy taxonomy, documented in
//! `anthill::policy`.)
//!
//! Ablations and extensions beyond the paper's figures:
//!
//! | Extension | Function |
//! |---|---|
//! | estimator k sweep (paper: k=2 near-best) | [`experiments::estimator::table1_sweep_k`] |
//! | model zoo (paper future work)            | [`experiments::estimator::sweep_models`] |
//! | mixed GPU generations (§6.2 remark)      | [`experiments::transfer::mixed_gpus`] |
//! | concurrent kernels (paper future work)   | [`experiments::transfer::concurrent_kernels`] |
//! | filter fusion (the paper's setup choice) | [`experiments::transfer::ablate_fusion`] |

#![warn(missing_docs)]

pub mod elastic;
pub mod experiments;
pub mod graph;
pub mod load;
pub mod netbench;
pub mod policies;
pub mod viz;
