//! `BENCH_net.json`: the event-loop coordinator's throughput report
//! schema (DESIGN.md §15).
//!
//! The `repro netbench` gate measures two things and renders one
//! document:
//!
//! * **ab** — the frames/sec A/B: the identical loopback workload runs
//!   once through the retained thread-per-socket coordinator
//!   (`NetPath::Threads`) and once through the readiness-based event
//!   loop (`NetPath::EventLoop`). The frame count comes from the event
//!   loop's wire counters (the protocol traffic is the same workload on
//!   both paths), so `speedup` is exactly the wall-clock ratio, and
//!   `alloc_per_frame` is the write path's pool-miss rate — the
//!   zero-copy claim in one number.
//! * **scale** — the fan-in proof: one event-loop coordinator
//!   completing a run over 1000 in-process loopback workers (128 under
//!   `--quick`), zero deaths, nothing lost.
//!
//! [`validate_netbench_report`] is the schema gate CI runs against the
//! written file: structural presence, throughput arithmetic that agrees
//! with itself, the recorded speedup clearing the recorded gate, an
//! amortized allocation rate below one buffer per frame, and full-size
//! scale evidence on non-`--quick` documents.

use anthill::obs::json;

/// One coordinator path's measurement in the A/B section.
#[derive(Debug, Clone, Copy)]
pub struct PathSample {
    /// Wall-clock duration of the run, milliseconds.
    pub wall_ms: f64,
    /// Wire frames (both directions) divided by the wall clock.
    pub frames_per_sec: f64,
}

/// The A/B section: same workload, both coordinator paths.
#[derive(Debug, Clone)]
pub struct AbRow {
    /// Loopback workers per run.
    pub workers: u64,
    /// Source buffers per run.
    pub tasks: u64,
    /// Total wire frames (tx + rx) measured on the event-loop run.
    pub frames: u64,
    /// Thread-per-socket baseline.
    pub threads: PathSample,
    /// Readiness-based event loop.
    pub eventloop: PathSample,
    /// `eventloop.frames_per_sec / threads.frames_per_sec`.
    pub speedup: f64,
    /// Event-loop frames accepted into write queues.
    pub tx_frames: u64,
    /// Event-loop frames decoded off the read side.
    pub rx_frames: u64,
    /// Event-loop bytes the kernel accepted.
    pub tx_bytes: u64,
    /// Event-loop bytes read.
    pub rx_bytes: u64,
    /// `writev` calls that moved bytes (coalescing evidence:
    /// `tx_frames / flushes` is the average frames per syscall).
    pub flushes: u64,
    /// Write-path buffer allocations per transmitted frame
    /// (`pool_misses / tx_frames`).
    pub alloc_per_frame: f64,
}

/// The 1000-worker fan-in section (event loop only).
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Loopback workers connected to the one coordinator.
    pub workers: u64,
    /// Source buffers offered.
    pub tasks: u64,
    /// Buffers completed (must equal `tasks`).
    pub completed: u64,
    /// Worker deaths (must be zero).
    pub deaths: u64,
    /// Wall-clock duration, milliseconds.
    pub wall_ms: f64,
    /// Wire frames per second over the whole run.
    pub frames_per_sec: f64,
    /// Write-path buffer allocations per transmitted frame.
    pub alloc_per_frame: f64,
}

/// Render the two sections as the `BENCH_net.json` document. The output
/// satisfies [`validate_netbench_report`] whenever the rows record a
/// passing run.
pub fn render_netbench_report(
    ab: &AbRow,
    scale: &ScaleRow,
    quick: bool,
    bind_cores: bool,
    min_speedup: f64,
    seed: u64,
) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"seed\": {seed},\n",
            "  \"quick\": {quick},\n",
            "  \"bind_cores\": {bind},\n",
            "  \"min_speedup_gate\": {gate:.2},\n",
            "  \"ab\": {{\n",
            "    \"workers\": {aw}, \"tasks\": {at}, \"frames\": {af},\n",
            "    \"threads\": {{\"wall_ms\": {tw:.2}, \"frames_per_sec\": {tf:.1}}},\n",
            "    \"eventloop\": {{\"wall_ms\": {ew:.2}, \"frames_per_sec\": {ef:.1}}},\n",
            "    \"speedup\": {sp:.4},\n",
            "    \"tx_frames\": {txf}, \"rx_frames\": {rxf}, ",
            "\"tx_bytes\": {txb}, \"rx_bytes\": {rxb}, \"flushes\": {fl},\n",
            "    \"alloc_per_frame\": {apf:.6}\n",
            "  }},\n",
            "  \"scale\": {{\n",
            "    \"workers\": {sw}, \"tasks\": {st}, \"completed\": {sc}, ",
            "\"deaths\": {sd},\n",
            "    \"wall_ms\": {swall:.2}, \"frames_per_sec\": {sf:.1}, ",
            "\"alloc_per_frame\": {sapf:.6}\n",
            "  }}\n",
            "}}\n"
        ),
        seed = seed,
        quick = quick,
        bind = bind_cores,
        gate = min_speedup,
        aw = ab.workers,
        at = ab.tasks,
        af = ab.frames,
        tw = ab.threads.wall_ms,
        tf = ab.threads.frames_per_sec,
        ew = ab.eventloop.wall_ms,
        ef = ab.eventloop.frames_per_sec,
        sp = ab.speedup,
        txf = ab.tx_frames,
        rxf = ab.rx_frames,
        txb = ab.tx_bytes,
        rxb = ab.rx_bytes,
        fl = ab.flushes,
        apf = ab.alloc_per_frame,
        sw = scale.workers,
        st = scale.tasks,
        sc = scale.completed,
        sd = scale.deaths,
        swall = scale.wall_ms,
        sf = scale.frames_per_sec,
        sapf = scale.alloc_per_frame,
    )
}

fn require_u64(obj: &json::Value, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("missing numeric '{key}'"))
}

fn require_f64(obj: &json::Value, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(|v| v.as_f64())
        .filter(|x| x.is_finite())
        .ok_or_else(|| format!("missing finite numeric '{key}'"))
}

fn require_path(obj: &json::Value, key: &str) -> Result<(f64, f64), String> {
    let p = obj
        .get(key)
        .ok_or_else(|| format!("missing '{key}' object"))?;
    let wall = require_f64(p, "wall_ms").map_err(|e| format!("{key}: {e}"))?;
    let fps = require_f64(p, "frames_per_sec").map_err(|e| format!("{key}: {e}"))?;
    if wall <= 0.0 || fps <= 0.0 {
        return Err(format!(
            "{key}: wall_ms and frames_per_sec must be positive"
        ));
    }
    Ok((wall, fps))
}

/// Full-size scale bar: the acceptance run must prove the 1000-worker
/// loopback fan-in (`--quick` shrinks it for CI wall-clock budgets).
pub const SCALE_WORKERS_FULL: u64 = 1000;

/// Schema-validate a `BENCH_net.json` document. Beyond structural
/// presence this enforces the gate's meaning: the recorded speedup
/// clears the recorded `min_speedup_gate`, the two throughput numbers
/// agree with the shared frame count (the A/B measured the same
/// workload), the write path amortizes to under one allocation per
/// frame, the scale run lost nothing and killed nobody, and a
/// non-`--quick` document proves the full 1000-worker fan-in.
pub fn validate_netbench_report(text: &str) -> Result<(), String> {
    let v = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    v.get("seed")
        .and_then(|s| s.as_u64())
        .ok_or("missing numeric 'seed'")?;
    let quick = v
        .get("quick")
        .and_then(|q| q.as_bool())
        .ok_or("missing boolean 'quick'")?;
    v.get("bind_cores")
        .and_then(|b| b.as_bool())
        .ok_or("missing boolean 'bind_cores'")?;
    let gate = require_f64(&v, "min_speedup_gate")?;

    let ab = v.get("ab").ok_or("missing 'ab' object")?;
    let ctx = |e: String| format!("ab: {e}");
    let workers = require_u64(ab, "workers").map_err(ctx)?;
    let tasks = require_u64(ab, "tasks").map_err(ctx)?;
    let frames = require_u64(ab, "frames").map_err(ctx)?;
    if workers == 0 || tasks == 0 || frames == 0 {
        return Err("ab: empty workload".to_string());
    }
    let (t_wall, t_fps) = require_path(ab, "threads").map_err(ctx)?;
    let (e_wall, e_fps) = require_path(ab, "eventloop").map_err(ctx)?;
    let speedup = require_f64(ab, "speedup").map_err(ctx)?;
    // Both paths ran the same frame stream, so fps must be the shared
    // count over each path's own wall clock (2% slack for rounding).
    let consistent = |fps: f64, wall_ms: f64| {
        let expect = frames as f64 / (wall_ms / 1e3);
        (fps - expect).abs() <= expect * 0.02
    };
    if !consistent(t_fps, t_wall) || !consistent(e_fps, e_wall) {
        return Err("ab: frames_per_sec disagrees with frames / wall_ms".to_string());
    }
    if (speedup - e_fps / t_fps).abs() > speedup * 0.02 {
        return Err("ab: 'speedup' is not eventloop fps over threads fps".to_string());
    }
    if speedup < gate {
        return Err(format!(
            "ab: speedup {speedup:.2}x below the recorded {gate:.2}x gate"
        ));
    }
    let tx_frames = require_u64(ab, "tx_frames").map_err(ctx)?;
    let rx_frames = require_u64(ab, "rx_frames").map_err(ctx)?;
    if tx_frames + rx_frames != frames {
        return Err("ab: tx_frames + rx_frames != frames".to_string());
    }
    require_u64(ab, "tx_bytes").map_err(ctx)?;
    require_u64(ab, "rx_bytes").map_err(ctx)?;
    let flushes = require_u64(ab, "flushes").map_err(ctx)?;
    if flushes == 0 || flushes > tx_frames {
        return Err(format!(
            "ab: {flushes} flushes for {tx_frames} tx frames — coalescing evidence missing"
        ));
    }
    let apf = require_f64(ab, "alloc_per_frame").map_err(ctx)?;
    if !(0.0..=1.0).contains(&apf) {
        return Err(format!(
            "ab: alloc_per_frame {apf} outside [0, 1] — the pool is not amortizing"
        ));
    }

    let scale = v.get("scale").ok_or("missing 'scale' object")?;
    let ctx = |e: String| format!("scale: {e}");
    let s_workers = require_u64(scale, "workers").map_err(ctx)?;
    let s_tasks = require_u64(scale, "tasks").map_err(ctx)?;
    let s_completed = require_u64(scale, "completed").map_err(ctx)?;
    let s_deaths = require_u64(scale, "deaths").map_err(ctx)?;
    require_f64(scale, "wall_ms").map_err(ctx)?;
    require_f64(scale, "frames_per_sec").map_err(ctx)?;
    let s_apf = require_f64(scale, "alloc_per_frame").map_err(ctx)?;
    if s_completed != s_tasks {
        return Err(format!(
            "scale: lost work ({s_completed} of {s_tasks} done)"
        ));
    }
    if s_deaths != 0 {
        return Err(format!("scale: {s_deaths} worker death(s)"));
    }
    if !(0.0..=1.0).contains(&s_apf) {
        return Err(format!("scale: alloc_per_frame {s_apf} outside [0, 1]"));
    }
    if !quick && s_workers < SCALE_WORKERS_FULL {
        return Err(format!(
            "scale: full run proves only {s_workers} workers (need {SCALE_WORKERS_FULL})"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> (AbRow, ScaleRow) {
        (
            AbRow {
                workers: 64,
                tasks: 24_000,
                frames: 100_000,
                threads: PathSample {
                    wall_ms: 4_000.0,
                    frames_per_sec: 25_000.0,
                },
                eventloop: PathSample {
                    wall_ms: 1_000.0,
                    frames_per_sec: 100_000.0,
                },
                speedup: 4.0,
                tx_frames: 52_000,
                rx_frames: 48_000,
                tx_bytes: 3_000_000,
                rx_bytes: 2_800_000,
                flushes: 9_000,
                alloc_per_frame: 0.002,
            },
            ScaleRow {
                workers: 1000,
                tasks: 3_000,
                completed: 3_000,
                deaths: 0,
                wall_ms: 2_500.0,
                frames_per_sec: 40_000.0,
                alloc_per_frame: 0.01,
            },
        )
    }

    #[test]
    fn report_renders_and_validates() {
        let (ab, scale) = rows();
        let text = render_netbench_report(&ab, &scale, false, false, 2.0, 42);
        validate_netbench_report(&text).expect("schema-valid report");
    }

    #[test]
    fn validation_rejects_regressions_and_broken_arithmetic() {
        let (ab, scale) = rows();
        let good = render_netbench_report(&ab, &scale, false, false, 2.0, 42);

        let slow = good.replace("\"speedup\": 4.0000", "\"speedup\": 1.5000");
        assert!(
            validate_netbench_report(&slow).is_err(),
            "speedup gate (and fps consistency)"
        );

        let cooked = good.replace(
            "\"threads\": {\"wall_ms\": 4000.00, \"frames_per_sec\": 25000.0}",
            "\"threads\": {\"wall_ms\": 4000.00, \"frames_per_sec\": 50000.0}",
        );
        assert!(
            validate_netbench_report(&cooked).is_err(),
            "fps must equal frames / wall"
        );

        let leaky = good.replace(
            "\"alloc_per_frame\": 0.002000",
            "\"alloc_per_frame\": 1.500000",
        );
        assert!(validate_netbench_report(&leaky).is_err(), "alloc gate");

        let lost = good.replace("\"completed\": 3000", "\"completed\": 2999");
        assert!(validate_netbench_report(&lost).is_err(), "loss gate");

        let died = good.replace("\"deaths\": 0", "\"deaths\": 1");
        assert!(validate_netbench_report(&died).is_err(), "death gate");

        let small = good.replace("\"workers\": 1000", "\"workers\": 500");
        assert!(
            validate_netbench_report(&small).is_err(),
            "full runs must prove 1000 workers"
        );
    }

    #[test]
    fn quick_documents_may_shrink_the_scale_run() {
        let (ab, mut scale) = rows();
        scale.workers = 128;
        scale.tasks = 512;
        scale.completed = 512;
        let text = render_netbench_report(&ab, &scale, true, true, 2.0, 42);
        validate_netbench_report(&text).expect("quick scale shrink is legal");
    }
}
