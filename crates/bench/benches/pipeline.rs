//! Benchmarks of the GPU transfer pipeline simulator (the engine behind
//! Figures 6–7 and Table 2): sync vs async-static vs adaptive, per
//! workload.

use anthill::transfer::pipeline;
use anthill_apps::vi::ViWorkload;
use anthill_hetsim::{GpuParams, NbiaCostModel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn pipeline_modes(c: &mut Criterion) {
    let gpu = GpuParams::geforce_8800gt();
    let mut g = c.benchmark_group("transfer_pipeline");
    let tiles = vec![NbiaCostModel::paper_calibrated().tile(512); 1_000];
    g.bench_function("nbia512_sync_1k", |b| {
        b.iter(|| black_box(pipeline::run_sync(&gpu, &tiles)))
    });
    g.bench_function("nbia512_async8_1k", |b| {
        b.iter(|| black_box(pipeline::run_async_static(&gpu, &tiles, 8)))
    });
    g.bench_function("nbia512_adaptive_1k", |b| {
        b.iter(|| black_box(pipeline::run_async_adaptive(&gpu, &tiles)))
    });
    let vi = ViWorkload {
        vector_len: 36_000_000,
        ..ViWorkload::paper(100_000)
    }
    .shapes();
    g.bench_function("vi_adaptive_360_chunks", |b| {
        b.iter(|| black_box(pipeline::run_async_adaptive(&gpu, &vi)))
    });
    g.finish();
}

criterion_group!(benches, pipeline_modes);
criterion_main!(benches);
