//! Microbenchmarks of the real computational kernels (the NBIA filter
//! bodies and the estimator benchmark applications).

use anthill_kernels::black_scholes::{price_batch, Option_};
use anthill_kernels::color::convert_tile;
use anthill_kernels::tiles::{tile_features, TileClass, TileGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn nbia_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("nbia_kernels");
    for &side in &[32u32, 128] {
        let mut gen = TileGenerator::new(1);
        let tile = gen.generate(TileClass::StromaPoor, side);
        g.throughput(Throughput::Elements(u64::from(side) * u64::from(side)));
        g.bench_with_input(
            BenchmarkId::new("color_conversion", side),
            &tile,
            |b, tile| b.iter(|| black_box(convert_tile(tile))),
        );
        g.bench_with_input(
            BenchmarkId::new("full_feature_vector", side),
            &tile,
            |b, tile| b.iter(|| black_box(tile_features(tile, side))),
        );
    }
    g.finish();
}

fn finance_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("black_scholes");
    let opts: Vec<Option_> = (0..10_000)
        .map(|i| Option_ {
            spot: 80.0 + (i % 40) as f64,
            strike: 100.0,
            expiry: 0.25 + (i % 8) as f64 * 0.25,
            rate: 0.02,
            volatility: 0.15 + (i % 6) as f64 * 0.05,
        })
        .collect();
    g.throughput(Throughput::Elements(opts.len() as u64));
    g.bench_function("price_10k", |b| b.iter(|| black_box(price_batch(&opts))));
    g.finish();
}

criterion_group!(benches, nbia_kernels, finance_kernels);
criterion_main!(benches);
