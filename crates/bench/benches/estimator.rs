//! Microbenchmarks of the performance estimator: kNN query cost vs
//! profile size, and fit cost. The paper asserts the on-line estimation
//! overhead is negligible relative to task granularity (~1 ms tasks).

use anthill_apps::bench_suite::BenchApp;
use anthill_estimator::{DeviceClass, KnnEstimator, TaskParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn estimator_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimator");
    for &jobs in &[30usize, 300] {
        let profile = BenchApp::HeartSim.generate_profile(7, jobs);
        let est = KnnEstimator::fit_default(profile);
        let query = TaskParams::nums(&[200.0, 900.0]);
        g.bench_with_input(BenchmarkId::new("predict_speedup", jobs), &est, |b, est| {
            b.iter(|| black_box(est.predict_speedup(DeviceClass::GPU, DeviceClass::CPU, &query)))
        });
    }
    g.bench_function("fit_30_jobs", |b| {
        let profile = BenchApp::HeartSim.generate_profile(7, 30);
        b.iter(|| black_box(KnnEstimator::fit_default(profile.clone())))
    });
    g.finish();
}

criterion_group!(benches, estimator_query);
criterion_main!(benches);
