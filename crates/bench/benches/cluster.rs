//! Benchmarks of the full simulated cluster runtime: one reduced NBIA run
//! per scheduling policy (the engine behind Figures 8–14), plus an
//! ablation of estimator-backed vs oracle weights.

use anthill::policy::Policy;
use anthill::sim::{run_nbia, SimConfig, WorkloadSpec};
use anthill_hetsim::ClusterSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn cluster_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_sim");
    g.sample_size(10);
    let w = WorkloadSpec {
        tiles: 4_000,
        ..WorkloadSpec::paper_base(0.08)
    };
    for (name, policy) in [
        ("ddfcfs", Policy::ddfcfs(8)),
        ("ddwrr", Policy::ddwrr(30)),
        ("odds", Policy::odds()),
    ] {
        g.bench_with_input(
            BenchmarkId::new("hetero_2node_4k_tiles", name),
            &policy,
            |b, &policy| {
                let cfg = SimConfig::new(ClusterSpec::heterogeneous(1, 1), policy);
                b.iter(|| black_box(run_nbia(&cfg, &w)))
            },
        );
    }
    // Ablation: oracle weights skip the kNN queries.
    for (name, use_est) in [("estimator", true), ("oracle", false)] {
        g.bench_with_input(
            BenchmarkId::new("weights", name),
            &use_est,
            |b, &use_est| {
                let mut cfg = SimConfig::new(ClusterSpec::homogeneous(1), Policy::odds());
                cfg.use_estimator = use_est;
                b.iter(|| black_box(run_nbia(&cfg, &w)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, cluster_policies);
criterion_main!(benches);
