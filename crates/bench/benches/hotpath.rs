//! Microbenchmarks of the native runtime's hot paths: coarse vs sharded
//! dispatch state, serialized vs batched trace emission, and sequential vs
//! parallel NBIA kernels. These isolate the layers that `repro perf`
//! measures end-to-end.

use anthill::buffer::{BufferId, DataBuffer};
use anthill::local::{ExecMode, HotPath, LocalFilter, LocalTask, Pipeline, WorkerSpec};
use anthill::obs::{DeviceRef, EventKind, Recorder};
use anthill::policy::PolicyKind;
use anthill::weights::OracleWeights;
use anthill_estimator::TaskParams;
use anthill_hetsim::{DeviceKind, GpuParams, TaskShape};
use anthill_kernels::texture::{feature_vector, feature_vector_par};
use anthill_kernels::tiles::QUANT_LEVELS;
use anthill_simkit::SimDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

/// Forwards its input unchanged: all measured time is runtime overhead.
struct Identity;
impl LocalFilter for Identity {
    fn handle(&self, _d: DeviceKind, task: LocalTask, out: &mut anthill::local::Emitter<'_>) {
        out.forward(task);
    }
}

fn tiny_task(id: u64) -> LocalTask {
    LocalTask::new(
        DataBuffer {
            id: BufferId(id),
            params: TaskParams::nums(&[id as f64]),
            shape: TaskShape {
                cpu: SimDuration::from_micros(1),
                gpu_kernel: SimDuration::from_micros(1),
                bytes_in: 8,
                bytes_out: 8,
            },
            level: 0,
            task: id,
        },
        (),
    )
}

fn dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    let weights = OracleWeights::new(GpuParams::geforce_8800gt(), true);
    const TASKS: u64 = 2_000;
    g.throughput(Throughput::Elements(TASKS));
    for (label, hot_path) in [("coarse", HotPath::Coarse), ("sharded", HotPath::Sharded)] {
        g.bench_with_input(
            BenchmarkId::new("identity_8w", label),
            &hot_path,
            |b, &hp| {
                b.iter(|| {
                    let mut p = Pipeline::new(PolicyKind::DdFcfs).with_hot_path(hp);
                    p.add_stage(
                        Arc::new(Identity),
                        vec![
                            WorkerSpec {
                                kind: DeviceKind::Cpu,
                                mode: ExecMode::Native,
                            };
                            8
                        ],
                    );
                    let (out, _) = p.run((0..TASKS).map(tiny_task).collect(), &weights);
                    black_box(out.len())
                })
            },
        );
    }
    g.finish();
}

fn trace_emission(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    const EVENTS: u64 = 10_000;
    g.throughput(Throughput::Elements(EVENTS));
    for (label, make) in [
        (
            "serialized",
            Recorder::enabled_serialized as fn() -> Recorder,
        ),
        ("batched", Recorder::enabled as fn() -> Recorder),
    ] {
        g.bench_with_input(BenchmarkId::new("record_drain", label), &make, |b, mk| {
            b.iter(|| {
                let r = mk();
                for i in 0..EVENTS {
                    r.record(
                        i,
                        DeviceRef::worker(0, DeviceKind::Cpu, 0),
                        EventKind::Enqueue {
                            buffer: i,
                            level: 0,
                        },
                    );
                }
                black_box(r.take_events().len())
            })
        });
    }
    g.finish();
}

fn kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    let side = 64usize;
    let img: Vec<u8> = (0..side * side)
        .map(|i| ((i * 31) % usize::from(QUANT_LEVELS)) as u8)
        .collect();
    g.throughput(Throughput::Elements((side * side) as u64));
    g.bench_function("features_seq", |b| {
        b.iter(|| black_box(feature_vector(&img, side, side, QUANT_LEVELS)))
    });
    g.bench_function("features_par4", |b| {
        b.iter(|| black_box(feature_vector_par(&img, side, side, QUANT_LEVELS, 4)))
    });
    g.finish();
}

criterion_group!(hotpath, dispatch, trace_emission, kernels);
criterion_main!(hotpath);
