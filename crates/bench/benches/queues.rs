//! Microbenchmarks of the shared ready queue: FIFO (DDFCFS) vs sorted
//! per-device pops (DDWRR/ODDS). The paper reports the scheduling-policy
//! overhead "including on-line performance estimation" as negligible —
//! these benches quantify ours.

use anthill::buffer::{BufferId, DataBuffer};
use anthill::queue::SharedQueue;
use anthill_estimator::TaskParams;
use anthill_hetsim::{DeviceKind, NbiaCostModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn buffers(n: u64) -> Vec<(DataBuffer, [f64; 2])> {
    let model = NbiaCostModel::paper_calibrated();
    (0..n)
        .map(|i| {
            let side = if i % 8 == 0 { 512 } else { 32 };
            let b = DataBuffer {
                id: BufferId(i),
                params: TaskParams::nums(&[f64::from(side)]),
                shape: model.tile(side),
                level: u8::from(side > 32),
                task: i,
            };
            let w = if side > 32 { [0.03, 33.0] } else { [1.0, 1.0] };
            (b, w)
        })
        .collect()
}

fn queue_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("shared_queue");
    for &n in &[1_000u64, 30_000] {
        let items = buffers(n);
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(
            BenchmarkId::new("insert_pop_fifo", n),
            &items,
            |b, items| {
                b.iter(|| {
                    let mut q = SharedQueue::new();
                    for (buf, w) in items.iter().cloned() {
                        q.insert(buf, w, None);
                    }
                    while let Some(x) = q.pop_fifo() {
                        black_box(&x);
                    }
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("insert_pop_best_gpu", n),
            &items,
            |b, items| {
                b.iter(|| {
                    let mut q = SharedQueue::new();
                    for (buf, w) in items.iter().cloned() {
                        q.insert(buf, w, None);
                    }
                    while let Some(x) = q.pop_best(DeviceKind::Gpu) {
                        black_box(&x);
                    }
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("mixed_consumers", n),
            &items,
            |b, items| {
                b.iter(|| {
                    let mut q = SharedQueue::new();
                    for (buf, w) in items.iter().cloned() {
                        q.insert(buf, w, None);
                    }
                    loop {
                        let a = q.pop_best(DeviceKind::Gpu);
                        let b2 = q.pop_best(DeviceKind::Cpu);
                        if a.is_none() && b2.is_none() {
                            break;
                        }
                        black_box((&a, &b2));
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, queue_ops);
criterion_main!(benches);
