//! Microbenchmarks of the discrete-event engine and RNG — the substrate
//! every cluster experiment runs on. Event throughput bounds how large a
//! simulated cluster/workload is practical.

use anthill_simkit::{Engine, Scheduler, SimDuration, SimRng, SimTime, World};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

struct Chain {
    remaining: u64,
}

enum Ev {
    Tick,
}

impl World for Chain {
    type Event = Ev;
    fn handle(&mut self, _now: SimTime, _ev: Ev, sched: &mut Scheduler<Ev>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.after(SimDuration::from_nanos(10), Ev::Tick);
        }
    }
}

fn engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    for &n in &[1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("chained_events", n), &n, |b, &n| {
            b.iter(|| {
                let mut eng = Engine::new(Chain { remaining: n });
                eng.schedule(SimTime::ZERO, Ev::Tick);
                eng.run();
                black_box(eng.steps())
            })
        });
    }
    // Fan: many events pre-scheduled at distinct times.
    g.bench_function("heap_100k_preloaded", |b| {
        b.iter(|| {
            let mut eng = Engine::new(Chain { remaining: 0 });
            for i in 0..100_000u64 {
                eng.schedule(SimTime(i * 7 % 1_000_003), Ev::Tick);
            }
            eng.run();
            black_box(eng.steps())
        })
    });
    g.finish();
}

fn rng_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("next_u64_x1000", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000 {
                acc ^= rng.next_u64();
            }
            black_box(acc)
        })
    });
    g.bench_function("gaussian_x1000", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000 {
                acc += rng.gaussian();
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, engine_throughput, rng_throughput);
criterion_main!(benches);
