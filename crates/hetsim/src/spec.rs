//! Cluster topology: device kinds, node specs and cluster builders matching
//! the paper's testbed (Section 6): 14 nodes, each a 2.13 GHz Core 2 Duo
//! with one NVIDIA 8800GT, gigabit Ethernet. When the GPU is used, one CPU
//! core is dedicated to managing it and is not available for tasks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of a processing device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A general-purpose CPU core.
    Cpu,
    /// A GPU accelerator (modeled; see `gpu` module).
    Gpu,
}

impl DeviceKind {
    /// All device kinds, in scheduling order (CPU first = baseline).
    pub const ALL: [DeviceKind; 2] = [DeviceKind::Cpu, DeviceKind::Gpu];
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::Cpu => write!(f, "CPU"),
            DeviceKind::Gpu => write!(f, "GPU"),
        }
    }
}

/// Identifier of a node within a cluster.
pub type NodeId = usize;

/// Identifier of a device within a node: its kind and index among devices
/// of that kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceId {
    /// Hosting node.
    pub node: NodeId,
    /// Device class.
    pub kind: DeviceKind,
    /// Index among same-kind devices of the node.
    pub index: usize,
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}/{}{}", self.node, self.kind, self.index)
    }
}

/// Hardware composition of one node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Number of CPU cores usable for application tasks.
    pub cpu_cores: usize,
    /// Number of GPUs.
    pub gpus: usize,
}

impl NodeSpec {
    /// The paper's GPU-equipped node: a dual-core CPU with one 8800GT.
    /// One core manages the GPU, leaving 1 worker core + 1 GPU.
    pub fn paper_gpu_node() -> NodeSpec {
        NodeSpec {
            cpu_cores: 1,
            gpus: 1,
        }
    }

    /// The paper's GPU-less node: both CPU cores available for tasks.
    pub fn paper_cpu_node() -> NodeSpec {
        NodeSpec {
            cpu_cores: 2,
            gpus: 0,
        }
    }

    /// Devices of this node, in enumeration order (CPUs then GPUs).
    pub fn devices(&self, node: NodeId) -> Vec<DeviceId> {
        let mut out = Vec::with_capacity(self.cpu_cores + self.gpus);
        for index in 0..self.cpu_cores {
            out.push(DeviceId {
                node,
                kind: DeviceKind::Cpu,
                index,
            });
        }
        for index in 0..self.gpus {
            out.push(DeviceId {
                node,
                kind: DeviceKind::Gpu,
                index,
            });
        }
        out
    }

    /// Total devices on the node.
    pub fn device_count(&self) -> usize {
        self.cpu_cores + self.gpus
    }
}

/// A whole cluster: an ordered list of node specs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Per-node hardware.
    pub nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// A cluster from explicit node specs.
    pub fn new(nodes: Vec<NodeSpec>) -> ClusterSpec {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        ClusterSpec { nodes }
    }

    /// The paper's homogeneous cluster: `n` CPU+GPU nodes (Section 6.4).
    pub fn homogeneous(n: usize) -> ClusterSpec {
        ClusterSpec::new(vec![NodeSpec::paper_gpu_node(); n])
    }

    /// The paper's heterogeneous cluster: GPU-equipped nodes first, then
    /// GPU-less dual-core nodes (Section 6.4: 50/50 split when scaling).
    pub fn heterogeneous(gpu_nodes: usize, cpu_nodes: usize) -> ClusterSpec {
        let mut nodes = vec![NodeSpec::paper_gpu_node(); gpu_nodes];
        nodes.extend(vec![NodeSpec::paper_cpu_node(); cpu_nodes]);
        ClusterSpec::new(nodes)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false (clusters are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All devices in the cluster, node by node.
    pub fn devices(&self) -> Vec<DeviceId> {
        self.nodes
            .iter()
            .enumerate()
            .flat_map(|(i, n)| n.devices(i))
            .collect()
    }

    /// Count of devices of a kind across the cluster.
    pub fn count_kind(&self, kind: DeviceKind) -> usize {
        self.nodes
            .iter()
            .map(|n| match kind {
                DeviceKind::Cpu => n.cpu_cores,
                DeviceKind::Gpu => n.gpus,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_nodes() {
        let g = NodeSpec::paper_gpu_node();
        assert_eq!((g.cpu_cores, g.gpus), (1, 1));
        let c = NodeSpec::paper_cpu_node();
        assert_eq!((c.cpu_cores, c.gpus), (2, 0));
    }

    #[test]
    fn device_enumeration() {
        let n = NodeSpec {
            cpu_cores: 2,
            gpus: 1,
        };
        let devs = n.devices(3);
        assert_eq!(devs.len(), 3);
        assert_eq!(devs[0].kind, DeviceKind::Cpu);
        assert_eq!(devs[2].kind, DeviceKind::Gpu);
        assert!(devs.iter().all(|d| d.node == 3));
        assert_eq!(format!("{}", devs[2]), "n3/GPU0");
    }

    #[test]
    fn homogeneous_cluster_counts() {
        let c = ClusterSpec::homogeneous(14);
        assert_eq!(c.len(), 14);
        assert_eq!(c.count_kind(DeviceKind::Gpu), 14);
        assert_eq!(c.count_kind(DeviceKind::Cpu), 14);
        assert_eq!(c.devices().len(), 28);
    }

    #[test]
    fn heterogeneous_cluster_counts() {
        let c = ClusterSpec::heterogeneous(7, 7);
        assert_eq!(c.len(), 14);
        assert_eq!(c.count_kind(DeviceKind::Gpu), 7);
        assert_eq!(c.count_kind(DeviceKind::Cpu), 7 + 14);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        let _ = ClusterSpec::new(vec![]);
    }
}
