//! # anthill-hetsim — heterogeneous hardware models
//!
//! The paper evaluated its runtime optimizations on a 14-node cluster of
//! CPU+GPU machines. This crate substitutes that testbed with calibrated
//! discrete-event models (see `DESIGN.md` for the substitution argument):
//!
//! * [`GpuEngines`]/[`GpuParams`] — a CUDA-era GPU: one compute engine, one
//!   copy engine per direction, synchronous (pageable, blocking) vs
//!   asynchronous (pinned, overlapping) copy paths, per-stream driver
//!   dispatch costs and a device-memory cap on in-flight events;
//! * [`Network`]/[`NetParams`] — switched gigabit Ethernet with per-node
//!   full-duplex NICs and cheap loopback;
//! * [`ClusterSpec`]/[`NodeSpec`]/[`DeviceId`]/[`DeviceKind`] — the
//!   topology vocabulary shared with the runtime;
//! * [`NbiaCostModel`]/[`ViCostModel`]/[`TaskShape`] — application cost
//!   models calibrated to the paper's measured numbers.
//!
//! The models expose *occupancy* ("if submitted now, when does it
//! finish?"); all decisions — which device runs a task, how many copies are
//! in flight — stay in the runtime (`anthill`), exactly where the paper
//! places them.

#![warn(missing_docs)]

pub mod concurrent;
mod cost;
mod gpu;
mod net;
mod spec;

pub use cost::{NbiaCostModel, TaskShape, ViCostModel};
pub use gpu::{CopyDir, CopyMode, GpuEngines, GpuParams};
pub use net::{NetParams, Network};
pub use spec::{ClusterSpec, DeviceId, DeviceKind, NodeId, NodeSpec};
