//! Concurrent kernel execution — the paper's future work ("we intend to
//! consider the concurrent execution of multiple tasks on the same GPU to
//! exploit filters' intrinsic data parallelism").
//!
//! Small tasks cannot fill a GPU: a 32×32 NBIA tile occupies a tiny
//! fraction of the device's multiprocessors, so running such kernels one
//! at a time leaves the GPU mostly idle. Later hardware generations allow
//! several kernels to be resident at once; this model captures the
//! first-order effect: a kernel with *occupancy* `o ∈ (0, 1]` (the device
//! fraction it can use) runs at its natural speed while co-resident with
//! others as long as the total occupancy stays ≤ 1; the model enforces
//! this by giving the compute side `slots ≤ ⌊1/o⌋` parallel servers.
//! Copy engines are still shared, exactly as on real hardware.

use anthill_simkit::{MultiServer, SimDuration, SimTime};

use crate::gpu::{CopyMode, GpuParams};
use crate::TaskShape;

/// A GPU with concurrent-kernel support: `slots` kernels may be resident
/// at once, sharing single per-direction copy engines.
#[derive(Debug, Clone)]
pub struct ConcurrentGpu {
    /// Timing parameters (same calibration as [`crate::GpuEngines`]).
    pub params: GpuParams,
    compute: MultiServer,
    h2d: anthill_simkit::FifoServer,
    d2h: anthill_simkit::FifoServer,
}

impl ConcurrentGpu {
    /// A GPU allowing up to `slots >= 1` co-resident kernels.
    pub fn new(params: GpuParams, slots: usize) -> ConcurrentGpu {
        ConcurrentGpu {
            params,
            compute: MultiServer::new(slots.max(1)),
            h2d: anthill_simkit::FifoServer::new(),
            d2h: anthill_simkit::FifoServer::new(),
        }
    }

    /// Number of kernel slots.
    pub fn slots(&self) -> usize {
        self.compute.len()
    }

    /// The largest slot count that keeps `occupancy`-sized kernels from
    /// contending for execution resources.
    pub fn max_useful_slots(occupancy: f64) -> usize {
        if occupancy <= 0.0 {
            return usize::MAX;
        }
        ((1.0 / occupancy).floor() as usize).max(1)
    }

    /// Submit one task (async copies + kernel on any free slot); returns
    /// its completion time.
    pub fn submit(&mut self, now: SimTime, task: &TaskShape, active: usize) -> SimTime {
        let (_, h2d_done) = self
            .h2d
            .submit(now, self.params.copy_time(task.bytes_in, CopyMode::Async));
        let mgmt = self.params.stream_mgmt_per_stream * active as u64;
        let (_, _, kernel_done) = self
            .compute
            .submit(h2d_done, self.params.kernel_launch + task.gpu_kernel + mgmt);
        let (_, d2h_done) = self.d2h.submit(
            kernel_done,
            self.params.copy_time(task.bytes_out, CopyMode::Async),
        );
        d2h_done
    }

    /// Process a whole stream of tasks in Algorithm-1-style batches of
    /// `batch` in-flight events; returns the makespan.
    pub fn run_stream(&mut self, tasks: &[TaskShape], batch: usize) -> SimDuration {
        let batch = batch.max(1);
        let mut now = SimTime::ZERO;
        for chunk in tasks.chunks(batch) {
            let mut end = now;
            for t in chunk {
                end = end.max(self.submit(now, t, chunk.len()));
            }
            now = end + self.params.batch_dispatch;
        }
        now.since(SimTime::ZERO)
    }
}

/// Convenience: makespan of a task stream on a GPU with the given kernel
/// occupancy, choosing the slot count automatically (`⌊1/occupancy⌋`,
/// capped at `max_slots`).
pub fn concurrent_makespan(
    params: &GpuParams,
    tasks: &[TaskShape],
    occupancy: f64,
    max_slots: usize,
    batch: usize,
) -> SimDuration {
    let slots = ConcurrentGpu::max_useful_slots(occupancy).min(max_slots.max(1));
    let mut gpu = ConcurrentGpu::new(params.clone(), slots);
    gpu.run_stream(tasks, batch.max(slots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NbiaCostModel;

    fn small_tiles(n: usize) -> Vec<TaskShape> {
        vec![NbiaCostModel::paper_calibrated().tile(32); n]
    }

    #[test]
    fn one_slot_matches_serial_ordering() {
        let params = GpuParams::geforce_8800gt();
        let tasks = small_tiles(100);
        let serial = ConcurrentGpu::new(params.clone(), 1).run_stream(&tasks, 8);
        let also_serial = ConcurrentGpu::new(params, 1).run_stream(&tasks, 8);
        assert_eq!(serial, also_serial);
    }

    #[test]
    fn more_slots_speed_up_small_kernels() {
        let params = GpuParams::geforce_8800gt();
        let tasks = small_tiles(400);
        let t1 = ConcurrentGpu::new(params.clone(), 1).run_stream(&tasks, 16);
        let t4 = ConcurrentGpu::new(params.clone(), 4).run_stream(&tasks, 16);
        let t8 = ConcurrentGpu::new(params, 8).run_stream(&tasks, 16);
        assert!(
            t4.as_secs_f64() < 0.5 * t1.as_secs_f64(),
            "4 slots {t4} vs 1 slot {t1}"
        );
        assert!(t8 < t4);
    }

    #[test]
    fn copies_still_serialize_across_slots() {
        // With huge transfers, slots cannot help: the copy engine binds.
        let params = GpuParams::geforce_8800gt();
        let mut big = small_tiles(50);
        for t in &mut big {
            t.bytes_in = 50 << 20;
        }
        let t1 = ConcurrentGpu::new(params.clone(), 1).run_stream(&big, 8);
        let t8 = ConcurrentGpu::new(params, 8).run_stream(&big, 8);
        let gain = t1.as_secs_f64() / t8.as_secs_f64();
        assert!(gain < 1.15, "copy-bound gain should be small: {gain}");
    }

    #[test]
    fn max_useful_slots_respects_occupancy() {
        assert_eq!(ConcurrentGpu::max_useful_slots(1.0), 1);
        assert_eq!(ConcurrentGpu::max_useful_slots(0.25), 4);
        assert_eq!(ConcurrentGpu::max_useful_slots(0.3), 3);
        assert_eq!(ConcurrentGpu::max_useful_slots(0.0), usize::MAX);
    }

    #[test]
    fn helper_picks_bounded_slots() {
        let params = GpuParams::geforce_8800gt();
        let tasks = small_tiles(100);
        let auto = concurrent_makespan(&params, &tasks, 1024.0 / 262_144.0, 16, 16);
        let serial = ConcurrentGpu::new(params, 1).run_stream(&tasks, 16);
        assert!(auto < serial);
    }
}
