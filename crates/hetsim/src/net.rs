//! The cluster interconnect model: switched gigabit Ethernet, as in the
//! paper's testbed.
//!
//! Each node has a full-duplex NIC modeled as two
//! [`anthill_simkit::Pipe`]s (uplink for sends, downlink for receives);
//! messages serialize on the sender's uplink, cross the switch with a fixed
//! latency, and then serialize on the receiver's downlink. Loopback
//! messages (same node) skip the NIC entirely and only pay a small
//! in-memory handoff cost — streams between co-located filter instances are
//! cheap, which the paper exploits by fusing the NBIA GPU filters.

use anthill_simkit::{Pipe, SimDuration, SimTime};

use crate::spec::NodeId;

/// Network timing parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NetParams {
    /// NIC bandwidth, bytes/s (each direction).
    pub bandwidth_bps: f64,
    /// Fixed per-message protocol/stack overhead on each NIC.
    pub per_message: SimDuration,
    /// One-way switch + wire latency.
    pub switch_latency: SimDuration,
    /// Cost of handing a message to a co-located filter instance.
    pub loopback: SimDuration,
    /// Messages at or below this size travel on the control path: they
    /// interleave with bulk transfers at packet granularity (as separate
    /// TCP connections do) instead of queueing behind them.
    pub control_cutoff: u64,
}

impl NetParams {
    /// Switched gigabit Ethernet, calibrated to commodity 2010 clusters:
    /// ~118 MB/s payload bandwidth, ~55 µs one-way small-message latency.
    pub fn gigabit_ethernet() -> NetParams {
        NetParams {
            bandwidth_bps: 118.0e6,
            per_message: SimDuration::from_micros(20),
            switch_latency: SimDuration::from_micros(35),
            loopback: SimDuration::from_micros(3),
            control_cutoff: 1_500,
        }
    }
}

/// The state of the cluster interconnect: one full-duplex NIC per node.
#[derive(Debug, Clone)]
pub struct Network {
    params: NetParams,
    uplinks: Vec<Pipe>,
    downlinks: Vec<Pipe>,
}

impl Network {
    /// A network connecting `nodes` nodes.
    pub fn new(nodes: usize, params: NetParams) -> Network {
        let mk = || Pipe::new(params.bandwidth_bps, params.per_message, SimDuration::ZERO);
        Network {
            uplinks: (0..nodes).map(|_| mk()).collect(),
            downlinks: (0..nodes).map(|_| mk()).collect(),
            params,
        }
    }

    /// Number of nodes attached.
    pub fn nodes(&self) -> usize {
        self.uplinks.len()
    }

    /// Send `bytes` from node `from` to node `to` at `now`; returns the
    /// delivery time at `to`.
    pub fn send(&mut self, now: SimTime, from: NodeId, to: NodeId, bytes: u64) -> SimTime {
        if from == to {
            return now + self.params.loopback;
        }
        if bytes <= self.params.control_cutoff {
            // Control-plane message: one MTU, packet-interleaved with bulk
            // traffic — pays latency and serialization but never queues
            // behind large transfers.
            let serialize = SimDuration::from_secs_f64(bytes as f64 / self.params.bandwidth_bps);
            return now + self.params.per_message * 2 + serialize + self.params.switch_latency;
        }
        let sent = self.uplinks[from].send(now, bytes);
        let at_switch = sent + self.params.switch_latency;
        // The message then serializes on the receiver's downlink, which is
        // itself a FIFO pipe (queueing handled internally).
        self.downlinks[to].send(at_switch, bytes)
    }

    /// Round-trip estimate for a small control message pair, unloaded.
    pub fn rtt_estimate(&self) -> SimDuration {
        let one_way = self.params.per_message * 2 + self.params.switch_latency;
        one_way * 2
    }

    /// Total bytes-serialization busy time on a node's uplink.
    pub fn uplink_busy(&self, node: NodeId) -> SimDuration {
        self.uplinks[node].busy_time()
    }

    /// Messages sent from a node.
    pub fn messages_from(&self, node: NodeId) -> u64 {
        self.uplinks[node].messages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_is_cheap_and_bandwidth_free() {
        let mut n = Network::new(2, NetParams::gigabit_ethernet());
        let t = n.send(SimTime::ZERO, 0, 0, 100 << 20);
        assert_eq!(t, SimTime::ZERO + NetParams::gigabit_ethernet().loopback);
        assert_eq!(n.messages_from(0), 0);
    }

    #[test]
    fn large_transfer_is_bandwidth_bound() {
        let p = NetParams::gigabit_ethernet();
        let mut n = Network::new(2, p.clone());
        // 118 MB at 118 MB/s: ~1s on uplink + ~1s on downlink.
        let t = n.send(SimTime::ZERO, 0, 1, 118_000_000);
        let secs = t.as_secs_f64();
        assert!((1.9..2.2).contains(&secs), "took {secs}s");
    }

    #[test]
    fn small_messages_are_latency_bound() {
        let p = NetParams::gigabit_ethernet();
        let mut n = Network::new(2, p);
        let t = n.send(SimTime::ZERO, 0, 1, 64);
        let us = t.as_secs_f64() * 1e6;
        assert!((50.0..150.0).contains(&us), "took {us}us");
    }

    #[test]
    fn sender_uplink_serializes_messages() {
        let mut n = Network::new(3, NetParams::gigabit_ethernet());
        let t1 = n.send(SimTime::ZERO, 0, 1, 1_000_000);
        let t2 = n.send(SimTime::ZERO, 0, 2, 1_000_000);
        assert!(t2 > t1, "second message must queue behind the first");
        // Different senders do not interfere.
        let mut m = Network::new(3, NetParams::gigabit_ethernet());
        let u1 = m.send(SimTime::ZERO, 0, 2, 1_000_000);
        let u2 = m.send(SimTime::ZERO, 1, 2, 1_000_000);
        // Both serialize on node 2's downlink, so the second is delayed,
        // but no more than when sharing the uplink as well.
        assert!(u2 > u1);
        assert!(u2 <= t2);
    }

    #[test]
    fn bulk_messages_are_counted_on_the_uplink() {
        let mut n = Network::new(2, NetParams::gigabit_ethernet());
        n.send(SimTime::ZERO, 0, 1, 10_000);
        n.send(SimTime::ZERO, 0, 1, 10_000);
        assert_eq!(n.messages_from(0), 2);
        assert_eq!(n.messages_from(1), 0);
        assert!(n.uplink_busy(0) > SimDuration::ZERO);
    }

    #[test]
    fn control_messages_bypass_bulk_queueing() {
        let mut n = Network::new(2, NetParams::gigabit_ethernet());
        // Saturate the uplink with a 10 MB transfer (~85 ms).
        let bulk = n.send(SimTime::ZERO, 0, 1, 10 << 20);
        // A 64-byte request sent just after still arrives in ~100 µs.
        let req = n.send(SimTime(1), 0, 1, 64);
        assert!(req.as_secs_f64() < 0.001, "request took {req}");
        assert!(bulk.as_secs_f64() > 0.08, "bulk took {bulk}");
        // Control messages are not counted as uplink bulk traffic.
        assert_eq!(n.messages_from(0), 1);
    }
}
