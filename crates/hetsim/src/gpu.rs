//! The GPU timing model.
//!
//! Modeled after the CUDA devices of the paper's era (GeForce 8800GT): one
//! compute engine plus one copy engine per direction. Concurrent copies are
//! only possible in one direction at a time, asynchronous (pinned) copies
//! overlap with kernel execution, and synchronous (pageable) copies block
//! the device. Each asynchronous operation pays a small driver dispatch
//! cost that grows with the number of active streams — the source of the
//! "too many streams" degradation visible in Figure 7.
//!
//! The model exposes *engines* ([`anthill_simkit::FifoServer`]s): the
//! runtime decides what to submit and when (that is exactly the paper's
//! Algorithm 1); the engines answer "when would it finish".

use anthill_simkit::{FifoServer, SimDuration, SimTime};

/// Direction of a CPU↔GPU copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyDir {
    /// Host to device (input data).
    H2D,
    /// Device to host (results).
    D2H,
}

/// Copy mode: the synchronous pageable path or the asynchronous pinned path
/// (CUDA stream API). The paper's driver only uses the fast concurrent
/// mechanism when same-direction transfers are grouped; ungrouped transfers
/// fall back to the synchronous version (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyMode {
    /// Blocking pageable copy; occupies the whole device.
    Sync,
    /// Asynchronous pinned copy on a CUDA stream; overlaps with compute.
    Async,
}

/// Calibrated GPU timing parameters.
///
/// The defaults ([`GpuParams::geforce_8800gt`]) are fit to the paper's
/// measurements; see `DESIGN.md` §4 for the derivation.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuParams {
    /// Fixed cost per kernel launch, paid on the compute engine.
    pub kernel_launch: SimDuration,
    /// Effective bandwidth of synchronous (pageable) copies, bytes/s.
    pub sync_bandwidth_bps: f64,
    /// Effective bandwidth of asynchronous (pinned) copies, bytes/s.
    pub async_bandwidth_bps: f64,
    /// Fixed driver cost per synchronous copy call.
    pub sync_copy_call: SimDuration,
    /// Fixed driver cost per asynchronous copy call.
    pub async_copy_call: SimDuration,
    /// Extra driver dispatch latency per asynchronous operation, per active
    /// stream (bookkeeping grows with in-flight streams).
    pub stream_mgmt_per_stream: SimDuration,
    /// CPU-side cost of dispatching-and-synchronizing one batch of
    /// concurrent events (Algorithm 1's outer loop body).
    pub batch_dispatch: SimDuration,
    /// Device memory capacity, bounding in-flight events.
    pub memory_bytes: u64,
}

impl GpuParams {
    /// Parameters calibrated to the paper's GeForce 8800GT results.
    pub fn geforce_8800gt() -> GpuParams {
        GpuParams {
            kernel_launch: SimDuration::from_micros(108),
            sync_bandwidth_bps: 385.0e6,
            async_bandwidth_bps: 420.0e6,
            sync_copy_call: SimDuration::from_micros(80),
            async_copy_call: SimDuration::from_micros(15),
            stream_mgmt_per_stream: SimDuration::from_micros(3),
            batch_dispatch: SimDuration::from_micros(300),
            memory_bytes: 512 << 20,
        }
    }

    /// A newer-generation device (GTX 280-class): roughly doubled copy
    /// bandwidth, faster launches, more memory. Used by the mixed-GPU
    /// experiments that Section 6.2 motivates ("on an environment with
    /// mixed GPU types, an optimal single value might not exist").
    pub fn gtx_280_class() -> GpuParams {
        GpuParams {
            kernel_launch: SimDuration::from_micros(60),
            sync_bandwidth_bps: 900.0e6,
            async_bandwidth_bps: 1_100.0e6,
            sync_copy_call: SimDuration::from_micros(50),
            async_copy_call: SimDuration::from_micros(10),
            stream_mgmt_per_stream: SimDuration::from_micros(2),
            batch_dispatch: SimDuration::from_micros(200),
            memory_bytes: 1 << 30,
        }
    }

    /// Pure copy service time (engine occupancy) for `bytes` in `mode`.
    pub fn copy_time(&self, bytes: u64, mode: CopyMode) -> SimDuration {
        let (call, bw) = match mode {
            CopyMode::Sync => (self.sync_copy_call, self.sync_bandwidth_bps),
            CopyMode::Async => (self.async_copy_call, self.async_bandwidth_bps),
        };
        call + SimDuration::from_secs_f64(bytes as f64 / bw)
    }

    /// Total device-blocking time of a task on the synchronous path:
    /// copy-in + launch + kernel + copy-out, fully serialized.
    pub fn sync_task_time(
        &self,
        bytes_in: u64,
        kernel: SimDuration,
        bytes_out: u64,
    ) -> SimDuration {
        self.copy_time(bytes_in, CopyMode::Sync)
            + self.kernel_launch
            + kernel
            + self.copy_time(bytes_out, CopyMode::Sync)
    }

    /// Maximum number of in-flight events whose buffers fit device memory.
    /// Never less than 1 (a task larger than memory still runs, serially).
    pub fn max_concurrent_events(&self, bytes_per_event: u64) -> usize {
        if bytes_per_event == 0 {
            return usize::MAX;
        }
        ((self.memory_bytes / bytes_per_event) as usize).max(1)
    }
}

/// The occupancy state of one GPU: three engines plus parameters.
#[derive(Debug, Clone)]
pub struct GpuEngines {
    /// Timing parameters.
    pub params: GpuParams,
    h2d: FifoServer,
    d2h: FifoServer,
    compute: FifoServer,
}

impl GpuEngines {
    /// A fresh, idle GPU.
    pub fn new(params: GpuParams) -> GpuEngines {
        GpuEngines {
            params,
            h2d: FifoServer::new(),
            d2h: FifoServer::new(),
            compute: FifoServer::new(),
        }
    }

    /// Submit an asynchronous copy at `now` with `active_streams` streams in
    /// flight; returns `(start, finish)` of the engine occupancy. Dispatch
    /// latency (driver bookkeeping, grows with active streams) delays the
    /// earliest start but does not occupy the engine.
    pub fn submit_async_copy(
        &mut self,
        now: SimTime,
        dir: CopyDir,
        bytes: u64,
        active_streams: usize,
    ) -> (SimTime, SimTime) {
        let dispatch = self.params.stream_mgmt_per_stream * active_streams as u64;
        let service = self.params.copy_time(bytes, CopyMode::Async);
        let engine = match dir {
            CopyDir::H2D => &mut self.h2d,
            CopyDir::D2H => &mut self.d2h,
        };
        engine.submit(now + dispatch, service)
    }

    /// Submit a kernel of the given pure compute time at `now`; the launch
    /// overhead and per-active-stream driver bookkeeping are added to the
    /// engine service time (so over-subscribing streams degrades smoothly,
    /// as in the paper's Figure 7).
    pub fn submit_kernel(
        &mut self,
        now: SimTime,
        kernel: SimDuration,
        active_streams: usize,
    ) -> (SimTime, SimTime) {
        let mgmt = self.params.stream_mgmt_per_stream * active_streams as u64;
        self.compute
            .submit(now, self.params.kernel_launch + kernel + mgmt)
    }

    /// Run a whole task on the synchronous path: the device is blocked for
    /// copy-in + kernel + copy-out. Returns `(start, finish)`.
    pub fn run_sync(
        &mut self,
        now: SimTime,
        bytes_in: u64,
        kernel: SimDuration,
        bytes_out: u64,
    ) -> (SimTime, SimTime) {
        let total = self.params.sync_task_time(bytes_in, kernel, bytes_out);
        self.compute.submit(now, total)
    }

    /// When the compute engine next becomes free.
    pub fn compute_free(&self) -> SimTime {
        self.compute.next_free()
    }

    /// Total busy time of the compute engine.
    pub fn compute_busy(&self) -> SimDuration {
        self.compute.busy_time()
    }

    /// Compute-engine utilization over `[0, horizon]`.
    pub fn compute_utilization(&self, horizon: SimTime) -> f64 {
        self.compute.utilization(horizon)
    }

    /// Total busy time of both copy engines.
    pub fn copy_busy(&self) -> SimDuration {
        self.h2d.busy_time() + self.d2h.busy_time()
    }

    /// Number of kernels launched (sync tasks count once).
    pub fn kernels_launched(&self) -> u64 {
        self.compute.jobs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> GpuParams {
        GpuParams::geforce_8800gt()
    }

    #[test]
    fn sync_task_time_composition() {
        let p = params();
        let t = p.sync_task_time(1000, SimDuration::from_millis(1), 500);
        let expected = p.copy_time(1000, CopyMode::Sync)
            + p.kernel_launch
            + SimDuration::from_millis(1)
            + p.copy_time(500, CopyMode::Sync);
        assert_eq!(t, expected);
    }

    #[test]
    fn async_copies_overlap_with_compute() {
        let mut g = GpuEngines::new(params());
        let kernel = SimDuration::from_millis(5);
        // Copy for task B runs while kernel of task A runs.
        let (_, a_copy_done) = g.submit_async_copy(SimTime::ZERO, CopyDir::H2D, 786_432, 2);
        let (_, a_kernel_done) = g.submit_kernel(a_copy_done, kernel, 2);
        let (_, b_copy_done) = g.submit_async_copy(a_copy_done, CopyDir::H2D, 786_432, 2);
        // B's copy finished before A's kernel: fully hidden.
        assert!(b_copy_done < a_kernel_done);
    }

    #[test]
    fn sync_path_blocks_the_device() {
        let mut g = GpuEngines::new(params());
        let (s0, f0) = g.run_sync(SimTime::ZERO, 786_432, SimDuration::from_millis(5), 256);
        let (s1, _) = g.run_sync(SimTime::ZERO, 786_432, SimDuration::from_millis(5), 256);
        assert_eq!(s0, SimTime::ZERO);
        assert_eq!(s1, f0); // second task waits for in+kernel+out of first
    }

    #[test]
    fn copy_direction_engines_are_independent() {
        let mut g = GpuEngines::new(params());
        let (s_in, _) = g.submit_async_copy(SimTime::ZERO, CopyDir::H2D, 1 << 20, 1);
        let (s_out, _) = g.submit_async_copy(SimTime::ZERO, CopyDir::D2H, 1 << 20, 1);
        // Both start after only the dispatch latency; neither queues on the other.
        assert_eq!(s_in, s_out);
    }

    #[test]
    fn same_direction_copies_serialize() {
        let mut g = GpuEngines::new(params());
        let (_, f0) = g.submit_async_copy(SimTime::ZERO, CopyDir::H2D, 1 << 20, 1);
        let (s1, _) = g.submit_async_copy(SimTime::ZERO, CopyDir::H2D, 1 << 20, 1);
        assert_eq!(s1, f0);
    }

    #[test]
    fn stream_mgmt_grows_with_active_streams() {
        let mut a = GpuEngines::new(params());
        let mut b = GpuEngines::new(params());
        let (s1, _) = a.submit_async_copy(SimTime::ZERO, CopyDir::H2D, 100, 1);
        let (s64, _) = b.submit_async_copy(SimTime::ZERO, CopyDir::H2D, 100, 64);
        assert!(s64 > s1);
    }

    #[test]
    fn memory_caps_concurrency() {
        let p = params();
        assert_eq!(p.max_concurrent_events(p.memory_bytes), 1);
        assert_eq!(p.max_concurrent_events(p.memory_bytes * 2), 1);
        assert_eq!(p.max_concurrent_events(p.memory_bytes / 8), 8);
        assert_eq!(p.max_concurrent_events(0), usize::MAX);
    }

    #[test]
    fn calibration_nbia_512_sync_speedup_near_33() {
        // Cross-check of the DESIGN.md calibration: a 512x512 NBIA tile.
        let p = params();
        let px = 512.0 * 512.0;
        let cpu = px * 1.0955e-6;
        let kernel = SimDuration::from_secs_f64(0.9e-3 + px * 2.135e-8);
        let gpu = p.sync_task_time((px as u64) * 3 + 64, kernel, 256);
        let speedup = cpu / gpu.as_secs_f64();
        assert!((30.0..36.0).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn calibration_nbia_32_sync_speedup_near_1() {
        let p = params();
        let px = 32.0 * 32.0;
        let cpu = px * 1.0955e-6;
        let kernel = SimDuration::from_secs_f64(0.9e-3 + px * 2.135e-8);
        let gpu = p.sync_task_time((px as u64) * 3 + 64, kernel, 256);
        let speedup = cpu / gpu.as_secs_f64();
        assert!((0.8..1.3).contains(&speedup), "speedup {speedup}");
    }
}
