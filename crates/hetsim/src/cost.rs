//! Calibrated application cost models.
//!
//! These map a task descriptor to the timing quantities the hardware model
//! consumes: CPU service time, GPU kernel time (excluding launch and
//! transfers, which [`crate::gpu::GpuEngines`] adds), and transfer sizes.
//! Constants are fit to the paper's measurements; the fitting is derived in
//! `DESIGN.md` §4 and cross-checked by tests here and in `gpu.rs`.

use anthill_simkit::SimDuration;

/// The timing-relevant shape of one task, as consumed by the executors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskShape {
    /// Service time on one CPU core.
    pub cpu: SimDuration,
    /// Pure GPU kernel time (launch and transfers excluded).
    pub gpu_kernel: SimDuration,
    /// Bytes copied host→device before the kernel.
    pub bytes_in: u64,
    /// Bytes copied device→host after the kernel.
    pub bytes_out: u64,
}

impl TaskShape {
    /// Approximate device-memory footprint of one in-flight event.
    pub fn footprint(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }
}

/// Cost model of the NBIA tile-processing pipeline (color conversion +
/// statistical features, fused as in Section 6's optimized configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct NbiaCostModel {
    /// CPU seconds per pixel (linear; Table 3 / Fig. 6 calibration).
    pub cpu_secs_per_pixel: f64,
    /// Fixed per-tile GPU cost (kernel setup of the fused filter).
    pub gpu_fixed: SimDuration,
    /// GPU seconds per pixel.
    pub gpu_secs_per_pixel: f64,
    /// Bytes per pixel transferred to the GPU (RGB, 24-bit color).
    pub bytes_per_pixel: u64,
    /// Fixed message framing bytes per tile.
    pub header_bytes: u64,
    /// Result bytes per tile (feature vector + classification).
    pub result_bytes: u64,
}

impl NbiaCostModel {
    /// Calibration against the paper (see `DESIGN.md` §4):
    /// * 26,742 tiles of 32² processed in ≈30 s on one CPU core
    ///   ⇒ 1.0955 µs/pixel;
    /// * GPU-vs-CPU sync-copy speedup ≈1 at 32² and ≈33 at 512² (Fig. 6).
    pub fn paper_calibrated() -> NbiaCostModel {
        NbiaCostModel {
            cpu_secs_per_pixel: 1.0955e-6,
            gpu_fixed: SimDuration::from_micros(900),
            gpu_secs_per_pixel: 2.135e-8,
            bytes_per_pixel: 3,
            header_bytes: 64,
            result_bytes: 256,
        }
    }

    /// The two stages of the *unfused* pipeline (the original filter
    /// decomposition: color conversion, then statistical features), for
    /// the fusion ablation. The intermediate La*b* image (3 × f32 per
    /// pixel) must round-trip through host memory between the stages —
    /// the "unnecessary GPU/CPU data transfers" the paper's fused
    /// configuration avoids.
    pub fn unfused_tile(&self, side: u32) -> [TaskShape; 2] {
        let px = u64::from(side) * u64::from(side);
        let lab_bytes = px * 12;
        let color = TaskShape {
            cpu: SimDuration::from_secs_f64(px as f64 * self.cpu_secs_per_pixel * 0.35),
            gpu_kernel: self.gpu_fixed / 2
                + SimDuration::from_secs_f64(px as f64 * self.gpu_secs_per_pixel * 0.35),
            bytes_in: px * self.bytes_per_pixel + self.header_bytes,
            bytes_out: lab_bytes,
        };
        let features = TaskShape {
            cpu: SimDuration::from_secs_f64(px as f64 * self.cpu_secs_per_pixel * 0.65),
            gpu_kernel: self.gpu_fixed / 2
                + SimDuration::from_secs_f64(px as f64 * self.gpu_secs_per_pixel * 0.65),
            bytes_in: lab_bytes,
            bytes_out: self.result_bytes,
        };
        [color, features]
    }

    /// The task shape of one `side × side` tile.
    pub fn tile(&self, side: u32) -> TaskShape {
        let px = u64::from(side) * u64::from(side);
        TaskShape {
            cpu: SimDuration::from_secs_f64(px as f64 * self.cpu_secs_per_pixel),
            gpu_kernel: self.gpu_fixed
                + SimDuration::from_secs_f64(px as f64 * self.gpu_secs_per_pixel),
            bytes_in: px * self.bytes_per_pixel + self.header_bytes,
            bytes_out: self.result_bytes,
        }
    }
}

/// Cost model of the vector-incrementer (VI) microbenchmark of Section 6.2:
/// a vector of `u32`s is split into chunks; each chunk is copied to the
/// GPU, incremented iterating six times over each value, and copied back
/// (compute-to-communication ratio ≈ 7:3).
#[derive(Debug, Clone, PartialEq)]
pub struct ViCostModel {
    /// GPU seconds per vector element (six iterations).
    pub gpu_secs_per_elem: f64,
    /// CPU seconds per vector element.
    pub cpu_secs_per_elem: f64,
    /// Bytes per element (u32).
    pub bytes_per_elem: u64,
}

impl ViCostModel {
    /// Calibration: best pipelined exec time ≈16.15 s for a 360M-element
    /// vector (Table 2) ⇒ ≈44.8 ms compute per 1M-element chunk, with
    /// copies of 4 MB each way at the async bandwidth giving the 7:3
    /// compute:communication ratio.
    pub fn paper_calibrated() -> ViCostModel {
        ViCostModel {
            gpu_secs_per_elem: 4.48e-8,
            cpu_secs_per_elem: 4.48e-7,
            bytes_per_elem: 4,
        }
    }

    /// Task shape for one chunk of `elems` elements.
    pub fn chunk(&self, elems: u64) -> TaskShape {
        TaskShape {
            cpu: SimDuration::from_secs_f64(elems as f64 * self.cpu_secs_per_elem),
            gpu_kernel: SimDuration::from_secs_f64(elems as f64 * self.gpu_secs_per_elem),
            bytes_in: elems * self.bytes_per_elem,
            bytes_out: elems * self.bytes_per_elem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuParams;

    #[test]
    fn nbia_cpu_time_matches_table3_baseline() {
        // 26,742 tiles of 32² on one CPU core ≈ 30 s (Table 3, rate 0%).
        let m = NbiaCostModel::paper_calibrated();
        let total = m.tile(32).cpu.as_secs_f64() * 26_742.0;
        assert!((29.0..31.0).contains(&total), "total {total}");
    }

    #[test]
    fn nbia_cpu_time_is_linear_in_pixels() {
        let m = NbiaCostModel::paper_calibrated();
        let r = m.tile(512).cpu.as_secs_f64() / m.tile(32).cpu.as_secs_f64();
        assert!((r - 256.0).abs() < 1.0, "ratio {r}");
    }

    #[test]
    fn nbia_recalc_slope_matches_table3() {
        // Each 4% of recalculated tiles adds ≈300–330 s of CPU work.
        let m = NbiaCostModel::paper_calibrated();
        let added = 0.04 * 26_742.0 * m.tile(512).cpu.as_secs_f64();
        assert!((280.0..340.0).contains(&added), "added {added}");
    }

    #[test]
    fn nbia_sync_speedups_match_fig6_endpoints() {
        let m = NbiaCostModel::paper_calibrated();
        let p = GpuParams::geforce_8800gt();
        let sp = |side: u32| {
            let t = m.tile(side);
            t.cpu.as_secs_f64()
                / p.sync_task_time(t.bytes_in, t.gpu_kernel, t.bytes_out)
                    .as_secs_f64()
        };
        assert!((0.8..1.3).contains(&sp(32)), "32: {}", sp(32));
        assert!((30.0..36.0).contains(&sp(512)), "512: {}", sp(512));
        // Monotonic growth in between.
        assert!(sp(64) > sp(32) && sp(128) > sp(64) && sp(256) > sp(128) && sp(512) > sp(256));
    }

    #[test]
    fn vi_total_compute_matches_table2() {
        // 360M elements ⇒ ≈16.1 s of pure GPU compute.
        let m = ViCostModel::paper_calibrated();
        let total = m.chunk(360_000_000).gpu_kernel.as_secs_f64();
        assert!((15.5..16.8).contains(&total), "total {total}");
    }

    #[test]
    fn vi_compute_to_comm_ratio_is_7_to_3() {
        let m = ViCostModel::paper_calibrated();
        let p = GpuParams::geforce_8800gt();
        let c = m.chunk(1_000_000);
        let comm = (c.bytes_in + c.bytes_out) as f64 / p.async_bandwidth_bps;
        let ratio = c.gpu_kernel.as_secs_f64() / comm;
        assert!((2.0..2.7).contains(&ratio), "ratio {ratio} (7:3 ≈ 2.33)");
    }

    #[test]
    fn unfused_stages_sum_to_the_fused_compute() {
        let m = NbiaCostModel::paper_calibrated();
        let fused = m.tile(256);
        let [a, b] = m.unfused_tile(256);
        let cpu_sum = a.cpu + b.cpu;
        assert_eq!(cpu_sum, fused.cpu);
        // The unfused path moves strictly more bytes (the La*b* image
        // crosses the bus twice).
        let fused_bytes = fused.bytes_in + fused.bytes_out;
        let unfused_bytes = a.bytes_in + a.bytes_out + b.bytes_in + b.bytes_out;
        assert!(unfused_bytes > 3 * fused_bytes);
    }

    #[test]
    fn footprint_sums_both_directions() {
        let s = TaskShape {
            cpu: SimDuration::ZERO,
            gpu_kernel: SimDuration::ZERO,
            bytes_in: 10,
            bytes_out: 5,
        };
        assert_eq!(s.footprint(), 15);
    }
}
