//! The metrics registry: labeled counters, gauges and log-bucketed
//! duration histograms.
//!
//! Keys and storage are `BTreeMap`s so every exported view is in a
//! deterministic order regardless of insertion order — the same property
//! the event trace has by construction.

use std::collections::BTreeMap;

use anthill_simkit::{DurationHistogram, SimDuration};

/// A metric identity: name plus sorted `(label, value)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `tasks_finished`.
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key; labels are sorted so `[("a","1"),("b","2")]` and
    /// `[("b","2"),("a","1")]` are the same series.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{}{{{}}}", self.name, pairs.join(","))
    }
}

/// Counters, gauges and histograms, keyed by [`MetricKey`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, DurationHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `v` to a counter (created at zero on first touch).
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        *self
            .counters
            .entry(MetricKey::new(name, labels))
            .or_insert(0) += v;
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of all counter series with the given name, across labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Set a gauge to `v`.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.gauges.insert(MetricKey::new(name, labels), v);
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricKey::new(name, labels)).copied()
    }

    /// Record a duration into a histogram series (created on first touch).
    pub fn histogram_record(&mut self, name: &str, labels: &[(&str, &str)], d: SimDuration) {
        self.histograms
            .entry(MetricKey::new(name, labels))
            .or_default()
            .record(d);
    }

    /// A histogram series, if it has any samples.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&DurationHistogram> {
        self.histograms.get(&MetricKey::new(name, labels))
    }

    /// Iterate counters in deterministic (sorted-key) order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// Iterate gauges in deterministic order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, f64)> + '_ {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// Iterate histograms in deterministic order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &DurationHistogram)> + '_ {
        self.histograms.iter()
    }

    /// Fold another registry into this one (counters add, gauges take the
    /// other's value, histograms merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Plain-text dump in deterministic order (Prometheus-exposition-like;
    /// histograms render count/mean/p50/p95/max).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{} {v}\n", k.render()));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{} {v}\n", k.render()));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{} count={} mean={} p50={} p95={} max={}\n",
                k.render(),
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.max(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut m = MetricsRegistry::new();
        m.counter_add("tasks", &[("device", "cpu")], 2);
        m.counter_add("tasks", &[("device", "cpu")], 3);
        m.counter_add("tasks", &[("device", "gpu")], 7);
        assert_eq!(m.counter("tasks", &[("device", "cpu")]), 5);
        assert_eq!(m.counter("tasks", &[("device", "gpu")]), 7);
        assert_eq!(m.counter("tasks", &[]), 0);
        assert_eq!(m.counter_total("tasks"), 12);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let mut m = MetricsRegistry::new();
        m.counter_add("x", &[("a", "1"), ("b", "2")], 1);
        m.counter_add("x", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(m.counter("x", &[("a", "1"), ("b", "2")]), 2);
    }

    #[test]
    fn gauges_overwrite_and_histograms_record() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("window", &[], 3.0);
        m.gauge_set("window", &[], 5.0);
        assert_eq!(m.gauge("window", &[]), Some(5.0));
        m.histogram_record("lat", &[], SimDuration::from_millis(2));
        m.histogram_record("lat", &[], SimDuration::from_millis(4));
        assert_eq!(m.histogram("lat", &[]).unwrap().count(), 2);
        assert!(m.histogram("other", &[]).is_none());
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", &[], 1);
        a.histogram_record("h", &[], SimDuration::from_millis(1));
        let mut b = MetricsRegistry::new();
        b.counter_add("c", &[], 2);
        b.gauge_set("g", &[], 9.0);
        b.histogram_record("h", &[], SimDuration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.counter("c", &[]), 3);
        assert_eq!(a.gauge("g", &[]), Some(9.0));
        assert_eq!(a.histogram("h", &[]).unwrap().count(), 2);
    }

    #[test]
    fn render_text_is_sorted_and_complete() {
        let mut m = MetricsRegistry::new();
        m.counter_add("b_counter", &[("device", "gpu")], 1);
        m.counter_add("a_counter", &[], 4);
        m.gauge_set("g", &[("n", "0")], 0.5);
        m.histogram_record("h", &[], SimDuration::from_millis(7));
        let text = m.render_text();
        let a = text.find("a_counter 4").expect("a_counter line");
        let b = text.find("b_counter{device=\"gpu\"} 1").expect("b line");
        assert!(a < b, "sorted order:\n{text}");
        assert!(text.contains("g{n=\"0\"} 0.5"));
        assert!(text.contains("count=1"));
    }
}
