//! The structured trace-event model shared by both executors.
//!
//! Every event is a plain-old-data record of integers and small enums:
//! no floats, no strings, no heap indirection. That keeps recording cheap
//! and — critically — makes serialized traces *byte-identical* across
//! repeated deterministic simulation runs (floats would round-trip through
//! formatting; integers cannot).

use std::fmt;

use anthill_hetsim::{CopyDir, DeviceId, DeviceKind};

/// Where an event originated.
///
/// Device-scoped events (`kind = Some(..)`) come from one worker thread /
/// simulated device; node-scoped events (`kind = None`) come from a
/// node-level component such as a stage queue or a reader.
///
/// In the simulated executor `node` is the cluster node id; in the local
/// threaded executor `node` is the *pipeline stage index* (the local
/// runtime is intra-node, so stages play the role of placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceRef {
    /// Hosting node (sim) or pipeline stage (local).
    pub node: u32,
    /// Device class, or `None` for node/stage-scoped events.
    pub kind: Option<DeviceKind>,
    /// Index among same-kind devices of the node (0 for node scope).
    pub index: u32,
}

impl DeviceRef {
    /// Origin for a specific simulated device.
    pub fn device(id: DeviceId) -> DeviceRef {
        DeviceRef {
            node: id.node as u32,
            kind: Some(id.kind),
            index: id.index as u32,
        }
    }

    /// Origin for a node-scoped (or stage-scoped) component.
    pub fn node_scope(node: usize) -> DeviceRef {
        DeviceRef {
            node: node as u32,
            kind: None,
            index: 0,
        }
    }

    /// Origin for a local-runtime worker thread: stage, device class and
    /// worker slot index within the stage.
    pub fn worker(stage: usize, kind: DeviceKind, index: usize) -> DeviceRef {
        DeviceRef {
            node: stage as u32,
            kind: Some(kind),
            index: index as u32,
        }
    }
}

impl fmt::Display for DeviceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            Some(k) => write!(f, "n{}/{}{}", self.node, k, self.index),
            None => write!(f, "n{}", self.node),
        }
    }
}

/// What happened. Payload fields are the integers needed to reconstruct
/// the run: buffer ids, resolution levels, byte counts, durations in
/// nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A buffer entered a ready/stage queue.
    Enqueue {
        /// Buffer id.
        buffer: u64,
        /// Resolution level.
        level: u8,
    },
    /// A buffer was popped from a queue and assigned to a device.
    Dispatch {
        /// Buffer id.
        buffer: u64,
        /// Resolution level.
        level: u8,
    },
    /// Processing of a buffer began on the originating device.
    Start {
        /// Buffer id.
        buffer: u64,
        /// Resolution level.
        level: u8,
    },
    /// Processing of a buffer completed on the originating device.
    Finish {
        /// Buffer id.
        buffer: u64,
        /// Resolution level.
        level: u8,
        /// Processing time attributed to the buffer, in nanoseconds.
        proc_ns: u64,
    },
    /// A host↔device copy occupied a GPU copy engine. The event timestamp
    /// is the engine-occupancy start; `end_ns` its completion.
    Transfer {
        /// Copy direction.
        dir: CopyDir,
        /// Payload bytes.
        bytes: u64,
        /// Completion time (same clock as `ts_ns`), in nanoseconds.
        end_ns: u64,
    },
    /// The adaptive-streams controller (Algorithm 1) chose a new
    /// concurrent-event count after a batch.
    Streams {
        /// Concurrent events/streams for the next batch.
        count: u32,
    },
    /// A DQAA request-window update: the thread's effective target window
    /// after processing (mirrors `SimReport::request_traces`).
    DqaaWindow {
        /// Effective target request window.
        target: u32,
    },
    /// DBSA answered a data request by selecting the best queued buffer
    /// for the requesting processor type.
    DbsaSelect {
        /// Selected buffer id.
        buffer: u64,
        /// Processor type that triggered the request.
        proctype: DeviceKind,
    },
    /// A buffer's execution transiently failed on the originating device
    /// and the buffer was re-enqueued for another run.
    TaskRetried {
        /// Buffer id.
        buffer: u64,
        /// Resolution level.
        level: u8,
        /// Failure count for this buffer so far (1 on the first retry).
        attempt: u32,
    },
    /// The originating worker slot died permanently.
    WorkerDied {
        /// Buffers that were in execution on the slot at death time.
        inflight: u32,
    },
    /// A buffer owned by a dead worker (in execution, in flight, or
    /// stranded on an unreachable queue) was re-homed where live demand
    /// can reach it.
    TaskReassigned {
        /// Buffer id.
        buffer: u64,
        /// Resolution level.
        level: u8,
    },
    /// The originating worker slot joined a live run (elastic membership).
    /// The slot starts cold: its request window warms up from `window`
    /// under DQAA instead of stampeding the readers.
    WorkerJoined {
        /// Initial target request window the joiner warms up from.
        window: u32,
    },
    /// The originating worker slot began a graceful drain: it stops
    /// pumping demand and dispatching, but its in-flight requests and
    /// running batch are allowed to finish.
    WorkerDraining {
        /// Requests still outstanding at drain start.
        outstanding: u32,
    },
    /// A draining worker slot finished its last in-flight work and was
    /// released from the pool (membership phase Gone).
    WorkerLeft,
    /// A remote worker process began executing a buffer (net backend).
    /// The coordinator re-stamps the worker-reported span onto its own
    /// clock at `Complete` receipt, so remote events sort deterministically
    /// into the merged stream.
    RemoteStart {
        /// Buffer id.
        buffer: u64,
        /// Resolution level.
        level: u8,
    },
    /// A remote worker process finished executing a buffer (net backend).
    RemoteFinish {
        /// Buffer id.
        buffer: u64,
        /// Resolution level.
        level: u8,
        /// Measured worker-side handler span, in nanoseconds.
        proc_ns: u64,
    },
    /// A buffer emitted by an upstream filter was routed over a dataflow
    /// edge and entered the destination filter's input queue. The origin
    /// node is the *destination* filter.
    EdgeEnqueued {
        /// Graph edge id the buffer traveled over.
        edge: u32,
        /// Buffer id.
        buffer: u64,
        /// Resolution level.
        level: u8,
    },
    /// The admission controller accepted a generated task into the run
    /// (either immediately on arrival or later from the intake queue).
    TaskAdmitted {
        /// Buffer id.
        buffer: u64,
        /// Resolution level.
        level: u8,
    },
    /// The admission controller discarded a task to bound the intake
    /// queue under the shed-oldest overload policy.
    TaskShed {
        /// Buffer id.
        buffer: u64,
        /// Resolution level.
        level: u8,
    },
    /// The admission controller dropped a queued task whose intake wait
    /// exceeded the deadline-drop policy's deadline.
    TaskDeadlineDropped {
        /// Buffer id.
        buffer: u64,
        /// Resolution level.
        level: u8,
        /// Time the task spent queued before expiry, in nanoseconds.
        waited_ns: u64,
    },
    /// An online weight provider folded the originating worker's observed
    /// service-time span into its `(device, shape)` profile cell.
    ProfileUpdated {
        /// Buffer id whose span was observed.
        buffer: u64,
        /// Stable shape key of the updated profile cell.
        key: u64,
        /// Observation count of the cell after the update.
        count: u64,
        /// Updated EWMA mean of the cell, in nanoseconds.
        mean_ns: u64,
    },
    /// A learned policy (AFFINITY/BANDIT) rendered a device-assignment
    /// verdict for a buffer entering the ready queue.
    PolicyDecision {
        /// Buffer id the decision is for.
        buffer: u64,
        /// Chosen device arm.
        arm: DeviceKind,
        /// 1 when the epsilon floor forced exploration, else 0.
        explore: u8,
        /// CPU weight the buffer was inserted with, parts-per-million.
        cpu_ppm: u64,
        /// GPU weight the buffer was inserted with, parts-per-million.
        gpu_ppm: u64,
    },
}

impl EventKind {
    /// Short machine-readable name (the JSONL `kind` field).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Enqueue { .. } => "enqueue",
            EventKind::Dispatch { .. } => "dispatch",
            EventKind::Start { .. } => "start",
            EventKind::Finish { .. } => "finish",
            EventKind::Transfer { .. } => "transfer",
            EventKind::Streams { .. } => "streams",
            EventKind::DqaaWindow { .. } => "dqaa_window",
            EventKind::DbsaSelect { .. } => "dbsa_select",
            EventKind::TaskRetried { .. } => "task_retried",
            EventKind::WorkerDied { .. } => "worker_died",
            EventKind::TaskReassigned { .. } => "task_reassigned",
            EventKind::WorkerJoined { .. } => "worker_joined",
            EventKind::WorkerDraining { .. } => "worker_draining",
            EventKind::WorkerLeft => "worker_left",
            EventKind::RemoteStart { .. } => "remote_start",
            EventKind::RemoteFinish { .. } => "remote_finish",
            EventKind::EdgeEnqueued { .. } => "edge_enqueued",
            EventKind::TaskAdmitted { .. } => "task_admitted",
            EventKind::TaskShed { .. } => "task_shed",
            EventKind::TaskDeadlineDropped { .. } => "task_deadline_dropped",
            EventKind::ProfileUpdated { .. } => "profile_updated",
            EventKind::PolicyDecision { .. } => "policy_decision",
        }
    }
}

/// One recorded event: when, where, what.
///
/// `ts_ns` is virtual time (`SimTime::as_nanos`) in the simulated executor
/// and monotonic wall time since the run start in the local executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp in nanoseconds (virtual or monotonic-relative).
    pub ts_ns: u64,
    /// Originating device or node-scoped component.
    pub origin: DeviceRef,
    /// The event payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_ref_display_forms() {
        let d = DeviceRef::device(DeviceId {
            node: 2,
            kind: DeviceKind::Gpu,
            index: 0,
        });
        assert_eq!(d.to_string(), "n2/GPU0");
        assert_eq!(DeviceRef::node_scope(3).to_string(), "n3");
        assert_eq!(
            DeviceRef::worker(0, DeviceKind::Cpu, 1).to_string(),
            "n0/CPU1"
        );
    }

    #[test]
    fn kind_names_are_stable() {
        let names = [
            EventKind::Enqueue {
                buffer: 1,
                level: 0,
            }
            .name(),
            EventKind::Dispatch {
                buffer: 1,
                level: 0,
            }
            .name(),
            EventKind::Start {
                buffer: 1,
                level: 0,
            }
            .name(),
            EventKind::Finish {
                buffer: 1,
                level: 0,
                proc_ns: 9,
            }
            .name(),
            EventKind::Transfer {
                dir: CopyDir::H2D,
                bytes: 64,
                end_ns: 7,
            }
            .name(),
            EventKind::Streams { count: 4 }.name(),
            EventKind::DqaaWindow { target: 3 }.name(),
            EventKind::DbsaSelect {
                buffer: 1,
                proctype: DeviceKind::Gpu,
            }
            .name(),
            EventKind::TaskRetried {
                buffer: 1,
                level: 0,
                attempt: 2,
            }
            .name(),
            EventKind::WorkerDied { inflight: 3 }.name(),
            EventKind::TaskReassigned {
                buffer: 1,
                level: 0,
            }
            .name(),
            EventKind::WorkerJoined { window: 1 }.name(),
            EventKind::WorkerDraining { outstanding: 2 }.name(),
            EventKind::WorkerLeft.name(),
            EventKind::RemoteStart {
                buffer: 1,
                level: 0,
            }
            .name(),
            EventKind::RemoteFinish {
                buffer: 1,
                level: 0,
                proc_ns: 5,
            }
            .name(),
            EventKind::EdgeEnqueued {
                edge: 0,
                buffer: 1,
                level: 0,
            }
            .name(),
            EventKind::TaskAdmitted {
                buffer: 1,
                level: 0,
            }
            .name(),
            EventKind::TaskShed {
                buffer: 1,
                level: 0,
            }
            .name(),
            EventKind::TaskDeadlineDropped {
                buffer: 1,
                level: 0,
                waited_ns: 4,
            }
            .name(),
            EventKind::ProfileUpdated {
                buffer: 1,
                key: 2,
                count: 3,
                mean_ns: 4,
            }
            .name(),
            EventKind::PolicyDecision {
                buffer: 1,
                arm: DeviceKind::Gpu,
                explore: 0,
                cpu_ppm: 1_000_000,
                gpu_ppm: 4_000_000,
            }
            .name(),
        ];
        assert_eq!(
            names,
            [
                "enqueue",
                "dispatch",
                "start",
                "finish",
                "transfer",
                "streams",
                "dqaa_window",
                "dbsa_select",
                "task_retried",
                "worker_died",
                "task_reassigned",
                "worker_joined",
                "worker_draining",
                "worker_left",
                "remote_start",
                "remote_finish",
                "edge_enqueued",
                "task_admitted",
                "task_shed",
                "task_deadline_dropped",
                "profile_updated",
                "policy_decision"
            ]
        );
    }
}
