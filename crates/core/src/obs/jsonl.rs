//! JSONL trace export: one event per line, integers only, fixed key order.
//!
//! The serialization is intentionally rigid — field order is fixed and
//! every value is an integer or a short lowercase token — so that two
//! deterministic simulation runs with the same seed produce *byte
//! identical* dumps. [`parse_jsonl`] reads a dump back into events for
//! offline analysis and round-trip tests.

use anthill_hetsim::{CopyDir, DeviceKind};

use super::event::{DeviceRef, EventKind, TraceEvent};
use super::json::{self, Value};

/// Serialize events, one JSON object per line.
///
/// Line shape: `{"ts":N,"node":N,"dev":"cpu0"|null,"kind":"...",...}` with
/// kind-specific integer fields after `kind`.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 64);
    for ev in events {
        write_event(&mut out, ev);
        out.push('\n');
    }
    out
}

fn write_event(out: &mut String, ev: &TraceEvent) {
    out.push_str(&format!(
        "{{\"ts\":{},\"node\":{}",
        ev.ts_ns, ev.origin.node
    ));
    match ev.origin.kind {
        Some(k) => out.push_str(&format!(
            ",\"dev\":\"{}{}\"",
            kind_token(k),
            ev.origin.index
        )),
        None => out.push_str(",\"dev\":null"),
    }
    out.push_str(&format!(",\"kind\":\"{}\"", ev.kind.name()));
    match ev.kind {
        EventKind::Enqueue { buffer, level }
        | EventKind::Dispatch { buffer, level }
        | EventKind::Start { buffer, level } => {
            out.push_str(&format!(",\"buffer\":{buffer},\"level\":{level}"));
        }
        EventKind::Finish {
            buffer,
            level,
            proc_ns,
        } => {
            out.push_str(&format!(
                ",\"buffer\":{buffer},\"level\":{level},\"proc_ns\":{proc_ns}"
            ));
        }
        EventKind::Transfer { dir, bytes, end_ns } => {
            let d = match dir {
                CopyDir::H2D => "h2d",
                CopyDir::D2H => "d2h",
            };
            out.push_str(&format!(
                ",\"dir\":\"{d}\",\"bytes\":{bytes},\"end_ns\":{end_ns}"
            ));
        }
        EventKind::Streams { count } => out.push_str(&format!(",\"count\":{count}")),
        EventKind::DqaaWindow { target } => out.push_str(&format!(",\"target\":{target}")),
        EventKind::DbsaSelect { buffer, proctype } => {
            out.push_str(&format!(
                ",\"buffer\":{buffer},\"proctype\":\"{}\"",
                kind_token(proctype)
            ));
        }
        EventKind::TaskRetried {
            buffer,
            level,
            attempt,
        } => {
            out.push_str(&format!(
                ",\"buffer\":{buffer},\"level\":{level},\"attempt\":{attempt}"
            ));
        }
        EventKind::WorkerDied { inflight } => {
            out.push_str(&format!(",\"inflight\":{inflight}"));
        }
        EventKind::WorkerJoined { window } => {
            out.push_str(&format!(",\"window\":{window}"));
        }
        EventKind::WorkerDraining { outstanding } => {
            out.push_str(&format!(",\"outstanding\":{outstanding}"));
        }
        EventKind::WorkerLeft => {}
        EventKind::TaskReassigned { buffer, level }
        | EventKind::RemoteStart { buffer, level }
        | EventKind::TaskAdmitted { buffer, level }
        | EventKind::TaskShed { buffer, level } => {
            out.push_str(&format!(",\"buffer\":{buffer},\"level\":{level}"));
        }
        EventKind::RemoteFinish {
            buffer,
            level,
            proc_ns,
        } => {
            out.push_str(&format!(
                ",\"buffer\":{buffer},\"level\":{level},\"proc_ns\":{proc_ns}"
            ));
        }
        EventKind::TaskDeadlineDropped {
            buffer,
            level,
            waited_ns,
        } => {
            out.push_str(&format!(
                ",\"buffer\":{buffer},\"level\":{level},\"waited_ns\":{waited_ns}"
            ));
        }
        EventKind::EdgeEnqueued {
            edge,
            buffer,
            level,
        } => {
            out.push_str(&format!(
                ",\"edge\":{edge},\"buffer\":{buffer},\"level\":{level}"
            ));
        }
        EventKind::ProfileUpdated {
            buffer,
            key,
            count,
            mean_ns,
        } => {
            out.push_str(&format!(
                ",\"buffer\":{buffer},\"key\":{key},\"count\":{count},\"mean_ns\":{mean_ns}"
            ));
        }
        EventKind::PolicyDecision {
            buffer,
            arm,
            explore,
            cpu_ppm,
            gpu_ppm,
        } => {
            out.push_str(&format!(
                ",\"buffer\":{buffer},\"arm\":\"{}\",\"explore\":{explore},\"cpu_ppm\":{cpu_ppm},\"gpu_ppm\":{gpu_ppm}",
                kind_token(arm)
            ));
        }
    }
    out.push('}');
}

fn kind_token(k: DeviceKind) -> &'static str {
    match k {
        DeviceKind::Cpu => "cpu",
        DeviceKind::Gpu => "gpu",
    }
}

fn parse_kind_token(s: &str) -> Result<DeviceKind, String> {
    match s {
        "cpu" => Ok(DeviceKind::Cpu),
        "gpu" => Ok(DeviceKind::Gpu),
        other => Err(format!("unknown device token '{other}'")),
    }
}

/// Parse a JSONL dump produced by [`to_jsonl`] back into events.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(parse_event(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

fn field_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn parse_event(v: &Value) -> Result<TraceEvent, String> {
    let ts_ns = field_u64(v, "ts")?;
    let node = field_u64(v, "node")? as u32;
    let origin = match v.get("dev") {
        Some(Value::Null) | None => DeviceRef {
            node,
            kind: None,
            index: 0,
        },
        Some(Value::Str(dev)) => {
            let split = dev
                .find(|c: char| c.is_ascii_digit())
                .ok_or_else(|| format!("device '{dev}' has no index"))?;
            DeviceRef {
                node,
                kind: Some(parse_kind_token(&dev[..split])?),
                index: dev[split..]
                    .parse::<u32>()
                    .map_err(|e| format!("device '{dev}': {e}"))?,
            }
        }
        Some(other) => return Err(format!("bad 'dev' field: {other}")),
    };
    let kind = match field_str(v, "kind")? {
        "enqueue" => EventKind::Enqueue {
            buffer: field_u64(v, "buffer")?,
            level: field_u64(v, "level")? as u8,
        },
        "dispatch" => EventKind::Dispatch {
            buffer: field_u64(v, "buffer")?,
            level: field_u64(v, "level")? as u8,
        },
        "start" => EventKind::Start {
            buffer: field_u64(v, "buffer")?,
            level: field_u64(v, "level")? as u8,
        },
        "finish" => EventKind::Finish {
            buffer: field_u64(v, "buffer")?,
            level: field_u64(v, "level")? as u8,
            proc_ns: field_u64(v, "proc_ns")?,
        },
        "transfer" => EventKind::Transfer {
            dir: match field_str(v, "dir")? {
                "h2d" => CopyDir::H2D,
                "d2h" => CopyDir::D2H,
                other => return Err(format!("unknown copy direction '{other}'")),
            },
            bytes: field_u64(v, "bytes")?,
            end_ns: field_u64(v, "end_ns")?,
        },
        "streams" => EventKind::Streams {
            count: field_u64(v, "count")? as u32,
        },
        "dqaa_window" => EventKind::DqaaWindow {
            target: field_u64(v, "target")? as u32,
        },
        "dbsa_select" => EventKind::DbsaSelect {
            buffer: field_u64(v, "buffer")?,
            proctype: parse_kind_token(field_str(v, "proctype")?)?,
        },
        "task_retried" => EventKind::TaskRetried {
            buffer: field_u64(v, "buffer")?,
            level: field_u64(v, "level")? as u8,
            attempt: field_u64(v, "attempt")? as u32,
        },
        "worker_died" => EventKind::WorkerDied {
            inflight: field_u64(v, "inflight")? as u32,
        },
        "task_reassigned" => EventKind::TaskReassigned {
            buffer: field_u64(v, "buffer")?,
            level: field_u64(v, "level")? as u8,
        },
        "worker_joined" => EventKind::WorkerJoined {
            window: field_u64(v, "window")? as u32,
        },
        "worker_draining" => EventKind::WorkerDraining {
            outstanding: field_u64(v, "outstanding")? as u32,
        },
        "worker_left" => EventKind::WorkerLeft,
        "remote_start" => EventKind::RemoteStart {
            buffer: field_u64(v, "buffer")?,
            level: field_u64(v, "level")? as u8,
        },
        "remote_finish" => EventKind::RemoteFinish {
            buffer: field_u64(v, "buffer")?,
            level: field_u64(v, "level")? as u8,
            proc_ns: field_u64(v, "proc_ns")?,
        },
        "task_admitted" => EventKind::TaskAdmitted {
            buffer: field_u64(v, "buffer")?,
            level: field_u64(v, "level")? as u8,
        },
        "task_shed" => EventKind::TaskShed {
            buffer: field_u64(v, "buffer")?,
            level: field_u64(v, "level")? as u8,
        },
        "task_deadline_dropped" => EventKind::TaskDeadlineDropped {
            buffer: field_u64(v, "buffer")?,
            level: field_u64(v, "level")? as u8,
            waited_ns: field_u64(v, "waited_ns")?,
        },
        "edge_enqueued" => EventKind::EdgeEnqueued {
            edge: field_u64(v, "edge")? as u32,
            buffer: field_u64(v, "buffer")?,
            level: field_u64(v, "level")? as u8,
        },
        "profile_updated" => EventKind::ProfileUpdated {
            buffer: field_u64(v, "buffer")?,
            key: field_u64(v, "key")?,
            count: field_u64(v, "count")?,
            mean_ns: field_u64(v, "mean_ns")?,
        },
        "policy_decision" => EventKind::PolicyDecision {
            buffer: field_u64(v, "buffer")?,
            arm: parse_kind_token(field_str(v, "arm")?)?,
            explore: field_u64(v, "explore")? as u8,
            cpu_ppm: field_u64(v, "cpu_ppm")?,
            gpu_ppm: field_u64(v, "gpu_ppm")?,
        },
        other => return Err(format!("unknown event kind '{other}'")),
    };
    Ok(TraceEvent {
        ts_ns,
        origin,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let cpu = DeviceRef::worker(0, DeviceKind::Cpu, 0);
        let gpu = DeviceRef::worker(0, DeviceKind::Gpu, 1);
        let node = DeviceRef::node_scope(2);
        vec![
            TraceEvent {
                ts_ns: 0,
                origin: node,
                kind: EventKind::Enqueue {
                    buffer: 7,
                    level: 0,
                },
            },
            TraceEvent {
                ts_ns: 10,
                origin: cpu,
                kind: EventKind::Dispatch {
                    buffer: 7,
                    level: 0,
                },
            },
            TraceEvent {
                ts_ns: 10,
                origin: cpu,
                kind: EventKind::Start {
                    buffer: 7,
                    level: 0,
                },
            },
            TraceEvent {
                ts_ns: 900,
                origin: cpu,
                kind: EventKind::Finish {
                    buffer: 7,
                    level: 0,
                    proc_ns: 890,
                },
            },
            TraceEvent {
                ts_ns: 20,
                origin: gpu,
                kind: EventKind::Transfer {
                    dir: CopyDir::H2D,
                    bytes: 3136,
                    end_ns: 45,
                },
            },
            TraceEvent {
                ts_ns: 50,
                origin: gpu,
                kind: EventKind::Streams { count: 4 },
            },
            TraceEvent {
                ts_ns: 60,
                origin: cpu,
                kind: EventKind::DqaaWindow { target: 3 },
            },
            TraceEvent {
                ts_ns: 70,
                origin: node,
                kind: EventKind::DbsaSelect {
                    buffer: 9,
                    proctype: DeviceKind::Gpu,
                },
            },
            TraceEvent {
                ts_ns: 80,
                origin: gpu,
                kind: EventKind::TaskRetried {
                    buffer: 7,
                    level: 0,
                    attempt: 1,
                },
            },
            TraceEvent {
                ts_ns: 90,
                origin: gpu,
                kind: EventKind::WorkerDied { inflight: 2 },
            },
            TraceEvent {
                ts_ns: 95,
                origin: node,
                kind: EventKind::TaskReassigned {
                    buffer: 7,
                    level: 0,
                },
            },
            TraceEvent {
                ts_ns: 96,
                origin: cpu,
                kind: EventKind::WorkerJoined { window: 1 },
            },
            TraceEvent {
                ts_ns: 97,
                origin: cpu,
                kind: EventKind::WorkerDraining { outstanding: 2 },
            },
            TraceEvent {
                ts_ns: 98,
                origin: cpu,
                kind: EventKind::WorkerLeft,
            },
            TraceEvent {
                ts_ns: 100,
                origin: gpu,
                kind: EventKind::RemoteStart {
                    buffer: 8,
                    level: 1,
                },
            },
            TraceEvent {
                ts_ns: 100,
                origin: gpu,
                kind: EventKind::RemoteFinish {
                    buffer: 8,
                    level: 1,
                    proc_ns: 1234,
                },
            },
            TraceEvent {
                ts_ns: 110,
                origin: node,
                kind: EventKind::TaskAdmitted {
                    buffer: 11,
                    level: 0,
                },
            },
            TraceEvent {
                ts_ns: 120,
                origin: node,
                kind: EventKind::TaskShed {
                    buffer: 12,
                    level: 0,
                },
            },
            TraceEvent {
                ts_ns: 130,
                origin: node,
                kind: EventKind::TaskDeadlineDropped {
                    buffer: 13,
                    level: 0,
                    waited_ns: 5_000_000,
                },
            },
            TraceEvent {
                ts_ns: 140,
                origin: node,
                kind: EventKind::EdgeEnqueued {
                    edge: 1,
                    buffer: 14,
                    level: 0,
                },
            },
            TraceEvent {
                ts_ns: 150,
                origin: gpu,
                kind: EventKind::ProfileUpdated {
                    buffer: 15,
                    key: 0xfeed_beef,
                    count: 4,
                    mean_ns: 812_000,
                },
            },
            TraceEvent {
                ts_ns: 160,
                origin: node,
                kind: EventKind::PolicyDecision {
                    buffer: 16,
                    arm: DeviceKind::Gpu,
                    explore: 1,
                    cpu_ppm: 250_000,
                    gpu_ppm: 16_000_000,
                },
            },
        ]
    }

    #[test]
    fn round_trips_every_event_kind() {
        let events = sample_events();
        let text = to_jsonl(&events);
        let back = parse_jsonl(&text).expect("parse back");
        assert_eq!(back, events);
    }

    #[test]
    fn every_line_is_valid_json_with_required_fields() {
        let text = to_jsonl(&sample_events());
        assert_eq!(text.lines().count(), 22);
        for line in text.lines() {
            let v = json::parse(line).expect("valid JSON line");
            assert!(v.get("ts").and_then(Value::as_u64).is_some(), "{line}");
            assert!(v.get("node").and_then(Value::as_u64).is_some(), "{line}");
            assert!(v.get("kind").and_then(Value::as_str).is_some(), "{line}");
            assert!(v.get("dev").is_some(), "{line}");
        }
    }

    #[test]
    fn serialization_is_stable() {
        let ev = TraceEvent {
            ts_ns: 5,
            origin: DeviceRef::worker(1, DeviceKind::Gpu, 0),
            kind: EventKind::Finish {
                buffer: 3,
                level: 1,
                proc_ns: 42,
            },
        };
        assert_eq!(
            to_jsonl(&[ev]),
            "{\"ts\":5,\"node\":1,\"dev\":\"gpu0\",\"kind\":\"finish\",\"buffer\":3,\"level\":1,\"proc_ns\":42}\n"
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_jsonl("{\"ts\":1}").is_err()); // missing node/kind
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"ts\":1,\"node\":0,\"dev\":null,\"kind\":\"bogus\"}").is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n", to_jsonl(&sample_events()));
        assert_eq!(parse_jsonl(&text).unwrap().len(), 22);
    }
}
