//! `anthill::obs` — the unified observability layer of both executors.
//!
//! One [`Recorder`] handle serves the virtual-time simulator
//! ([`crate::sim`]) and the native threaded runtime ([`crate::local`]):
//!
//! * **Structured event trace** ([`TraceEvent`]): task lifecycle
//!   (enqueue / dispatch / start / finish), GPU copy-engine occupancy,
//!   and policy decisions (DQAA window updates, DBSA selections,
//!   Algorithm 1 stream-count changes). Timestamps are virtual time in the
//!   simulator and monotonic wall time since run start locally.
//! * **Metrics registry** ([`MetricsRegistry`]): labeled counters, gauges
//!   and log-bucketed duration histograms
//!   (`anthill_simkit::DurationHistogram`).
//! * **Exporters**: [`jsonl`] (line-oriented structured dump that
//!   round-trips) and [`chrome`] (Chrome `trace_event` JSON, loadable in
//!   Perfetto / `chrome://tracing`).
//!
//! ## Zero cost when disabled
//!
//! A disabled recorder is a `None` — every instrumentation call is an
//! inlined early return with no allocation, locking or clock read. The
//! runtimes are instrumented unconditionally and pay nothing unless a
//! caller installs a sink with [`Recorder::enabled`].
//!
//! ## Determinism
//!
//! Recording never influences scheduling: the simulator's event order and
//! timestamps are independent of whether a sink is installed, and events
//! carry only integers. Two simulation runs with the same seed therefore
//! serialize to *byte-identical* JSONL dumps (asserted by
//! `tests/observability.rs`).

mod event;
mod metrics;

pub mod chrome;
pub mod json;
pub mod jsonl;

use std::sync::Arc;
use std::time::Instant;

use anthill_simkit::SimDuration;
use parking_lot::Mutex;

pub use event::{DeviceRef, EventKind, TraceEvent};
pub use metrics::{MetricKey, MetricsRegistry};

/// The shared sink behind an enabled recorder.
struct Sink {
    events: Mutex<Vec<TraceEvent>>,
    metrics: Mutex<MetricsRegistry>,
}

/// A cloneable handle to an event/metrics sink — or to nothing.
///
/// Cloning an enabled recorder shares the sink (both handles append to
/// the same trace); cloning a disabled one stays disabled. The default is
/// disabled.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Sink>>,
}

impl Recorder {
    /// A recorder that drops everything at zero cost.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A recorder with a fresh in-memory sink.
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Sink {
                events: Mutex::new(Vec::new()),
                metrics: Mutex::new(MetricsRegistry::new()),
            })),
        }
    }

    /// Is a sink installed?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Append one event with an explicit timestamp (virtual time).
    #[inline]
    pub fn record(&self, ts_ns: u64, origin: DeviceRef, kind: EventKind) {
        let Some(sink) = &self.inner else { return };
        sink.events.lock().push(TraceEvent {
            ts_ns,
            origin,
            kind,
        });
    }

    /// Append one event stamped with monotonic wall time since `epoch`.
    ///
    /// The clock is read *inside* the sink's critical section, so trace
    /// order and timestamp order agree even when worker threads race —
    /// per-origin timestamps in the stored trace are always non-decreasing.
    #[inline]
    pub fn record_now(&self, epoch: Instant, origin: DeviceRef, kind: EventKind) {
        let Some(sink) = &self.inner else { return };
        let mut events = sink.events.lock();
        let ts_ns = epoch.elapsed().as_nanos() as u64;
        events.push(TraceEvent {
            ts_ns,
            origin,
            kind,
        });
    }

    /// Add to a labeled counter (no-op when disabled).
    #[inline]
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let Some(sink) = &self.inner else { return };
        sink.metrics.lock().counter_add(name, labels, v);
    }

    /// Set a labeled gauge (no-op when disabled).
    #[inline]
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let Some(sink) = &self.inner else { return };
        sink.metrics.lock().gauge_set(name, labels, v);
    }

    /// Record into a labeled duration histogram (no-op when disabled).
    #[inline]
    pub fn histogram_record(&self, name: &str, labels: &[(&str, &str)], d: SimDuration) {
        let Some(sink) = &self.inner else { return };
        sink.metrics.lock().histogram_record(name, labels, d);
    }

    /// Number of recorded events (0 when disabled).
    pub fn event_count(&self) -> usize {
        match &self.inner {
            Some(sink) => sink.events.lock().len(),
            None => 0,
        }
    }

    /// Snapshot of the recorded events (empty when disabled).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(sink) => sink.events.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Drain the recorded events, leaving the sink empty.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(sink) => std::mem::take(&mut *sink.events.lock()),
            None => Vec::new(),
        }
    }

    /// Snapshot of the metrics registry (empty when disabled).
    pub fn metrics(&self) -> MetricsRegistry {
        match &self.inner {
            Some(sink) => sink.metrics.lock().clone(),
            None => MetricsRegistry::new(),
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(sink) => write!(f, "Recorder(enabled, {} events)", sink.events.lock().len()),
            None => write!(f, "Recorder(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anthill_hetsim::DeviceKind;

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.record(
            1,
            DeviceRef::node_scope(0),
            EventKind::Enqueue {
                buffer: 1,
                level: 0,
            },
        );
        r.counter_add("c", &[], 1);
        r.histogram_record("h", &[], SimDuration::from_millis(1));
        assert_eq!(r.event_count(), 0);
        assert!(r.events().is_empty());
        assert_eq!(r.metrics().counter("c", &[]), 0);
    }

    #[test]
    fn clones_share_the_sink() {
        let r = Recorder::enabled();
        let clone = r.clone();
        clone.record(
            7,
            DeviceRef::worker(0, DeviceKind::Cpu, 0),
            EventKind::Start {
                buffer: 4,
                level: 0,
            },
        );
        clone.counter_add("tasks", &[("device", "cpu")], 1);
        assert_eq!(r.event_count(), 1);
        assert_eq!(r.events()[0].ts_ns, 7);
        assert_eq!(r.metrics().counter("tasks", &[("device", "cpu")]), 1);
    }

    #[test]
    fn take_events_drains() {
        let r = Recorder::enabled();
        r.record(1, DeviceRef::node_scope(0), EventKind::Streams { count: 2 });
        assert_eq!(r.take_events().len(), 1);
        assert_eq!(r.event_count(), 0);
    }

    #[test]
    fn record_now_timestamps_are_monotone_in_trace_order() {
        let r = Recorder::enabled();
        let epoch = Instant::now();
        let origin = DeviceRef::worker(0, DeviceKind::Cpu, 0);
        for i in 0..200 {
            r.record_now(epoch, origin, EventKind::DqaaWindow { target: i });
        }
        let events = r.events();
        for w in events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }
}
