//! `anthill::obs` — the unified observability layer of both executors.
//!
//! One [`Recorder`] handle serves the virtual-time simulator
//! ([`crate::sim`]) and the native threaded runtime ([`crate::local`]):
//!
//! * **Structured event trace** ([`TraceEvent`]): task lifecycle
//!   (enqueue / dispatch / start / finish), GPU copy-engine occupancy,
//!   and policy decisions (DQAA window updates, DBSA selections,
//!   Algorithm 1 stream-count changes). Timestamps are virtual time in the
//!   simulator and monotonic wall time since run start locally.
//! * **Metrics registry** ([`MetricsRegistry`]): labeled counters, gauges
//!   and log-bucketed duration histograms
//!   (`anthill_simkit::DurationHistogram`).
//! * **Exporters**: [`jsonl`] (line-oriented structured dump that
//!   round-trips) and [`chrome`] (Chrome `trace_event` JSON, loadable in
//!   Perfetto / `chrome://tracing`).
//!
//! ## Zero cost when disabled
//!
//! A disabled recorder is a `None` — every instrumentation call is an
//! inlined early return with no allocation, locking or clock read. The
//! runtimes are instrumented unconditionally and pay nothing unless a
//! caller installs a sink with [`Recorder::enabled`].
//!
//! ## Batched emission
//!
//! The default sink ([`Recorder::enabled`]) is *batched*: each producer
//! thread appends into one of [`EVENT_SHARDS`] striped buffers (threads
//! are assigned shards round-robin, so a push is an uncontended mutex
//! acquire plus a `Vec` push); the events are collected and ordered only
//! when a reader drains the sink ([`Recorder::events`] /
//! [`Recorder::take_events`]). The pre-existing fully-serialized sink
//! (one global mutex around a `Vec`, taken per event) is kept as
//! [`Recorder::enabled_serialized`] so `repro perf` can measure the two
//! designs against each other in one binary.
//!
//! ## Ordering contract
//!
//! Unchanged from the serialized design, but established at a different
//! point: any drained or snapshotted view of the trace is in
//! **non-decreasing `ts_ns` order**, and events with equal timestamps keep
//! their arrival order (a single producer's program order is preserved —
//! a producer always appends to the same shard buffer and the drain-time
//! sort is stable). [`Recorder::record_now`] reads the clock *before*
//! touching any shared structure, so a producer can never be stamped late
//! by waiting on a lock; cross-thread ordering is restored by the stable
//! drain-time sort keyed on `ts_ns` instead of by serializing every
//! producer through the sink's critical section.
//!
//! ## Determinism
//!
//! Recording never influences scheduling: the simulator's event order and
//! timestamps are independent of whether a sink is installed, and events
//! carry only integers. The simulator emits from a single thread with
//! non-decreasing virtual timestamps, so the stable drain-time sort is the
//! identity there and two simulation runs with the same seed serialize to
//! *byte-identical* JSONL dumps (asserted by `tests/observability.rs`).

mod event;
mod metrics;

pub mod chrome;
pub mod json;
pub mod jsonl;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use anthill_simkit::SimDuration;
use parking_lot::Mutex;

pub use event::{DeviceRef, EventKind, TraceEvent};
pub use metrics::{MetricKey, MetricsRegistry};

/// Stripe count of the batched sink's producer-side buffers. Worker
/// threads are assigned stripes round-robin, so with up to this many
/// concurrent producers every push lands on a buffer no other thread is
/// touching.
const EVENT_SHARDS: usize = 16;

/// The shard a producer thread appends to: assigned once per thread,
/// round-robin across [`EVENT_SHARDS`]. Stable per thread, so a single
/// producer's events stay in program order within its shard buffer.
fn event_shard() -> usize {
    static NEXT_PRODUCER: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT_PRODUCER.fetch_add(1, Ordering::Relaxed) % EVENT_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// Storage half of a batched sink: per-producer stripes plus the events
/// already drained out of them, kept sorted by timestamp.
struct BatchStore {
    shards: Box<[Mutex<Vec<TraceEvent>>; EVENT_SHARDS]>,
    drained: Mutex<Vec<TraceEvent>>,
}

impl BatchStore {
    fn new() -> BatchStore {
        BatchStore {
            shards: Box::new(std::array::from_fn(|_| Mutex::new(Vec::new()))),
            drained: Mutex::new(Vec::new()),
        }
    }

    /// Pull everything queued in the stripes and restore the ordering
    /// contract (stable sort by `ts_ns`; ties keep each producer's
    /// program order). Returns the drained store, locked.
    fn drain(&self) -> parking_lot::MutexGuard<'_, Vec<TraceEvent>> {
        let mut drained = self.drained.lock();
        let before = drained.len();
        for shard in self.shards.iter() {
            drained.append(&mut shard.lock());
        }
        if drained.len() != before {
            drained.sort_by_key(|e| e.ts_ns);
        }
        drained
    }
}

/// Event storage behind an enabled recorder.
enum Events {
    /// Striped producer-side buffers; ordered at drain time.
    Batched(BatchStore),
    /// One mutex taken per event (the pre-batching design, kept as the
    /// measured baseline; also sorted at drain so the contract matches).
    Serialized(Mutex<Vec<TraceEvent>>),
}

/// The shared sink behind an enabled recorder.
struct Sink {
    events: Events,
    metrics: Mutex<MetricsRegistry>,
}

/// A cloneable handle to an event/metrics sink — or to nothing.
///
/// Cloning an enabled recorder shares the sink (both handles append to
/// the same trace); cloning a disabled one stays disabled. The default is
/// disabled.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Sink>>,
}

impl Recorder {
    /// A recorder that drops everything at zero cost.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A recorder with a fresh in-memory sink using batched emission:
    /// producers append to per-thread stripes and readers order the
    /// events at drain time (see the module docs' ordering contract).
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Sink {
                events: Events::Batched(BatchStore::new()),
                metrics: Mutex::new(MetricsRegistry::new()),
            })),
        }
    }

    /// A recorder whose sink serializes every event through one global
    /// mutex — the pre-batching design. Functionally identical to
    /// [`enabled`](Recorder::enabled); kept so `repro perf` can measure
    /// the contention cost of per-event serialization as its baseline.
    pub fn enabled_serialized() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Sink {
                events: Events::Serialized(Mutex::new(Vec::new())),
                metrics: Mutex::new(MetricsRegistry::new()),
            })),
        }
    }

    /// Is a sink installed?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Append one event with an explicit timestamp (virtual time).
    #[inline]
    pub fn record(&self, ts_ns: u64, origin: DeviceRef, kind: EventKind) {
        let Some(sink) = &self.inner else { return };
        let ev = TraceEvent {
            ts_ns,
            origin,
            kind,
        };
        match &sink.events {
            Events::Batched(store) => store.shards[event_shard()].lock().push(ev),
            Events::Serialized(events) => events.lock().push(ev),
        }
    }

    /// Append one event stamped with monotonic wall time since `epoch`.
    ///
    /// The clock is read *before* any shared structure is touched — a
    /// producer is never stamped late because it waited on a lock. The
    /// trace-order/timestamp-order agreement the serialized sink provided
    /// by stamping inside its critical section is provided at drain time
    /// instead (stable sort by `ts_ns`; see the module docs).
    #[inline]
    pub fn record_now(&self, epoch: Instant, origin: DeviceRef, kind: EventKind) {
        if self.inner.is_none() {
            return;
        }
        let ts_ns = epoch.elapsed().as_nanos() as u64;
        self.record(ts_ns, origin, kind);
    }

    /// Add to a labeled counter (no-op when disabled).
    #[inline]
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let Some(sink) = &self.inner else { return };
        sink.metrics.lock().counter_add(name, labels, v);
    }

    /// Set a labeled gauge (no-op when disabled).
    #[inline]
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let Some(sink) = &self.inner else { return };
        sink.metrics.lock().gauge_set(name, labels, v);
    }

    /// Record into a labeled duration histogram (no-op when disabled).
    #[inline]
    pub fn histogram_record(&self, name: &str, labels: &[(&str, &str)], d: SimDuration) {
        let Some(sink) = &self.inner else { return };
        sink.metrics.lock().histogram_record(name, labels, d);
    }

    /// Number of recorded events (0 when disabled).
    pub fn event_count(&self) -> usize {
        match &self.inner {
            Some(sink) => match &sink.events {
                Events::Batched(store) => store.drain().len(),
                Events::Serialized(events) => events.lock().len(),
            },
            None => 0,
        }
    }

    /// Snapshot of the recorded events, in timestamp order (empty when
    /// disabled).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(sink) => match &sink.events {
                Events::Batched(store) => store.drain().clone(),
                Events::Serialized(events) => {
                    let mut events = events.lock();
                    events.sort_by_key(|e| e.ts_ns);
                    events.clone()
                }
            },
            None => Vec::new(),
        }
    }

    /// Drain the recorded events in timestamp order, leaving the sink
    /// empty.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(sink) => match &sink.events {
                Events::Batched(store) => std::mem::take(&mut *store.drain()),
                Events::Serialized(events) => {
                    let mut events = events.lock();
                    events.sort_by_key(|e| e.ts_ns);
                    std::mem::take(&mut *events)
                }
            },
            None => Vec::new(),
        }
    }

    /// Snapshot of the metrics registry (empty when disabled).
    pub fn metrics(&self) -> MetricsRegistry {
        match &self.inner {
            Some(sink) => sink.metrics.lock().clone(),
            None => MetricsRegistry::new(),
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(_) => write!(f, "Recorder(enabled, {} events)", self.event_count()),
            None => write!(f, "Recorder(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anthill_hetsim::DeviceKind;

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.record(
            1,
            DeviceRef::node_scope(0),
            EventKind::Enqueue {
                buffer: 1,
                level: 0,
            },
        );
        r.counter_add("c", &[], 1);
        r.histogram_record("h", &[], SimDuration::from_millis(1));
        assert_eq!(r.event_count(), 0);
        assert!(r.events().is_empty());
        assert_eq!(r.metrics().counter("c", &[]), 0);
    }

    #[test]
    fn clones_share_the_sink() {
        let r = Recorder::enabled();
        let clone = r.clone();
        clone.record(
            7,
            DeviceRef::worker(0, DeviceKind::Cpu, 0),
            EventKind::Start {
                buffer: 4,
                level: 0,
            },
        );
        clone.counter_add("tasks", &[("device", "cpu")], 1);
        assert_eq!(r.event_count(), 1);
        assert_eq!(r.events()[0].ts_ns, 7);
        assert_eq!(r.metrics().counter("tasks", &[("device", "cpu")]), 1);
    }

    #[test]
    fn take_events_drains() {
        let r = Recorder::enabled();
        r.record(1, DeviceRef::node_scope(0), EventKind::Streams { count: 2 });
        assert_eq!(r.take_events().len(), 1);
        assert_eq!(r.event_count(), 0);
    }

    #[test]
    fn record_now_timestamps_are_monotone_in_trace_order() {
        let r = Recorder::enabled();
        let epoch = Instant::now();
        let origin = DeviceRef::worker(0, DeviceKind::Cpu, 0);
        for i in 0..200 {
            r.record_now(epoch, origin, EventKind::DqaaWindow { target: i });
        }
        let events = r.events();
        assert_eq!(events.len(), 200);
        for w in events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    #[test]
    fn equal_timestamps_keep_arrival_order() {
        // Single producer, all at the same virtual instant: the stable
        // drain-time sort must not reorder them.
        let r = Recorder::enabled();
        for i in 0..50u32 {
            r.record(9, DeviceRef::node_scope(0), EventKind::Streams { count: i });
        }
        let events = r.events();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.kind, EventKind::Streams { count: i as u32 });
        }
    }

    #[test]
    fn concurrent_batched_producers_drain_sorted_and_complete() {
        let r = Recorder::enabled();
        let epoch = Instant::now();
        std::thread::scope(|s| {
            for t in 0..4usize {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        r.record_now(
                            epoch,
                            DeviceRef::worker(0, DeviceKind::Cpu, t),
                            EventKind::DqaaWindow { target: t as u32 },
                        );
                    }
                });
            }
        });
        let events = r.take_events();
        assert_eq!(events.len(), 2_000, "no event may be lost");
        for w in events.windows(2) {
            assert!(
                w[0].ts_ns <= w[1].ts_ns,
                "drained trace must be timestamp-sorted"
            );
        }
        assert_eq!(r.event_count(), 0);
    }

    #[test]
    fn serialized_sink_matches_batched_semantics() {
        let mk = |r: &Recorder| {
            for i in 0..10u32 {
                r.record(
                    u64::from(10 - i),
                    DeviceRef::node_scope(0),
                    EventKind::Streams { count: i },
                );
            }
            r.counter_add("c", &[], 2);
        };
        let batched = Recorder::enabled();
        let serialized = Recorder::enabled_serialized();
        mk(&batched);
        mk(&serialized);
        assert_eq!(batched.events(), serialized.events());
        assert_eq!(batched.event_count(), serialized.event_count());
        assert_eq!(
            batched.metrics().counter("c", &[]),
            serialized.metrics().counter("c", &[])
        );
        assert_eq!(batched.take_events(), serialized.take_events());
    }
}
