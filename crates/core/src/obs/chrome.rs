//! Chrome `trace_event` export (the JSON Array/Object format understood by
//! `chrome://tracing` and Perfetto).
//!
//! Mapping:
//!
//! | trace event | Chrome phase |
//! |---|---|
//! | `Start`..`Finish` per (device, buffer) | `X` complete slice |
//! | `Transfer` | `X` complete slice (`H2D`/`D2H`) |
//! | `DqaaWindow`, `Streams` | `C` counter |
//! | `Enqueue`, `Dispatch`, `DbsaSelect` | `i` instant |
//! | `WorkerJoined`, `WorkerDraining`, `WorkerLeft` | `i` instant (process-scoped) |
//! | process/thread names | `M` metadata |
//!
//! `pid` is the node (sim) or stage (local); `tid` is derived from the
//! device class and index. Timestamps are microseconds with exact
//! nanosecond sub-decimal (`ns/1000 + "." + ns%1000`) — integer math only,
//! so same-seed runs export byte-identical files.

use std::collections::{BTreeSet, HashMap};

use anthill_hetsim::CopyDir;

use super::event::{DeviceRef, EventKind, TraceEvent};

/// Deterministic thread id for an origin: node scope gets 0, CPUs
/// 1..=100, GPUs 101.. (well past any realistic per-node device count).
fn tid(origin: &DeviceRef) -> u32 {
    match origin.kind {
        None => 0,
        Some(anthill_hetsim::DeviceKind::Cpu) => 1 + origin.index,
        Some(anthill_hetsim::DeviceKind::Gpu) => 101 + origin.index,
    }
}

/// Microseconds with exact nanosecond fraction, e.g. `1234.567`.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_event(
    out: &mut Vec<String>,
    name: &str,
    ph: char,
    ts_ns: u64,
    origin: &DeviceRef,
    extra: &str,
) {
    out.push(format!(
        "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":{},\"tid\":{}{extra}}}",
        us(ts_ns),
        origin.node,
        tid(origin),
    ));
}

/// Serialize events into one Chrome/Perfetto trace document.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out: Vec<String> = Vec::with_capacity(events.len() + 16);

    // Metadata: name each process (node) and thread (device) that appears.
    let origins: BTreeSet<DeviceRef> = events.iter().map(|e| e.origin).collect();
    let nodes: BTreeSet<u32> = origins.iter().map(|o| o.node).collect();
    for &node in &nodes {
        out.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":{node},\"tid\":0,\
             \"args\":{{\"name\":\"node{node}\"}}}}"
        ));
    }
    for origin in &origins {
        let label = match origin.kind {
            Some(k) => format!("{}{}", k, origin.index),
            None => "queue".to_string(),
        };
        out.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":{},\"tid\":{},\
             \"args\":{{\"name\":\"{label}\"}}}}",
            origin.node,
            tid(origin),
        ));
    }

    // Open Start slices waiting for their Finish, per (origin, buffer).
    let mut open: HashMap<(DeviceRef, u64), u64> = HashMap::new();
    for ev in events {
        match ev.kind {
            EventKind::Start { buffer, .. } => {
                open.insert((ev.origin, buffer), ev.ts_ns);
            }
            EventKind::Finish {
                buffer,
                level,
                proc_ns,
            } => {
                // Slice from the matching Start; a Finish with no recorded
                // Start (partial trace) falls back to its processing time.
                let begin = open
                    .remove(&(ev.origin, buffer))
                    .unwrap_or_else(|| ev.ts_ns.saturating_sub(proc_ns));
                let dur = ev.ts_ns.saturating_sub(begin);
                push_event(
                    &mut out,
                    &format!("task L{level}"),
                    'X',
                    begin,
                    &ev.origin,
                    &format!(
                        ",\"dur\":{},\"cat\":\"task\",\"args\":{{\"buffer\":{buffer},\"proc_ns\":{proc_ns}}}",
                        us(dur)
                    ),
                );
            }
            EventKind::Transfer { dir, bytes, end_ns } => {
                let name = match dir {
                    CopyDir::H2D => "H2D",
                    CopyDir::D2H => "D2H",
                };
                let dur = end_ns.saturating_sub(ev.ts_ns);
                push_event(
                    &mut out,
                    name,
                    'X',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(
                        ",\"dur\":{},\"cat\":\"transfer\",\"args\":{{\"bytes\":{bytes}}}",
                        us(dur)
                    ),
                );
            }
            EventKind::DqaaWindow { target } => {
                push_event(
                    &mut out,
                    &format!("window {}", ev.origin),
                    'C',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(",\"args\":{{\"target\":{target}}}"),
                );
            }
            EventKind::Streams { count } => {
                push_event(
                    &mut out,
                    &format!("streams {}", ev.origin),
                    'C',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(",\"args\":{{\"count\":{count}}}"),
                );
            }
            EventKind::Enqueue { buffer, .. } => {
                push_event(
                    &mut out,
                    "enqueue",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(",\"s\":\"t\",\"args\":{{\"buffer\":{buffer}}}"),
                );
            }
            EventKind::Dispatch { buffer, .. } => {
                push_event(
                    &mut out,
                    "dispatch",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(",\"s\":\"t\",\"args\":{{\"buffer\":{buffer}}}"),
                );
            }
            EventKind::DbsaSelect { buffer, proctype } => {
                push_event(
                    &mut out,
                    "dbsa",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(
                        ",\"s\":\"t\",\"args\":{{\"buffer\":{buffer},\"proctype\":\"{proctype}\"}}"
                    ),
                );
            }
            EventKind::TaskRetried {
                buffer, attempt, ..
            } => {
                push_event(
                    &mut out,
                    "retry",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(",\"s\":\"t\",\"args\":{{\"buffer\":{buffer},\"attempt\":{attempt}}}"),
                );
            }
            EventKind::WorkerDied { inflight } => {
                push_event(
                    &mut out,
                    "worker died",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(",\"s\":\"p\",\"args\":{{\"inflight\":{inflight}}}"),
                );
            }
            EventKind::TaskReassigned { buffer, .. } => {
                push_event(
                    &mut out,
                    "reassign",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(",\"s\":\"t\",\"args\":{{\"buffer\":{buffer}}}"),
                );
            }
            // Membership transitions are process-scoped instants like
            // `worker died`: they mark the pool changing shape, not work
            // on a particular buffer.
            EventKind::WorkerJoined { window } => {
                push_event(
                    &mut out,
                    "worker joined",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(",\"s\":\"p\",\"args\":{{\"window\":{window}}}"),
                );
            }
            EventKind::WorkerDraining { outstanding } => {
                push_event(
                    &mut out,
                    "worker draining",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(",\"s\":\"p\",\"args\":{{\"outstanding\":{outstanding}}}"),
                );
            }
            EventKind::WorkerLeft => {
                push_event(
                    &mut out,
                    "worker left",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    ",\"s\":\"p\",\"args\":{}",
                );
            }
            // Remote worker spans are re-stamped to the coordinator clock,
            // so they render as instants rather than slices (a slice would
            // collide with the engine's own Start..Finish pair for the
            // same buffer on the same device lane).
            EventKind::RemoteStart { buffer, .. } => {
                push_event(
                    &mut out,
                    "remote start",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(",\"s\":\"t\",\"args\":{{\"buffer\":{buffer}}}"),
                );
            }
            EventKind::RemoteFinish {
                buffer, proc_ns, ..
            } => {
                push_event(
                    &mut out,
                    "remote finish",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(",\"s\":\"t\",\"args\":{{\"buffer\":{buffer},\"proc_ns\":{proc_ns}}}"),
                );
            }
            EventKind::EdgeEnqueued { edge, buffer, .. } => {
                push_event(
                    &mut out,
                    "edge enqueue",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(",\"s\":\"t\",\"args\":{{\"edge\":{edge},\"buffer\":{buffer}}}"),
                );
            }
            EventKind::TaskAdmitted { buffer, .. } => {
                push_event(
                    &mut out,
                    "admit",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(",\"s\":\"t\",\"args\":{{\"buffer\":{buffer}}}"),
                );
            }
            EventKind::TaskShed { buffer, .. } => {
                push_event(
                    &mut out,
                    "shed",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(",\"s\":\"t\",\"args\":{{\"buffer\":{buffer}}}"),
                );
            }
            EventKind::TaskDeadlineDropped {
                buffer, waited_ns, ..
            } => {
                push_event(
                    &mut out,
                    "deadline drop",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(
                        ",\"s\":\"t\",\"args\":{{\"buffer\":{buffer},\"waited_ns\":{waited_ns}}}"
                    ),
                );
            }
            EventKind::ProfileUpdated {
                buffer,
                key,
                count,
                mean_ns,
            } => {
                push_event(
                    &mut out,
                    "profile update",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(
                        ",\"s\":\"t\",\"args\":{{\"buffer\":{buffer},\"key\":{key},\"count\":{count},\"mean_ns\":{mean_ns}}}"
                    ),
                );
            }
            EventKind::PolicyDecision {
                buffer,
                arm,
                explore,
                cpu_ppm,
                gpu_ppm,
            } => {
                push_event(
                    &mut out,
                    "policy decision",
                    'i',
                    ev.ts_ns,
                    &ev.origin,
                    &format!(
                        ",\"s\":\"t\",\"args\":{{\"buffer\":{buffer},\"arm\":\"{arm}\",\"explore\":{explore},\"cpu_ppm\":{cpu_ppm},\"gpu_ppm\":{gpu_ppm}}}"
                    ),
                );
            }
        }
    }

    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n",
        out.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::super::json::{self, Value};
    use super::*;
    use anthill_hetsim::DeviceKind;

    fn sample_events() -> Vec<TraceEvent> {
        let cpu = DeviceRef::worker(0, DeviceKind::Cpu, 0);
        let gpu = DeviceRef::worker(1, DeviceKind::Gpu, 0);
        vec![
            TraceEvent {
                ts_ns: 0,
                origin: DeviceRef::node_scope(0),
                kind: EventKind::Enqueue {
                    buffer: 1,
                    level: 0,
                },
            },
            TraceEvent {
                ts_ns: 1_000,
                origin: cpu,
                kind: EventKind::Start {
                    buffer: 1,
                    level: 0,
                },
            },
            TraceEvent {
                ts_ns: 5_500,
                origin: cpu,
                kind: EventKind::Finish {
                    buffer: 1,
                    level: 0,
                    proc_ns: 4_500,
                },
            },
            TraceEvent {
                ts_ns: 2_000,
                origin: gpu,
                kind: EventKind::Transfer {
                    dir: CopyDir::D2H,
                    bytes: 256,
                    end_ns: 3_250,
                },
            },
            TraceEvent {
                ts_ns: 4_000,
                origin: gpu,
                kind: EventKind::Streams { count: 8 },
            },
            TraceEvent {
                ts_ns: 6_000,
                origin: cpu,
                kind: EventKind::DqaaWindow { target: 2 },
            },
        ]
    }

    fn parse_trace(text: &str) -> Vec<Value> {
        let doc = json::parse(text.trim_end()).expect("valid JSON document");
        doc.get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents array")
            .to_vec()
    }

    #[test]
    fn every_event_has_required_fields() {
        let evs = parse_trace(&to_chrome_trace(&sample_events()));
        assert!(!evs.is_empty());
        for e in &evs {
            let ph = e.get("ph").and_then(Value::as_str).expect("ph field");
            assert!(["X", "C", "i", "M"].contains(&ph), "phase {ph}");
            assert!(e.get("ts").and_then(Value::as_f64).is_some(), "ts field");
            assert!(e.get("pid").and_then(Value::as_u64).is_some(), "pid field");
            assert!(e.get("tid").and_then(Value::as_u64).is_some(), "tid field");
            assert!(e.get("name").and_then(Value::as_str).is_some(), "name");
            if ph == "X" {
                assert!(e.get("dur").and_then(Value::as_f64).is_some(), "dur on X");
            }
        }
    }

    #[test]
    fn start_finish_pairs_become_complete_slices() {
        let evs = parse_trace(&to_chrome_trace(&sample_events()));
        let slice = evs
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("task L0"))
            .expect("task slice");
        // Start at 1000 ns = 1.000 µs, dur 4500 ns = 4.5 µs.
        assert_eq!(slice.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(slice.get("dur").unwrap().as_f64(), Some(4.5));
        assert_eq!(
            slice.get("args").unwrap().get("buffer").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn transfers_and_counters_are_exported() {
        let evs = parse_trace(&to_chrome_trace(&sample_events()));
        let d2h = evs
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("D2H"))
            .expect("D2H slice");
        assert_eq!(d2h.get("dur").unwrap().as_f64(), Some(1.25));
        let counters: Vec<&Value> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2, "streams + window counters");
    }

    #[test]
    fn metadata_names_processes_and_threads() {
        let evs = parse_trace(&to_chrome_trace(&sample_events()));
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
            })
            .collect();
        assert!(names.contains(&"node0"), "{names:?}");
        assert!(names.contains(&"node1"), "{names:?}");
        assert!(names.contains(&"CPU0"), "{names:?}");
        assert!(names.contains(&"GPU0"), "{names:?}");
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let text = to_chrome_trace(&[]);
        let doc = json::parse(text.trim_end()).expect("valid");
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
