//! A minimal JSON reader used to parse exported traces back in.
//!
//! The exporters in this module hand-serialize (the build environment has
//! no serde runtime, and hand-rolled integer formatting is what makes
//! same-seed traces byte-identical); this parser closes the loop so tests
//! can round-trip JSONL dumps and validate the Chrome export structurally.
//! It covers the full JSON grammar except exotic escapes (`\uXXXX` is
//! accepted for BMP code points).

use std::fmt;

/// A parsed JSON value. Integer-looking numbers (no fraction/exponent)
/// keep full `u64`/`i64` precision in [`Value::Int`]; everything else is
/// [`Value::Float`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction or exponent. `i128` so the full `u64`
    /// range (e.g. 64-bit shape-key hashes) and the full `i64` range both
    /// round-trip exactly.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Arr(_) => write!(f, "<array>"),
            Value::Obj(_) => write!(f, "<object>"),
        }
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("non-BMP \\u escape")?);
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if fractional {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad number '{text}': {e}"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| format!("bad number '{text}': {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object() {
        let v = parse(r#"{"ts":123,"dev":"CPU0","x":null,"ok":true}"#).unwrap();
        assert_eq!(v.get("ts").unwrap().as_u64(), Some(123));
        assert_eq!(v.get("dev").unwrap().as_str(), Some("CPU0"));
        assert_eq!(v.get("x"), Some(&Value::Null));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_arrays_and_objects() {
        let v = parse(r#"{"traceEvents":[{"ph":"X","ts":1.5},{"ph":"M"}],"n":-3}"#).unwrap();
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(evs[0].get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("n"), Some(&Value::Int(-3)));
    }

    #[test]
    fn big_integers_keep_precision() {
        let v = parse("{\"ns\":9007199254740995}").unwrap();
        assert_eq!(v.get("ns").unwrap().as_u64(), Some(9_007_199_254_740_995));
        // The full u64 range round-trips (64-bit shape-key hashes exceed
        // i64::MAX about half the time).
        let v = parse("{\"key\":16706619345353492501}").unwrap();
        assert_eq!(
            v.get("key").unwrap().as_u64(),
            Some(16_706_619_345_353_492_501)
        );
    }

    #[test]
    fn string_escapes_round() {
        let v = parse(r#"{"s":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
    }
}
