//! The demand-driven scheduling policies of the paper (its Table 5):
//!
//! | Policy   | Area of effect | Sender queue        | Receiver queue      | Request size |
//! |----------|----------------|---------------------|---------------------|--------------|
//! | DDFCFS   | intra-filter   | unsorted (FIFO)     | unsorted (FIFO)     | static       |
//! | DDWRR    | intra-filter   | unsorted (FIFO)     | sorted by speedup   | static       |
//! | ODDS     | inter-filter   | sorted by speedup   | sorted by speedup   | dynamic (DQAA) |
//!
//! All three are demand-driven: consumers *request* buffers and maintain a
//! minimal receive-side queue, so devices are assigned work only as they
//! become idle. DDFCFS is Anthill's default; DDWRR adds speedup-ordered
//! consumption on the receiver; ODDS moves selection to the sender (DBSA)
//! and adapts each worker's outstanding-request window at run time (DQAA).
//!
//! Beyond the paper's three heuristics, two *learned* policies reuse the
//! same demand-driven machinery (receiver sorted by weight, static
//! request windows) but derive their weights from run-time observations
//! instead of a static profile — see [`learned`]:
//!
//! | Policy   | Receiver queue           | Weight source                        |
//! |----------|--------------------------|--------------------------------------|
//! | AFFINITY | sorted by learned weight | online profile − data-locality bonus |
//! | BANDIT   | sorted by learned weight | per-device LinUCB-lite contextual bandit |
//!
//! This module only *describes* the policies. They are *applied* in
//! exactly one place — the backend-agnostic scheduling engine
//! ([`crate::engine`]), which every executor drives.

pub mod learned;

/// Which scheduling policy a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Demand-driven first-come first-served.
    DdFcfs,
    /// Demand-driven dynamic weighted round-robin.
    DdWrr,
    /// On-demand dynamic selective stream.
    Odds,
    /// Learned affinity-aware policy: online service-time profile with a
    /// data-locality bonus (XKaapi-style score = predicted − affinity).
    Affinity,
    /// Learned contextual-bandit device assigner (LinUCB-lite with a
    /// deterministic epsilon floor).
    Bandit,
}

impl PolicyKind {
    /// Does the receiver consume its queue sorted by per-device speedup?
    pub fn receiver_sorted(self) -> bool {
        !matches!(self, PolicyKind::DdFcfs)
    }

    /// Does the sender select buffers per requesting processor type (DBSA)?
    pub fn sender_selects(self) -> bool {
        matches!(self, PolicyKind::Odds)
    }

    /// Is the per-worker request window adapted at run time (DQAA)?
    pub fn dynamic_requests(self) -> bool {
        matches!(self, PolicyKind::Odds)
    }

    /// Is this one of the learned policies (weights derived from run-time
    /// observations via [`learned::LearnedWeights`])?
    pub fn learned(self) -> bool {
        matches!(self, PolicyKind::Affinity | PolicyKind::Bandit)
    }

    /// Display name as used in the paper (learned extensions follow the
    /// same upper-case convention).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::DdFcfs => "DDFCFS",
            PolicyKind::DdWrr => "DDWRR",
            PolicyKind::Odds => "ODDS",
            PolicyKind::Affinity => "AFFINITY",
            PolicyKind::Bandit => "BANDIT",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full scheduling configuration of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Policy {
    /// The policy family.
    pub kind: PolicyKind,
    /// Static per-worker request window for DDFCFS/DDWRR (the programmer-
    /// chosen `streamRequestSize`); the DQAA starting point for ODDS.
    pub request_size: usize,
}

impl Policy {
    /// DDFCFS with a static request window.
    pub fn ddfcfs(request_size: usize) -> Policy {
        Policy {
            kind: PolicyKind::DdFcfs,
            request_size: request_size.max(1),
        }
    }

    /// DDWRR with a static request window.
    pub fn ddwrr(request_size: usize) -> Policy {
        Policy {
            kind: PolicyKind::DdWrr,
            request_size: request_size.max(1),
        }
    }

    /// ODDS (request window adapts from 1).
    pub fn odds() -> Policy {
        Policy {
            kind: PolicyKind::Odds,
            request_size: 1,
        }
    }

    /// Learned affinity-aware policy with a static request window.
    pub fn affinity(request_size: usize) -> Policy {
        Policy {
            kind: PolicyKind::Affinity,
            request_size: request_size.max(1),
        }
    }

    /// Learned contextual-bandit policy with a static request window.
    pub fn bandit(request_size: usize) -> Policy {
        Policy {
            kind: PolicyKind::Bandit,
            request_size: request_size.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_matches_table5() {
        assert!(!PolicyKind::DdFcfs.receiver_sorted());
        assert!(!PolicyKind::DdFcfs.sender_selects());
        assert!(!PolicyKind::DdFcfs.dynamic_requests());

        assert!(PolicyKind::DdWrr.receiver_sorted());
        assert!(!PolicyKind::DdWrr.sender_selects());
        assert!(!PolicyKind::DdWrr.dynamic_requests());

        assert!(PolicyKind::Odds.receiver_sorted());
        assert!(PolicyKind::Odds.sender_selects());
        assert!(PolicyKind::Odds.dynamic_requests());

        // The learned policies are demand-driven DDWRR-shaped consumers:
        // receiver sorted by (learned) weight, static request windows,
        // sender FIFO.
        for kind in [PolicyKind::Affinity, PolicyKind::Bandit] {
            assert!(kind.receiver_sorted());
            assert!(!kind.sender_selects());
            assert!(!kind.dynamic_requests());
            assert!(kind.learned());
        }
        for kind in [PolicyKind::DdFcfs, PolicyKind::DdWrr, PolicyKind::Odds] {
            assert!(!kind.learned());
        }
    }

    #[test]
    fn constructors_clamp_request_size() {
        assert_eq!(Policy::ddfcfs(0).request_size, 1);
        assert_eq!(Policy::ddwrr(16).request_size, 16);
        assert_eq!(Policy::odds().request_size, 1);
        assert_eq!(Policy::affinity(0).request_size, 1);
        assert_eq!(Policy::bandit(24).request_size, 24);
    }

    #[test]
    fn names() {
        assert_eq!(PolicyKind::DdFcfs.to_string(), "DDFCFS");
        assert_eq!(PolicyKind::DdWrr.to_string(), "DDWRR");
        assert_eq!(PolicyKind::Odds.to_string(), "ODDS");
        assert_eq!(PolicyKind::Affinity.to_string(), "AFFINITY");
        assert_eq!(PolicyKind::Bandit.to_string(), "BANDIT");
    }
}
