//! Data buffers: the unit of work flowing through filter streams.
//!
//! In the filter-stream model, filters exchange *data buffers*; each buffer
//! received on an input stream becomes an event, and events are the
//! asynchronous, independent tasks the schedulers assign to devices. A
//! buffer carries its application parameters (what the performance
//! estimator predicts from) and its timing shape (what the hardware models
//! consume).

use anthill_estimator::TaskParams;
use anthill_hetsim::TaskShape;

/// Unique identifier of a data buffer within one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub u64);

/// A data buffer / schedulable event.
#[derive(Debug, Clone, PartialEq)]
pub struct DataBuffer {
    /// Unique id.
    pub id: BufferId,
    /// Application-level input parameters (estimator features).
    pub params: TaskParams,
    /// Timing shape (CPU time, GPU kernel time, transfer sizes).
    pub shape: TaskShape,
    /// Application tag — for NBIA, the resolution level (0 = lowest).
    pub level: u8,
    /// Application task index (for NBIA, the tile index).
    pub task: u64,
}

impl DataBuffer {
    /// Bytes this buffer occupies on the wire (payload plus framing).
    pub fn wire_bytes(&self) -> u64 {
        self.shape.bytes_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anthill_simkit::SimDuration;

    #[test]
    fn wire_bytes_is_input_payload() {
        let b = DataBuffer {
            id: BufferId(1),
            params: TaskParams::nums(&[32.0]),
            shape: TaskShape {
                cpu: SimDuration::from_millis(1),
                gpu_kernel: SimDuration::from_millis(1),
                bytes_in: 3136,
                bytes_out: 256,
            },
            level: 0,
            task: 7,
        };
        assert_eq!(b.wire_bytes(), 3136);
    }
}
