//! CPU/GPU transfer management (paper Section 5.1, Algorithm 1).
//!
//! Two pieces:
//!
//! * [`AdaptiveStreams`] — the throughput-feedback controller that tunes
//!   the number of concurrent in-flight events/CUDA streams: it grows the
//!   count exponentially until throughput drops, backs off, then hill
//!   climbs one step at a time.
//! * [`pipeline`] — a batched execution simulator for one GPU, structured
//!   exactly like Algorithm 1's loop: dispatch all H2D copies of a batch,
//!   run all kernels, collect all D2H copies, send, repeat. It reproduces
//!   Figures 6 and 7 and Table 2.
//!
//! These are *cost*-side components: drivers of the scheduling engine
//! ([`crate::engine`]) use them inside their `Executor` implementations
//! (batch sizing comes from the controller via the engine's batch
//! reserve), while the engine itself stays transport- and
//! hardware-agnostic.

use anthill_hetsim::{CopyDir, GpuEngines, GpuParams, TaskShape};
use anthill_simkit::{SimDuration, SimTime};

/// The adaptive concurrent-events controller of Algorithm 1.
///
/// ```
/// use anthill::transfer::AdaptiveStreams;
///
/// let mut ctl = AdaptiveStreams::new(256);
/// assert_eq!(ctl.concurrent_events(), 2);
/// ctl.observe_throughput(100.0); // better -> grow exponentially
/// ctl.observe_throughput(150.0);
/// assert_eq!(ctl.concurrent_events(), 8);
/// ctl.observe_throughput(120.0); // regression -> restore saved best
/// assert_eq!(ctl.concurrent_events(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveStreams {
    concurrent: usize,
    /// The last configuration whose throughput was an improvement — "the
    /// previous configuration is then saved, and ... the algorithm
    /// continues searching ... by starting from the saved configuration".
    saved: usize,
    step: usize,
    exponential: bool,
    last_throughput: f64,
    max_events: usize,
    /// Ring of the most recent [`HISTORY_CAP`] chosen counts (oldest
    /// first); unbounded growth on long runs was a leak.
    history: Vec<usize>,
}

/// Maximum retained `AdaptiveStreams` history entries. Long-running
/// pipelines observe throughput once per batch indefinitely; the
/// controller only ever needs the recent trajectory (diagnostics and the
/// trace exporters), so older entries are dropped FIFO.
pub const HISTORY_CAP: usize = 1024;

impl AdaptiveStreams {
    /// Start as Algorithm 1 does: two concurrent events, step 2,
    /// exponential growth enabled. `max_events` bounds the count (device
    /// memory; the minimum is always 1).
    pub fn new(max_events: usize) -> AdaptiveStreams {
        let max_events = max_events.max(1);
        AdaptiveStreams {
            concurrent: 2.min(max_events),
            saved: 2.min(max_events),
            step: 2,
            exponential: true,
            last_throughput: 0.0,
            max_events,
            history: Vec::new(),
        }
    }

    /// The current number of concurrent events to use for the next batch.
    pub fn concurrent_events(&self) -> usize {
        self.concurrent
    }

    /// Feed back the throughput (tasks per second) of the batch that just
    /// finished; adapts the count for the next batch. Growth is exponential
    /// until the first throughput drop, then the search resumes from the
    /// saved configuration with single-step (halved) changes.
    pub fn observe_throughput(&mut self, throughput: f64) {
        if throughput > self.last_throughput {
            self.saved = self.concurrent;
            self.concurrent = (self.concurrent + self.step).min(self.max_events);
            if self.exponential && self.step < self.max_events {
                // Doubling past the memory bound is pointless and would
                // eventually overflow; cap the step at the bound.
                self.step = (self.step * 2).min(self.max_events.max(2));
            }
        } else if throughput < self.last_throughput && self.concurrent > 2 {
            self.concurrent = self.saved.max(1);
            self.step = (self.step / 2).max(1);
            self.exponential = false;
        }
        self.last_throughput = throughput;
        if self.history.len() == HISTORY_CAP {
            // Per-batch path (not per-task), so the O(cap) shift is noise;
            // keeping a plain Vec preserves the `&[usize]` accessor.
            self.history.remove(0);
        }
        self.history.push(self.concurrent);
    }

    /// The sequence of counts chosen after each batch — the most recent
    /// [`HISTORY_CAP`] entries, oldest first.
    pub fn history(&self) -> &[usize] {
        &self.history
    }
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Wall-clock (virtual) time to process every task.
    pub makespan: SimDuration,
    /// Completion time of each task, in submission order.
    pub completions: Vec<SimTime>,
    /// Total compute-engine busy time.
    pub compute_busy: SimDuration,
    /// Total copy-engine busy time (both directions).
    pub copy_busy: SimDuration,
}

impl PipelineOutcome {
    /// Mean throughput in tasks per second.
    pub fn throughput(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.completions.len() as f64 / self.makespan.as_secs_f64()
    }
}

/// Batched GPU pipeline execution (Algorithm 1's structure).
pub mod pipeline {
    use super::*;
    use crate::obs::{DeviceRef, EventKind, Recorder};

    /// Run every task through the synchronous (blocking, pageable) path.
    pub fn run_sync(params: &GpuParams, tasks: &[TaskShape]) -> PipelineOutcome {
        let mut gpu = GpuEngines::new(params.clone());
        let mut completions = Vec::with_capacity(tasks.len());
        let mut now = SimTime::ZERO;
        for t in tasks {
            let (_, fin) = gpu.run_sync(now, t.bytes_in, t.gpu_kernel, t.bytes_out);
            completions.push(fin);
            now = fin;
        }
        PipelineOutcome {
            makespan: now.since(SimTime::ZERO),
            completions,
            compute_busy: gpu.compute_busy(),
            copy_busy: gpu.copy_busy(),
        }
    }

    /// Execute one batch of tasks asynchronously starting at `now`:
    /// H2D copies for all, kernels as inputs land, D2H as kernels finish,
    /// then the batch barrier. Returns per-task completion times and the
    /// batch end time. (Also used by the cluster simulator's GPU workers.)
    pub fn execute_batch(
        gpu: &mut GpuEngines,
        now: SimTime,
        batch: &[TaskShape],
    ) -> (Vec<SimTime>, SimTime) {
        execute_batch_traced(
            gpu,
            now,
            batch,
            &Recorder::disabled(),
            DeviceRef::node_scope(0),
        )
    }

    /// [`execute_batch`] plus copy-engine observability: each H2D/D2H copy
    /// records a [`EventKind::Transfer`] event (timestamped at engine
    /// occupancy start) against `origin` when the recorder is enabled.
    pub fn execute_batch_traced(
        gpu: &mut GpuEngines,
        now: SimTime,
        batch: &[TaskShape],
        recorder: &Recorder,
        origin: DeviceRef,
    ) -> (Vec<SimTime>, SimTime) {
        let k = batch.len();
        let mut kernel_done = Vec::with_capacity(k);
        // Phase 1+2: copies in, kernels chained per stream.
        for t in batch {
            let (h2d_start, h2d_fin) = gpu.submit_async_copy(now, CopyDir::H2D, t.bytes_in, k);
            recorder.record(
                h2d_start.as_nanos(),
                origin,
                EventKind::Transfer {
                    dir: CopyDir::H2D,
                    bytes: t.bytes_in,
                    end_ns: h2d_fin.as_nanos(),
                },
            );
            let (_, k_fin) = gpu.submit_kernel(h2d_fin, t.gpu_kernel, k);
            kernel_done.push(k_fin);
        }
        // Phase 3: grouped copies back (same-direction grouping keeps the
        // fast concurrent path, per Section 5.1).
        let mut completions = Vec::with_capacity(k);
        let mut batch_end = now;
        for (t, &kd) in batch.iter().zip(&kernel_done) {
            let (d2h_start, d2h_fin) = gpu.submit_async_copy(kd, CopyDir::D2H, t.bytes_out, k);
            recorder.record(
                d2h_start.as_nanos(),
                origin,
                EventKind::Transfer {
                    dir: CopyDir::D2H,
                    bytes: t.bytes_out,
                    end_ns: d2h_fin.as_nanos(),
                },
            );
            completions.push(d2h_fin);
            batch_end = batch_end.max(d2h_fin);
        }
        (completions, batch_end + gpu.params.batch_dispatch)
    }

    /// Run all tasks with a fixed number of concurrent events per batch.
    pub fn run_async_static(
        params: &GpuParams,
        tasks: &[TaskShape],
        streams: usize,
    ) -> PipelineOutcome {
        assert!(streams >= 1);
        let mut gpu = GpuEngines::new(params.clone());
        let mut completions = Vec::with_capacity(tasks.len());
        let mut now = SimTime::ZERO;
        for batch in tasks.chunks(streams) {
            let (mut done, end) = execute_batch(&mut gpu, now, batch);
            completions.append(&mut done);
            now = end;
        }
        PipelineOutcome {
            makespan: now.since(SimTime::ZERO),
            completions,
            compute_busy: gpu.compute_busy(),
            copy_busy: gpu.copy_busy(),
        }
    }

    /// Run all tasks with the batch size controlled by [`AdaptiveStreams`]
    /// (the proposed dynamic algorithm). Also returns the controller's
    /// chosen-count trace.
    pub fn run_async_adaptive(
        params: &GpuParams,
        tasks: &[TaskShape],
    ) -> (PipelineOutcome, Vec<usize>) {
        let footprint = tasks.iter().map(TaskShape::footprint).max().unwrap_or(1);
        let mut ctl = AdaptiveStreams::new(params.max_concurrent_events(footprint));
        let mut gpu = GpuEngines::new(params.clone());
        let mut completions = Vec::with_capacity(tasks.len());
        let mut now = SimTime::ZERO;
        let mut idx = 0;
        while idx < tasks.len() {
            let k = ctl.concurrent_events().min(tasks.len() - idx);
            let batch = &tasks[idx..idx + k];
            let (mut done, end) = execute_batch(&mut gpu, now, batch);
            completions.append(&mut done);
            let batch_time = end.since(now).as_secs_f64();
            if batch_time > 0.0 {
                ctl.observe_throughput(k as f64 / batch_time);
            }
            now = end;
            idx += k;
        }
        (
            PipelineOutcome {
                makespan: now.since(SimTime::ZERO),
                completions,
                compute_busy: gpu.compute_busy(),
                copy_busy: gpu.copy_busy(),
            },
            ctl.history().to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anthill_hetsim::{NbiaCostModel, ViCostModel};

    #[test]
    fn adaptive_grows_exponentially_then_backs_off() {
        let mut c = AdaptiveStreams::new(1024);
        assert_eq!(c.concurrent_events(), 2);
        c.observe_throughput(10.0); // up: 2+2=4, step 4
        assert_eq!(c.concurrent_events(), 4);
        c.observe_throughput(20.0); // up: 4+4=8, step 8
        assert_eq!(c.concurrent_events(), 8);
        c.observe_throughput(30.0); // up: 8+8=16, step 16
        assert_eq!(c.concurrent_events(), 16);
        c.observe_throughput(25.0); // down: restore saved 8, step 8, linear
        assert_eq!(c.concurrent_events(), 8);
        c.observe_throughput(40.0); // up by step 8, no more doubling
        assert_eq!(c.concurrent_events(), 16);
        c.observe_throughput(39.0); // down again: restore 8, step 4
        assert_eq!(c.concurrent_events(), 8);
        c.observe_throughput(41.0); // up by 4
        assert_eq!(c.concurrent_events(), 12);
        assert_eq!(c.history().len(), 7);
    }

    #[test]
    fn adaptive_respects_memory_bound() {
        let mut c = AdaptiveStreams::new(4);
        for _ in 0..10 {
            c.observe_throughput(c.history().len() as f64 + 1.0);
        }
        assert!(c.concurrent_events() <= 4);
    }

    #[test]
    fn adaptive_history_is_bounded() {
        let mut c = AdaptiveStreams::new(4);
        for i in 0..(HISTORY_CAP + 50) {
            c.observe_throughput((i % 7) as f64);
        }
        assert_eq!(c.history().len(), HISTORY_CAP);
        // The retained window is the most recent entries: the last value
        // in the ring matches the controller's current setting.
        assert_eq!(*c.history().last().unwrap(), c.concurrent_events());
    }

    #[test]
    fn adaptive_never_below_one() {
        let mut c = AdaptiveStreams::new(64);
        c.observe_throughput(10.0);
        for t in (1..10).rev() {
            c.observe_throughput(t as f64);
        }
        assert!(c.concurrent_events() >= 1);
    }

    #[test]
    fn async_beats_sync_for_large_tiles() {
        // Fig. 6's async-copy improvement at 512².
        let params = GpuParams::geforce_8800gt();
        let tasks = vec![NbiaCostModel::paper_calibrated().tile(512); 200];
        let sync = pipeline::run_sync(&params, &tasks);
        let asy = pipeline::run_async_static(&params, &tasks, 8);
        let gain = 1.0 - asy.makespan.as_secs_f64() / sync.makespan.as_secs_f64();
        assert!(
            (0.10..0.35).contains(&gain),
            "async gain {gain} (paper: ~20%)"
        );
    }

    #[test]
    fn more_streams_help_until_saturation_then_hurt() {
        // Fig. 7's shape for the VI workload.
        let params = GpuParams::geforce_8800gt();
        let tasks = vec![ViCostModel::paper_calibrated().chunk(500_000); 400];
        let t = |s: usize| {
            pipeline::run_async_static(&params, &tasks, s)
                .makespan
                .as_secs_f64()
        };
        let (t1, t8, t32, t256) = (t(1), t(8), t(32), t(256));
        assert!(t8 < t1, "8 streams beat 1: {t8} vs {t1}");
        assert!(t32 < t8, "32 streams beat 8: {t32} vs {t8}");
        assert!(t256 > t32, "256 streams degrade: {t256} vs {t32}");
    }

    #[test]
    fn adaptive_is_close_to_best_static() {
        // Table 2: dynamic within ~1 std-dev of the best static count.
        let params = GpuParams::geforce_8800gt();
        let tasks = vec![ViCostModel::paper_calibrated().chunk(1_000_000); 360];
        let best_static = (0..9)
            .map(|p| {
                pipeline::run_async_static(&params, &tasks, 1 << p)
                    .makespan
                    .as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        let (adaptive, trace) = pipeline::run_async_adaptive(&params, &tasks);
        let ratio = adaptive.makespan.as_secs_f64() / best_static;
        assert!(ratio < 1.05, "adaptive/best = {ratio}");
        assert!(!trace.is_empty());
    }

    #[test]
    fn completions_are_monotonic_and_counted() {
        let params = GpuParams::geforce_8800gt();
        let tasks = vec![NbiaCostModel::paper_calibrated().tile(128); 50];
        let out = pipeline::run_async_static(&params, &tasks, 4);
        assert_eq!(out.completions.len(), 50);
        assert!(out.throughput() > 0.0);
        assert!(out.compute_busy > SimDuration::ZERO);
        assert!(out.copy_busy > SimDuration::ZERO);
    }
}
