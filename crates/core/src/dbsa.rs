//! DBSA — the Data Buffer Selection Algorithm (paper Section 5.3.2,
//! Algorithms 4 and 5).
//!
//! The sender side of an ODDS stream keeps its outgoing buffers in a
//! [`SharedQueue`] sorted by per-processor-type speedup
//! (ThreadBufferQueuer). Each incoming data request carries the processor
//! type that triggered it; the sender answers with the queued buffer whose
//! speedup for that type is highest and removes it from every other sorted
//! view (ThreadBufferSender). Requests arriving at an empty queue are
//! parked and served in arrival order as buffers appear.

use std::collections::VecDeque;

use crate::buffer::DataBuffer;
use crate::engine::select;
use crate::obs::{DeviceRef, EventKind, Recorder};
use crate::queue::SharedQueue;
use crate::weights::WeightProvider;
use anthill_hetsim::DeviceKind;

/// A parked data request (the requester will be answered on next insert).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParkedRequest<R> {
    /// The processor type that caused the request.
    pub proctype: DeviceKind,
    /// Opaque requester identity (e.g. node + thread), echoed on reply.
    pub requester: R,
}

/// The sender-side state of one ODDS stream endpoint.
pub struct SendQueue<R> {
    queue: SharedQueue,
    parked: VecDeque<ParkedRequest<R>>,
    sorted: bool,
    recorder: Recorder,
    origin: DeviceRef,
}

impl<R: Copy> SendQueue<R> {
    /// A sender queue. `sorted = false` degrades DBSA to FIFO selection
    /// (the DDFCFS/DDWRR sender behaviour, for ablation).
    pub fn new(sorted: bool) -> SendQueue<R> {
        SendQueue {
            queue: SharedQueue::new(),
            parked: VecDeque::new(),
            sorted,
            recorder: Recorder::disabled(),
            origin: DeviceRef::node_scope(0),
        }
    }

    /// Install an observability sink: subsequent [`push_at`](Self::push_at)
    /// and [`request_at`](Self::request_at) calls record
    /// [`EventKind::DbsaSelect`] against `origin` whenever sorted selection
    /// answers a request.
    pub fn attach_recorder(&mut self, recorder: Recorder, origin: DeviceRef) {
        self.recorder = recorder;
        self.origin = origin;
    }

    /// Buffers currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no buffers are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of parked (unanswered) requests.
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// Enqueue an outgoing buffer (ThreadBufferQueuer). If requests are
    /// parked, the oldest is answered immediately: returns
    /// `Some((request, buffer))` that the caller must deliver.
    pub fn push<W: WeightProvider + ?Sized>(
        &mut self,
        buffer: DataBuffer,
        weights: &W,
    ) -> Option<(ParkedRequest<R>, DataBuffer)> {
        self.push_inner(buffer, weights, None)
    }

    /// [`push`](Self::push) with a timestamp: if the insert answers a
    /// parked request by sorted selection, a [`EventKind::DbsaSelect`]
    /// event is recorded at `ts_ns` (no-op without an attached recorder).
    pub fn push_at<W: WeightProvider + ?Sized>(
        &mut self,
        ts_ns: u64,
        buffer: DataBuffer,
        weights: &W,
    ) -> Option<(ParkedRequest<R>, DataBuffer)> {
        self.push_inner(buffer, weights, Some(ts_ns))
    }

    fn push_inner<W: WeightProvider + ?Sized>(
        &mut self,
        buffer: DataBuffer,
        weights: &W,
        record_ts: Option<u64>,
    ) -> Option<(ParkedRequest<R>, DataBuffer)> {
        let w = select::weights_for(weights, &buffer);
        self.queue.insert(buffer, w, None);
        if let Some(req) = self.parked.pop_front() {
            let buf = self
                .select(req.proctype, record_ts)
                .expect("buffer was just inserted");
            return Some((req, buf));
        }
        None
    }

    /// Handle a data request (ThreadBufferSender): select the best buffer
    /// for the requesting processor type, or park the request if empty.
    pub fn request(&mut self, proctype: DeviceKind, requester: R) -> Option<DataBuffer> {
        self.request_inner(proctype, requester, None)
    }

    /// [`request`](Self::request) with a timestamp: a successful sorted
    /// selection records [`EventKind::DbsaSelect`] at `ts_ns` (no-op
    /// without an attached recorder).
    pub fn request_at(
        &mut self,
        ts_ns: u64,
        proctype: DeviceKind,
        requester: R,
    ) -> Option<DataBuffer> {
        self.request_inner(proctype, requester, Some(ts_ns))
    }

    fn request_inner(
        &mut self,
        proctype: DeviceKind,
        requester: R,
        record_ts: Option<u64>,
    ) -> Option<DataBuffer> {
        match self.select(proctype, record_ts) {
            Some(buf) => Some(buf),
            None => {
                self.parked.push_back(ParkedRequest {
                    proctype,
                    requester,
                });
                None
            }
        }
    }

    fn select(&mut self, proctype: DeviceKind, record_ts: Option<u64>) -> Option<DataBuffer> {
        // The sorted-vs-FIFO rule is the engine's, not re-decided here.
        let buf = select::pop_for(&mut self.queue, self.sorted, proctype).map(|(b, _)| b);
        if let (Some(ts), Some(b)) = (record_ts, &buf) {
            if self.sorted {
                self.recorder.record(
                    ts,
                    self.origin,
                    EventKind::DbsaSelect {
                        buffer: b.id.0,
                        proctype,
                    },
                );
            }
        }
        buf
    }

    /// Iterate queued buffers (FIFO order), for diagnostics.
    pub fn iter(&self) -> impl Iterator<Item = &DataBuffer> + '_ {
        self.queue.iter_fifo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferId;
    use crate::weights::OracleWeights;
    use anthill_estimator::TaskParams;
    use anthill_hetsim::{GpuParams, NbiaCostModel};

    fn tile(id: u64, side: u32) -> DataBuffer {
        DataBuffer {
            id: BufferId(id),
            params: TaskParams::nums(&[f64::from(side)]),
            shape: NbiaCostModel::paper_calibrated().tile(side),
            level: if side > 32 { 1 } else { 0 },
            task: id,
        }
    }

    fn oracle() -> OracleWeights {
        OracleWeights::new(GpuParams::geforce_8800gt(), false)
    }

    #[test]
    fn gpu_request_gets_high_res_cpu_request_gets_low_res() {
        let w = oracle();
        let mut sq: SendQueue<u32> = SendQueue::new(true);
        sq.push(tile(1, 32), &w);
        sq.push(tile(2, 512), &w);
        sq.push(tile(3, 32), &w);
        let gpu_buf = sq.request(DeviceKind::Gpu, 0).unwrap();
        assert_eq!(gpu_buf.id.0, 2, "GPU should get the 512² tile");
        let cpu_buf = sq.request(DeviceKind::Cpu, 0).unwrap();
        assert_eq!(cpu_buf.level, 0, "CPU should get a 32² tile");
    }

    #[test]
    fn sent_buffer_disappears_from_all_views() {
        let w = oracle();
        let mut sq: SendQueue<u32> = SendQueue::new(true);
        sq.push(tile(1, 512), &w);
        let _ = sq.request(DeviceKind::Gpu, 0).unwrap();
        assert!(sq.request(DeviceKind::Cpu, 0).is_none());
        assert_eq!(sq.parked(), 1);
    }

    #[test]
    fn parked_requests_are_served_on_push_in_order() {
        let w = oracle();
        let mut sq: SendQueue<u32> = SendQueue::new(true);
        assert!(sq.request(DeviceKind::Gpu, 7).is_none());
        assert!(sq.request(DeviceKind::Cpu, 8).is_none());
        let (req, buf) = sq.push(tile(1, 512), &w).expect("oldest request served");
        assert_eq!(req.requester, 7);
        assert_eq!(req.proctype, DeviceKind::Gpu);
        assert_eq!(buf.id.0, 1);
        assert_eq!(sq.parked(), 1);
        let (req2, _) = sq.push(tile(2, 32), &w).expect("second request served");
        assert_eq!(req2.requester, 8);
        assert_eq!(sq.parked(), 0);
    }

    #[test]
    fn unsorted_mode_is_fifo_regardless_of_proctype() {
        let w = oracle();
        let mut sq: SendQueue<u32> = SendQueue::new(false);
        sq.push(tile(1, 32), &w);
        sq.push(tile(2, 512), &w);
        assert_eq!(sq.request(DeviceKind::Gpu, 0).unwrap().id.0, 1);
        assert_eq!(sq.request(DeviceKind::Gpu, 0).unwrap().id.0, 2);
    }

    #[test]
    fn attached_recorder_sees_sorted_selections() {
        let w = oracle();
        let mut sq: SendQueue<u32> = SendQueue::new(true);
        let rec = Recorder::enabled();
        sq.attach_recorder(rec.clone(), DeviceRef::node_scope(4));
        // Parked request answered by a push, then a direct hit.
        assert!(sq.request_at(3, DeviceKind::Gpu, 7).is_none());
        assert!(sq.push_at(5, tile(1, 512), &w).is_some());
        sq.push_at(6, tile(2, 32), &w);
        assert!(sq.request_at(9, DeviceKind::Cpu, 8).is_some());
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ts_ns, 5);
        assert_eq!(
            events[0].kind,
            EventKind::DbsaSelect {
                buffer: 1,
                proctype: DeviceKind::Gpu,
            }
        );
        assert_eq!(events[1].ts_ns, 9);
        assert_eq!(events[0].origin, DeviceRef::node_scope(4));
    }

    #[test]
    fn len_and_iter_reflect_queue_content() {
        let w = oracle();
        let mut sq: SendQueue<u32> = SendQueue::new(true);
        assert!(sq.is_empty());
        sq.push(tile(1, 32), &w);
        sq.push(tile(2, 64), &w);
        assert_eq!(sq.len(), 2);
        assert_eq!(sq.iter().count(), 2);
    }
}
