//! DBSA — the Data Buffer Selection Algorithm (paper Section 5.3.2,
//! Algorithms 4 and 5).
//!
//! The sender side of an ODDS stream keeps its outgoing buffers in a
//! [`SharedQueue`] sorted by per-processor-type speedup
//! (ThreadBufferQueuer). Each incoming data request carries the processor
//! type that triggered it; the sender answers with the queued buffer whose
//! speedup for that type is highest and removes it from every other sorted
//! view (ThreadBufferSender). Requests arriving at an empty queue are
//! parked and served in arrival order as buffers appear.

use std::collections::VecDeque;

use crate::buffer::DataBuffer;
use crate::queue::SharedQueue;
use crate::weights::WeightProvider;
use anthill_hetsim::DeviceKind;

/// A parked data request (the requester will be answered on next insert).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParkedRequest<R> {
    /// The processor type that caused the request.
    pub proctype: DeviceKind,
    /// Opaque requester identity (e.g. node + thread), echoed on reply.
    pub requester: R,
}

/// The sender-side state of one ODDS stream endpoint.
pub struct SendQueue<R> {
    queue: SharedQueue,
    parked: VecDeque<ParkedRequest<R>>,
    sorted: bool,
}

impl<R: Copy> SendQueue<R> {
    /// A sender queue. `sorted = false` degrades DBSA to FIFO selection
    /// (the DDFCFS/DDWRR sender behaviour, for ablation).
    pub fn new(sorted: bool) -> SendQueue<R> {
        SendQueue {
            queue: SharedQueue::new(),
            parked: VecDeque::new(),
            sorted,
        }
    }

    /// Buffers currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no buffers are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of parked (unanswered) requests.
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// Enqueue an outgoing buffer (ThreadBufferQueuer). If requests are
    /// parked, the oldest is answered immediately: returns
    /// `Some((request, buffer))` that the caller must deliver.
    pub fn push<W: WeightProvider + ?Sized>(
        &mut self,
        buffer: DataBuffer,
        weights: &W,
    ) -> Option<(ParkedRequest<R>, DataBuffer)> {
        let w = [
            weights.weight(&buffer, DeviceKind::Cpu),
            weights.weight(&buffer, DeviceKind::Gpu),
        ];
        self.queue.insert(buffer, w, None);
        if let Some(req) = self.parked.pop_front() {
            let buf = self
                .select(req.proctype)
                .expect("buffer was just inserted");
            return Some((req, buf));
        }
        None
    }

    /// Handle a data request (ThreadBufferSender): select the best buffer
    /// for the requesting processor type, or park the request if empty.
    pub fn request(&mut self, proctype: DeviceKind, requester: R) -> Option<DataBuffer> {
        match self.select(proctype) {
            Some(buf) => Some(buf),
            None => {
                self.parked.push_back(ParkedRequest {
                    proctype,
                    requester,
                });
                None
            }
        }
    }

    fn select(&mut self, proctype: DeviceKind) -> Option<DataBuffer> {
        let popped = if self.sorted {
            self.queue.pop_best(proctype)
        } else {
            self.queue.pop_fifo()
        };
        popped.map(|(b, _)| b)
    }

    /// Iterate queued buffers (FIFO order), for diagnostics.
    pub fn iter(&self) -> impl Iterator<Item = &DataBuffer> + '_ {
        self.queue.iter_fifo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferId;
    use crate::weights::OracleWeights;
    use anthill_estimator::TaskParams;
    use anthill_hetsim::{GpuParams, NbiaCostModel};

    fn tile(id: u64, side: u32) -> DataBuffer {
        DataBuffer {
            id: BufferId(id),
            params: TaskParams::nums(&[f64::from(side)]),
            shape: NbiaCostModel::paper_calibrated().tile(side),
            level: if side > 32 { 1 } else { 0 },
            task: id,
        }
    }

    fn oracle() -> OracleWeights {
        OracleWeights::new(GpuParams::geforce_8800gt(), false)
    }

    #[test]
    fn gpu_request_gets_high_res_cpu_request_gets_low_res() {
        let w = oracle();
        let mut sq: SendQueue<u32> = SendQueue::new(true);
        sq.push(tile(1, 32), &w);
        sq.push(tile(2, 512), &w);
        sq.push(tile(3, 32), &w);
        let gpu_buf = sq.request(DeviceKind::Gpu, 0).unwrap();
        assert_eq!(gpu_buf.id.0, 2, "GPU should get the 512² tile");
        let cpu_buf = sq.request(DeviceKind::Cpu, 0).unwrap();
        assert_eq!(cpu_buf.level, 0, "CPU should get a 32² tile");
    }

    #[test]
    fn sent_buffer_disappears_from_all_views() {
        let w = oracle();
        let mut sq: SendQueue<u32> = SendQueue::new(true);
        sq.push(tile(1, 512), &w);
        let _ = sq.request(DeviceKind::Gpu, 0).unwrap();
        assert!(sq.request(DeviceKind::Cpu, 0).is_none());
        assert_eq!(sq.parked(), 1);
    }

    #[test]
    fn parked_requests_are_served_on_push_in_order() {
        let w = oracle();
        let mut sq: SendQueue<u32> = SendQueue::new(true);
        assert!(sq.request(DeviceKind::Gpu, 7).is_none());
        assert!(sq.request(DeviceKind::Cpu, 8).is_none());
        let (req, buf) = sq.push(tile(1, 512), &w).expect("oldest request served");
        assert_eq!(req.requester, 7);
        assert_eq!(req.proctype, DeviceKind::Gpu);
        assert_eq!(buf.id.0, 1);
        assert_eq!(sq.parked(), 1);
        let (req2, _) = sq.push(tile(2, 32), &w).expect("second request served");
        assert_eq!(req2.requester, 8);
        assert_eq!(sq.parked(), 0);
    }

    #[test]
    fn unsorted_mode_is_fifo_regardless_of_proctype() {
        let w = oracle();
        let mut sq: SendQueue<u32> = SendQueue::new(false);
        sq.push(tile(1, 32), &w);
        sq.push(tile(2, 512), &w);
        assert_eq!(sq.request(DeviceKind::Gpu, 0).unwrap().id.0, 1);
        assert_eq!(sq.request(DeviceKind::Gpu, 0).unwrap().id.0, 2);
    }

    #[test]
    fn len_and_iter_reflect_queue_content() {
        let w = oracle();
        let mut sq: SendQueue<u32> = SendQueue::new(true);
        assert!(sq.is_empty());
        sq.push(tile(1, 32), &w);
        sq.push(tile(2, 64), &w);
        assert_eq!(sq.len(), 2);
        assert_eq!(sq.iter().count(), 2);
    }
}
