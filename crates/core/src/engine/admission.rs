//! Coordinator-side admission control for open-loop runs.
//!
//! Closed-loop benchmarks seed a fixed task set and drain it; an open-loop
//! generator keeps producing work at its own rate, so the coordinator needs
//! a bounded intake in front of the engine or a saturating arrival rate
//! grows queues without limit. [`AdmissionController`] is that boundary: a
//! small, deterministic state machine that classifies every generated task
//! as *admitted*, *shed*, or *deadline-dropped*, enforcing
//!
//! - an **inflight cap**: at most `inflight_cap` admitted-but-unfinished
//!   tasks (a run-wide bound, independent of the per-worker DQAA windows),
//! - a bounded **intake queue** of at most `queue_cap` waiting tasks,
//! - a pluggable [`OverloadPolicy`] deciding what happens when both are
//!   full.
//!
//! The controller never touches clocks or threads: callers pass `now_ns`
//! into every method, so the same state machine runs identically under the
//! native runtime (wall time), the net coordinator (wall time), and a
//! virtual-time model (the determinism tests replay it under simulated
//! arrivals and completions). Every terminal classification emits exactly
//! one trace event — [`EventKind::TaskAdmitted`], [`EventKind::TaskShed`],
//! or [`EventKind::TaskDeadlineDropped`] — and appends to a decision log,
//! which is what the conservation and replay suites check.
//!
//! Conservation invariant: at quiescence (empty intake, no blocked
//! arrival), `admitted + shed + deadline_dropped == generated`.

use std::collections::VecDeque;

use anthill_simkit::SimDuration;

use crate::obs::{DeviceRef, EventKind, Recorder};

/// What the controller does with arrivals once the inflight cap is hit
/// and the intake queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Refuse the arrival without consuming it: [`Offer::Blocked`] hands
    /// the payload back and the generator must stall and re-offer after a
    /// completion. Converts open-loop overload into generator back-pressure
    /// — no task is ever lost.
    Block,
    /// Evict the *oldest* waiting task to make room for the newest
    /// arrival, emitting one [`EventKind::TaskShed`] per victim. With
    /// `queue_cap == 0` the arrival itself is shed.
    ShedOldest,
    /// Let the intake queue grow, but drop any task that has waited longer
    /// than `deadline` before being admitted, emitting
    /// [`EventKind::TaskDeadlineDropped`]. `queue_cap` is ignored; memory
    /// is bounded by `arrival_rate × deadline` instead.
    DeadlineDrop {
        /// Maximum time a task may wait at intake before it is dropped.
        deadline: SimDuration,
    },
}

impl OverloadPolicy {
    /// Short machine-readable name (used in benchmark JSON).
    pub fn name(&self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::ShedOldest => "shed_oldest",
            OverloadPolicy::DeadlineDrop { .. } => "deadline_drop",
        }
    }
}

/// Sizing and policy for one [`AdmissionController`].
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum admitted-but-unfinished tasks (must be at least 1).
    pub inflight_cap: usize,
    /// Maximum tasks waiting at intake (ignored by
    /// [`OverloadPolicy::DeadlineDrop`]).
    pub queue_cap: usize,
    /// Overload behavior once both bounds are hit.
    pub policy: OverloadPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            inflight_cap: 256,
            queue_cap: 1024,
            policy: OverloadPolicy::Block,
        }
    }
}

/// A task identity plus its parked payload, handed back to the caller when
/// the controller admits, sheds, or expires a queued entry.
#[derive(Debug)]
pub struct TaskEnvelope<T> {
    /// Buffer id of the task.
    pub buffer: u64,
    /// Resolution level of the task.
    pub level: u8,
    /// The caller's parked payload.
    pub payload: T,
}

/// Terminal classification of one generated task, in generation order —
/// the unit of the determinism-replay tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The task entered the run.
    Admitted,
    /// The task was evicted under [`OverloadPolicy::ShedOldest`].
    Shed,
    /// The task expired under [`OverloadPolicy::DeadlineDrop`].
    DeadlineDropped,
}

/// Immediate verdict for one offered arrival.
#[derive(Debug)]
pub enum Offer<T> {
    /// Admitted on the spot; the payload is handed back for the caller to
    /// inject now.
    Admitted(T),
    /// Parked at intake. Under [`OverloadPolicy::ShedOldest`] making room
    /// may have evicted the oldest waiting task, returned in `shed`.
    Queued {
        /// The evicted victim, if queueing this arrival shed one.
        shed: Option<TaskEnvelope<T>>,
    },
    /// The offered task itself was shed ([`OverloadPolicy::ShedOldest`]
    /// with `queue_cap == 0`). Already counted and traced.
    ShedSelf(T),
    /// [`OverloadPolicy::Block`] with a full queue: the arrival was *not*
    /// consumed (not counted as generated). The payload is handed back and
    /// must be re-offered after a completion frees space.
    Blocked(T),
}

/// Queued tasks released by a [`AdmissionController::poll`] call.
#[derive(Debug)]
pub struct Poll<T> {
    /// Tasks admitted from the intake queue, oldest first; inject each.
    pub admitted: Vec<TaskEnvelope<T>>,
    /// Tasks that exceeded the deadline-drop deadline; already counted
    /// and traced, returned so the caller can reclaim the payloads.
    pub expired: Vec<TaskEnvelope<T>>,
}

/// Monotonic totals of every terminal classification so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionCounters {
    /// Arrivals consumed by the controller (excludes blocked offers).
    pub generated: u64,
    /// Tasks admitted into the run.
    pub admitted: u64,
    /// Tasks evicted under shed-oldest.
    pub shed: u64,
    /// Tasks expired under deadline-drop.
    pub deadline_dropped: u64,
}

impl AdmissionCounters {
    /// Classifications reached so far: `admitted + shed + deadline_dropped`.
    pub fn resolved(&self) -> u64 {
        self.admitted + self.shed + self.deadline_dropped
    }

    /// The conservation invariant; holds exactly when the intake queue is
    /// empty (every generated task has a terminal classification).
    pub fn conserved(&self) -> bool {
        self.resolved() == self.generated
    }
}

struct IntakeEntry<T> {
    buffer: u64,
    level: u8,
    arrived_ns: u64,
    payload: T,
}

impl<T> IntakeEntry<T> {
    fn envelope(self) -> TaskEnvelope<T> {
        TaskEnvelope {
            buffer: self.buffer,
            level: self.level,
            payload: self.payload,
        }
    }
}

/// The bounded-intake state machine. Generic over the parked payload `T`
/// (the native runtime parks whole `LocalTask`s, the net coordinator parks
/// `DataBuffer`s, the virtual-time model parks nothing). Not internally
/// synchronized — wrap in a `Mutex` when shared across threads.
pub struct AdmissionController<T> {
    cfg: AdmissionConfig,
    rec: Recorder,
    origin: DeviceRef,
    inflight: usize,
    intake: VecDeque<IntakeEntry<T>>,
    counters: AdmissionCounters,
    decisions: Vec<(u64, AdmissionDecision)>,
}

impl<T> AdmissionController<T> {
    /// Build a controller that emits its trace events against `origin`
    /// through `rec`. Panics if `inflight_cap` is zero (nothing could ever
    /// be admitted).
    pub fn new(cfg: AdmissionConfig, rec: Recorder, origin: DeviceRef) -> AdmissionController<T> {
        assert!(cfg.inflight_cap >= 1, "inflight_cap must be at least 1");
        AdmissionController {
            cfg,
            rec,
            origin,
            inflight: 0,
            intake: VecDeque::new(),
            counters: AdmissionCounters::default(),
            decisions: Vec::new(),
        }
    }

    /// Offer one arrival. Consumes it (counting it as generated) unless
    /// the verdict is [`Offer::Blocked`].
    pub fn offer(&mut self, now_ns: u64, buffer: u64, level: u8, payload: T) -> Offer<T> {
        // Purge expired entries first so their slots are reusable.
        let _ = self.expire(now_ns);
        if self.inflight < self.cfg.inflight_cap && self.intake.is_empty() {
            self.counters.generated += 1;
            self.admit(now_ns, buffer, level);
            return Offer::Admitted(payload);
        }
        match self.cfg.policy {
            OverloadPolicy::Block => {
                if self.intake.len() < self.cfg.queue_cap {
                    self.counters.generated += 1;
                    self.intake.push_back(IntakeEntry {
                        buffer,
                        level,
                        arrived_ns: now_ns,
                        payload,
                    });
                    Offer::Queued { shed: None }
                } else {
                    Offer::Blocked(payload)
                }
            }
            OverloadPolicy::ShedOldest => {
                self.counters.generated += 1;
                if self.cfg.queue_cap == 0 {
                    let env = self.shed_entry(
                        now_ns,
                        IntakeEntry {
                            buffer,
                            level,
                            arrived_ns: now_ns,
                            payload,
                        },
                    );
                    Offer::ShedSelf(env.payload)
                } else {
                    let shed = if self.intake.len() >= self.cfg.queue_cap {
                        let victim = self.intake.pop_front().expect("non-empty at cap");
                        Some(self.shed_entry(now_ns, victim))
                    } else {
                        None
                    };
                    self.intake.push_back(IntakeEntry {
                        buffer,
                        level,
                        arrived_ns: now_ns,
                        payload,
                    });
                    Offer::Queued { shed }
                }
            }
            OverloadPolicy::DeadlineDrop { .. } => {
                self.counters.generated += 1;
                self.intake.push_back(IntakeEntry {
                    buffer,
                    level,
                    arrived_ns: now_ns,
                    payload,
                });
                Offer::Queued { shed: None }
            }
        }
    }

    /// Expire overdue entries and admit queued tasks while the inflight
    /// cap allows. Call after every completion (and periodically under
    /// deadline-drop).
    pub fn poll(&mut self, now_ns: u64) -> Poll<T> {
        let expired = self.expire(now_ns);
        let mut admitted = Vec::new();
        while self.inflight < self.cfg.inflight_cap {
            match self.intake.pop_front() {
                Some(e) => {
                    self.admit(now_ns, e.buffer, e.level);
                    admitted.push(e.envelope());
                }
                None => break,
            }
        }
        Poll { admitted, expired }
    }

    /// One admitted task finished; frees an inflight slot. Follow with
    /// [`AdmissionController::poll`] to pull the next queued task in.
    pub fn release(&mut self) {
        debug_assert!(self.inflight > 0, "release without matching admit");
        self.inflight = self.inflight.saturating_sub(1);
    }

    /// Running totals.
    pub fn counters(&self) -> AdmissionCounters {
        self.counters
    }

    /// Admitted-but-unfinished tasks right now.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Tasks waiting at intake right now.
    pub fn queued(&self) -> usize {
        self.intake.len()
    }

    /// Terminal classifications in generation order — byte-comparable
    /// across runs for the determinism tests.
    pub fn decisions(&self) -> &[(u64, AdmissionDecision)] {
        &self.decisions
    }

    fn admit(&mut self, now_ns: u64, buffer: u64, level: u8) {
        self.inflight += 1;
        self.counters.admitted += 1;
        self.decisions.push((buffer, AdmissionDecision::Admitted));
        self.rec.record(
            now_ns,
            self.origin,
            EventKind::TaskAdmitted { buffer, level },
        );
    }

    fn shed_entry(&mut self, now_ns: u64, e: IntakeEntry<T>) -> TaskEnvelope<T> {
        self.counters.shed += 1;
        self.decisions.push((e.buffer, AdmissionDecision::Shed));
        self.rec.record(
            now_ns,
            self.origin,
            EventKind::TaskShed {
                buffer: e.buffer,
                level: e.level,
            },
        );
        e.envelope()
    }

    fn expire(&mut self, now_ns: u64) -> Vec<TaskEnvelope<T>> {
        let OverloadPolicy::DeadlineDrop { deadline } = self.cfg.policy else {
            return Vec::new();
        };
        let dl = deadline.as_nanos();
        let mut out = Vec::new();
        // FIFO intake: the front is always the oldest, so stop at the
        // first entry still within its deadline.
        while let Some(front) = self.intake.front() {
            let waited = now_ns.saturating_sub(front.arrived_ns);
            if waited < dl {
                break;
            }
            let e = self.intake.pop_front().expect("front exists");
            self.counters.deadline_dropped += 1;
            self.decisions
                .push((e.buffer, AdmissionDecision::DeadlineDropped));
            self.rec.record(
                now_ns,
                self.origin,
                EventKind::TaskDeadlineDropped {
                    buffer: e.buffer,
                    level: e.level,
                    waited_ns: waited,
                },
            );
            out.push(e.envelope());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(cap: usize, queue: usize, policy: OverloadPolicy) -> AdmissionController<u64> {
        AdmissionController::new(
            AdmissionConfig {
                inflight_cap: cap,
                queue_cap: queue,
                policy,
            },
            Recorder::enabled_serialized(),
            DeviceRef::node_scope(0),
        )
    }

    fn event_count(c: &AdmissionController<u64>, name: &str) -> usize {
        c.rec
            .events()
            .iter()
            .filter(|e| e.kind.name() == name)
            .count()
    }

    #[test]
    fn admits_up_to_the_inflight_cap_then_queues() {
        let mut c = ctl(2, 8, OverloadPolicy::Block);
        assert!(matches!(c.offer(0, 1, 0, 1), Offer::Admitted(_)));
        assert!(matches!(c.offer(1, 2, 0, 2), Offer::Admitted(_)));
        assert!(matches!(c.offer(2, 3, 0, 3), Offer::Queued { shed: None }));
        assert_eq!(c.inflight(), 2);
        assert_eq!(c.queued(), 1);
        c.release();
        let p = c.poll(3);
        assert_eq!(p.admitted.len(), 1);
        assert_eq!(p.admitted[0].buffer, 3);
        assert!(c.counters().conserved());
        assert_eq!(event_count(&c, "task_admitted"), 3);
    }

    #[test]
    fn block_policy_hands_back_the_payload_without_counting_it() {
        let mut c = ctl(1, 1, OverloadPolicy::Block);
        assert!(matches!(c.offer(0, 1, 0, 10), Offer::Admitted(_)));
        assert!(matches!(c.offer(1, 2, 0, 20), Offer::Queued { .. }));
        match c.offer(2, 3, 0, 30) {
            Offer::Blocked(p) => assert_eq!(p, 30),
            other => panic!("expected Blocked, got {other:?}"),
        }
        assert_eq!(c.counters().generated, 2);
        c.release();
        assert_eq!(c.poll(3).admitted.len(), 1);
        // The blocked arrival re-offers once space exists.
        assert!(matches!(c.offer(4, 3, 0, 30), Offer::Queued { .. }));
        assert_eq!(c.counters().generated, 3);
    }

    #[test]
    fn shed_oldest_evicts_the_front_of_the_queue_exactly_once() {
        let mut c = ctl(1, 2, OverloadPolicy::ShedOldest);
        assert!(matches!(c.offer(0, 1, 0, 1), Offer::Admitted(_)));
        assert!(matches!(c.offer(1, 2, 0, 2), Offer::Queued { shed: None }));
        assert!(matches!(c.offer(2, 3, 0, 3), Offer::Queued { shed: None }));
        match c.offer(3, 4, 0, 4) {
            Offer::Queued { shed: Some(v) } => assert_eq!(v.buffer, 2),
            other => panic!("expected a shed victim, got {other:?}"),
        }
        assert_eq!(c.counters().shed, 1);
        assert_eq!(c.queued(), 2);
        assert_eq!(event_count(&c, "task_shed"), 1);
        c.release();
        let p = c.poll(4);
        assert_eq!(p.admitted.len(), 1);
        assert_eq!(p.admitted[0].buffer, 3, "oldest survivor admitted first");
    }

    #[test]
    fn shed_self_when_there_is_no_queue() {
        let mut c = ctl(1, 0, OverloadPolicy::ShedOldest);
        assert!(matches!(c.offer(0, 1, 0, 1), Offer::Admitted(_)));
        match c.offer(1, 2, 0, 2) {
            Offer::ShedSelf(p) => assert_eq!(p, 2),
            other => panic!("expected ShedSelf, got {other:?}"),
        }
        assert_eq!(c.counters().shed, 1);
        assert!(c.counters().conserved());
    }

    #[test]
    fn deadline_drop_expires_overdue_entries_with_wait_times() {
        let mut c = ctl(
            1,
            0,
            OverloadPolicy::DeadlineDrop {
                deadline: SimDuration::from_nanos(100),
            },
        );
        assert!(matches!(c.offer(0, 1, 0, 1), Offer::Admitted(_)));
        assert!(matches!(c.offer(10, 2, 0, 2), Offer::Queued { .. }));
        assert!(matches!(c.offer(50, 3, 0, 3), Offer::Queued { .. }));
        // At t=120 the first queued entry (arrived 10) is 110ns old.
        let p = c.poll(120);
        assert_eq!(p.expired.len(), 1);
        assert_eq!(p.expired[0].buffer, 2);
        assert!(p.admitted.is_empty(), "inflight still at cap");
        c.release();
        let p = c.poll(130);
        assert_eq!(p.admitted.len(), 1);
        assert_eq!(p.admitted[0].buffer, 3);
        assert_eq!(c.counters().deadline_dropped, 1);
        assert!(c.counters().conserved());
        assert_eq!(event_count(&c, "task_deadline_dropped"), 1);
    }

    #[test]
    fn decision_log_is_deterministic_for_identical_inputs() {
        let run = || {
            let mut c = ctl(2, 1, OverloadPolicy::ShedOldest);
            for i in 0..20u64 {
                let _ = c.offer(i, i, 0, i);
                if i % 3 == 0 && c.inflight() > 0 {
                    c.release();
                    let _ = c.poll(i);
                }
            }
            c.decisions().to_vec()
        };
        assert_eq!(run(), run());
    }
}
