//! A deterministic single-threaded reference driver for the engine.
//!
//! The smallest possible backend: transport is a FIFO message queue with
//! zero cost, the executor runs handlers inline one buffer at a time, and
//! the clock ticks once per message. Because every scheduling decision is
//! made by the shared [`Engine`](super::Engine), the assignment a workload
//! receives here is the engine's *reference* behaviour — the cross-backend
//! policy-parity tests pin the DES against it, and
//! [`crate::local::Pipeline::run_deterministic`] uses it to execute real
//! filters reproducibly. It is also the template for adding a new backend:
//! implement [`Transport`] + [`Executor`], feed the five engine callbacks,
//! done.

use std::collections::{HashMap, VecDeque};

use anthill_hetsim::{DeviceId, DeviceKind};
use anthill_simkit::SimTime;

use crate::buffer::DataBuffer;
use crate::faults::RecoveryConfig;
use crate::graph::{DataflowGraph, RoutingCursors};
use crate::membership::{MemberAction, MembershipSchedule};
use crate::obs::Recorder;
use crate::policy::Policy;
use crate::weights::WeightProvider;

use super::clock::VirtualClock;
use super::core::{Engine, EngineConfig, Executor, Transport, WorkerRef};

/// Configuration of a sequential run.
#[derive(Debug, Clone)]
pub struct SequentialConfig {
    /// The scheduling policy.
    pub policy: Policy,
    /// Upper bound on any worker's request window.
    pub max_window: usize,
    /// Observability sink for the engine's events.
    pub recorder: Recorder,
}

impl SequentialConfig {
    /// Defaults: the given policy, a 256-wide window cap, no recording.
    pub fn new(policy: Policy) -> SequentialConfig {
        SequentialConfig {
            policy,
            max_window: 256,
            recorder: Recorder::disabled(),
        }
    }
}

/// What handling one buffer feeds back into the engine.
#[derive(Debug, Default)]
pub struct Emission {
    /// Buffers recirculated into the reader; they take FIFO precedence
    /// over unread sources, like the sim's recalculation loop.
    pub recirculate: Vec<DataBuffer>,
}

/// Result of a sequential run.
#[derive(Debug, Clone)]
pub struct SequentialOutcome {
    /// `(device kind, level) -> buffers handled`.
    pub assigned: HashMap<(DeviceKind, u8), u64>,
    /// Dispatch order, as `(device kind, buffer id)`.
    pub dispatch_order: Vec<(DeviceKind, u64)>,
    /// Total buffers handled.
    pub total: u64,
}

enum Msg {
    Request {
        from: WorkerRef,
        reader: usize,
        req_id: u64,
    },
    Exec {
        worker: WorkerRef,
        buffer: DataBuffer,
    },
}

/// Instant transport/executor: messages cost nothing and drain in FIFO
/// order; workers run one buffer at a time.
#[derive(Default)]
struct InstantDriver {
    inbox: VecDeque<Msg>,
}

impl Transport for InstantDriver {
    fn send_request(&mut self, from: WorkerRef, reader: usize, req_id: u64) {
        self.inbox.push_back(Msg::Request {
            from,
            reader,
            req_id,
        });
    }
}

impl Executor for InstantDriver {
    fn batch_limit(&mut self, _worker: WorkerRef) -> usize {
        1
    }

    fn launch(&mut self, worker: WorkerRef, batch: Vec<DataBuffer>) {
        for buffer in batch {
            self.inbox.push_back(Msg::Exec { worker, buffer });
        }
    }
}

/// Apply every scheduled membership action whose completion threshold has
/// been reached. Joins derive the new device index from the node's current
/// same-kind worker count (mirroring how drivers enumerate static
/// topologies); drains go straight to [`Engine::drain_worker`], which
/// releases an already-idle worker immediately.
fn apply_membership<W: WeightProvider>(
    engine: &mut Engine<VirtualClock, W>,
    schedule: &mut MembershipSchedule,
    drv: &mut InstantDriver,
) {
    while let Some(action) = schedule.pop_due(engine.total_done()) {
        match action {
            MemberAction::Join { node, kind } => {
                let index = engine
                    .worker_refs()
                    .into_iter()
                    .filter(|w| w.node == node && w.device.kind == kind)
                    .count();
                let device = DeviceId { node, kind, index };
                engine.join_worker(node, device, drv);
            }
            MemberAction::Drain { node, worker } => engine.drain_worker(node, worker),
        }
    }
}

/// Run `sources` through one engine node of `devices` to completion.
///
/// `handle` is invoked once per dispatched buffer (with the device class
/// that won it) and may recirculate follow-up buffers; DQAA is fed the
/// buffer's modeled on-device time (`shape.cpu` / `shape.gpu_kernel`).
pub fn run<W, F>(
    cfg: SequentialConfig,
    devices: &[DeviceId],
    sources: Vec<DataBuffer>,
    weights: W,
    handle: F,
) -> SequentialOutcome
where
    W: WeightProvider,
    F: FnMut(DeviceKind, &DataBuffer) -> Emission,
{
    run_elastic(
        cfg,
        devices,
        sources,
        weights,
        MembershipSchedule::none(),
        handle,
    )
}

/// [`run`] with a membership schedule: scheduled joins and drains fire as
/// the run's completion count crosses each action's threshold, exercising
/// the engine's elastic-membership path on the reference backend. The
/// schedule must leave at least one assignable worker at all times or the
/// run stalls with sources unread.
pub fn run_elastic<W, F>(
    cfg: SequentialConfig,
    devices: &[DeviceId],
    sources: Vec<DataBuffer>,
    weights: W,
    mut schedule: MembershipSchedule,
    mut handle: F,
) -> SequentialOutcome
where
    W: WeightProvider,
    F: FnMut(DeviceKind, &DataBuffer) -> Emission,
{
    let clock = VirtualClock::new();
    let mut engine = Engine::new(
        EngineConfig {
            policy: cfg.policy,
            max_window: cfg.max_window,
            recovery: RecoveryConfig::disabled(),
        },
        clock.clone(),
        weights,
        cfg.recorder.clone(),
    );
    let node = engine.add_node();
    for d in devices {
        engine.add_worker(node, *d);
    }
    assert!(engine.worker_count() > 0, "no worker devices configured");
    for b in sources {
        engine.seed_reader(node, b);
    }

    let mut drv = InstantDriver::default();
    // Kick every worker's requester with an unknown-id empty reply, as the
    // DES driver does at t = 0.
    for w in engine.worker_refs() {
        engine.data_arrived(w.node, w.worker, u64::MAX, None, &mut drv);
    }
    // Zero-threshold actions fire before the first completion.
    apply_membership(&mut engine, &mut schedule, &mut drv);

    let mut dispatch_order = Vec::new();
    let mut tick = 0u64;
    while let Some(msg) = drv.inbox.pop_front() {
        tick += 1;
        clock.set(SimTime(tick));
        match msg {
            Msg::Request {
                from,
                reader,
                req_id,
            } => {
                let buffer = engine.answer_request(reader, from.device.kind);
                engine.data_arrived(from.node, from.worker, req_id, buffer, &mut drv);
            }
            Msg::Exec { worker, buffer } => {
                dispatch_order.push((worker.device.kind, buffer.id.0));
                let emission = handle(worker.device.kind, &buffer);
                let proc = match worker.device.kind {
                    DeviceKind::Cpu => buffer.shape.cpu,
                    DeviceKind::Gpu => buffer.shape.gpu_kernel,
                };
                engine.task_finished(worker.node, worker.worker, &buffer, proc);
                apply_membership(&mut engine, &mut schedule, &mut drv);
                for r in emission.recirculate {
                    engine.recirculate(node, r, &mut drv);
                }
                engine.worker_idle(worker.node, worker.worker, &[proc], &mut drv);
            }
        }
    }

    SequentialOutcome {
        assigned: engine.tasks_by().clone(),
        dispatch_order,
        total: engine.total_done(),
    }
}

/// What handling one buffer at a graph filter feeds back into the run.
#[derive(Debug, Default)]
pub struct GraphEmission {
    /// Buffers emitted downstream: routed over the filter's forward
    /// out-edges ([`DataflowGraph::route_forward`]); with no matching
    /// out-edge they leave the graph as run outputs.
    pub forward: Vec<DataBuffer>,
    /// Buffers explicitly recirculated: delivered over the filter's
    /// declared feedback edge, or — with none declared — re-entered into
    /// the filter's own input queue at recirculation precedence (exactly
    /// the single-filter [`Emission::recirculate`] behaviour).
    pub feedback: Vec<DataBuffer>,
}

/// Result of a sequential graph run.
#[derive(Debug, Clone)]
pub struct GraphOutcome {
    /// `(filter, device kind, level) -> buffers handled`.
    pub assigned: HashMap<(usize, DeviceKind, u8), u64>,
    /// Dispatch order, as `(filter, device kind, buffer id)`.
    pub dispatch_order: Vec<(usize, DeviceKind, u64)>,
    /// Buffers that left the graph at a sink filter, in completion order.
    pub outputs: Vec<DataBuffer>,
    /// `edge id -> buffers delivered` over each forward/feedback edge.
    pub edge_delivered: HashMap<u32, u64>,
    /// Total buffers handled across all filters.
    pub total: u64,
}

/// Run `seeds` through a dataflow graph of replicated filters to
/// completion, one engine node per filter.
///
/// `devices[f]` are filter `f`'s worker devices; `seeds` are `(filter,
/// buffer)` pairs entering that filter's input queue. `handle` is invoked
/// once per dispatched buffer with the filter id and the device class that
/// won it; its [`GraphEmission`] is routed per the graph's edges. Each
/// filter's workers request only from that filter's own input queue, so
/// every edge runs its own ODDS/DQAA/DBSA instance; a single-filter graph
/// is bit-identical to [`run`] (assignment and dispatch order).
pub fn run_graph<W, F>(
    cfg: SequentialConfig,
    graph: &DataflowGraph,
    devices: &[Vec<DeviceId>],
    seeds: Vec<(usize, DataBuffer)>,
    weights: W,
    handle: F,
) -> GraphOutcome
where
    W: WeightProvider,
    F: FnMut(usize, DeviceKind, &DataBuffer) -> GraphEmission,
{
    run_graph_elastic(
        cfg,
        graph,
        devices,
        seeds,
        weights,
        MembershipSchedule::none(),
        handle,
    )
}

/// [`run_graph`] with a membership schedule; a scheduled `Join`'s node is
/// the filter id the worker joins. See [`run_elastic`] for semantics.
pub fn run_graph_elastic<W, F>(
    cfg: SequentialConfig,
    graph: &DataflowGraph,
    devices: &[Vec<DeviceId>],
    seeds: Vec<(usize, DataBuffer)>,
    weights: W,
    mut schedule: MembershipSchedule,
    mut handle: F,
) -> GraphOutcome
where
    W: WeightProvider,
    F: FnMut(usize, DeviceKind, &DataBuffer) -> GraphEmission,
{
    assert_eq!(
        devices.len(),
        graph.n_filters(),
        "one device list per filter"
    );
    let clock = VirtualClock::new();
    let mut engine = Engine::new(
        EngineConfig {
            policy: cfg.policy,
            max_window: cfg.max_window,
            recovery: RecoveryConfig::disabled(),
        },
        clock.clone(),
        weights,
        cfg.recorder.clone(),
    );
    for (f, devs) in devices.iter().enumerate() {
        let node = engine.add_node();
        debug_assert_eq!(node, f);
        for d in devs {
            engine.add_worker(node, *d);
        }
        assert!(
            !devs.is_empty(),
            "filter {f} ({}) has no worker devices",
            graph.filters()[f].name
        );
    }
    for f in 0..graph.n_filters() {
        engine.set_reader_scope(f, vec![f]);
    }
    for (f, b) in seeds {
        engine.seed_reader(f, b);
    }

    let mut drv = InstantDriver::default();
    for w in engine.worker_refs() {
        engine.data_arrived(w.node, w.worker, u64::MAX, None, &mut drv);
    }
    apply_membership(&mut engine, &mut schedule, &mut drv);

    let mut cursors = RoutingCursors::new(graph);
    let mut dispatch_order = Vec::new();
    let mut outputs = Vec::new();
    let mut tick = 0u64;
    while let Some(msg) = drv.inbox.pop_front() {
        tick += 1;
        clock.set(SimTime(tick));
        match msg {
            Msg::Request {
                from,
                reader,
                req_id,
            } => {
                let buffer = engine.answer_request(reader, from.device.kind);
                engine.data_arrived(from.node, from.worker, req_id, buffer, &mut drv);
            }
            Msg::Exec { worker, buffer } => {
                let filter = worker.node;
                dispatch_order.push((filter, worker.device.kind, buffer.id.0));
                let emission = handle(filter, worker.device.kind, &buffer);
                let proc = match worker.device.kind {
                    DeviceKind::Cpu => buffer.shape.cpu,
                    DeviceKind::Gpu => buffer.shape.gpu_kernel,
                };
                engine.task_finished(worker.node, worker.worker, &buffer, proc);
                apply_membership(&mut engine, &mut schedule, &mut drv);
                for b in emission.feedback {
                    match graph.feedback_edge(filter) {
                        Some(ei) => {
                            let to = graph.edge(ei).to;
                            engine.deliver_edge(ei as u32, to, b, &mut drv);
                        }
                        None => engine.recirculate(filter, b, &mut drv),
                    }
                }
                for b in emission.forward {
                    let targets = graph.route_forward(filter, b.level, &mut cursors);
                    match targets.split_last() {
                        None => outputs.push(b),
                        Some((&last, rest)) => {
                            for &ei in rest {
                                engine.deliver_edge(
                                    ei as u32,
                                    graph.edge(ei).to,
                                    b.clone(),
                                    &mut drv,
                                );
                            }
                            engine.deliver_edge(last as u32, graph.edge(last).to, b, &mut drv);
                        }
                    }
                }
                engine.worker_idle(worker.node, worker.worker, &[proc], &mut drv);
            }
        }
    }

    GraphOutcome {
        assigned: engine.tasks_by_node().clone(),
        dispatch_order,
        outputs,
        edge_delivered: engine.edge_delivered().clone(),
        total: engine.total_done(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferId;
    use crate::weights::OracleWeights;
    use anthill_estimator::TaskParams;
    use anthill_hetsim::{GpuParams, NbiaCostModel};

    fn tile(id: u64, side: u32) -> DataBuffer {
        DataBuffer {
            id: BufferId(id),
            params: TaskParams::nums(&[f64::from(side)]),
            shape: NbiaCostModel::paper_calibrated().tile(side),
            level: u8::from(side > 32),
            task: id,
        }
    }

    fn devices() -> Vec<DeviceId> {
        vec![
            DeviceId {
                node: 0,
                kind: DeviceKind::Cpu,
                index: 0,
            },
            DeviceId {
                node: 0,
                kind: DeviceKind::Gpu,
                index: 0,
            },
        ]
    }

    #[test]
    fn processes_every_source_exactly_once() {
        let sources: Vec<DataBuffer> = (0..100).map(|i| tile(i, 32)).collect();
        let out = run(
            SequentialConfig::new(Policy::ddfcfs(4)),
            &devices(),
            sources,
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
            |_, _| Emission::default(),
        );
        assert_eq!(out.total, 100);
        assert_eq!(out.dispatch_order.len(), 100);
        let mut ids: Vec<u64> = out.dispatch_order.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn recirculation_reenters_the_loop() {
        let sources: Vec<DataBuffer> = (0..40).map(|i| tile(i, 32)).collect();
        let out = run(
            SequentialConfig::new(Policy::odds()),
            &devices(),
            sources,
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
            |_, b| {
                let mut em = Emission::default();
                if b.level == 0 {
                    let mut high = tile(b.id.0 + 1_000, 512);
                    high.task = b.task;
                    em.recirculate.push(high);
                }
                em
            },
        );
        assert_eq!(out.total, 80, "40 low + 40 recirculated high");
        let high_done: u64 = out
            .assigned
            .iter()
            .filter(|((_, level), _)| *level == 1)
            .map(|(_, c)| c)
            .sum();
        assert_eq!(high_done, 40);
    }

    #[test]
    fn runs_are_deterministic() {
        let mk = || {
            let sources: Vec<DataBuffer> = (0..64)
                .map(|i| tile(i, if i % 3 == 0 { 512 } else { 32 }))
                .collect();
            run(
                SequentialConfig::new(Policy::ddwrr(4)),
                &devices(),
                sources,
                OracleWeights::new(GpuParams::geforce_8800gt(), false),
                |_, _| Emission::default(),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.dispatch_order, b.dispatch_order);
        assert_eq!(a.assigned, b.assigned);
    }

    #[test]
    fn degenerate_graph_is_bit_identical_to_the_single_filter_run() {
        // Acceptance criterion: a 1-node graph must reproduce today's
        // engine exactly — same per-device assignment AND same dispatch
        // order — for all three policies, including with recirculation.
        for policy in [Policy::ddfcfs(4), Policy::ddwrr(4), Policy::odds()] {
            let sources: Vec<DataBuffer> = (0..64)
                .map(|i| tile(i, if i % 3 == 0 { 512 } else { 32 }))
                .collect();
            let recirc = |b: &DataBuffer| {
                if b.level == 0 && b.task.is_multiple_of(4) {
                    let mut high = tile(b.id.0 + 1_000, 512);
                    high.task = b.task;
                    Some(high)
                } else {
                    None
                }
            };
            let flat = run(
                SequentialConfig::new(policy),
                &devices(),
                sources.clone(),
                OracleWeights::new(GpuParams::geforce_8800gt(), false),
                |_, b| {
                    let mut em = Emission::default();
                    em.recirculate.extend(recirc(b));
                    em
                },
            );
            let graph = DataflowGraph::single("only");
            let g = run_graph(
                SequentialConfig::new(policy),
                &graph,
                &[devices()],
                sources.into_iter().map(|b| (0, b)).collect(),
                OracleWeights::new(GpuParams::geforce_8800gt(), false),
                |_, _, b| {
                    let mut em = GraphEmission::default();
                    em.feedback.extend(recirc(b));
                    em.forward.push(b.clone());
                    em
                },
            );
            assert_eq!(flat.total, g.total, "{policy:?}");
            let g_order: Vec<(DeviceKind, u64)> =
                g.dispatch_order.iter().map(|&(_, k, id)| (k, id)).collect();
            assert_eq!(flat.dispatch_order, g_order, "{policy:?}");
            let g_assigned: HashMap<(DeviceKind, u8), u64> =
                g.assigned
                    .iter()
                    .fold(HashMap::new(), |mut acc, (&(_, k, level), &c)| {
                        *acc.entry((k, level)).or_insert(0) += c;
                        acc
                    });
            assert_eq!(flat.assigned, g_assigned, "{policy:?}");
            // Every handled buffer left the degenerate graph as an output.
            assert_eq!(g.outputs.len() as u64, g.total, "{policy:?}");
        }
    }

    #[test]
    fn pipeline_routes_every_buffer_through_every_stage() {
        let graph = DataflowGraph::pipeline(&["a", "b", "c"]);
        let sources: Vec<(usize, DataBuffer)> = (0..30).map(|i| (0, tile(i, 32))).collect();
        let out = run_graph(
            SequentialConfig::new(Policy::ddfcfs(4)),
            &graph,
            &[devices(), devices(), devices()],
            sources,
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
            |_, _, b| GraphEmission {
                forward: vec![b.clone()],
                feedback: Vec::new(),
            },
        );
        assert_eq!(out.total, 90, "every buffer crosses all 3 stages");
        assert_eq!(out.outputs.len(), 30);
        assert_eq!(out.edge_delivered.get(&0), Some(&30));
        assert_eq!(out.edge_delivered.get(&1), Some(&30));
        for f in 0..3 {
            let per_filter: u64 = out
                .assigned
                .iter()
                .filter(|((fi, _, _), _)| *fi == f)
                .map(|(_, c)| c)
                .sum();
            assert_eq!(per_filter, 30, "filter {f}");
        }
    }

    #[test]
    fn diamond_splits_round_robin_and_conserves() {
        let graph = DataflowGraph::diamond("src", "l", "r", "snk");
        let sources: Vec<(usize, DataBuffer)> = (0..40).map(|i| (0, tile(i, 32))).collect();
        let out = run_graph(
            SequentialConfig::new(Policy::ddwrr(4)),
            &graph,
            &[devices(), devices(), devices(), devices()],
            sources,
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
            |_, _, b| GraphEmission {
                forward: vec![b.clone()],
                feedback: Vec::new(),
            },
        );
        assert_eq!(out.total, 120, "src + one branch + sink per buffer");
        assert_eq!(out.outputs.len(), 40);
        // The split alternates branches exactly.
        assert_eq!(out.edge_delivered.get(&0), Some(&20));
        assert_eq!(out.edge_delivered.get(&1), Some(&20));
        // Merge edges conserve: everything a branch handled reached the sink.
        assert_eq!(out.edge_delivered.get(&2), Some(&20));
        assert_eq!(out.edge_delivered.get(&3), Some(&20));
    }

    #[test]
    fn broadcast_duplicates_across_edges() {
        use crate::graph::{EdgeSpec, FilterSpec};
        let graph = DataflowGraph::new(
            vec![
                FilterSpec::new("src"),
                FilterSpec::new("a"),
                FilterSpec::new("b"),
            ],
            vec![EdgeSpec::broadcast(0, 1), EdgeSpec::broadcast(0, 2)],
        )
        .unwrap();
        let sources: Vec<(usize, DataBuffer)> = (0..10).map(|i| (0, tile(i, 32))).collect();
        let out = run_graph(
            SequentialConfig::new(Policy::ddfcfs(4)),
            &graph,
            &[devices(), devices(), devices()],
            sources,
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
            |_, _, b| GraphEmission {
                forward: vec![b.clone()],
                feedback: Vec::new(),
            },
        );
        assert_eq!(out.total, 30, "each buffer runs at src and both copies");
        assert_eq!(out.outputs.len(), 20, "both branch copies leave the graph");
        assert_eq!(out.edge_delivered.get(&0), Some(&10));
        assert_eq!(out.edge_delivered.get(&1), Some(&10));
    }

    #[test]
    fn odds_sender_answers_gpu_requests_best_first() {
        // A lone GPU worker under ODDS: every request reaches the DBSA
        // sender with proctype Gpu, so the reader must hand out the
        // high-res (GPU-favoured) tiles before any low-res one.
        let n_high = 15u64;
        let sources: Vec<DataBuffer> = (0..60)
            .map(|i| tile(i, if i < n_high { 512 } else { 32 }))
            .collect();
        let out = run(
            SequentialConfig::new(Policy::odds()),
            &[DeviceId {
                node: 0,
                kind: DeviceKind::Gpu,
                index: 0,
            }],
            sources,
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
            |_, _| Emission::default(),
        );
        assert_eq!(out.total, 60);
        let first: Vec<u64> = out
            .dispatch_order
            .iter()
            .take(n_high as usize)
            .map(|&(_, id)| id)
            .collect();
        assert!(
            first.iter().all(|&id| id < n_high),
            "high-res tiles must be selected first, got {first:?}"
        );
    }
}
