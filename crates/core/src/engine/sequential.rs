//! A deterministic single-threaded reference driver for the engine.
//!
//! The smallest possible backend: transport is a FIFO message queue with
//! zero cost, the executor runs handlers inline one buffer at a time, and
//! the clock ticks once per message. Because every scheduling decision is
//! made by the shared [`Engine`](super::Engine), the assignment a workload
//! receives here is the engine's *reference* behaviour — the cross-backend
//! policy-parity tests pin the DES against it, and
//! [`crate::local::Pipeline::run_deterministic`] uses it to execute real
//! filters reproducibly. It is also the template for adding a new backend:
//! implement [`Transport`] + [`Executor`], feed the five engine callbacks,
//! done.

use std::collections::{HashMap, VecDeque};

use anthill_hetsim::{DeviceId, DeviceKind};
use anthill_simkit::SimTime;

use crate::buffer::DataBuffer;
use crate::faults::RecoveryConfig;
use crate::obs::Recorder;
use crate::policy::Policy;
use crate::weights::WeightProvider;

use super::clock::VirtualClock;
use super::core::{Engine, EngineConfig, Executor, Transport, WorkerRef};

/// Configuration of a sequential run.
#[derive(Debug, Clone)]
pub struct SequentialConfig {
    /// The scheduling policy.
    pub policy: Policy,
    /// Upper bound on any worker's request window.
    pub max_window: usize,
    /// Observability sink for the engine's events.
    pub recorder: Recorder,
}

impl SequentialConfig {
    /// Defaults: the given policy, a 256-wide window cap, no recording.
    pub fn new(policy: Policy) -> SequentialConfig {
        SequentialConfig {
            policy,
            max_window: 256,
            recorder: Recorder::disabled(),
        }
    }
}

/// What handling one buffer feeds back into the engine.
#[derive(Debug, Default)]
pub struct Emission {
    /// Buffers recirculated into the reader; they take FIFO precedence
    /// over unread sources, like the sim's recalculation loop.
    pub recirculate: Vec<DataBuffer>,
}

/// Result of a sequential run.
#[derive(Debug, Clone)]
pub struct SequentialOutcome {
    /// `(device kind, level) -> buffers handled`.
    pub assigned: HashMap<(DeviceKind, u8), u64>,
    /// Dispatch order, as `(device kind, buffer id)`.
    pub dispatch_order: Vec<(DeviceKind, u64)>,
    /// Total buffers handled.
    pub total: u64,
}

enum Msg {
    Request {
        from: WorkerRef,
        reader: usize,
        req_id: u64,
    },
    Exec {
        worker: WorkerRef,
        buffer: DataBuffer,
    },
}

/// Instant transport/executor: messages cost nothing and drain in FIFO
/// order; workers run one buffer at a time.
#[derive(Default)]
struct InstantDriver {
    inbox: VecDeque<Msg>,
}

impl Transport for InstantDriver {
    fn send_request(&mut self, from: WorkerRef, reader: usize, req_id: u64) {
        self.inbox.push_back(Msg::Request {
            from,
            reader,
            req_id,
        });
    }
}

impl Executor for InstantDriver {
    fn batch_limit(&mut self, _worker: WorkerRef) -> usize {
        1
    }

    fn launch(&mut self, worker: WorkerRef, batch: Vec<DataBuffer>) {
        for buffer in batch {
            self.inbox.push_back(Msg::Exec { worker, buffer });
        }
    }
}

/// Run `sources` through one engine node of `devices` to completion.
///
/// `handle` is invoked once per dispatched buffer (with the device class
/// that won it) and may recirculate follow-up buffers; DQAA is fed the
/// buffer's modeled on-device time (`shape.cpu` / `shape.gpu_kernel`).
pub fn run<W, F>(
    cfg: SequentialConfig,
    devices: &[DeviceId],
    sources: Vec<DataBuffer>,
    weights: W,
    mut handle: F,
) -> SequentialOutcome
where
    W: WeightProvider,
    F: FnMut(DeviceKind, &DataBuffer) -> Emission,
{
    let clock = VirtualClock::new();
    let mut engine = Engine::new(
        EngineConfig {
            policy: cfg.policy,
            max_window: cfg.max_window,
            recovery: RecoveryConfig::disabled(),
        },
        clock.clone(),
        weights,
        cfg.recorder.clone(),
    );
    let node = engine.add_node();
    for d in devices {
        engine.add_worker(node, *d);
    }
    assert!(engine.worker_count() > 0, "no worker devices configured");
    for b in sources {
        engine.seed_reader(node, b);
    }

    let mut drv = InstantDriver::default();
    // Kick every worker's requester with an unknown-id empty reply, as the
    // DES driver does at t = 0.
    for w in engine.worker_refs() {
        engine.data_arrived(w.node, w.worker, u64::MAX, None, &mut drv);
    }

    let mut dispatch_order = Vec::new();
    let mut tick = 0u64;
    while let Some(msg) = drv.inbox.pop_front() {
        tick += 1;
        clock.set(SimTime(tick));
        match msg {
            Msg::Request {
                from,
                reader,
                req_id,
            } => {
                let buffer = engine.answer_request(reader, from.device.kind);
                engine.data_arrived(from.node, from.worker, req_id, buffer, &mut drv);
            }
            Msg::Exec { worker, buffer } => {
                dispatch_order.push((worker.device.kind, buffer.id.0));
                let emission = handle(worker.device.kind, &buffer);
                let proc = match worker.device.kind {
                    DeviceKind::Cpu => buffer.shape.cpu,
                    DeviceKind::Gpu => buffer.shape.gpu_kernel,
                };
                engine.task_finished(worker.node, worker.worker, &buffer, proc);
                for r in emission.recirculate {
                    engine.recirculate(node, r, &mut drv);
                }
                engine.worker_idle(worker.node, worker.worker, &[proc], &mut drv);
            }
        }
    }

    SequentialOutcome {
        assigned: engine.tasks_by().clone(),
        dispatch_order,
        total: engine.total_done(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferId;
    use crate::weights::OracleWeights;
    use anthill_estimator::TaskParams;
    use anthill_hetsim::{GpuParams, NbiaCostModel};

    fn tile(id: u64, side: u32) -> DataBuffer {
        DataBuffer {
            id: BufferId(id),
            params: TaskParams::nums(&[f64::from(side)]),
            shape: NbiaCostModel::paper_calibrated().tile(side),
            level: u8::from(side > 32),
            task: id,
        }
    }

    fn devices() -> Vec<DeviceId> {
        vec![
            DeviceId {
                node: 0,
                kind: DeviceKind::Cpu,
                index: 0,
            },
            DeviceId {
                node: 0,
                kind: DeviceKind::Gpu,
                index: 0,
            },
        ]
    }

    #[test]
    fn processes_every_source_exactly_once() {
        let sources: Vec<DataBuffer> = (0..100).map(|i| tile(i, 32)).collect();
        let out = run(
            SequentialConfig::new(Policy::ddfcfs(4)),
            &devices(),
            sources,
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
            |_, _| Emission::default(),
        );
        assert_eq!(out.total, 100);
        assert_eq!(out.dispatch_order.len(), 100);
        let mut ids: Vec<u64> = out.dispatch_order.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn recirculation_reenters_the_loop() {
        let sources: Vec<DataBuffer> = (0..40).map(|i| tile(i, 32)).collect();
        let out = run(
            SequentialConfig::new(Policy::odds()),
            &devices(),
            sources,
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
            |_, b| {
                let mut em = Emission::default();
                if b.level == 0 {
                    let mut high = tile(b.id.0 + 1_000, 512);
                    high.task = b.task;
                    em.recirculate.push(high);
                }
                em
            },
        );
        assert_eq!(out.total, 80, "40 low + 40 recirculated high");
        let high_done: u64 = out
            .assigned
            .iter()
            .filter(|((_, level), _)| *level == 1)
            .map(|(_, c)| c)
            .sum();
        assert_eq!(high_done, 40);
    }

    #[test]
    fn runs_are_deterministic() {
        let mk = || {
            let sources: Vec<DataBuffer> = (0..64)
                .map(|i| tile(i, if i % 3 == 0 { 512 } else { 32 }))
                .collect();
            run(
                SequentialConfig::new(Policy::ddwrr(4)),
                &devices(),
                sources,
                OracleWeights::new(GpuParams::geforce_8800gt(), false),
                |_, _| Emission::default(),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.dispatch_order, b.dispatch_order);
        assert_eq!(a.assigned, b.assigned);
    }

    #[test]
    fn odds_sender_answers_gpu_requests_best_first() {
        // A lone GPU worker under ODDS: every request reaches the DBSA
        // sender with proctype Gpu, so the reader must hand out the
        // high-res (GPU-favoured) tiles before any low-res one.
        let n_high = 15u64;
        let sources: Vec<DataBuffer> = (0..60)
            .map(|i| tile(i, if i < n_high { 512 } else { 32 }))
            .collect();
        let out = run(
            SequentialConfig::new(Policy::odds()),
            &[DeviceId {
                node: 0,
                kind: DeviceKind::Gpu,
                index: 0,
            }],
            sources,
            OracleWeights::new(GpuParams::geforce_8800gt(), false),
            |_, _| Emission::default(),
        );
        assert_eq!(out.total, 60);
        let first: Vec<u64> = out
            .dispatch_order
            .iter()
            .take(n_high as usize)
            .map(|&(_, id)| id)
            .collect();
        assert!(
            first.iter().all(|&id| id < n_high),
            "high-res tiles must be selected first, got {first:?}"
        );
    }
}
