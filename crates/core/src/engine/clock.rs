//! Time sources for the scheduling engine.
//!
//! The engine stamps every decision — request send times, trace events,
//! utilization transitions — through a [`Clock`] supplied by the driver.
//! The DES driver advances a [`VirtualClock`] to each event's virtual
//! time; the sequential reference driver ticks it once per message; a
//! real-time driver would use a [`WallClock`].

use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

use anthill_simkit::SimTime;

/// A monotonic time source the engine reads whenever it needs "now".
pub trait Clock {
    /// The current time.
    fn now(&self) -> SimTime;
}

/// A clock set explicitly by the driver. Cloning shares the underlying
/// cell, so the driver keeps one handle and the engine another.
#[derive(Debug, Clone)]
pub struct VirtualClock(Rc<Cell<SimTime>>);

impl VirtualClock {
    /// A virtual clock starting at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock(Rc::new(Cell::new(SimTime::ZERO)))
    }

    /// Move the clock to `t` (the virtual time of the event being handled).
    pub fn set(&self, t: SimTime) {
        self.0.set(t);
    }
}

impl Default for VirtualClock {
    fn default() -> VirtualClock {
        VirtualClock::new()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        self.0.get()
    }
}

/// Monotonic wall-clock nanoseconds since an epoch, for drivers that
/// execute in real time.
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose zero is "now".
    pub fn start() -> WallClock {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// A wall clock measuring from an existing epoch (e.g. the run start
    /// the driver already stamps its own events with).
    pub fn from_epoch(epoch: Instant) -> WallClock {
        WallClock { epoch }
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_shared_between_clones() {
        let a = VirtualClock::new();
        let b = a.clone();
        assert_eq!(b.now(), SimTime::ZERO);
        a.set(SimTime(42));
        assert_eq!(b.now(), SimTime(42));
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::start();
        let t1 = c.now();
        let t2 = c.now();
        assert!(t2 >= t1);
    }

    #[test]
    fn timeout_deadlines_saturate_at_extreme_virtual_times() {
        // The engine computes timeout fire times as `clock.now() + span`.
        // Near the end of representable virtual time the deadline must pin
        // to SimTime::MAX ("never") rather than wrap into the past, which
        // would fire a timeout retroactively and retry a healthy request.
        use anthill_simkit::SimDuration;
        let clock = VirtualClock::new();
        clock.set(SimTime(u64::MAX - 10));
        let deadline = clock.now() + SimDuration::from_millis(500);
        assert_eq!(deadline, SimTime::MAX);
        assert!(deadline >= clock.now(), "deadline never precedes now");
        clock.set(SimTime::MAX);
        assert_eq!(clock.now() + SimDuration(u64::MAX), SimTime::MAX);
        assert_eq!(
            clock.now().since(SimTime::MAX),
            SimDuration::ZERO,
            "elapsed time saturates at zero, never underflows"
        );
    }
}
