//! Per-worker request-window state: the static `streamRequestSize` of
//! DDFCFS/DDWRR or the DQAA-adapted window of ODDS (paper Section 5.3.1),
//! plus the outstanding-request accounting that keeps a worker's demand at
//! its target.

use std::collections::HashMap;

use anthill_simkit::{SimDuration, SimTime};

use crate::dqaa::Dqaa;
use crate::policy::Policy;

/// One worker's outstanding-request window.
///
/// The *target* is how many requests the worker keeps in flight: a fixed
/// `streamRequestSize` for static policies, or the [`Dqaa`] window plus a
/// batch reserve for dynamic ones (a batched GPU manager must hold the
/// in-service batch *and* the latency-hiding window).
#[derive(Debug, Clone)]
pub struct RequestWindow {
    dqaa: Dqaa,
    static_target: usize,
    dynamic: bool,
    batch_reserve: usize,
    outstanding: usize,
    starved: bool,
    /// In-flight request send times, keyed by request id.
    sent: HashMap<u64, SimTime>,
}

impl RequestWindow {
    /// A fresh window for one worker under `policy`, with the DQAA target
    /// bounded by `max_window`.
    pub fn new(policy: &Policy, max_window: usize) -> RequestWindow {
        RequestWindow {
            dqaa: Dqaa::new(max_window),
            static_target: policy.request_size,
            dynamic: policy.kind.dynamic_requests(),
            batch_reserve: 0,
            outstanding: 0,
            starved: false,
            sent: HashMap::new(),
        }
    }

    /// Current target window.
    pub fn target(&self) -> usize {
        if self.dynamic {
            self.dqaa.target() + self.batch_reserve
        } else {
            self.static_target
        }
    }

    /// Requests in flight (sent but not yet settled).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// True when the worker found no reader with data and is waiting for a
    /// wake-up.
    pub fn is_starved(&self) -> bool {
        self.starved
    }

    /// Extra target slots covering an in-service batch (an async GPU
    /// manager's current stream count); ignored by static policies.
    pub fn set_batch_reserve(&mut self, slots: usize) {
        self.batch_reserve = slots;
    }

    pub(crate) fn set_starved(&mut self) {
        self.starved = true;
    }

    /// Account a request leaving at `now`.
    pub(crate) fn note_sent(&mut self, req_id: u64, now: SimTime) {
        self.outstanding += 1;
        self.starved = false;
        self.sent.insert(req_id, now);
    }

    /// Settle the round-trip of `req_id` at `now`, feeding DQAA's latency
    /// estimate. `None` for unknown ids (e.g. the drivers' kick events).
    pub(crate) fn settle_latency(&mut self, req_id: u64, now: SimTime) -> Option<SimDuration> {
        let lat = now.since(self.sent.remove(&req_id)?);
        self.dqaa.observe_latency(lat);
        Some(lat)
    }

    /// Release one outstanding slot (its buffer was consumed or the reply
    /// was empty).
    pub(crate) fn release_slot(&mut self) {
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    /// Feed one processed-buffer duration into DQAA; returns the new DQAA
    /// target.
    pub(crate) fn observe_processing(&mut self, dt: SimDuration) -> usize {
        self.dqaa.observe_processing(dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn static_policies_keep_a_fixed_target() {
        let mut w = RequestWindow::new(&Policy::ddwrr(7), 256);
        assert_eq!(w.target(), 7);
        w.note_sent(0, SimTime::ZERO);
        w.settle_latency(0, SimTime(ms(10).as_nanos()));
        w.observe_processing(ms(1));
        assert_eq!(w.target(), 7, "DQAA must not move a static window");
        w.set_batch_reserve(4);
        assert_eq!(
            w.target(),
            7,
            "batch reserve only applies to dynamic windows"
        );
    }

    #[test]
    fn dynamic_window_adapts_and_adds_the_batch_reserve() {
        let mut w = RequestWindow::new(&Policy::odds(), 256);
        assert_eq!(w.target(), 1);
        for id in 0..10 {
            w.note_sent(id, SimTime::ZERO);
            w.settle_latency(id, SimTime(ms(10).as_nanos()));
            w.observe_processing(ms(2));
        }
        assert_eq!(w.target(), 5, "latency/processing ratio of 5");
        w.set_batch_reserve(3);
        assert_eq!(w.target(), 8);
    }

    #[test]
    fn outstanding_accounting_round_trips() {
        let mut w = RequestWindow::new(&Policy::ddfcfs(2), 256);
        w.note_sent(11, SimTime(5));
        assert_eq!(w.outstanding(), 1);
        assert!(w.settle_latency(11, SimTime(9)).is_some());
        assert!(
            w.settle_latency(u64::MAX, SimTime(9)).is_none(),
            "unknown ids (kicks) settle nothing"
        );
        w.release_slot();
        assert_eq!(w.outstanding(), 0);
        w.release_slot();
        assert_eq!(w.outstanding(), 0, "release saturates at zero");
    }

    #[test]
    fn starvation_clears_on_send() {
        let mut w = RequestWindow::new(&Policy::odds(), 256);
        w.set_starved();
        assert!(w.is_starved());
        w.note_sent(0, SimTime::ZERO);
        assert!(!w.is_starved());
    }
}
