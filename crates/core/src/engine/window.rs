//! Per-worker request-window state: the static `streamRequestSize` of
//! DDFCFS/DDWRR or the DQAA-adapted window of ODDS (paper Section 5.3.1),
//! plus the outstanding-request accounting that keeps a worker's demand at
//! its target.

use std::collections::HashMap;

use anthill_simkit::{SimDuration, SimTime};

use crate::dqaa::Dqaa;
use crate::policy::Policy;

/// One worker's outstanding-request window.
///
/// The *target* is how many requests the worker keeps in flight: a fixed
/// `streamRequestSize` for static policies, or the [`Dqaa`] window plus a
/// batch reserve for dynamic ones (a batched GPU manager must hold the
/// in-service batch *and* the latency-hiding window).
#[derive(Debug, Clone)]
pub struct RequestWindow {
    dqaa: Dqaa,
    static_target: usize,
    dynamic: bool,
    batch_reserve: usize,
    outstanding: usize,
    starved: bool,
    /// In-flight requests keyed by request id.
    sent: HashMap<u64, SentRequest>,
}

/// Book-keeping for one in-flight request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SentRequest {
    /// Send time (feeds DQAA's latency estimate on settle).
    pub at: SimTime,
    /// Retry attempt: 0 for the first send, incremented per timeout resend.
    pub attempt: u32,
}

/// The exponential-backoff timeout for retry `attempt`: `base << attempt`,
/// saturating, capped at `cap`. Saturating shift/multiply keeps the
/// schedule well-defined at any attempt count and any virtual time — a
/// deadline computed from it can at worst pin to `SimTime::MAX` ("never"),
/// it can never wrap to the past.
pub fn backoff_timeout(base: SimDuration, attempt: u32, cap: SimDuration) -> SimDuration {
    let scaled = if attempt >= 64 {
        SimDuration(u64::MAX)
    } else {
        SimDuration(base.as_nanos().saturating_mul(1u64 << attempt))
    };
    scaled.min(cap)
}

impl RequestWindow {
    /// A fresh window for one worker under `policy`, with the DQAA target
    /// bounded by `max_window`.
    pub fn new(policy: &Policy, max_window: usize) -> RequestWindow {
        RequestWindow {
            dqaa: Dqaa::new(max_window),
            static_target: policy.request_size,
            dynamic: policy.kind.dynamic_requests(),
            batch_reserve: 0,
            outstanding: 0,
            starved: false,
            sent: HashMap::new(),
        }
    }

    /// Current target window.
    pub fn target(&self) -> usize {
        if self.dynamic {
            self.dqaa.target() + self.batch_reserve
        } else {
            self.static_target
        }
    }

    /// Requests in flight (sent but not yet settled).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// True when the worker found no reader with data and is waiting for a
    /// wake-up.
    pub fn is_starved(&self) -> bool {
        self.starved
    }

    /// Extra target slots covering an in-service batch (an async GPU
    /// manager's current stream count); ignored by static policies.
    pub fn set_batch_reserve(&mut self, slots: usize) {
        self.batch_reserve = slots;
    }

    pub(crate) fn set_starved(&mut self) {
        self.starved = true;
    }

    /// Account a request leaving at `now`.
    pub(crate) fn note_sent(&mut self, req_id: u64, now: SimTime) {
        self.outstanding += 1;
        self.starved = false;
        self.sent.insert(
            req_id,
            SentRequest {
                at: now,
                attempt: 0,
            },
        );
    }

    /// Account a retry of a timed-out request under a fresh id. The window
    /// slot is still held by the original send, so `outstanding` does not
    /// move; the attempt count carries over the retry chain.
    pub(crate) fn note_resent(&mut self, req_id: u64, now: SimTime, attempt: u32) {
        self.sent.insert(req_id, SentRequest { at: now, attempt });
    }

    /// Remove and return an in-flight request without settling it (the
    /// timeout path: its round trip is *not* fed to DQAA, which must learn
    /// healthy latencies, not timeout spans). `None` when the reply won
    /// the race and already settled.
    pub(crate) fn take_sent(&mut self, req_id: u64) -> Option<SentRequest> {
        self.sent.remove(&req_id)
    }

    /// Settle the round-trip of `req_id` at `now`, feeding DQAA's latency
    /// estimate. `None` for unknown ids (e.g. the drivers' kick events).
    pub(crate) fn settle_latency(&mut self, req_id: u64, now: SimTime) -> Option<SimDuration> {
        let lat = now.since(self.sent.remove(&req_id)?.at);
        self.dqaa.observe_latency(lat);
        Some(lat)
    }

    /// Release one outstanding slot (its buffer was consumed or the reply
    /// was empty).
    pub(crate) fn release_slot(&mut self) {
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    /// Feed one processed-buffer duration into DQAA; returns the new DQAA
    /// target.
    pub(crate) fn observe_processing(&mut self, dt: SimDuration) -> usize {
        self.dqaa.observe_processing(dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn static_policies_keep_a_fixed_target() {
        let mut w = RequestWindow::new(&Policy::ddwrr(7), 256);
        assert_eq!(w.target(), 7);
        w.note_sent(0, SimTime::ZERO);
        w.settle_latency(0, SimTime(ms(10).as_nanos()));
        w.observe_processing(ms(1));
        assert_eq!(w.target(), 7, "DQAA must not move a static window");
        w.set_batch_reserve(4);
        assert_eq!(
            w.target(),
            7,
            "batch reserve only applies to dynamic windows"
        );
    }

    #[test]
    fn dynamic_window_adapts_and_adds_the_batch_reserve() {
        let mut w = RequestWindow::new(&Policy::odds(), 256);
        assert_eq!(w.target(), 1);
        for id in 0..10 {
            w.note_sent(id, SimTime::ZERO);
            w.settle_latency(id, SimTime(ms(10).as_nanos()));
            w.observe_processing(ms(2));
        }
        assert_eq!(w.target(), 5, "latency/processing ratio of 5");
        w.set_batch_reserve(3);
        assert_eq!(w.target(), 8);
    }

    #[test]
    fn outstanding_accounting_round_trips() {
        let mut w = RequestWindow::new(&Policy::ddfcfs(2), 256);
        w.note_sent(11, SimTime(5));
        assert_eq!(w.outstanding(), 1);
        assert!(w.settle_latency(11, SimTime(9)).is_some());
        assert!(
            w.settle_latency(u64::MAX, SimTime(9)).is_none(),
            "unknown ids (kicks) settle nothing"
        );
        w.release_slot();
        assert_eq!(w.outstanding(), 0);
        w.release_slot();
        assert_eq!(w.outstanding(), 0, "release saturates at zero");
    }

    #[test]
    fn backoff_doubles_until_the_cap() {
        let base = ms(500);
        let cap = SimDuration::from_secs(8);
        assert_eq!(backoff_timeout(base, 0, cap), ms(500));
        assert_eq!(backoff_timeout(base, 1, cap), ms(1_000));
        assert_eq!(backoff_timeout(base, 2, cap), ms(2_000));
        assert_eq!(backoff_timeout(base, 4, cap), ms(8_000));
        assert_eq!(backoff_timeout(base, 5, cap), cap, "capped");
        assert_eq!(backoff_timeout(base, 63, cap), cap, "still capped");
    }

    #[test]
    fn backoff_saturates_at_extreme_attempts_and_times() {
        // Shift counts past u64 width and near-MAX bases must saturate,
        // never wrap: a deadline computed from the result can only pin to
        // SimTime::MAX ("never"), not land in the past.
        let huge = SimDuration(u64::MAX);
        assert_eq!(backoff_timeout(ms(500), 64, huge), huge);
        assert_eq!(backoff_timeout(ms(500), u32::MAX, huge), huge);
        assert_eq!(backoff_timeout(huge, 3, huge), huge);
        assert_eq!(backoff_timeout(SimDuration::ZERO, 70, huge), huge);
        let deadline = SimTime::MAX + backoff_timeout(ms(500), 9, huge);
        assert_eq!(deadline, SimTime::MAX, "deadline addition saturates");
    }

    #[test]
    fn resend_keeps_the_slot_and_carries_the_attempt() {
        let mut w = RequestWindow::new(&Policy::ddfcfs(4), 256);
        w.note_sent(1, SimTime(10));
        assert_eq!(w.outstanding(), 1);
        let first = w.take_sent(1).expect("in flight");
        assert_eq!(first.attempt, 0);
        assert_eq!(w.outstanding(), 1, "timeout takeover keeps the slot");
        w.note_resent(2, SimTime(20), first.attempt + 1);
        assert_eq!(w.outstanding(), 1, "a resend does not grow the window");
        assert_eq!(w.take_sent(2).expect("resent").attempt, 1);
        assert!(w.take_sent(1).is_none(), "old id is gone");
        assert!(w.take_sent(2).is_none(), "taking twice settles nothing");
    }

    #[test]
    fn settled_requests_win_the_race_against_their_timeout() {
        let mut w = RequestWindow::new(&Policy::ddfcfs(4), 256);
        w.note_sent(5, SimTime(0));
        assert!(w.settle_latency(5, SimTime(100)).is_some());
        assert!(
            w.take_sent(5).is_none(),
            "a late timeout for a settled request must be a no-op"
        );
    }

    #[test]
    fn starvation_clears_on_send() {
        let mut w = RequestWindow::new(&Policy::odds(), 256);
        w.set_starved();
        assert!(w.is_starved());
        w.note_sent(0, SimTime::ZERO);
        assert!(!w.is_starved());
    }
}
