//! The backend-agnostic scheduling engine: one implementation of the
//! paper's demand-driven protocol, shared by every executor.
//!
//! ```text
//!                    ┌─────────────────────────────────┐
//!                    │        anthill::engine          │
//!                    │  ready ordering   (DDFCFS/DDWRR)│
//!                    │  sender selection (DBSA)        │
//!                    │  request windows  (DQAA/static) │
//!                    │  dispatch, obs events           │
//!                    └──────┬─────────┬────────┬───────┘
//!              Clock + Transport + Executor traits
//!          ┌──────┴───┐ ┌───┴────┐ ┌─┴────────────┐ ┌──────────┐
//!          │ DES      │ │ native │ │ sequential   │ │ net      │
//!          │ driver   │ │ driver │ │ reference    │ │ driver   │
//!          │ (sim)    │ │ (local)│ │ driver       │ │ (TCP)    │
//!          └──────────┘ └────────┘ └──────────────┘ └──────────┘
//! ```
//!
//! The split: the engine owns every *decision* — which buffer a reader
//! hands a requester (DBSA), in what order a device consumes its ready
//! queue (DDFCFS/DDWRR), how many requests each worker keeps in flight
//! (DQAA / static `streamRequestSize`), which idle worker gets dispatched
//! next — while drivers own every *cost*: what a request hop takes on the
//! wire, how long a kernel occupies a device, whether time is virtual or
//! real. Drivers implement [`Transport`] + [`Executor`], supply a
//! [`Clock`], and forward five callbacks (see [`Engine`]); the policies
//! then run unmodified on any backend.
//!
//! The submodules: [`core`] (the engine itself), [`clock`] (time
//! sources), [`select`] (the sorted-vs-FIFO ordering primitive and the
//! [`ReadyLane`] used by backends with their own queues), [`window`]
//! (request-window state), and [`sequential`] (the reference driver).

pub mod admission;
pub mod clock;
pub mod core;
pub mod select;
pub mod sequential;
pub mod window;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionCounters, AdmissionDecision, Offer,
    OverloadPolicy, Poll, TaskEnvelope,
};
pub use clock::{Clock, VirtualClock, WallClock};
pub use core::{Engine, EngineConfig, Executor, Transport, WorkerRef, WorkerStats};
pub use select::ReadyLane;
pub use window::RequestWindow;
