//! The backend-agnostic demand-driven scheduling core.
//!
//! [`Engine`] owns the paper's whole scheduling protocol — request-window
//! pumping, reader-side buffer selection (DBSA), receiver-side ready-queue
//! ordering (DDFCFS/DDWRR), GPU-first dispatch, DQAA adaptation, and obs
//! event emission — while delegating everything backend-specific to two
//! small traits: [`Transport`] (what delivering a request costs) and
//! [`Executor`] (how a batch actually runs). A driver is a loop that feeds
//! engine callbacks:
//!
//! * a reader received a request → [`Engine::answer_request`];
//! * a (possibly empty) reply reached a worker → [`Engine::data_arrived`];
//! * a recalculated buffer materialized → [`Engine::recirculate`];
//! * a task completed on a device → [`Engine::task_finished`];
//! * a worker became free → [`Engine::worker_idle`].
//!
//! The DES ([`crate::sim`]), the threaded runtime ([`crate::local`]) and
//! the sequential reference driver ([`super::sequential`]) are all thin
//! shells around these five callbacks.

use std::collections::HashMap;

use anthill_hetsim::{DeviceId, DeviceKind};
use anthill_simkit::{DurationHistogram, SimDuration, SimTime, UtilizationTracker};

use crate::buffer::DataBuffer;
use crate::obs::{DeviceRef, EventKind, Recorder};
use crate::policy::Policy;
use crate::queue::SharedQueue;
use crate::weights::WeightProvider;

use super::clock::Clock;
use super::select;
use super::window::RequestWindow;

/// Identity of one worker slot in the engine's topology, echoed through
/// the driver traits so replies and completions find their way back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerRef {
    /// Hosting node index.
    pub node: usize,
    /// Worker slot index within the node.
    pub worker: usize,
    /// The device the slot schedules for.
    pub device: DeviceId,
}

/// The driver side of request delivery.
///
/// The engine decides *that* a worker requests a buffer from a reader; the
/// driver decides what that costs (a modeled network hop, a channel send,
/// nothing at all) and must eventually route the reader's answer back
/// through [`Engine::answer_request`] followed by [`Engine::data_arrived`]
/// with the same `req_id`.
pub trait Transport {
    /// Deliver a data request from worker `from` to node `reader`'s reader
    /// instance. The requesting processor type is `from.device.kind`.
    fn send_request(&mut self, from: WorkerRef, reader: usize, req_id: u64);
}

/// The driver side of task execution.
///
/// The engine decides *which* buffers a worker runs and in what batch; the
/// driver runs them (virtual-time hardware models, OS threads, real
/// kernels) and reports back via [`Engine::task_finished`] per buffer and
/// [`Engine::worker_idle`] when the slot frees up.
pub trait Executor {
    /// Upper bound on the batch handed to `worker` in one dispatch: 1 for
    /// one-at-a-time devices, the current stream count for an async GPU
    /// manager (Algorithm 1).
    fn batch_limit(&mut self, worker: WorkerRef) -> usize;

    /// Execute `batch` (never empty) on `worker`. The slot counts as busy
    /// until the driver calls [`Engine::worker_idle`].
    fn launch(&mut self, worker: WorkerRef, batch: Vec<DataBuffer>);
}

/// Engine configuration shared by every backend.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The scheduling policy.
    pub policy: Policy,
    /// Upper bound on any worker's request window.
    pub max_window: usize,
}

struct WorkerState {
    device: DeviceId,
    window: RequestWindow,
    busy: bool,
    /// Round-robin cursor over readers (starts at the hosting node).
    rr_cursor: usize,
    util: UtilizationTracker,
    /// Target-window trace `(time, target)` per idle transition.
    req_trace: Vec<(SimTime, usize)>,
    latency_hist: DurationHistogram,
    service_hist: DurationHistogram,
}

struct NodeState {
    /// Reader-side outgoing queue (consumed sorted iff the policy selects
    /// at the sender — DBSA).
    reader: SharedQueue,
    /// Worker-side shared ready queue (consumed sorted iff the policy
    /// sorts at the receiver — DDWRR/ODDS).
    ready: SharedQueue,
    workers: Vec<WorkerState>,
}

/// Per-worker measurement series the engine accumulates, borrowed for
/// report building.
pub struct WorkerStats<'a> {
    /// The worker's device identity.
    pub device: DeviceId,
    /// Busy/idle utilization tracker.
    pub util: &'a UtilizationTracker,
    /// Target-window trace `(time, target)` per idle transition.
    pub req_trace: &'a [(SimTime, usize)],
    /// Request round-trip latencies observed by this worker.
    pub latency_hist: &'a DurationHistogram,
    /// Per-buffer service times on this device.
    pub service_hist: &'a DurationHistogram,
}

/// Metric-label token for a device class.
pub(crate) fn kind_label(k: DeviceKind) -> &'static str {
    match k {
        DeviceKind::Cpu => "cpu",
        DeviceKind::Gpu => "gpu",
    }
}

/// The backend-agnostic scheduling engine (see the module docs).
///
/// Generic over the driver-supplied [`Clock`] and the [`WeightProvider`]
/// whose relative-performance estimates order the sorted queue views.
pub struct Engine<C: Clock, W: WeightProvider> {
    cfg: EngineConfig,
    clock: C,
    weights: W,
    rec: Recorder,
    nodes: Vec<NodeState>,
    next_req_id: u64,
    tasks_by: HashMap<(DeviceKind, u8), u64>,
    total_done: u64,
}

impl<C: Clock, W: WeightProvider> Engine<C, W> {
    /// An engine with no nodes yet.
    pub fn new(cfg: EngineConfig, clock: C, weights: W, rec: Recorder) -> Engine<C, W> {
        Engine {
            cfg,
            clock,
            weights,
            rec,
            nodes: Vec::new(),
            next_req_id: 0,
            tasks_by: HashMap::new(),
            total_done: 0,
        }
    }

    /// Add a node (one reader instance + one ready queue); returns its
    /// index.
    pub fn add_node(&mut self) -> usize {
        self.nodes.push(NodeState {
            reader: SharedQueue::new(),
            ready: SharedQueue::new(),
            workers: Vec::new(),
        });
        self.nodes.len() - 1
    }

    /// Add a worker slot for `device` on `node`; returns its slot index.
    pub fn add_worker(&mut self, node: usize, device: DeviceId) -> usize {
        let w = WorkerState {
            device,
            window: RequestWindow::new(&self.cfg.policy, self.cfg.max_window),
            busy: false,
            rr_cursor: node,
            util: UtilizationTracker::new(),
            req_trace: Vec::new(),
            latency_hist: DurationHistogram::new(),
            service_hist: DurationHistogram::new(),
        };
        self.nodes[node].workers.push(w);
        self.nodes[node].workers.len() - 1
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of worker slots across all nodes.
    pub fn worker_count(&self) -> usize {
        self.nodes.iter().map(|n| n.workers.len()).sum()
    }

    /// All worker references, node-major in slot order.
    pub fn worker_refs(&self) -> Vec<WorkerRef> {
        self.nodes
            .iter()
            .enumerate()
            .flat_map(|(n, ns)| {
                ns.workers.iter().enumerate().map(move |(i, w)| WorkerRef {
                    node: n,
                    worker: i,
                    device: w.device,
                })
            })
            .collect()
    }

    /// The device a worker slot schedules for.
    pub fn worker_device(&self, node: usize, worker: usize) -> DeviceId {
        self.nodes[node].workers[worker].device
    }

    /// Set a worker's batch reserve (see
    /// [`RequestWindow::set_batch_reserve`]); drivers call this at worker
    /// creation and whenever the stream controller changes its count.
    pub fn set_batch_reserve(&mut self, node: usize, worker: usize, slots: usize) {
        self.nodes[node].workers[worker]
            .window
            .set_batch_reserve(slots);
    }

    /// The observability sink decisions are recorded to.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// `(device kind, level) -> completed buffers`, accumulated by
    /// [`Engine::task_finished`].
    pub fn tasks_by(&self) -> &HashMap<(DeviceKind, u8), u64> {
        &self.tasks_by
    }

    /// Total completed buffers.
    pub fn total_done(&self) -> u64 {
        self.total_done
    }

    /// Borrow every worker's measurement series, node-major in slot order.
    pub fn worker_stats(&self) -> impl Iterator<Item = WorkerStats<'_>> {
        self.nodes.iter().flat_map(|ns| {
            ns.workers.iter().map(|w| WorkerStats {
                device: w.device,
                util: &w.util,
                req_trace: &w.req_trace,
                latency_hist: &w.latency_hist,
                service_hist: &w.service_hist,
            })
        })
    }

    fn worker_ref(&self, node: usize, worker: usize) -> WorkerRef {
        WorkerRef {
            node,
            worker,
            device: self.nodes[node].workers[worker].device,
        }
    }

    /// Seed a reader with a not-yet-requested buffer. Seeds join the
    /// low-priority FIFO band so recirculated work keeps precedence.
    pub fn seed_reader(&mut self, reader: usize, buffer: DataBuffer) {
        let w = select::weights_for(&self.weights, &buffer);
        self.nodes[reader].reader.insert_banded(buffer, w, None, 1);
    }

    /// A recirculated buffer materialized at `reader`: it takes FIFO
    /// precedence over unread seeds (the demand-driven Start→Reader loop
    /// keeps in-flight work ahead of not-yet-started work) and wakes every
    /// starved worker.
    pub fn recirculate<D: Transport>(&mut self, reader: usize, buffer: DataBuffer, d: &mut D) {
        let w = select::weights_for(&self.weights, &buffer);
        self.nodes[reader].reader.insert_banded(buffer, w, None, 0);
        self.wake_starved(d);
    }

    /// Buffers currently queued at a reader.
    pub fn reader_len(&self, reader: usize) -> usize {
        self.nodes[reader].reader.len()
    }

    /// Answer a data request arriving at `reader` from a device of
    /// `proctype`: DBSA sorted selection when the policy selects at the
    /// sender, FIFO otherwise. `None` means the reader has drained.
    pub fn answer_request(&mut self, reader: usize, proctype: DeviceKind) -> Option<DataBuffer> {
        let sender_sorted = self.cfg.policy.kind.sender_selects();
        let buffer = select::pop_for(&mut self.nodes[reader].reader, sender_sorted, proctype)
            .map(|(b, _)| b);
        if sender_sorted {
            if let Some(b) = &buffer {
                self.rec.record(
                    self.clock.now().as_nanos(),
                    DeviceRef::node_scope(reader),
                    EventKind::DbsaSelect {
                        buffer: b.id.0,
                        proctype,
                    },
                );
            }
        }
        buffer
    }

    /// A (possibly empty) reply to request `req_id` reached `worker`.
    /// Settles the round-trip latency, queues the buffer on the node's
    /// ready queue (or releases the window slot on an empty reply), and
    /// re-pumps/dispatches. Unknown `req_id`s (e.g. `u64::MAX`) settle
    /// nothing — drivers use them as pure kicks to start the requesters.
    pub fn data_arrived<D: Transport + Executor>(
        &mut self,
        node: usize,
        worker: usize,
        req_id: u64,
        buffer: Option<DataBuffer>,
        d: &mut D,
    ) {
        let now = self.clock.now();
        let lat = self.nodes[node].workers[worker]
            .window
            .settle_latency(req_id, now);
        if let Some(lat) = lat {
            let kind = {
                let w = &mut self.nodes[node].workers[worker];
                w.latency_hist.record(lat);
                w.device.kind
            };
            self.rec
                .histogram_record("request_latency", &[("device", kind_label(kind))], lat);
        }
        match buffer {
            Some(buffer) => {
                self.rec.record(
                    now.as_nanos(),
                    DeviceRef::node_scope(node),
                    EventKind::Enqueue {
                        buffer: buffer.id.0,
                        level: buffer.level,
                    },
                );
                let w = select::weights_for(&self.weights, &buffer);
                self.nodes[node]
                    .ready
                    .insert(buffer, w, Some(worker as u64));
                self.dispatch(node, d);
            }
            None => {
                // Empty reply: the reader drained since the request was
                // issued. Release the window slot and retry elsewhere.
                self.nodes[node].workers[worker].window.release_slot();
                self.pump_requests(node, worker, d);
            }
        }
    }

    /// A buffer completed on `worker` after `proc_time` of device
    /// occupancy: records the finish and the completion counters. The
    /// driver decides what the completion *means* (final result,
    /// recalculation loop-back) and separately frees the slot via
    /// [`Engine::worker_idle`].
    pub fn task_finished(
        &mut self,
        node: usize,
        worker: usize,
        buffer: &DataBuffer,
        proc_time: SimDuration,
    ) {
        let w = &self.nodes[node].workers[worker];
        let kind = w.device.kind;
        self.rec.record(
            self.clock.now().as_nanos(),
            DeviceRef::device(w.device),
            EventKind::Finish {
                buffer: buffer.id.0,
                level: buffer.level,
                proc_ns: proc_time.as_nanos(),
            },
        );
        self.rec
            .counter_add("tasks_finished", &[("device", kind_label(kind))], 1);
        *self.tasks_by.entry((kind, buffer.level)).or_insert(0) += 1;
        self.total_done += 1;
    }

    /// `worker` became free after processing the given per-buffer
    /// durations: DQAA adaptation, window trace, re-request, re-dispatch.
    pub fn worker_idle<D: Transport + Executor>(
        &mut self,
        node: usize,
        worker: usize,
        processed: &[SimDuration],
        d: &mut D,
    ) {
        let now = self.clock.now();
        let (dev, target) = {
            let w = &mut self.nodes[node].workers[worker];
            w.busy = false;
            w.util.set_idle(now);
            for &dt in processed {
                w.window.observe_processing(dt);
                w.service_hist.record(dt);
            }
            let target = w.window.target();
            w.req_trace.push((now, target));
            (DeviceRef::device(w.device), target)
        };
        self.rec.record(
            now.as_nanos(),
            dev,
            EventKind::DqaaWindow {
                target: target as u32,
            },
        );
        if self.rec.is_enabled() {
            let label = kind_label(dev.kind.expect("worker slots are device-scoped"));
            for &dt in processed {
                self.rec
                    .histogram_record("service_time", &[("device", label)], dt);
            }
        }
        self.pump_requests(node, worker, d);
        self.dispatch(node, d);
    }

    /// Hand ready buffers to every idle worker of `node`, GPUs first, each
    /// batched up to the executor's limit. Emits `Dispatch` + `Start` per
    /// buffer and marks the slot busy before launching.
    pub fn dispatch<D: Transport + Executor>(&mut self, node: usize, d: &mut D) {
        let kinds: Vec<DeviceKind> = self.nodes[node]
            .workers
            .iter()
            .map(|w| w.device.kind)
            .collect();
        for wi in select::dispatch_order(&kinds) {
            if self.nodes[node].workers[wi].busy {
                continue;
            }
            if self.nodes[node].ready.is_empty() {
                break;
            }
            let wref = self.worker_ref(node, wi);
            let limit = d.batch_limit(wref).max(1);
            let mut batch = Vec::with_capacity(limit);
            while batch.len() < limit {
                match self.take_ready(node, wref.device.kind, d) {
                    Some(b) => batch.push(b),
                    None => break,
                }
            }
            if batch.is_empty() {
                continue;
            }
            let now = self.clock.now();
            let dev = DeviceRef::device(wref.device);
            for b in &batch {
                self.rec.record(
                    now.as_nanos(),
                    dev,
                    EventKind::Dispatch {
                        buffer: b.id.0,
                        level: b.level,
                    },
                );
                self.rec.record(
                    now.as_nanos(),
                    dev,
                    EventKind::Start {
                        buffer: b.id.0,
                        level: b.level,
                    },
                );
            }
            let w = &mut self.nodes[node].workers[wi];
            w.busy = true;
            w.util.set_busy(now);
            d.launch(wref, batch);
        }
    }

    /// Pop one ready buffer for a device of `kind` per the receiver-side
    /// policy; settles the window slot of the worker whose request fetched
    /// it and immediately re-pumps that worker.
    fn take_ready<D: Transport>(
        &mut self,
        node: usize,
        kind: DeviceKind,
        d: &mut D,
    ) -> Option<DataBuffer> {
        let sorted = self.cfg.policy.kind.receiver_sorted();
        let (buffer, tag) = select::pop_for(&mut self.nodes[node].ready, sorted, kind)?;
        if let Some(owner) = tag {
            let owner = owner as usize;
            if owner < self.nodes[node].workers.len() {
                self.nodes[node].workers[owner].window.release_slot();
            }
            self.pump_requests(node, owner, d);
        }
        Some(buffer)
    }

    /// ThreadRequester: keep `worker`'s outstanding requests at its target
    /// window by sending requests to readers that currently have data,
    /// round-robin from the worker's cursor.
    fn pump_requests<D: Transport>(&mut self, node: usize, worker: usize, d: &mut D) {
        let n_nodes = self.nodes.len();
        loop {
            let w = &self.nodes[node].workers[worker];
            if w.window.outstanding() >= w.window.target().min(self.cfg.max_window) {
                return;
            }
            let start = w.rr_cursor;
            let mut chosen = None;
            for off in 0..n_nodes {
                let r = (start + off) % n_nodes;
                if !self.nodes[r].reader.is_empty() {
                    chosen = Some(r);
                    break;
                }
            }
            let Some(reader) = chosen else {
                // Nothing anywhere: wait for a recirculation to materialize.
                self.nodes[node].workers[worker].window.set_starved();
                return;
            };
            let req_id = self.next_req_id;
            self.next_req_id += 1;
            let now = self.clock.now();
            let wref = self.worker_ref(node, worker);
            {
                let w = &mut self.nodes[node].workers[worker];
                w.rr_cursor = (reader + 1) % n_nodes;
                w.window.note_sent(req_id, now);
            }
            d.send_request(wref, reader, req_id);
        }
    }

    /// Re-pump every starved worker (a reader just became non-empty).
    fn wake_starved<D: Transport>(&mut self, d: &mut D) {
        let idx: Vec<(usize, usize)> = self
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(n, ns)| {
                ns.workers
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.window.is_starved())
                    .map(move |(i, _)| (n, i))
            })
            .collect();
        for (n, w) in idx {
            self.pump_requests(n, w, d);
        }
    }
}
